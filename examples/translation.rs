//! Machine-translation scenario (the paper's GNMT/WMT16 benchmark
//! class): train an attention-based LSTM encoder–decoder on a synthetic
//! translation task, distill dual-module cells, sweep thresholds, and
//! push the measured gate sensitivity through the memory-bound simulator
//! at GNMT scale.
//!
//! ```text
//! cargo run --release --example translation
//! ```

use duet::core::dual_rnn::RnnThresholds;
use duet::sim::config::ArchConfig;
use duet::sim::energy::EnergyTable;
use duet::sim::rnn::run_rnn_layer;
use duet::sim::trace::RnnLayerTrace;
use duet::tensor::rng;
use duet::workloads::seq2seq::{bleu2, train_seq2seq, DualSeq2Seq, ReversalTask};

fn main() {
    let mut r = rng::seeded(21);
    let task = ReversalTask { vocab: 10, len: 5 };

    println!("training attention seq2seq on the reversal task (GNMT stand-in)...");
    let model = train_seq2seq(&task, 16, 32, 4000, &mut r);
    let dense_acc = model.token_accuracy(&task, 40, &mut rng::seeded(60));
    println!("dense token accuracy: {dense_acc:.3}\n");

    let dual = DualSeq2Seq::from_model(&model, 24, 500, &mut r);

    println!(
        "{:>16} | {:>9} | {:>10} | {:>22}",
        "theta (sig/tanh)", "token acc", "BLEU-proxy", "weight-access reduction"
    );
    let mut measured_sensitivity = 1.0f64;
    for (ts, tt) in [
        (f32::INFINITY, f32::INFINITY),
        (5.0, 4.0),
        (4.0, 3.0),
        (3.0, 2.5),
    ] {
        let th = RnnThresholds {
            theta_sigmoid: ts,
            theta_tanh: tt,
        };
        let (acc, rep) = dual.token_accuracy(&task, 40, &th, &mut rng::seeded(60));
        // BLEU-like proxy over a few samples
        let mut bleu = 0.0;
        let mut rr = rng::seeded(61);
        for _ in 0..20 {
            let (src, tgt) = task.sample(&mut rr);
            let (pred, _) = dual.translate(&src, tgt.len(), &th);
            bleu += bleu2(&pred, &tgt);
        }
        bleu /= 20.0;
        println!(
            "{:>16} | {:>9.3} | {:>10.3} | {:>21.2}x",
            if ts.is_infinite() {
                "dense".into()
            } else {
                format!("{ts:.1}/{tt:.1}")
            },
            acc,
            bleu,
            rep.weight_access_reduction(),
        );
        if ts == 4.0 {
            measured_sensitivity = 1.0 - rep.approximate_fraction();
        }
    }

    // GNMT-scale simulation at the measured sensitivity.
    println!(
        "\nsimulating a GNMT-scale layer (1024 hidden, 30 steps) at the measured {:.0}% sensitivity...",
        measured_sensitivity * 100.0
    );
    let trace = RnnLayerTrace::synthetic(
        "gnmt-enc1",
        4,
        1024,
        1024,
        30,
        measured_sensitivity,
        &mut rng::seeded(62),
    );
    let cfg = ArchConfig::duet();
    let energy = EnergyTable::default();
    let base = run_rnn_layer(&trace, &cfg, &energy, false);
    let duet = run_rnn_layer(&trace, &cfg, &energy, true);
    println!(
        "weight traffic {:.1} MB -> {:.1} MB; latency {:.2} ms -> {:.2} ms ({:.2}x)",
        base.weight_bytes_fetched as f64 / (1 << 20) as f64,
        duet.weight_bytes_fetched as f64 / (1 << 20) as f64,
        cfg.cycles_to_ms(base.perf.latency_cycles),
        cfg.cycles_to_ms(duet.perf.latency_cycles),
        base.perf.latency_cycles as f64 / duet.perf.latency_cycles as f64,
    );
    println!("\nautoregressive decoding is less noise-tolerant than language modeling —");
    println!("the same tighter GNMT trade-off the paper's Fig. 10 shows.");
}
