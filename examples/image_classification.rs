//! End-to-end CNN scenario: train a real (small) CNN classifier, distill
//! its dual-module form, then feed the *measured* switching maps into the
//! cycle-level DUET simulator — algorithm and architecture connected the
//! way the paper's co-design intends.
//!
//! ```text
//! cargo run --release --example image_classification
//! ```

use duet::core::SwitchingPolicy;
use duet::sim::cnn::run_cnn;
use duet::sim::config::ArchConfig;
use duet::sim::energy::EnergyTable;
use duet::sim::trace::ConvLayerTrace;
use duet::tensor::{rng, Tensor};
use duet::workloads::datasets;
use duet::workloads::dualize::DualCnn;
use duet::workloads::trainer;

fn main() {
    let mut r = rng::seeded(7);

    // 1. Train a real CNN on procedurally generated shape images.
    println!("training CNN on shape images...");
    let all = datasets::shape_images(600, 11, 0.2, &mut r);
    let (train, test) = all.split_at(400);
    let mut net = trainer::train_cnn(&train, 8, 15, &mut r);
    let dense_acc = trainer::evaluate_classifier(&mut net, &test);
    println!("dense test accuracy: {dense_acc:.3}\n");

    // 2. Distill the dual-module form from real calibration patches.
    let dual = DualCnn::from_sequential(&net, &train, 0.5, &mut r);

    // 3. Measure quality + savings, and record a real switching map.
    let theta = 0.0f32;
    let (acc, report) = dual.evaluate(&test, theta);
    println!(
        "dual-module accuracy at theta {theta}: {acc:.3} (loss {:+.1}%)",
        (dense_acc - acc) * 100.0
    );
    println!(
        "measured MAC skip fraction: {:.1}%  FLOPs reduction: {:.2}x\n",
        report.mac_skip_fraction() * 100.0,
        report.flops_reduction()
    );

    // 4. Drive the cycle-level simulator with a real OMap.
    let g = *dual.geometry();
    // Re-run the conv over a batch of test images and stack the measured
    // OMaps along the channel dimension — the accelerator "sequentially
    // processes batches of ifmap" (§IV-A), so a batch of B images fills
    // B × K PE-row assignments.
    let img_len = g.in_channels * g.in_h * g.in_w;
    let mut omap = duet::core::SwitchingMap::empty();
    let mut out_dims = (0usize, 0usize);
    for bi in 0..8 {
        let img = Tensor::from_vec(
            test.inputs.data()[bi * img_len..(bi + 1) * img_len].to_vec(),
            &[g.in_channels, g.in_h, g.in_w],
        );
        let out = dual
            .conv_layer()
            .forward(&img, &SwitchingPolicy::relu(theta), None);
        out_dims = (
            out.output.shape().dim(0),
            out.output.shape().dim(1) * out.output.shape().dim(2),
        );
        omap.extend_from_map(&out.omap);
    }
    let trace = ConvLayerTrace::from_dual_conv(
        "conv1(batch8)",
        out_dims.0 * 8,
        out_dims.1,
        g.patch_len(),
        img_len * 8,
        &omap,
        1.0,
        dual.conv_layer().approx().config().reduced_dim,
    );
    println!(
        "real switching map: {} of {} outputs sensitive ({:.1}%)",
        trace.sensitive_outputs(),
        trace.outputs(),
        trace.sensitive_fraction() * 100.0
    );

    // A single tiny layer cannot hide its own speculation (there is no
    // previous layer to overlap with), so present the simulator with the
    // realistic case: a stack of such layers in the Fig. 7 pipeline.
    let stack: Vec<ConvLayerTrace> = (0..4)
        .map(|i| {
            let mut t = trace.clone();
            t.name = format!("conv{}", i + 1);
            t
        })
        .collect();
    let energy = EnergyTable::default();
    let base = run_cnn("shapes-cnn", &stack, &ArchConfig::single_module(), &energy);
    let duet = run_cnn("shapes-cnn", &stack, &ArchConfig::duet(), &energy);
    println!(
        "simulated 4-layer stack on DUET: {:.2}x speedup, {:.2}x energy efficiency over the single-module baseline",
        duet.speedup_over(&base),
        duet.energy_efficiency_over(&base)
    );
    println!("(a 3x3x1-patch toy conv is below DUET's sweet spot: one output costs a single");
    println!(" PE-row cycle, so there is little computation for the switching map to skip)\n");

    // 5. Scale up: drive an AlexNet-conv3-shaped layer with the
    //    *measured* sparsity statistics from our trained network.
    let measured_sensitive = trace.sensitive_fraction();
    let mut r2 = rng::seeded(99);
    let big = ConvLayerTrace::synthetic(
        "alexnet-conv3-shape",
        384,
        13 * 13,
        192 * 3 * 3,
        192 * 13 * 13,
        measured_sensitive,
        0.3,
        0.45,
        (192 * 3 * 3) / 8,
        &mut r2,
    );
    let big_stack: Vec<ConvLayerTrace> = (0..4).map(|_| big.clone()).collect();
    let base = run_cnn(
        "alexnet-scale",
        &big_stack,
        &ArchConfig::single_module(),
        &energy,
    );
    let duet = run_cnn("alexnet-scale", &big_stack, &ArchConfig::duet(), &energy);
    println!(
        "same measured sensitivity ({:.1}%) on an AlexNet-conv3-shaped layer: {:.2}x speedup, {:.2}x energy efficiency",
        measured_sensitive * 100.0,
        duet.speedup_over(&base),
        duet.energy_efficiency_over(&base)
    );
}
