//! Design-space exploration scenario (Fig. 13a): sweep the Speculator's
//! systolic-array size and watch the performance saturate at the paper's
//! chosen 16x32 point.
//!
//! The whole (size × model) grid runs as one parallel sweep through
//! `duet::sim::sweep` — cells are independent simulations, so they fan
//! out over all available cores with bitwise-deterministic results.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use duet::sim::config::{ArchConfig, ExecutorFeatures};
use duet::sim::energy::EnergyTable;
use duet::sim::sweep::{SweepGrid, SweepPoint, SweepWorkload};
use duet::sim::{AreaModel, AreaReport};
use duet::tensor::rng;
use duet::workloads::models::ModelZoo;
use duet::workloads::sparsity;

fn main() {
    let energy = EnergyTable::default();
    let sizes = [(8, 8), (8, 16), (16, 16), (16, 32), (32, 32), (32, 64)];
    let models = [ModelZoo::AlexNet, ModelZoo::ResNet18];

    // Grid: a shared BASE point (Speculator-size independent) plus one
    // DUET point per systolic-array size.
    let mut points = vec![SweepPoint::new(
        "base",
        ArchConfig::duet().with_features(ExecutorFeatures::base()),
    )];
    for (rows, cols) in sizes {
        let mut cfg = ArchConfig::duet();
        cfg.speculator.systolic_rows = rows;
        cfg.speculator.systolic_cols = cols;
        points.push(SweepPoint::new(format!("{rows}x{cols}"), cfg));
    }
    let workloads = models
        .iter()
        .map(|&model| {
            let mut r = rng::seeded(2024 ^ model.name().len() as u64);
            SweepWorkload::Cnn {
                name: model.name().to_string(),
                traces: sparsity::cnn_traces(model, &mut r),
            }
        })
        .collect();
    let grid = SweepGrid::new(points, workloads);
    let cells = grid.run(&energy);

    println!(
        "{:>10} | {:>16} | {:>17} | {:>16}",
        "systolic", "AlexNet speedup", "ResNet18 speedup", "speculator area"
    );
    for (rows, cols) in sizes {
        let label = format!("{rows}x{cols}");
        let speedups: Vec<f64> = models
            .iter()
            .map(|&m| {
                let base = grid.cell(&cells, "base", m.name()).expect("base cell");
                let duet = grid.cell(&cells, &label, m.name()).expect("sized cell");
                duet.perf.speedup_over(&base.perf)
            })
            .collect();
        let mut cfg = ArchConfig::duet();
        cfg.speculator.systolic_rows = rows;
        cfg.speculator.systolic_cols = cols;
        let area = AreaReport::for_config(&cfg, &AreaModel::default());
        println!(
            "{:>10} | {:>15.2}x | {:>16.2}x | {:>9.2} mm^2 ({:.1}%)",
            label,
            speedups[0],
            speedups[1],
            area.speculator_mm2,
            area.speculator_fraction() * 100.0,
        );
    }
    println!("\nexpected shape (paper Fig. 13a): small arrays bottleneck the pipeline;");
    println!("beyond 16x32 the Speculator is already hidden and extra area is wasted.");
}
