//! Design-space exploration scenario (Fig. 13a): sweep the Speculator's
//! systolic-array size and watch the performance saturate at the paper's
//! chosen 16x32 point.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use duet::sim::cnn::run_cnn;
use duet::sim::config::{ArchConfig, ExecutorFeatures};
use duet::sim::energy::EnergyTable;
use duet::sim::{AreaModel, AreaReport};
use duet::tensor::rng;
use duet::workloads::models::ModelZoo;
use duet::workloads::sparsity;

fn main() {
    let energy = EnergyTable::default();
    println!(
        "{:>10} | {:>16} | {:>17} | {:>16}",
        "systolic", "AlexNet speedup", "ResNet18 speedup", "speculator area"
    );
    for (rows, cols) in [(8, 8), (8, 16), (16, 16), (16, 32), (32, 32), (32, 64)] {
        let mut cfg = ArchConfig::duet();
        cfg.speculator.systolic_rows = rows;
        cfg.speculator.systolic_cols = cols;

        let mut speedups = Vec::new();
        for model in [ModelZoo::AlexNet, ModelZoo::ResNet18] {
            let mut r = rng::seeded(2024 ^ model.name().len() as u64);
            let traces = sparsity::cnn_traces(model, &mut r);
            let duet = run_cnn(model.name(), &traces, &cfg, &energy);
            let base = run_cnn(
                model.name(),
                &traces,
                &cfg.with_features(ExecutorFeatures::base()),
                &energy,
            );
            speedups.push(duet.speedup_over(&base));
        }
        let area = AreaReport::for_config(&cfg, &AreaModel::default());
        println!(
            "{:>10} | {:>15.2}x | {:>16.2}x | {:>9.2} mm^2 ({:.1}%)",
            format!("{rows}x{cols}"),
            speedups[0],
            speedups[1],
            area.speculator_mm2,
            area.speculator_fraction() * 100.0,
        );
    }
    println!("\nexpected shape (paper Fig. 13a): small arrays bottleneck the pipeline;");
    println!("beyond 16x32 the Speculator is already hidden and extra area is wasted.");
}
