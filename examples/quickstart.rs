//! Quickstart: dual-module processing on a single feed-forward layer.
//!
//! Builds an accurate layer, distills its lightweight approximate module
//! (ternary random projection + INT4 weights), and runs dual-module
//! inference at a few switching thresholds, printing the quality/savings
//! trade-off of Fig. 3 in miniature.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use duet::core::{DualModuleLayer, SwitchingPolicy};
use duet::nn::Activation;
use duet::tensor::{ops, rng};

fn main() {
    let mut r = rng::seeded(42);

    // An "accurate module": a 256→128 ReLU layer with trained-looking
    // (low-rank-ish) weights.
    let u = rng::normal(&mut r, &[128, 24], 0.0, 0.3);
    let v = rng::normal(&mut r, &[24, 256], 0.0, 0.15);
    let w = ops::matmul(&u, &v);
    let b = rng::normal(&mut r, &[128], 0.0, 0.05);

    // Distill the approximate module: project 256 → 48 dims, INT4
    // weights, fitted to the teacher by ridge least squares (Eq. 1).
    // Calibration inputs come from the same correlated distribution the
    // layer will see at inference — as the paper distills on real
    // validation activations.
    println!("distilling approximate module (k = 48, INT4)...");
    let basis = rng::normal(&mut rng::seeded(9), &[256, 24], 0.0, 0.2);
    let mut calib = duet::tensor::Tensor::zeros(&[512, 256]);
    for i in 0..512 {
        let z = rng::normal(&mut r, &[24], 0.0, 1.0);
        let x = ops::gemv(&basis, &z);
        calib.row_mut(i).copy_from_slice(x.data());
    }
    let layer =
        DualModuleLayer::learn_from_activations(&w, &b, Activation::Relu, 48, &calib, &mut r);
    println!(
        "approximate module: {} INT4 weights ({} bytes) vs {} INT16 weights ({} bytes)\n",
        layer.approx().param_count(),
        layer.approx().weight_bytes(),
        w.len(),
        w.len() * 2,
    );

    println!(
        "{:>8} | {:>12} | {:>14} | {:>15} | {:>12}",
        "theta", "exact rows", "approx frac", "FLOPs reduction", "output error"
    );
    for theta in [f32::NEG_INFINITY, -0.5, 0.0, 0.5, 1.0, f32::INFINITY] {
        let mut err = 0.0f32;
        let mut norm = 0.0f32;
        let mut report = duet::core::SavingsReport::new();
        for _ in 0..50 {
            let z = rng::normal(&mut r, &[24], 0.0, 1.0);
            let x = ops::gemv(&basis, &z);
            let out = layer.forward(&x, &SwitchingPolicy::relu(theta));
            let dense = layer.forward_dense(&x);
            err += ops::sub(&out.output, &dense).norm_sq();
            norm += dense.norm_sq();
            report += out.report;
        }
        let label = if theta == f32::NEG_INFINITY {
            "-inf".to_string()
        } else if theta == f32::INFINITY {
            "+inf".to_string()
        } else {
            format!("{theta:+.1}")
        };
        println!(
            "{:>8} | {:>12} | {:>13.1}% | {:>14.2}x | {:>11.4}",
            label,
            report.outputs_exact / 50,
            report.approximate_fraction() * 100.0,
            report.flops_reduction(),
            (err / norm.max(1e-9)).sqrt(),
        );
    }

    println!("\nAt theta = -inf every output is exact (identical to dense execution);");
    println!("raising theta trades a little post-ReLU error for large FLOP savings —");
    println!("the dual-module principle of the DUET paper.");
}
