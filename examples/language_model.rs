//! Memory-bound RNN scenario (§IV-B): train a real LSTM language model,
//! distill its dual-module cells, measure perplexity vs weight-fetch
//! savings, then replay the *recorded* gate switching maps through the
//! cycle-level simulator to see the DRAM-traffic reduction.
//!
//! ```text
//! cargo run --release --example language_model
//! ```

use duet::core::dual_rnn::RnnThresholds;
use duet::sim::config::ArchConfig;
use duet::sim::energy::EnergyTable;
use duet::sim::rnn::run_rnn_layer;
use duet::sim::trace::RnnLayerTrace;
use duet::tensor::rng;
use duet::workloads::datasets::MarkovText;
use duet::workloads::dualize::DualCharLm;
use duet::workloads::trainer;

fn main() {
    let mut r = rng::seeded(11);

    // 1. Train an LSTM language model on a Markov text source.
    println!("training LSTM language model...");
    let source = MarkovText::new(16, 3, &mut r);
    let lm = trainer::train_char_lm(&source, true, 16, 48, 180, 30, &mut r);
    let test = source.sample(400, &mut r);
    let dense_ppl = lm.perplexity(&test);
    println!(
        "dense perplexity: {dense_ppl:.2} (uniform would be 16.00, source entropy floor {:.2})\n",
        source.entropy_nats().exp()
    );

    // 2. Distill dual-module cells and sweep thresholds.
    let dual = DualCharLm::from_char_lm(&lm, 32, 500, &mut r);
    println!(
        "{:>16} | {:>10} | {:>12} | {:>22}",
        "theta (sig/tanh)", "perplexity", "ppl increase", "weight-access reduction"
    );
    let mut chosen = RnnThresholds::never_switch();
    for (ts, tt) in [
        (f32::INFINITY, f32::INFINITY),
        (3.0, 2.5),
        (2.0, 1.5),
        (1.5, 1.2),
    ] {
        let th = RnnThresholds {
            theta_sigmoid: ts,
            theta_tanh: tt,
        };
        let (ppl, rep) = dual.perplexity(&test, &th);
        println!(
            "{:>16} | {:>10.2} | {:>11.1}% | {:>21.2}x",
            if ts.is_infinite() {
                "dense".into()
            } else {
                format!("{ts:.1}/{tt:.1}")
            },
            ppl,
            (ppl / dense_ppl - 1.0) * 100.0,
            rep.weight_access_reduction(),
        );
        if ppl < dense_ppl * 1.15 && ts.is_finite() {
            chosen = th;
        }
    }

    // 3. Record real per-gate switching maps at the chosen threshold and
    //    replay them in the simulator.
    println!("\nreplaying recorded gate maps in the cycle-level simulator...");
    let tokens = source.sample(40, &mut r);
    let maps = dual.record_gate_maps(&tokens, &chosen);
    let trace = RnnLayerTrace::from_step_maps("lstm-lm", 16, &maps);
    println!(
        "recorded {} steps x {} gates, overall sensitive fraction {:.1}%",
        trace.steps,
        trace.gates,
        trace.sensitive_fraction() * 100.0
    );

    // The paper's LSTM weight matrices exceed the 1 MiB GLB, forcing
    // per-step streaming from DRAM — that is the regime where row
    // skipping saves memory traffic (§IV-B). Our demonstration LM is
    // tiny, so shrink the GLB to put the simulator in the same
    // memory-bound regime.
    let mut cfg = ArchConfig::duet();
    cfg.glb_bytes = 2048;
    let energy = EnergyTable::default();
    let base = run_rnn_layer(&trace, &cfg, &energy, false);
    let duet = run_rnn_layer(&trace, &cfg, &energy, true);
    println!(
        "weight bytes fetched: BASE {} KB -> DUET {} KB ({:.2}x reduction)",
        base.weight_bytes_fetched / 1024,
        duet.weight_bytes_fetched / 1024,
        base.weight_bytes_fetched as f64 / duet.weight_bytes_fetched as f64
    );
    println!(
        "latency: BASE {} cycles -> DUET {} cycles ({:.2}x speedup)",
        base.perf.latency_cycles,
        duet.perf.latency_cycles,
        base.perf.latency_cycles as f64 / duet.perf.latency_cycles as f64
    );
    println!(
        "DRAM energy: BASE {:.1} uJ -> DUET {:.1} uJ",
        base.perf.energy.dram_pj / 1e6,
        duet.perf.energy.dram_pj / 1e6
    );
}
