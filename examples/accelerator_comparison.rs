//! Architecture comparison scenario (Fig. 11): run AlexNet-shaped
//! workloads on DUET and on the modeled state-of-the-art designs —
//! Eyeriss, Cnvlutin, SnaPEA, Predict, Predict+Cnvlutin — and print
//! latency / energy / EDP normalized to DUET.
//!
//! ```text
//! cargo run --release --example accelerator_comparison
//! ```

use duet::sim::baselines;
use duet::sim::cnn::run_cnn;
use duet::sim::config::{ArchConfig, ExecutorFeatures};
use duet::sim::energy::EnergyTable;
use duet::tensor::rng;
use duet::workloads::models::ModelZoo;
use duet::workloads::sparsity;

fn main() {
    let mut r = rng::seeded(2024);
    let traces = sparsity::cnn_traces(ModelZoo::AlexNet, &mut r);
    let cfg = ArchConfig::duet();
    let energy = EnergyTable::default();

    let duet = run_cnn("AlexNet", &traces, &cfg, &energy);
    let base = run_cnn("AlexNet", &traces, &ArchConfig::single_module(), &energy);

    println!(
        "AlexNet on DUET: {:.2}x speedup, {:.2}x energy efficiency vs single-module baseline\n",
        duet.speedup_over(&base),
        duet.energy_efficiency_over(&base)
    );

    println!(
        "{:>18} | {:>8} | {:>8} | {:>8}   (normalized to DUET; >1 = worse)",
        "design", "latency", "energy", "EDP"
    );
    let runs = [
        baselines::run_eyeriss("AlexNet", &traces, &cfg, &energy),
        baselines::run_cnvlutin("AlexNet", &traces, &cfg, &energy),
        baselines::run_snapea("AlexNet", &traces, &cfg, &energy),
        baselines::run_predict("AlexNet", &traces, &cfg, &energy),
        baselines::run_predict_cnvlutin("AlexNet", &traces, &cfg, &energy),
    ];
    for p in &runs {
        println!(
            "{:>18} | {:>7.2}x | {:>7.2}x | {:>7.2}x",
            p.design,
            p.total_latency_cycles as f64 / duet.total_latency_cycles as f64,
            p.total_energy().total_pj() / duet.total_energy().total_pj(),
            p.edp() / duet.edp(),
        );
    }
    println!(
        "{:>18} | {:>7.2}x | {:>7.2}x | {:>7.2}x",
        "DUET", 1.0, 1.0, 1.0
    );

    // ablation: what each DUET mechanism buys (Fig. 12a ladder)
    println!("\nDUET technique ladder (end-to-end speedup over dense baseline):");
    for f in [
        ExecutorFeatures::os(),
        ExecutorFeatures::bos(),
        ExecutorFeatures::ios(),
        ExecutorFeatures::duet(),
    ] {
        let p = run_cnn("AlexNet", &traces, &cfg.with_features(f), &energy);
        println!("  {:>5}: {:.2}x", f.label(), p.speedup_over(&base));
    }
}
