//! The [`Layer`] trait and [`Param`] — a trainable tensor with gradient
//! and optimizer state.

use duet_tensor::Tensor;

/// A trainable parameter: value, accumulated gradient, and the first/second
/// moment buffers used by momentum and Adam.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// First-moment buffer (momentum / Adam m).
    pub moment1: Tensor,
    /// Second-moment buffer (Adam v).
    pub moment2: Tensor,
}

impl Param {
    /// Wraps a tensor as a parameter with zeroed gradient and moments.
    pub fn new(value: Tensor) -> Self {
        let dims: Vec<usize> = value.shape().dims().to_vec();
        Self {
            grad: Tensor::zeros(&dims),
            moment1: Tensor::zeros(&dims),
            moment2: Tensor::zeros(&dims),
            value,
        }
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// Accumulates an outer product into a gradient matrix:
/// `grad[n,d] += a[n] ⊗ b[d]`. Shared by the recurrent cells and any
/// model doing manual backprop (e.g. the seq2seq head).
///
/// # Panics
///
/// Panics (debug builds) if `grad.len() != a.len() * b.len()`.
pub fn outer_accumulate(grad: &mut Tensor, a: &Tensor, b: &Tensor) {
    let (n, d) = (a.len(), b.len());
    debug_assert_eq!(grad.len(), n * d, "outer accumulate shape mismatch");
    let gd = grad.data_mut();
    for i in 0..n {
        let av = a.data()[i];
        if av == 0.0 {
            continue;
        }
        let row = &mut gd[i * d..(i + 1) * d];
        for (g, &bv) in row.iter_mut().zip(b.data()) {
            *g += av * bv;
        }
    }
}

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches whatever `backward` needs, so a
/// `forward` must precede each `backward`. Parameters expose themselves via
/// [`Layer::visit_params`] so optimizers can update them without the layer
/// knowing which optimizer is in use.
pub trait Layer {
    /// Runs the layer on a batched input and caches activations for
    /// backprop.
    fn forward(&mut self, x: &Tensor) -> Tensor;

    /// Propagates `grad_out` (gradient w.r.t. the layer's output) backward,
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every trainable parameter.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Zeroes all parameter gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total scalar parameter count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_buffers_match_shape() {
        let p = Param::new(Tensor::zeros(&[3, 4]));
        assert_eq!(p.grad.shape(), p.value.shape());
        assert_eq!(p.moment1.shape(), p.value.shape());
        assert_eq!(p.moment2.shape(), p.value.shape());
        assert_eq!(p.len(), 12);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::zeros(&[2]));
        p.grad = Tensor::full(&[2], 3.0);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }
}
