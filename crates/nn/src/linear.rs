//! Fully-connected (feed-forward) layer with backprop.

use crate::init;
use crate::layer::{Layer, Param};
use duet_tensor::rng::Rng;
use duet_tensor::{ops, Tensor};

/// A fully-connected layer `y = x Wᵀ + b` over batched inputs `[B, d]`.
///
/// The weight is stored `[n, d]` ("output-major"), matching the paper's
/// `W ∈ R^{n×d}` convention so a single PE row in the simulator maps to a
/// single weight row.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, r: &mut Rng) -> Self {
        Self {
            weight: Param::new(init::xavier_uniform(r, out_features, in_features)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// Creates a layer from explicit weight `[n, d]` and bias `[n]`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.shape().rank(), 2, "weight must be [n, d]");
        assert_eq!(
            weight.shape().dim(0),
            bias.len(),
            "bias length must equal output features"
        );
        Self {
            weight: Param::new(weight),
            bias: Param::new(bias),
            cached_input: None,
        }
    }

    /// Input feature count `d`.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape().dim(1)
    }

    /// Output feature count `n`.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape().dim(0)
    }

    /// The weight matrix `[n, d]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The bias vector `[n]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    /// Forward pass for a single (unbatched) input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[d]`.
    pub fn forward_vec(&self, x: &Tensor) -> Tensor {
        ops::affine(&self.weight.value, x, &self.bias.value)
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "Linear expects [B, d] input");
        assert_eq!(
            x.shape().dim(1),
            self.in_features(),
            "Linear input features {} != expected {}",
            x.shape().dim(1),
            self.in_features()
        );
        self.cached_input = Some(x.clone());
        // y[B,n] = x[B,d] · Wᵀ[d,n] + b
        let wt = self.weight.value.transposed();
        let mut y = ops::matmul(x, &wt);
        let n = self.out_features();
        for bi in 0..y.shape().dim(0) {
            let row = y.row_mut(bi);
            for (v, b) in row.iter_mut().zip(self.bias.value.data()) {
                *v += b;
            }
        }
        let _ = n;
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let b = x.shape().dim(0);
        assert_eq!(grad_out.shape().dims(), &[b, self.out_features()]);

        // dW[n,d] += gᵀ[n,B] · x[B,d]
        let gt = grad_out.transposed();
        let dw = ops::matmul(&gt, x);
        ops::axpy(1.0, &dw, &mut self.weight.grad);

        // db[n] += column sums of g
        for bi in 0..b {
            let row = grad_out.row(bi).to_vec();
            for (g, r) in self.bias.grad.data_mut().iter_mut().zip(&row) {
                *g += r;
            }
        }

        // dx[B,d] = g[B,n] · W[n,d]
        ops::matmul(grad_out, &self.weight.value)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::seeded;

    #[test]
    fn forward_matches_manual_affine() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let mut l = Linear::from_parts(w.clone(), b.clone());
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 3]);
        let y = l.forward(&x);
        assert_eq!(y.data(), &[6.5, 14.5]);
        // vector path agrees
        let yv = l.forward_vec(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]));
        assert_eq!(yv.data(), &[6.5, 14.5]);
    }

    #[test]
    fn gradient_check_weights() {
        let mut r = seeded(11);
        let mut l = Linear::new(4, 3, &mut r);
        let x = duet_tensor::rng::normal(&mut r, &[2, 4], 0.0, 1.0);

        // loss = 0.5 * ||y||²  => dL/dy = y
        let y = l.forward(&x);
        let _ = l.backward(&y);

        let eps = 1e-3f32;
        let w0 = l.weight().clone();
        for idx in [0usize, 5, 11] {
            let mut wp = w0.clone();
            wp.data_mut()[idx] += eps;
            let mut lp = Linear::from_parts(wp, l.bias().clone());
            let fp = 0.5 * lp.forward(&x).norm_sq();

            let mut wm = w0.clone();
            wm.data_mut()[idx] -= eps;
            let mut lm = Linear::from_parts(wm, l.bias().clone());
            let fm = 0.5 * lm.forward(&x).norm_sq();

            let fd = (fp - fm) / (2.0 * eps);
            let an = l.weight.grad.data()[idx];
            assert!((fd - an).abs() < 1e-2, "idx {idx}: fd {fd} vs an {an}");
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut r = seeded(12);
        let mut l = Linear::new(3, 2, &mut r);
        let x = duet_tensor::rng::normal(&mut r, &[1, 3], 0.0, 1.0);
        let y = l.forward(&x);
        let dx = l.backward(&y);

        let eps = 1e-3f32;
        for idx in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let fp = 0.5 * l.forward(&xp).norm_sq();
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fm = 0.5 * l.forward(&xm).norm_sq();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - dx.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut l = Linear::from_parts(Tensor::zeros(&[2, 2]), Tensor::zeros(&[2]));
        let x = Tensor::zeros(&[3, 2]);
        let _ = l.forward(&x);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let _ = l.backward(&g);
        assert_eq!(l.bias.grad.data(), &[9.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut r = seeded(0);
        let mut l = Linear::new(2, 2, &mut r);
        l.backward(&Tensor::zeros(&[1, 2]));
    }
}
