//! 2-D convolution layer (im2col + GEMM) with backprop.

use crate::init;
use crate::layer::{Layer, Param};
use duet_tensor::im2col::{col2im, im2col, ConvGeometry};
use duet_tensor::rng::Rng;
use duet_tensor::{ops, parallel, Tensor};

/// A 2-D convolution over batched `[B, C, H, W]` inputs, lowered to GEMM
/// via [`im2col`] exactly as §II-B prescribes for dual-module processing.
#[derive(Debug, Clone)]
pub struct Conv2d {
    geom: ConvGeometry,
    out_channels: usize,
    weight: Param, // [K, C·R·S]
    bias: Param,   // [K]
    cached_cols: Vec<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-initialized filters.
    pub fn new(geom: ConvGeometry, out_channels: usize, r: &mut Rng) -> Self {
        let fan_in = geom.patch_len();
        Self {
            weight: Param::new(init::he_normal(r, &[out_channels, fan_in], fan_in)),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            geom,
            out_channels,
            cached_cols: Vec::new(),
        }
    }

    /// Creates a convolution from an explicit `[K, C, R, S]` filter bank
    /// and `[K]` bias.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with `geom`.
    pub fn from_parts(geom: ConvGeometry, filters: Tensor, bias: Tensor) -> Self {
        assert_eq!(filters.shape().rank(), 4, "filters must be [K,C,R,S]");
        let k = filters.shape().dim(0);
        assert_eq!(filters.shape().dim(1), geom.in_channels);
        assert_eq!(filters.shape().dim(2), geom.kernel_h);
        assert_eq!(filters.shape().dim(3), geom.kernel_w);
        assert_eq!(bias.len(), k, "bias length must equal filter count");
        Self {
            weight: Param::new(filters.reshaped(&[k, geom.patch_len()])),
            bias: Param::new(bias),
            geom,
            out_channels: k,
            cached_cols: Vec::new(),
        }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geom
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The filter matrix in GEMM form `[K, C·R·S]`.
    pub fn weight_matrix(&self) -> &Tensor {
        &self.weight.value
    }

    /// The bias vector `[K]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    /// Output shape `[K, oh, ow]` for a single sample.
    pub fn out_dims(&self) -> [usize; 3] {
        [self.out_channels, self.geom.out_h(), self.geom.out_w()]
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().rank(), 4, "Conv2d expects [B, C, H, W]");
        let b = x.shape().dim(0);
        let (c, h, w) = (x.shape().dim(1), x.shape().dim(2), x.shape().dim(3));
        assert_eq!(c, self.geom.in_channels, "channel mismatch");
        assert_eq!(h, self.geom.in_h, "height mismatch");
        assert_eq!(w, self.geom.in_w, "width mismatch");

        let (oh, ow) = (self.geom.out_h(), self.geom.out_w());
        let mut out = Tensor::zeros(&[b, self.out_channels, oh, ow]);
        let sample_len = c * h * w;
        let out_len = self.out_channels * oh * ow;

        // Fused im2col + GEMM + bias per sample. Parallelism is placed at
        // the batch level when there are several samples (each worker runs
        // its GEMM serially to avoid nested thread fan-out); a lone sample
        // instead gets the full thread budget inside the GEMM itself.
        let threads = parallel::num_threads();
        let batch_threads = threads.min(b);
        let gemm_threads = if batch_threads > 1 { 1 } else { threads };
        let geom = &self.geom;
        let weight = &self.weight.value;
        let bias = self.bias.value.data();
        let results = parallel::map_indexed(b, batch_threads, |bi| {
            let sample = Tensor::from_vec(
                x.data()[bi * sample_len..(bi + 1) * sample_len].to_vec(),
                &[c, h, w],
            );
            let cols = im2col(&sample, geom);
            let mut y = ops::matmul_with_threads(weight, &cols, gemm_threads); // [K, oh·ow]
            for (k, &bk) in bias.iter().enumerate() {
                for v in y.row_mut(k) {
                    *v += bk;
                }
            }
            (y, cols)
        });

        self.cached_cols.clear();
        for (bi, (y, cols)) in results.into_iter().enumerate() {
            out.data_mut()[bi * out_len..(bi + 1) * out_len].copy_from_slice(y.data());
            self.cached_cols.push(cols);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.cached_cols.is_empty(),
            "backward called before forward"
        );
        let b = self.cached_cols.len();
        let (oh, ow) = (self.geom.out_h(), self.geom.out_w());
        assert_eq!(
            grad_out.shape().dims(),
            &[b, self.out_channels, oh, ow],
            "grad shape mismatch"
        );
        let out_len = self.out_channels * oh * ow;
        let in_len = self.geom.in_channels * self.geom.in_h * self.geom.in_w;
        let mut dx = Tensor::zeros(&[b, self.geom.in_channels, self.geom.in_h, self.geom.in_w]);

        for bi in 0..b {
            let g = Tensor::from_vec(
                grad_out.data()[bi * out_len..(bi + 1) * out_len].to_vec(),
                &[self.out_channels, oh * ow],
            );
            let cols = &self.cached_cols[bi];

            // dW[K, CRS] += g[K, P] · colsᵀ[P, CRS]
            let dw = ops::matmul(&g, &cols.transposed());
            ops::axpy(1.0, &dw, &mut self.weight.grad);

            // db[k] += sum over positions
            for k in 0..self.out_channels {
                let s: f32 = g.row(k).iter().sum();
                self.bias.grad.data_mut()[k] += s;
            }

            // dcols[CRS, P] = Wᵀ[CRS, K] · g[K, P]; dx = col2im(dcols)
            let dcols = ops::matmul(&self.weight.value.transposed(), &g);
            let dxi = col2im(&dcols, &self.geom);
            dx.data_mut()[bi * in_len..(bi + 1) * in_len].copy_from_slice(dxi.data());
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::im2col::conv2d_direct;
    use duet_tensor::rng::{self, seeded};

    fn small_geom() -> ConvGeometry {
        ConvGeometry {
            in_channels: 2,
            in_h: 5,
            in_w: 5,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        }
    }

    #[test]
    fn forward_matches_direct_convolution() {
        let mut r = seeded(5);
        let g = small_geom();
        let filters = rng::normal(&mut r, &[3, 2, 3, 3], 0.0, 0.5);
        let mut conv = Conv2d::from_parts(g, filters.clone(), Tensor::zeros(&[3]));
        let x = rng::normal(&mut r, &[1, 2, 5, 5], 0.0, 1.0);
        let y = conv.forward(&x);

        let sample = Tensor::from_vec(x.data().to_vec(), &[2, 5, 5]);
        let direct = conv2d_direct(&sample, &filters, &g);
        for (a, b) in y.data().iter().zip(direct.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn bias_is_added_per_channel() {
        let g = small_geom();
        let mut conv = Conv2d::from_parts(
            g,
            Tensor::zeros(&[2, 2, 3, 3]),
            Tensor::from_vec(vec![1.0, -2.0], &[2]),
        );
        let y = conv.forward(&Tensor::zeros(&[1, 2, 5, 5]));
        let (oh, ow) = (g.out_h(), g.out_w());
        assert!(y.data()[..oh * ow].iter().all(|&v| v == 1.0));
        assert!(y.data()[oh * ow..].iter().all(|&v| v == -2.0));
    }

    #[test]
    fn gradient_check_filters() {
        let mut r = seeded(21);
        let g = ConvGeometry {
            in_channels: 1,
            in_h: 4,
            in_w: 4,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 0,
        };
        let mut conv = Conv2d::new(g, 2, &mut r);
        let x = rng::normal(&mut r, &[2, 1, 4, 4], 0.0, 1.0);
        let y = conv.forward(&x);
        let _ = conv.backward(&y); // loss = 0.5||y||²

        let eps = 1e-3f32;
        let w0 = conv.weight.value.clone();
        for idx in [0usize, 7, 17] {
            let mut wp = w0.clone();
            wp.data_mut()[idx] += eps;
            let mut cp = conv.clone();
            cp.weight.value = wp;
            let fp = 0.5 * cp.forward(&x).norm_sq();

            let mut wm = w0.clone();
            wm.data_mut()[idx] -= eps;
            let mut cm = conv.clone();
            cm.weight.value = wm;
            let fm = 0.5 * cm.forward(&x).norm_sq();

            let fd = (fp - fm) / (2.0 * eps);
            let an = conv.weight.grad.data()[idx];
            assert!((fd - an).abs() < 2e-2, "idx {idx}: fd {fd} vs an {an}");
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut r = seeded(22);
        let g = ConvGeometry {
            in_channels: 1,
            in_h: 4,
            in_w: 4,
            kernel_h: 2,
            kernel_w: 2,
            stride: 2,
            padding: 0,
        };
        let mut conv = Conv2d::new(g, 1, &mut r);
        let x = rng::normal(&mut r, &[1, 1, 4, 4], 0.0, 1.0);
        let y = conv.forward(&x);
        let dx = conv.backward(&y);

        let eps = 1e-3f32;
        for idx in [0usize, 5, 15] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let fp = 0.5 * conv.forward(&xp).norm_sq();
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fm = 0.5 * conv.forward(&xm).norm_sq();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - dx.data()[idx]).abs() < 2e-2);
        }
    }
}
