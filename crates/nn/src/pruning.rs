//! Magnitude-based weight pruning.
//!
//! §VI of the paper: "dual-module processing can be combined with other
//! model compression techniques by taking compressed layers as accurate
//! modules." This module provides the static compression side: global
//! and per-row magnitude pruning plus the sparsity statistics the
//! simulator's weight-skipping ablation consumes.

use duet_tensor::Tensor;

/// Prunes a weight tensor to the target density by zeroing the smallest
/// magnitudes globally. Returns the pruned tensor.
///
/// # Panics
///
/// Panics if `density` is outside (0, 1].
pub fn prune_by_magnitude(w: &Tensor, density: f64) -> Tensor {
    assert!(density > 0.0 && density <= 1.0, "density must be in (0,1]");
    let keep = ((w.len() as f64 * density).ceil() as usize).max(1);
    if keep >= w.len() {
        return w.clone();
    }
    let mut mags: Vec<f32> = w.data().iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let threshold = mags[keep - 1];
    w.map(|v| if v.abs() >= threshold { v } else { 0.0 })
}

/// Prunes each row of a `[n, d]` matrix independently to the target
/// density — the structured variant that keeps per-output work balanced
/// (the paper's coarse-grained weight sparsity discussion).
///
/// # Panics
///
/// Panics if `w` is not 2-D or `density` is outside (0, 1].
pub fn prune_rows_by_magnitude(w: &Tensor, density: f64) -> Tensor {
    assert!(density > 0.0 && density <= 1.0, "density must be in (0,1]");
    assert_eq!(w.shape().rank(), 2, "row pruning needs a matrix");
    let (n, d) = (w.shape().dim(0), w.shape().dim(1));
    let keep = ((d as f64 * density).ceil() as usize).clamp(1, d);
    let mut out = w.clone();
    for i in 0..n {
        let row = &w.data()[i * d..(i + 1) * d];
        let mut mags: Vec<f32> = row.iter().map(|v| v.abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let threshold = mags[keep - 1];
        for (o, &v) in out.data_mut()[i * d..(i + 1) * d].iter_mut().zip(row) {
            *o = if v.abs() >= threshold { v } else { 0.0 };
        }
    }
    out
}

/// Fraction of non-zero weights.
pub fn density(w: &Tensor) -> f64 {
    1.0 - w.sparsity() as f64
}

/// Relative output error introduced by pruning, measured on random
/// inputs: `‖(W − W_p) x‖ / ‖W x‖` averaged over samples.
pub fn pruning_error(
    w: &Tensor,
    pruned: &Tensor,
    samples: usize,
    rng: &mut duet_tensor::rng::Rng,
) -> f32 {
    let d = w.shape().dim(1);
    let mut err = 0.0f32;
    let mut norm = 0.0f32;
    for _ in 0..samples {
        let x = duet_tensor::rng::normal(rng, &[d], 0.0, 1.0);
        let y = duet_tensor::ops::gemv(w, &x);
        let yp = duet_tensor::ops::gemv(pruned, &x);
        err += duet_tensor::ops::sub(&y, &yp).norm_sq();
        norm += y.norm_sq();
    }
    (err / norm.max(1e-12)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::{self, seeded};

    #[test]
    fn global_pruning_hits_density() {
        let mut r = seeded(1);
        let w = rng::normal(&mut r, &[32, 32], 0.0, 1.0);
        for target in [0.25, 0.5, 0.75] {
            let p = prune_by_magnitude(&w, target);
            let d = density(&p);
            assert!((d - target).abs() < 0.02, "target {target} got {d}");
        }
    }

    #[test]
    fn keeps_largest_magnitudes() {
        let w = Tensor::from_vec(vec![0.1, -5.0, 0.2, 3.0], &[2, 2]);
        let p = prune_by_magnitude(&w, 0.5);
        assert_eq!(p.data(), &[0.0, -5.0, 0.0, 3.0]);
    }

    #[test]
    fn row_pruning_is_balanced() {
        let mut r = seeded(2);
        let w = rng::normal(&mut r, &[8, 40], 0.0, 1.0);
        let p = prune_rows_by_magnitude(&w, 0.3);
        for i in 0..8 {
            let nz = p.row(i).iter().filter(|&&v| v != 0.0).count();
            assert_eq!(nz, 12, "row {i} has {nz} non-zeros"); // ceil(40*0.3)
        }
    }

    #[test]
    fn full_density_is_identity() {
        let mut r = seeded(3);
        let w = rng::normal(&mut r, &[4, 4], 0.0, 1.0);
        assert_eq!(prune_by_magnitude(&w, 1.0), w);
        assert_eq!(prune_rows_by_magnitude(&w, 1.0), w);
    }

    #[test]
    fn error_grows_as_density_falls() {
        let mut r = seeded(4);
        let w = rng::normal(&mut r, &[16, 64], 0.0, 1.0);
        let e_mild = pruning_error(&w, &prune_by_magnitude(&w, 0.8), 30, &mut seeded(9));
        let e_heavy = pruning_error(&w, &prune_by_magnitude(&w, 0.2), 30, &mut seeded(9));
        assert!(e_mild < e_heavy, "{e_mild} vs {e_heavy}");
        assert!(e_mild < 0.3, "mild pruning error {e_mild}");
    }

    #[test]
    #[should_panic(expected = "density must be in")]
    fn zero_density_rejected() {
        prune_by_magnitude(&Tensor::zeros(&[2, 2]), 0.0);
    }
}
