//! # duet-nn
//!
//! A minimal trainable neural-network library built on [`duet_tensor`].
//!
//! The DUET paper assumes a full DNN training ecosystem (the authors train
//! accurate modules in a standard framework and distill approximate modules
//! from them). This crate is that substrate, implemented from scratch:
//!
//! * [`Activation`] — ReLU / sigmoid / tanh / GELU with derivatives and
//!   the noise-sensitivity analysis behind Fig. 1,
//! * [`Linear`], [`Conv2d`], [`MaxPool2d`] — layers with full backprop,
//! * [`LstmCell`], [`GruCell`] — recurrent cells with BPTT,
//! * [`loss`] — MSE and softmax cross-entropy (+ perplexity),
//! * [`Optimizer`] — SGD, SGD-with-momentum, and Adam,
//! * [`Sequential`] — a feed-forward network container with a training
//!   loop.
//!
//! # Example
//!
//! ```
//! use duet_nn::{Activation, Linear, Sequential};
//! use duet_tensor::rng;
//!
//! let mut r = rng::seeded(0);
//! let mut net = Sequential::new();
//! net.push_linear(Linear::new(4, 8, &mut r));
//! net.push_activation(Activation::Relu);
//! net.push_linear(Linear::new(8, 2, &mut r));
//!
//! let x = rng::normal(&mut r, &[3, 4], 0.0, 1.0); // batch of 3
//! let logits = net.forward(&x);
//! assert_eq!(logits.shape().dims(), &[3, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod attention;
pub mod batchnorm;
pub mod conv;
pub mod gru;
pub mod init;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod lstm;
pub mod optim;
pub mod pool;
pub mod pruning;
pub mod sequential;

pub use activation::Activation;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use gru::GruCell;
pub use layer::{Layer, Param};
pub use linear::Linear;
pub use lstm::LstmCell;
pub use optim::Optimizer;
pub use pool::MaxPool2d;
pub use sequential::Sequential;
