//! Non-linear activation functions and their noise-sensitivity structure.
//!
//! The paper's premise (Fig. 1): ReLU is insensitive to pre-activation
//! noise for inputs below zero; sigmoid and tanh are insensitive in their
//! saturation regions. [`Activation::noise_gain`] quantifies this and is
//! used by the Fig. 1 reproduction.

use duet_tensor::Tensor;

/// Activation functions used by the paper's benchmark models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Activation {
    /// Rectified linear unit — CNN workhorse.
    Relu,
    /// Logistic sigmoid — LSTM/GRU gates.
    Sigmoid,
    /// Hyperbolic tangent — LSTM/GRU candidate states.
    Tanh,
    /// Gaussian error linear unit (tanh approximation) — transformer
    /// FFN workhorse. Like ReLU it collapses deep-negative inputs, so
    /// its insensitive region is the same one-sided band.
    Gelu,
    /// Identity (no non-linearity).
    Identity,
}

/// `√(2/π)`, the constant in the tanh approximation of GELU.
const GELU_C: f32 = 0.797_884_6;
/// Cubic coefficient of the tanh approximation of GELU.
const GELU_A: f32 = 0.044_715;

impl Activation {
    /// Applies the function to a scalar.
    pub fn apply_scalar(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Gelu => 0.5 * x * (1.0 + (GELU_C * (x + GELU_A * x * x * x)).tanh()),
            Activation::Identity => x,
        }
    }

    /// Applies the function element-wise.
    pub fn apply(self, x: &Tensor) -> Tensor {
        x.map(|v| self.apply_scalar(v))
    }

    /// Derivative at pre-activation `x`.
    pub fn derivative_scalar(self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let s = self.apply_scalar(x);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Gelu => {
                let u = GELU_C * (x + GELU_A * x * x * x);
                let t = u.tanh();
                0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * GELU_C * (1.0 + 3.0 * GELU_A * x * x)
            }
            Activation::Identity => 1.0,
        }
    }

    /// Element-wise derivative at pre-activations `x`.
    pub fn derivative(self, x: &Tensor) -> Tensor {
        x.map(|v| self.derivative_scalar(v))
    }

    /// Post-activation error produced by a pre-activation perturbation:
    /// `|φ(x + eps) − φ(x)|`.
    ///
    /// This is the quantity Fig. 1 plots: near zero it approaches `|eps|`
    /// for all three functions; in the insensitive regions (negative side
    /// of ReLU, saturation tails of sigmoid/tanh) it collapses toward 0.
    pub fn noise_gain(self, x: f32, eps: f32) -> f32 {
        (self.apply_scalar(x + eps) - self.apply_scalar(x)).abs()
    }

    /// Whether a *pre-activation* value lies in the paper's insensitive
    /// region for this function, given switching threshold `theta`
    /// (Eq. 3): ReLU/GELU ⇒ `x < theta`; sigmoid/tanh ⇒ `|x| > theta`;
    /// identity ⇒ `|x| < theta` — the Precision-Gating-style magnitude
    /// rule for linear projections feeding scale-bounded mixers (e.g.
    /// attention logits: small-magnitude entries move the softmax
    /// little). At `theta = 0` this is vacuous (nothing satisfies
    /// `|x| < 0`), so [`crate::Activation::Identity`]-based
    /// never-switch policies stay all-sensitive.
    pub fn is_insensitive(self, x: f32, theta: f32) -> bool {
        match self {
            Activation::Relu | Activation::Gelu => x < theta,
            Activation::Sigmoid | Activation::Tanh => x.abs() > theta,
            Activation::Identity => x.abs() < theta,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Gelu => "gelu",
            Activation::Identity => "identity",
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Row-wise softmax over a `[B, n]` tensor of logits, numerically
/// stabilized.
///
/// # Panics
///
/// Panics if `logits` is not 2-D.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "softmax expects [B, n] logits");
    let (b, n) = (logits.shape().dim(0), logits.shape().dim(1));
    let mut out = logits.clone();
    for i in 0..b {
        let row = &mut out.data_mut()[i * n..(i + 1) * n];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_values() {
        assert_eq!(Activation::Relu.apply_scalar(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply_scalar(3.0), 3.0);
    }

    #[test]
    fn sigmoid_symmetry() {
        let s = Activation::Sigmoid;
        for &x in &[0.0f32, 1.0, 2.5, -4.0] {
            assert!((s.apply_scalar(x) + s.apply_scalar(-x) - 1.0).abs() < 1e-6);
        }
        assert!((s.apply_scalar(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn tanh_odd() {
        let t = Activation::Tanh;
        for &x in &[0.5f32, 1.0, 3.0] {
            assert!((t.apply_scalar(x) + t.apply_scalar(-x)).abs() < 1e-6);
        }
    }

    #[test]
    fn gelu_values() {
        let g = Activation::Gelu;
        // GELU(0) = 0; deep negative inputs die; large positives pass through
        assert_eq!(g.apply_scalar(0.0), 0.0);
        assert!(g.apply_scalar(-6.0).abs() < 1e-4);
        assert!((g.apply_scalar(6.0) - 6.0).abs() < 1e-4);
        // reference value: GELU(1) ≈ 0.8412 (tanh approximation)
        assert!((g.apply_scalar(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn derivatives_match_finite_difference() {
        let eps = 1e-3f32;
        for act in [
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Gelu,
        ] {
            for &x in &[-2.0f32, -0.5, 0.7, 1.5, 3.0] {
                let fd = (act.apply_scalar(x + eps) - act.apply_scalar(x - eps)) / (2.0 * eps);
                let an = act.derivative_scalar(x);
                assert!((fd - an).abs() < 1e-2, "{act} at {x}: fd {fd} vs {an}");
            }
        }
    }

    #[test]
    fn noise_gain_collapses_in_insensitive_regions() {
        // Fig. 1: deep in the insensitive regions a pre-activation
        // perturbation barely changes the output.
        let eps = 0.1;
        assert!(Activation::Relu.noise_gain(-3.0, eps) == 0.0);
        assert!(Activation::Relu.noise_gain(1.0, eps) > 0.09);
        assert!(Activation::Sigmoid.noise_gain(6.0, eps) < 0.001);
        assert!(Activation::Sigmoid.noise_gain(0.0, eps) > 0.02);
        assert!(Activation::Tanh.noise_gain(4.0, eps) < 0.001);
        assert!(Activation::Tanh.noise_gain(0.0, eps) > 0.09);
        // GELU shares ReLU's one-sided insensitive region
        assert!(Activation::Gelu.noise_gain(-6.0, eps) < 0.001);
        assert!(Activation::Gelu.noise_gain(1.0, eps) > 0.09);
    }

    #[test]
    fn insensitive_region_rules() {
        assert!(Activation::Relu.is_insensitive(-0.1, 0.0));
        assert!(!Activation::Relu.is_insensitive(0.1, 0.0));
        assert!(Activation::Sigmoid.is_insensitive(5.0, 3.0));
        assert!(Activation::Sigmoid.is_insensitive(-5.0, 3.0));
        assert!(!Activation::Tanh.is_insensitive(1.0, 3.0));
        assert!(Activation::Gelu.is_insensitive(-0.1, 0.0));
        assert!(!Activation::Gelu.is_insensitive(0.1, 0.0));
        assert!(!Activation::Identity.is_insensitive(100.0, 0.0));
    }

    #[test]
    fn identity_magnitude_rule() {
        // |x| < θ is insensitive; θ = 0 (never-switch) and θ = −∞ keep
        // everything sensitive.
        assert!(Activation::Identity.is_insensitive(0.05, 0.1));
        assert!(Activation::Identity.is_insensitive(-0.05, 0.1));
        assert!(!Activation::Identity.is_insensitive(0.2, 0.1));
        assert!(!Activation::Identity.is_insensitive(0.0, 0.0));
        assert!(!Activation::Identity.is_insensitive(0.0, f32::NEG_INFINITY));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = softmax(&logits);
        for i in 0..2 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(i).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]);
        let p = softmax(&logits);
        assert!(p.data().iter().all(|v| v.is_finite()));
        assert!(p.at(&[0, 1]) > p.at(&[0, 0]));
    }
}
