//! Loss functions: MSE, softmax cross-entropy, perplexity.

use crate::activation::softmax;
use duet_tensor::{ops, Tensor};

/// Mean-squared-error loss and its gradient w.r.t. the prediction.
///
/// Returns `(loss, grad)` with `loss = mean((pred − target)²)` and
/// `grad = 2 (pred − target) / N`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    let diff = ops::sub(pred, target);
    let n = pred.len() as f32;
    let loss = diff.norm_sq() / n;
    let grad = diff.map(|d| 2.0 * d / n);
    (loss, grad)
}

/// Softmax cross-entropy over `[B, n]` logits with integer class targets.
///
/// Returns `(mean_loss, grad_wrt_logits)`; the gradient is
/// `(softmax − onehot) / B`, the standard fused form.
///
/// # Panics
///
/// Panics if `logits` is not 2-D, `targets.len() != B`, or a target index
/// is out of range.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().rank(), 2, "logits must be [B, n]");
    let (b, n) = (logits.shape().dim(0), logits.shape().dim(1));
    assert_eq!(targets.len(), b, "one target per batch row required");

    let probs = softmax(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < n, "target {t} out of range for {n} classes");
        let p = probs.at(&[i, t]).max(1e-12);
        loss -= p.ln();
        let g = grad.row_mut(i);
        g[t] -= 1.0;
    }
    let scale = 1.0 / b as f32;
    grad.map_inplace(|g| g * scale);
    (loss * scale, grad)
}

/// Classification accuracy of `[B, n]` logits against integer targets.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f64 {
    assert_eq!(logits.shape().rank(), 2, "logits must be [B, n]");
    let b = logits.shape().dim(0);
    assert_eq!(targets.len(), b);
    let n = logits.shape().dim(1);
    let mut correct = 0usize;
    for (i, &t) in targets.iter().enumerate() {
        let row = Tensor::from_vec(logits.row(i).to_vec(), &[n]);
        if ops::argmax(&row) == t {
            correct += 1;
        }
    }
    correct as f64 / b as f64
}

/// Top-k accuracy (the paper reports top-1 and top-5 on ImageNet).
///
/// # Panics
///
/// Panics if dimensions disagree or `k == 0`.
pub fn top_k_accuracy(logits: &Tensor, targets: &[usize], k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    assert_eq!(logits.shape().rank(), 2, "logits must be [B, n]");
    let (b, n) = (logits.shape().dim(0), logits.shape().dim(1));
    assert_eq!(targets.len(), b);
    let k = k.min(n);
    let mut correct = 0usize;
    for (i, &t) in targets.iter().enumerate() {
        let row = logits.row(i);
        let target_v = row[t];
        // rank = number of strictly larger entries
        let rank = row.iter().filter(|&&v| v > target_v).count();
        if rank < k {
            correct += 1;
        }
    }
    correct as f64 / b as f64
}

/// Perplexity from a mean negative-log-likelihood (nats): `exp(nll)`.
pub fn perplexity(mean_nll: f32) -> f32 {
    mean_nll.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_for_equal() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let (l, g) = mse(&a, &a);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mse_gradient_finite_difference() {
        let pred = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]);
        let target = Tensor::from_vec(vec![0.0, 1.0, 0.5], &[3]);
        let (_, g) = mse(&pred, &target);
        let eps = 1e-3;
        for i in 0..3 {
            let mut p = pred.clone();
            p.data_mut()[i] += eps;
            let (lp, _) = mse(&p, &target);
            let mut m = pred.clone();
            m.data_mut()[i] -= eps;
            let (lm, _) = mse(&m, &target);
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - g.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let good = Tensor::from_vec(vec![5.0, 0.0, 0.0], &[1, 3]);
        let bad = Tensor::from_vec(vec![0.0, 5.0, 0.0], &[1, 3]);
        let (lg, _) = cross_entropy(&good, &[0]);
        let (lb, _) = cross_entropy(&bad, &[0]);
        assert!(lg < lb);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, 0.5, -1.0, 0.0], &[2, 3]);
        let (_, g) = cross_entropy(&logits, &[2, 0]);
        for i in 0..2 {
            let s: f32 = g.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_gradient_finite_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2], &[1, 3]);
        let (_, g) = cross_entropy(&logits, &[1]);
        let eps = 1e-3;
        for i in 0..3 {
            let mut p = logits.clone();
            p.data_mut()[i] += eps;
            let (lp, _) = cross_entropy(&p, &[1]);
            let mut m = logits.clone();
            m.data_mut()[i] -= eps;
            let (lm, _) = cross_entropy(&m, &[1]);
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - g.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn accuracy_and_topk() {
        let logits = Tensor::from_vec(
            vec![
                3.0, 2.0, 1.0, 0.0, // argmax 0
                0.0, 1.0, 2.0, 3.0, // argmax 3
            ],
            &[2, 4],
        );
        assert_eq!(accuracy(&logits, &[0, 3]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 3]), 0.5);
        // class 1 is rank 1 in row 0 → inside top-2
        assert_eq!(top_k_accuracy(&logits, &[1, 0], 2), 0.5);
        assert_eq!(top_k_accuracy(&logits, &[1, 0], 4), 1.0);
    }

    #[test]
    fn perplexity_of_uniform() {
        // uniform over 10 classes: nll = ln(10) → ppl = 10
        let p = perplexity((10.0f32).ln());
        assert!((p - 10.0).abs() < 1e-3);
    }
}
