//! Max pooling with backprop.

use crate::layer::{Layer, Param};
use duet_tensor::Tensor;

/// 2-D max pooling over `[B, C, H, W]` inputs with a square window and
/// stride equal to the window size (the common CNN configuration).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    cached_argmax: Option<(Vec<usize>, Vec<usize>)>, // (argmax offsets, input dims flattened)
    cached_in_dims: Option<[usize; 4]>,
}

impl MaxPool2d {
    /// Creates a pooling layer with the given square window.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pooling window must be positive");
        Self {
            window,
            cached_argmax: None,
            cached_in_dims: None,
        }
    }

    /// The pooling window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Output spatial size for an input spatial size.
    pub fn out_spatial(&self, h: usize, w: usize) -> (usize, usize) {
        (h / self.window, w / self.window)
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().rank(), 4, "MaxPool2d expects [B, C, H, W]");
        let (b, c, h, w) = (
            x.shape().dim(0),
            x.shape().dim(1),
            x.shape().dim(2),
            x.shape().dim(3),
        );
        let k = self.window;
        assert!(h >= k && w >= k, "input {h}x{w} smaller than window {k}");
        let (oh, ow) = (h / k, w / k);
        let mut out = Tensor::zeros(&[b, c, oh, ow]);
        let mut argmax = vec![0usize; b * c * oh * ow];
        let xd = x.data();
        let od = out.data_mut();
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_off = 0;
                        for dy in 0..k {
                            for dx in 0..k {
                                let off = base + (oy * k + dy) * w + (ox * k + dx);
                                if xd[off] > best {
                                    best = xd[off];
                                    best_off = off;
                                }
                            }
                        }
                        let oidx = ((bi * c + ci) * oh + oy) * ow + ox;
                        od[oidx] = best;
                        argmax[oidx] = best_off;
                    }
                }
            }
        }
        self.cached_argmax = Some((argmax, vec![b * c * h * w]));
        self.cached_in_dims = Some([b, c, h, w]);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (argmax, _) = self
            .cached_argmax
            .as_ref()
            .expect("backward called before forward");
        let [b, c, h, w] = self.cached_in_dims.expect("backward before forward");
        let mut dx = Tensor::zeros(&[b, c, h, w]);
        assert_eq!(grad_out.len(), argmax.len(), "grad length mismatch");
        let dd = dx.data_mut();
        for (g, &off) in grad_out.data().iter().zip(argmax) {
            dd[off] += g;
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_picks_maxima() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let mut p = MaxPool2d::new(2);
        let y = p.forward(&x);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 9.0, 2.0, 3.0], &[1, 1, 2, 2]);
        let mut p = MaxPool2d::new(2);
        let _ = p.forward(&x);
        let dx = p.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]));
        assert_eq!(dx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn multi_channel_independent() {
        let x = Tensor::from_vec(
            vec![
                // channel 0
                1.0, 0.0, 0.0, 0.0, //
                // channel 1
                0.0, 0.0, 0.0, 7.0,
            ],
            &[1, 2, 2, 2],
        );
        let mut p = MaxPool2d::new(2);
        let y = p.forward(&x);
        assert_eq!(y.data(), &[1.0, 7.0]);
    }

    #[test]
    fn truncates_ragged_edge() {
        // 5x5 with window 2 -> 2x2 output, last row/col dropped
        let x = Tensor::from_fn(&[1, 1, 5, 5], |i| i as f32);
        let mut p = MaxPool2d::new(2);
        let y = p.forward(&x);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 16.0, 18.0]);
    }

    #[test]
    #[should_panic(expected = "smaller than window")]
    fn window_larger_than_input_panics() {
        let mut p = MaxPool2d::new(3);
        p.forward(&Tensor::zeros(&[1, 1, 2, 2]));
    }
}
