//! GRU cell with backpropagation-through-time.
//!
//! Gate ordering is **r, z, n** (reset, update, candidate). The candidate
//! follows the "v3" convention used by cuDNN/PyTorch:
//! `n = tanh(W_n x + b_n + r ⊙ (U_n h + b_hn))`, which keeps the
//! hidden-to-hidden product a plain GEMV — the memory-bound operation the
//! DUET Speculator targets.

use crate::activation::Activation;
use crate::layer::Param;
use duet_tensor::rng::Rng;
use duet_tensor::{ops, Tensor};

/// Number of GRU gates.
pub const GRU_GATES: usize = 3;

/// Per-step cache for BPTT.
#[derive(Debug, Clone)]
pub struct GruStepCache {
    x: Tensor,
    h_prev: Tensor,
    r: Tensor,
    z: Tensor,
    n: Tensor,
    hn: Tensor, // U_n h_prev + b_hn
}

/// A GRU cell: `W ∈ R^{3h×d}` (input), `U ∈ R^{3h×h}` (hidden), input bias
/// `b ∈ R^{3h}`, hidden bias `b_h ∈ R^{3h}`.
#[derive(Debug, Clone)]
pub struct GruCell {
    /// Input-to-hidden weights (rows: r, z, n).
    pub w_ih: Param,
    /// Hidden-to-hidden weights (rows: r, z, n).
    pub w_hh: Param,
    /// Input-side bias.
    pub b_ih: Param,
    /// Hidden-side bias.
    pub b_hh: Param,
    input: usize,
    hidden: usize,
}

impl GruCell {
    /// Creates a GRU cell with LeCun-uniform weights and zero biases.
    pub fn new(input: usize, hidden: usize, r: &mut Rng) -> Self {
        Self {
            w_ih: Param::new(crate::init::lecun_uniform(
                r,
                &[GRU_GATES * hidden, input],
                input,
            )),
            w_hh: Param::new(crate::init::lecun_uniform(
                r,
                &[GRU_GATES * hidden, hidden],
                hidden,
            )),
            b_ih: Param::new(Tensor::zeros(&[GRU_GATES * hidden])),
            b_hh: Param::new(Tensor::zeros(&[GRU_GATES * hidden])),
            input,
            hidden,
        }
    }

    /// Input size `d`.
    pub fn input_size(&self) -> usize {
        self.input
    }

    /// Hidden size `h`.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// One forward step from hidden state `h_prev`, returning the new
    /// hidden state and a BPTT cache.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn step(&self, x: &Tensor, h_prev: &Tensor) -> (Tensor, GruStepCache) {
        assert_eq!(x.len(), self.input, "input length mismatch");
        assert_eq!(h_prev.len(), self.hidden, "state length mismatch");
        let h = self.hidden;

        let mut ax = ops::gemv(&self.w_ih.value, x);
        ops::axpy(1.0, &self.b_ih.value, &mut ax);
        let mut ah = ops::gemv(&self.w_hh.value, h_prev);
        ops::axpy(1.0, &self.b_hh.value, &mut ah);

        let seg =
            |t: &Tensor, k: usize| Tensor::from_vec(t.data()[k * h..(k + 1) * h].to_vec(), &[h]);
        let r = ops::add(&seg(&ax, 0), &seg(&ah, 0)).map(|v| Activation::Sigmoid.apply_scalar(v));
        let z = ops::add(&seg(&ax, 1), &seg(&ah, 1)).map(|v| Activation::Sigmoid.apply_scalar(v));
        let hn = seg(&ah, 2);
        let n = ops::add(&seg(&ax, 2), &ops::hadamard(&r, &hn)).map(|v| v.tanh());

        // h = (1 − z) ⊙ n + z ⊙ h_prev
        let ones = Tensor::full(&[h], 1.0);
        let h_new = ops::add(
            &ops::hadamard(&ops::sub(&ones, &z), &n),
            &ops::hadamard(&z, h_prev),
        );

        let cache = GruStepCache {
            x: x.clone(),
            h_prev: h_prev.clone(),
            r,
            z,
            n,
            hn,
        };
        (h_new, cache)
    }

    /// One BPTT step; returns `(dx, dh_prev)` and accumulates parameter
    /// gradients.
    pub fn backward_step(&mut self, cache: &GruStepCache, dh: &Tensor) -> (Tensor, Tensor) {
        let h = self.hidden;

        // h = (1−z)·n + z·h_prev
        let dn = ops::hadamard(dh, &cache.z.map(|z| 1.0 - z));
        let dz = ops::hadamard(dh, &ops::sub(&cache.h_prev, &cache.n));
        let mut dh_prev = ops::hadamard(dh, &cache.z);

        let da_n = ops::hadamard(&dn, &cache.n.map(|n| 1.0 - n * n));
        let da_z = ops::hadamard(&dz, &cache.z.map(|s| s * (1.0 - s)));

        // n = tanh(a_nx + r ⊙ hn)
        let dr = ops::hadamard(&da_n, &cache.hn);
        let da_r = ops::hadamard(&dr, &cache.r.map(|s| s * (1.0 - s)));
        let d_hn = ops::hadamard(&da_n, &cache.r);

        // Assemble gate pre-activation gradients. Input side gets (r,z,n);
        // hidden side gets (r,z,hn-part).
        let mut da_x = Tensor::zeros(&[GRU_GATES * h]);
        da_x.data_mut()[0..h].copy_from_slice(da_r.data());
        da_x.data_mut()[h..2 * h].copy_from_slice(da_z.data());
        da_x.data_mut()[2 * h..3 * h].copy_from_slice(da_n.data());

        let mut da_h = Tensor::zeros(&[GRU_GATES * h]);
        da_h.data_mut()[0..h].copy_from_slice(da_r.data());
        da_h.data_mut()[h..2 * h].copy_from_slice(da_z.data());
        da_h.data_mut()[2 * h..3 * h].copy_from_slice(d_hn.data());

        crate::lstm::outer_accumulate(&mut self.w_ih.grad, &da_x, &cache.x);
        crate::lstm::outer_accumulate(&mut self.w_hh.grad, &da_h, &cache.h_prev);
        ops::axpy(1.0, &da_x, &mut self.b_ih.grad);
        ops::axpy(1.0, &da_h, &mut self.b_hh.grad);

        let dx = ops::gemv(&self.w_ih.value.transposed(), &da_x);
        let dh_from_gates = ops::gemv(&self.w_hh.value.transposed(), &da_h);
        ops::axpy(1.0, &dh_from_gates, &mut dh_prev);
        (dx, dh_prev)
    }

    /// Runs a full sequence from a zero state.
    pub fn forward_sequence(&self, xs: &[Tensor]) -> (Vec<Tensor>, Vec<GruStepCache>) {
        let mut h = Tensor::zeros(&[self.hidden]);
        let mut hs = Vec::with_capacity(xs.len());
        let mut caches = Vec::with_capacity(xs.len());
        for x in xs {
            let (h_new, cache) = self.step(x, &h);
            h = h_new.clone();
            hs.push(h_new);
            caches.push(cache);
        }
        (hs, caches)
    }

    /// Full BPTT given per-step gradients on the hidden states; returns
    /// per-step input gradients.
    ///
    /// # Panics
    ///
    /// Panics if `dhs.len() != caches.len()`.
    pub fn backward_sequence(&mut self, caches: &[GruStepCache], dhs: &[Tensor]) -> Vec<Tensor> {
        assert_eq!(caches.len(), dhs.len(), "one dh per step required");
        let mut dh_next = Tensor::zeros(&[self.hidden]);
        let mut dxs = vec![Tensor::zeros(&[self.input]); caches.len()];
        for t in (0..caches.len()).rev() {
            let mut dh = dhs[t].clone();
            ops::axpy(1.0, &dh_next, &mut dh);
            let (dx, dh_prev) = self.backward_step(&caches[t], &dh);
            dxs[t] = dx;
            dh_next = dh_prev;
        }
        dxs
    }

    /// Visits trainable parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w_ih);
        f(&mut self.w_hh);
        f(&mut self.b_ih);
        f(&mut self.b_hh);
    }

    /// Zeroes parameter gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::{self, seeded};

    #[test]
    fn step_shapes_and_bounds() {
        let mut r = seeded(1);
        let cell = GruCell::new(5, 4, &mut r);
        let x = rng::normal(&mut r, &[5], 0.0, 1.0);
        let (h, _) = cell.step(&x, &Tensor::zeros(&[4]));
        assert_eq!(h.len(), 4);
        // h is a convex mix of tanh output and previous state → within [-1,1]
        assert!(h.max_abs() <= 1.0);
    }

    #[test]
    fn zero_update_gate_keeps_candidate() {
        // With z ≈ 0 (large negative z bias), h ≈ n.
        let mut r = seeded(2);
        let mut cell = GruCell::new(2, 3, &mut r);
        for v in &mut cell.b_ih.value.data_mut()[3..6] {
            *v = -50.0;
        }
        let x = rng::normal(&mut r, &[2], 0.0, 1.0);
        let h_prev = rng::normal(&mut r, &[3], 0.0, 1.0);
        let (h, cache) = cell.step(&x, &h_prev);
        for (a, b) in h.data().iter().zip(cache.n.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn full_update_gate_keeps_state() {
        // With z ≈ 1 (large positive z bias), h ≈ h_prev.
        let mut r = seeded(3);
        let mut cell = GruCell::new(2, 3, &mut r);
        for v in &mut cell.b_ih.value.data_mut()[3..6] {
            *v = 50.0;
        }
        let x = rng::normal(&mut r, &[2], 0.0, 1.0);
        let h_prev = rng::normal(&mut r, &[3], 0.0, 0.5);
        let (h, _) = cell.step(&x, &h_prev);
        for (a, b) in h.data().iter().zip(h_prev.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    /// BPTT gradient check: loss = 0.5·Σ_t ||h_t||².
    #[test]
    fn bptt_gradient_check() {
        let mut r = seeded(4);
        let mut cell = GruCell::new(3, 2, &mut r);
        let xs: Vec<Tensor> = (0..3)
            .map(|_| rng::normal(&mut r, &[3], 0.0, 1.0))
            .collect();

        let loss = |cell: &GruCell, xs: &[Tensor]| -> f32 {
            let (hs, _) = cell.forward_sequence(xs);
            hs.iter().map(|h| 0.5 * h.norm_sq()).sum()
        };

        let (hs, caches) = cell.forward_sequence(&xs);
        let dhs: Vec<Tensor> = hs.clone();
        cell.zero_grads();
        let dxs = cell.backward_sequence(&caches, &dhs);

        let eps = 1e-3f32;
        for idx in [0usize, 5, 11] {
            let mut cp = cell.clone();
            cp.w_ih.value.data_mut()[idx] += eps;
            let fp = loss(&cp, &xs);
            let mut cm = cell.clone();
            cm.w_ih.value.data_mut()[idx] -= eps;
            let fm = loss(&cm, &xs);
            let fd = (fp - fm) / (2.0 * eps);
            let an = cell.w_ih.grad.data()[idx];
            assert!((fd - an).abs() < 2e-2, "w_ih[{idx}]: fd {fd} vs {an}");
        }
        for idx in [0usize, 3, 7] {
            let mut cp = cell.clone();
            cp.w_hh.value.data_mut()[idx] += eps;
            let fp = loss(&cp, &xs);
            let mut cm = cell.clone();
            cm.w_hh.value.data_mut()[idx] -= eps;
            let fm = loss(&cm, &xs);
            let fd = (fp - fm) / (2.0 * eps);
            let an = cell.w_hh.grad.data()[idx];
            assert!((fd - an).abs() < 2e-2, "w_hh[{idx}]: fd {fd} vs {an}");
        }
        for idx in 0..3 {
            let mut xp = xs.clone();
            xp[0].data_mut()[idx] += eps;
            let fp = loss(&cell, &xp);
            let mut xm = xs.clone();
            xm[0].data_mut()[idx] -= eps;
            let fm = loss(&cell, &xm);
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - dxs[0].data()[idx]).abs() < 2e-2);
        }
    }
}
