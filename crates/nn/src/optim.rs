//! Optimizers: SGD, SGD-with-momentum, Adam.

use crate::layer::Param;

/// Gradient-descent optimizers. One `Optimizer` value is shared across all
/// parameters of a model; per-parameter state lives in [`Param`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with classical momentum.
    Momentum {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (e.g. 0.9).
        momentum: f32,
    },
    /// Adam (Kingma & Ba).
    Adam {
        /// Learning rate.
        lr: f32,
        /// Exponential decay for the first moment.
        beta1: f32,
        /// Exponential decay for the second moment.
        beta2: f32,
        /// Numerical stabilizer.
        eps: f32,
        /// Step counter (starts at 0, incremented by [`Optimizer::tick`]).
        t: u64,
    },
}

impl Optimizer {
    /// Standard Adam with the usual defaults.
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Plain SGD.
    pub fn sgd(lr: f32) -> Self {
        Optimizer::Sgd { lr }
    }

    /// SGD with momentum 0.9.
    pub fn momentum(lr: f32) -> Self {
        Optimizer::Momentum { lr, momentum: 0.9 }
    }

    /// Advances the shared step counter. Call once per optimization step,
    /// **before** updating parameters (Adam bias correction needs `t ≥ 1`).
    pub fn tick(&mut self) {
        if let Optimizer::Adam { t, .. } = self {
            *t += 1;
        }
    }

    /// Applies one update to a parameter from its accumulated gradient.
    /// Does not zero the gradient.
    pub fn step(&self, p: &mut Param) {
        match *self {
            Optimizer::Sgd { lr } => {
                for (v, g) in p.value.data_mut().iter_mut().zip(p.grad.data()) {
                    *v -= lr * g;
                }
            }
            Optimizer::Momentum { lr, momentum } => {
                for ((v, m), g) in p
                    .value
                    .data_mut()
                    .iter_mut()
                    .zip(p.moment1.data_mut())
                    .zip(p.grad.data())
                {
                    *m = momentum * *m + g;
                    *v -= lr * *m;
                }
            }
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
                t,
            } => {
                assert!(t >= 1, "call tick() before step() when using Adam");
                let bc1 = 1.0 - beta1.powi(t as i32);
                let bc2 = 1.0 - beta2.powi(t as i32);
                for (((v, m), s), g) in p
                    .value
                    .data_mut()
                    .iter_mut()
                    .zip(p.moment1.data_mut())
                    .zip(p.moment2.data_mut())
                    .zip(p.grad.data())
                {
                    *m = beta1 * *m + (1.0 - beta1) * g;
                    *s = beta2 * *s + (1.0 - beta2) * g * g;
                    let m_hat = *m / bc1;
                    let s_hat = *s / bc2;
                    *v -= lr * m_hat / (s_hat.sqrt() + eps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::Tensor;

    /// Minimize f(x) = (x - 3)² from x = 0 with each optimizer.
    fn minimize(opt: &mut Optimizer, steps: usize) -> f32 {
        let mut p = Param::new(Tensor::zeros(&[1]));
        for _ in 0..steps {
            let x = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (x - 3.0);
            opt.tick();
            opt.step(&mut p);
            p.zero_grad();
        }
        p.value.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimize(&mut Optimizer::sgd(0.1), 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let x = minimize(&mut Optimizer::momentum(0.02), 200);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = minimize(&mut Optimizer::adam(0.1), 400);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    #[should_panic(expected = "tick()")]
    fn adam_requires_tick() {
        let opt = Optimizer::adam(0.1);
        let mut p = Param::new(Tensor::zeros(&[1]));
        opt.step(&mut p);
    }

    #[test]
    fn sgd_step_is_linear_in_lr() {
        let mut p1 = Param::new(Tensor::zeros(&[1]));
        p1.grad.data_mut()[0] = 1.0;
        Optimizer::sgd(0.5).step(&mut p1);
        assert!((p1.value.data()[0] + 0.5).abs() < 1e-7);
    }
}
