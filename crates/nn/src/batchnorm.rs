//! Batch normalization (inference form) and conv-BN folding.
//!
//! ResNet-class accurate modules are conv+BN pairs; at inference the BN
//! affine folds into the convolution weights, which is how the
//! dual-module distillation sees them (one linear teacher per layer).

use crate::conv::Conv2d;
use duet_tensor::Tensor;

/// Per-channel batch-norm parameters in inference form.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BatchNorm2d {
    /// Learned scale γ, one per channel.
    pub gamma: Tensor,
    /// Learned shift β, one per channel.
    pub beta: Tensor,
    /// Running mean μ, one per channel.
    pub running_mean: Tensor,
    /// Running variance σ², one per channel.
    pub running_var: Tensor,
    /// Numerical stabilizer ε.
    pub eps: f32,
}

impl BatchNorm2d {
    /// Identity normalization for `channels` channels.
    pub fn identity(channels: usize) -> Self {
        Self {
            gamma: Tensor::full(&[channels], 1.0),
            beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::full(&[channels], 1.0),
            eps: 1e-5,
        }
    }

    /// Creates from explicit statistics.
    ///
    /// # Panics
    ///
    /// Panics if the tensors' lengths disagree or any variance is
    /// negative.
    pub fn from_stats(gamma: Tensor, beta: Tensor, mean: Tensor, var: Tensor) -> Self {
        let c = gamma.len();
        assert_eq!(beta.len(), c, "beta length mismatch");
        assert_eq!(mean.len(), c, "mean length mismatch");
        assert_eq!(var.len(), c, "var length mismatch");
        assert!(
            var.data().iter().all(|&v| v >= 0.0),
            "variance must be non-negative"
        );
        Self {
            gamma,
            beta,
            running_mean: mean,
            running_var: var,
            eps: 1e-5,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// Applies inference-mode normalization to a `[B, C, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the channel dimension disagrees.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().rank(), 4, "BatchNorm2d expects [B, C, H, W]");
        let (b, c, h, w) = (
            x.shape().dim(0),
            x.shape().dim(1),
            x.shape().dim(2),
            x.shape().dim(3),
        );
        assert_eq!(c, self.channels(), "channel mismatch");
        let mut out = x.clone();
        let plane = h * w;
        for bi in 0..b {
            for ci in 0..c {
                let scale = self.gamma.data()[ci] / (self.running_var.data()[ci] + self.eps).sqrt();
                let shift = self.beta.data()[ci] - self.running_mean.data()[ci] * scale;
                let base = (bi * c + ci) * plane;
                for v in &mut out.data_mut()[base..base + plane] {
                    *v = *v * scale + shift;
                }
            }
        }
        out
    }

    /// Folds this BN into a convolution, returning a new conv whose
    /// output equals `bn(conv(x))`. This produces the single linear
    /// "accurate module" the dual-module distillation consumes.
    ///
    /// # Panics
    ///
    /// Panics if channel counts disagree.
    pub fn fold_into(&self, conv: &Conv2d) -> Conv2d {
        assert_eq!(
            conv.out_channels(),
            self.channels(),
            "conv output channels must match BN channels"
        );
        let k = conv.out_channels();
        let patch = conv.geometry().patch_len();
        let mut w = conv.weight_matrix().clone();
        let mut b = conv.bias().clone();
        for ci in 0..k {
            let scale = self.gamma.data()[ci] / (self.running_var.data()[ci] + self.eps).sqrt();
            for v in &mut w.data_mut()[ci * patch..(ci + 1) * patch] {
                *v *= scale;
            }
            b.data_mut()[ci] =
                (b.data()[ci] - self.running_mean.data()[ci]) * scale + self.beta.data()[ci];
        }
        let g = *conv.geometry();
        let filters = w.reshaped(&[k, g.in_channels, g.kernel_h, g.kernel_w]);
        Conv2d::from_parts(g, filters, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use duet_tensor::im2col::ConvGeometry;
    use duet_tensor::rng::{self, seeded};

    fn geom() -> ConvGeometry {
        ConvGeometry {
            in_channels: 2,
            in_h: 6,
            in_w: 6,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        }
    }

    #[test]
    fn identity_bn_is_noop() {
        let mut r = seeded(1);
        let bn = BatchNorm2d::identity(3);
        let x = rng::normal(&mut r, &[2, 3, 4, 4], 0.0, 1.0);
        let y = bn.forward(&x);
        // ε in the denominator perturbs the scale by ~5e-6
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn normalizes_to_unit_stats() {
        let mut r = seeded(2);
        // a channel with mean 5, var 4 normalized by matching stats
        let x = rng::normal(&mut r, &[1, 1, 32, 32], 5.0, 2.0);
        let bn = BatchNorm2d::from_stats(
            Tensor::full(&[1], 1.0),
            Tensor::zeros(&[1]),
            Tensor::full(&[1], 5.0),
            Tensor::full(&[1], 4.0),
        );
        let y = bn.forward(&x);
        let mean = y.mean();
        let var = y
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / y.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn folding_matches_sequential_application() {
        let mut r = seeded(3);
        let mut conv = Conv2d::new(geom(), 4, &mut r);
        let bn = BatchNorm2d::from_stats(
            rng::uniform(&mut r, &[4], 0.5, 1.5),
            rng::normal(&mut r, &[4], 0.0, 0.3),
            rng::normal(&mut r, &[4], 0.0, 0.2),
            rng::uniform(&mut r, &[4], 0.5, 2.0),
        );
        let x = rng::normal(&mut r, &[2, 2, 6, 6], 0.0, 1.0);

        let reference = bn.forward(&conv.forward(&x));
        let mut folded = bn.fold_into(&conv);
        let direct = folded.forward(&x);
        for (a, b) in reference.data().iter().zip(direct.data()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_variance_rejected() {
        BatchNorm2d::from_stats(
            Tensor::full(&[1], 1.0),
            Tensor::zeros(&[1]),
            Tensor::zeros(&[1]),
            Tensor::full(&[1], -1.0),
        );
    }
}
