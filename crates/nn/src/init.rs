//! Weight initialization schemes.

use duet_tensor::rng::Rng;
use duet_tensor::{rng, Tensor};

/// Xavier/Glorot uniform initialization for a `[fan_out, fan_in]` weight
/// matrix: U(−a, a) with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(r: &mut Rng, fan_out: usize, fan_in: usize) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    rng::uniform(r, &[fan_out, fan_in], -a, a)
}

/// He/Kaiming normal initialization for ReLU networks:
/// N(0, sqrt(2 / fan_in)).
pub fn he_normal(r: &mut Rng, dims: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    rng::normal(r, dims, 0.0, (2.0 / fan_in as f32).sqrt())
}

/// Uniform initialization in `[-1/sqrt(fan_in), 1/sqrt(fan_in)]`, the
/// classic recurrent-weight default.
pub fn lecun_uniform(r: &mut Rng, dims: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let a = 1.0 / (fan_in as f32).sqrt();
    rng::uniform(r, dims, -a, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::seeded;

    #[test]
    fn xavier_bounds() {
        let w = xavier_uniform(&mut seeded(0), 64, 36);
        let a = (6.0f32 / 100.0).sqrt();
        assert!(w.max_abs() <= a);
        assert_eq!(w.shape().dims(), &[64, 36]);
    }

    #[test]
    fn he_std_close() {
        let w = he_normal(&mut seeded(1), &[100, 100], 100);
        let std = (w.norm_sq() / w.len() as f32).sqrt();
        let target = (2.0f32 / 100.0).sqrt();
        assert!((std - target).abs() < 0.02, "std {std} target {target}");
    }

    #[test]
    fn lecun_bounds() {
        let w = lecun_uniform(&mut seeded(2), &[16, 25], 25);
        assert!(w.max_abs() <= 0.2);
    }
}
