//! Scaled dot-product attention with backprop.
//!
//! The GNMT-class models the paper evaluates on machine translation
//! attend over encoder states from each decoder step. This is the
//! minimal single-head form: `ctx = Σ_t softmax(q·k_t / √h) v_t`.
//!
//! Both passes are instrumented like `tensor::ops`: a call counter, a
//! MAC-convention FLOP counter (`2·T·h` per matrix-vector-like stage),
//! and a `nn.attention.*` span. When telemetry is off each instrument
//! costs one relaxed atomic load.
//!
//! Degenerate shapes are well-defined rather than panics or NaNs:
//! `T = 0` (no keys) yields a zero context and an empty weight vector,
//! and `h = 0` (zero-width heads) yields uniform weights — both with
//! finite gradients — matching the zero-sized-dim guarantees of
//! `tensor::ops`.

use duet_tensor::{ops, Tensor};

/// Softmax scale `1/√h`, with the zero-width head pinned to 0 so the
/// scores stay finite (`inf · 0` would be NaN) — any finite value works
/// because every dot product over zero lanes is 0.
fn attend_scale(h: usize) -> f32 {
    if h == 0 {
        0.0
    } else {
        1.0 / (h as f32).sqrt()
    }
}

/// Cache from an attention forward pass, needed for backprop.
#[derive(Debug, Clone)]
pub struct AttentionCache {
    query: Tensor,
    keys: Tensor,    // [T, h]
    values: Tensor,  // [T, h]
    weights: Tensor, // softmax weights [T]
}

impl AttentionCache {
    /// The attention weights (useful for inspection/visualization).
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }
}

/// Forward pass: returns `(context [h], cache)`.
///
/// With zero keys (`T = 0`) the context is the zero vector and the
/// weight vector is empty; with zero-width heads (`h = 0`) the weights
/// are the uniform distribution. Neither produces NaNs.
///
/// # Panics
///
/// Panics if `keys`/`values` are not `[T, h]` matching the query length.
pub fn attend(query: &Tensor, keys: &Tensor, values: &Tensor) -> (Tensor, AttentionCache) {
    assert_eq!(keys.shape().rank(), 2, "keys must be [T, h]");
    assert_eq!(values.shape().rank(), 2, "values must be [T, h]");
    let (t, h) = (keys.shape().dim(0), keys.shape().dim(1));
    assert_eq!(values.shape().dims(), &[t, h], "keys/values shape mismatch");
    assert_eq!(query.len(), h, "query length mismatch");

    duet_obs::counter!("nn.attention.calls").inc();
    // scores (2Th) + context (2Th), MAC convention as in tensor::ops;
    // softmax is ~4 ops per key.
    duet_obs::counter!("nn.attention.flops").add((4 * t * h + 4 * t) as u64);
    let _call = duet_obs::span("nn.attention.attend");

    let scale = attend_scale(h);
    // scores
    let mut scores = Tensor::zeros(&[t]);
    for ti in 0..t {
        let k = &keys.data()[ti * h..(ti + 1) * h];
        let mut s = 0.0f32;
        for (qv, kv) in query.data().iter().zip(k) {
            s += qv * kv;
        }
        scores.data_mut()[ti] = s * scale;
    }
    // softmax
    let max = scores
        .data()
        .iter()
        .cloned()
        .fold(f32::NEG_INFINITY, f32::max);
    let mut weights = scores.map(|s| (s - max).exp());
    let sum = weights.sum();
    weights.map_inplace(|w| w / sum);
    // context
    let mut ctx = Tensor::zeros(&[h]);
    for ti in 0..t {
        let a = weights.data()[ti];
        let v = &values.data()[ti * h..(ti + 1) * h];
        for (c, &vv) in ctx.data_mut().iter_mut().zip(v) {
            *c += a * vv;
        }
    }
    let cache = AttentionCache {
        query: query.clone(),
        keys: keys.clone(),
        values: values.clone(),
        weights,
    };
    (ctx, cache)
}

/// Gradients from an attention backward pass.
#[derive(Debug, Clone)]
pub struct AttentionGrads {
    /// Gradient w.r.t. the query `[h]`.
    pub d_query: Tensor,
    /// Gradient w.r.t. the keys `[T, h]`.
    pub d_keys: Tensor,
    /// Gradient w.r.t. the values `[T, h]`.
    pub d_values: Tensor,
}

/// Backward pass given the gradient w.r.t. the context vector.
///
/// Degenerate caches (`T = 0` or `h = 0`) yield all-zero gradients of
/// the matching shapes.
///
/// # Panics
///
/// Panics if `d_ctx` length mismatches the cache.
pub fn attend_backward(cache: &AttentionCache, d_ctx: &Tensor) -> AttentionGrads {
    let (t, h) = (cache.keys.shape().dim(0), cache.keys.shape().dim(1));
    assert_eq!(d_ctx.len(), h, "context gradient length mismatch");

    duet_obs::counter!("nn.attention.backward_calls").inc();
    // d_values/d_weights (4Th) + d_query/d_keys (4Th) + jacobian (~4T).
    duet_obs::counter!("nn.attention.backward_flops").add((8 * t * h + 4 * t) as u64);
    let _call = duet_obs::span("nn.attention.attend_backward");

    let scale = attend_scale(h);

    // dv_t = a_t · dctx ; da_t = dctx · v_t
    let mut d_values = Tensor::zeros(&[t, h]);
    let mut d_weights = Tensor::zeros(&[t]);
    for ti in 0..t {
        let a = cache.weights.data()[ti];
        let v = &cache.values.data()[ti * h..(ti + 1) * h];
        let dv = &mut d_values.data_mut()[ti * h..(ti + 1) * h];
        let mut da = 0.0f32;
        for ((d, &g), &vv) in dv.iter_mut().zip(d_ctx.data()).zip(v) {
            *d = a * g;
            da += g * vv;
        }
        d_weights.data_mut()[ti] = da;
    }

    // softmax jacobian: ds_t = a_t (da_t − Σ_j a_j da_j)
    let dot: f32 = cache
        .weights
        .data()
        .iter()
        .zip(d_weights.data())
        .map(|(&a, &da)| a * da)
        .sum();
    let d_scores = Tensor::from_vec(
        cache
            .weights
            .data()
            .iter()
            .zip(d_weights.data())
            .map(|(&a, &da)| a * (da - dot))
            .collect(),
        &[t],
    );

    // dq = Σ ds_t k_t · scale ; dk_t = ds_t q · scale
    let mut d_query = Tensor::zeros(&[h]);
    let mut d_keys = Tensor::zeros(&[t, h]);
    for ti in 0..t {
        let ds = d_scores.data()[ti] * scale;
        let k = &cache.keys.data()[ti * h..(ti + 1) * h];
        for (dq, &kv) in d_query.data_mut().iter_mut().zip(k) {
            *dq += ds * kv;
        }
        let dk = &mut d_keys.data_mut()[ti * h..(ti + 1) * h];
        for (d, &qv) in dk.iter_mut().zip(cache.query.data()) {
            *d += ds * qv;
        }
    }

    AttentionGrads {
        d_query,
        d_keys,
        d_values,
    }
}

/// Convenience: attention where keys and values are the same tensor
/// (encoder states), merging their gradients.
pub fn attend_backward_self(cache: &AttentionCache, d_ctx: &Tensor) -> (Tensor, Tensor) {
    let g = attend_backward(cache, d_ctx);
    (g.d_query, ops::add(&g.d_keys, &g.d_values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::{self, seeded};

    #[test]
    fn weights_form_distribution() {
        let mut r = seeded(1);
        let q = rng::normal(&mut r, &[8], 0.0, 1.0);
        let keys = rng::normal(&mut r, &[5, 8], 0.0, 1.0);
        let vals = rng::normal(&mut r, &[5, 8], 0.0, 1.0);
        let (_, cache) = attend(&q, &keys, &vals);
        let s: f32 = cache.weights().data().iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(cache.weights().data().iter().all(|&w| w > 0.0));
    }

    #[test]
    fn attends_to_matching_key() {
        // a query aligned with one key should put most mass there
        let h = 8;
        let mut keys = Tensor::zeros(&[3, h]);
        keys.data_mut()[0] = 10.0; // key 0 ~ e0
        keys.data_mut()[h + 1] = 10.0; // key 1 ~ e1
        keys.data_mut()[2 * h + 2] = 10.0; // key 2 ~ e2
        let mut q = Tensor::zeros(&[h]);
        q.data_mut()[1] = 10.0; // aligned with key 1
        let vals = Tensor::from_fn(&[3, h], |i| (i / h) as f32); // value t = t everywhere
        let (ctx, cache) = attend(&q, &keys, &vals);
        assert!(cache.weights().data()[1] > 0.95);
        assert!((ctx.data()[0] - 1.0).abs() < 0.1); // ≈ value of key 1
    }

    #[test]
    fn gradient_check_query_keys_values() {
        let mut r = seeded(2);
        let q = rng::normal(&mut r, &[6], 0.0, 1.0);
        let keys = rng::normal(&mut r, &[4, 6], 0.0, 1.0);
        let vals = rng::normal(&mut r, &[4, 6], 0.0, 1.0);

        // loss = 0.5 ‖ctx‖²
        let (ctx, cache) = attend(&q, &keys, &vals);
        let grads = attend_backward(&cache, &ctx);

        let loss = |q: &Tensor, k: &Tensor, v: &Tensor| -> f32 {
            let (c, _) = attend(q, k, v);
            0.5 * c.norm_sq()
        };
        let eps = 1e-3f32;

        for idx in 0..6 {
            let mut qp = q.clone();
            qp.data_mut()[idx] += eps;
            let mut qm = q.clone();
            qm.data_mut()[idx] -= eps;
            let fd = (loss(&qp, &keys, &vals) - loss(&qm, &keys, &vals)) / (2.0 * eps);
            assert!(
                (fd - grads.d_query.data()[idx]).abs() < 1e-2,
                "dq[{idx}]: {fd} vs {}",
                grads.d_query.data()[idx]
            );
        }
        for idx in [0usize, 7, 15, 23] {
            let mut kp = keys.clone();
            kp.data_mut()[idx] += eps;
            let mut km = keys.clone();
            km.data_mut()[idx] -= eps;
            let fd = (loss(&q, &kp, &vals) - loss(&q, &km, &vals)) / (2.0 * eps);
            assert!(
                (fd - grads.d_keys.data()[idx]).abs() < 1e-2,
                "dk[{idx}]: {fd} vs {}",
                grads.d_keys.data()[idx]
            );

            let mut vp = vals.clone();
            vp.data_mut()[idx] += eps;
            let mut vm = vals.clone();
            vm.data_mut()[idx] -= eps;
            let fd = (loss(&q, &keys, &vp) - loss(&q, &keys, &vm)) / (2.0 * eps);
            assert!(
                (fd - grads.d_values.data()[idx]).abs() < 1e-2,
                "dv[{idx}]: {fd} vs {}",
                grads.d_values.data()[idx]
            );
        }
    }

    #[test]
    fn zero_length_sequence_yields_zero_context() {
        // T = 0: nothing to attend over — context is the zero vector,
        // the weight vector is empty, and gradients are all-zero with
        // the right shapes. No NaNs anywhere.
        let mut r = seeded(4);
        let q = rng::normal(&mut r, &[6], 0.0, 1.0);
        let keys = Tensor::zeros(&[0, 6]);
        let vals = Tensor::zeros(&[0, 6]);
        let (ctx, cache) = attend(&q, &keys, &vals);
        assert_eq!(ctx.shape().dims(), &[6]);
        assert!(ctx.data().iter().all(|&c| c == 0.0));
        assert_eq!(cache.weights().len(), 0);

        let d_ctx = rng::normal(&mut r, &[6], 0.0, 1.0);
        let grads = attend_backward(&cache, &d_ctx);
        assert_eq!(grads.d_query.shape().dims(), &[6]);
        assert!(grads.d_query.data().iter().all(|&g| g == 0.0));
        assert_eq!(grads.d_keys.shape().dims(), &[0, 6]);
        assert_eq!(grads.d_values.shape().dims(), &[0, 6]);

        let (dq, denc) = attend_backward_self(&cache, &d_ctx);
        assert!(dq.data().iter().all(|&g| g == 0.0));
        assert_eq!(denc.shape().dims(), &[0, 6]);
    }

    #[test]
    fn zero_width_heads_are_nan_free() {
        // h = 0: every score is an empty dot product. The naive
        // 1/√0 = ∞ scale would turn 0·∞ into NaN scores; the pinned
        // scale keeps them at 0, so the weights are uniform.
        let q = Tensor::zeros(&[0]);
        let keys = Tensor::zeros(&[3, 0]);
        let vals = Tensor::zeros(&[3, 0]);
        let (ctx, cache) = attend(&q, &keys, &vals);
        assert_eq!(ctx.len(), 0);
        for &w in cache.weights().data() {
            assert!(w.is_finite(), "weight is not finite: {w}");
            assert!((w - 1.0 / 3.0).abs() < 1e-6, "not uniform: {w}");
        }
        let grads = attend_backward(&cache, &Tensor::zeros(&[0]));
        assert_eq!(grads.d_query.len(), 0);
        assert_eq!(grads.d_keys.shape().dims(), &[3, 0]);
        assert_eq!(grads.d_values.shape().dims(), &[3, 0]);
    }

    #[test]
    fn telemetry_counters_are_inert_when_disabled() {
        // The instrumented hot path must cost nothing when telemetry is
        // off: counters stay at zero and no span samples are recorded.
        let mut r = seeded(5);
        let q = rng::normal(&mut r, &[4], 0.0, 1.0);
        let keys = rng::normal(&mut r, &[3, 4], 0.0, 1.0);
        let vals = rng::normal(&mut r, &[3, 4], 0.0, 1.0);

        duet_obs::set_metrics_enabled(false);
        duet_obs::set_trace_enabled(false);
        let (ctx, cache) = attend(&q, &keys, &vals);
        attend_backward(&cache, &ctx);
        assert_eq!(duet_obs::registry::counter("nn.attention.calls").get(), 0);
        assert_eq!(
            duet_obs::registry::counter("nn.attention.backward_calls").get(),
            0
        );
        assert_eq!(
            duet_obs::registry::histogram("nn.attention.attend").count(),
            0
        );

        // ... and must actually count when telemetry is on. Deltas are
        // lower bounds: sibling tests may run attend concurrently while
        // the registry is enabled.
        let calls0 = duet_obs::registry::counter("nn.attention.calls").get();
        let flops0 = duet_obs::registry::counter("nn.attention.flops").get();
        let bflops0 = duet_obs::registry::counter("nn.attention.backward_flops").get();
        duet_obs::set_metrics_enabled(true);
        let (ctx, cache) = attend(&q, &keys, &vals);
        attend_backward(&cache, &ctx);
        duet_obs::set_metrics_enabled(false);
        assert!(duet_obs::registry::counter("nn.attention.calls").get() > calls0);
        assert!(
            duet_obs::registry::counter("nn.attention.flops").get()
                >= flops0 + (4 * 3 * 4 + 4 * 3) as u64
        );
        assert!(
            duet_obs::registry::counter("nn.attention.backward_flops").get()
                >= bflops0 + (8 * 3 * 4 + 4 * 3) as u64
        );
    }

    #[test]
    fn self_attention_merges_grads() {
        let mut r = seeded(3);
        let q = rng::normal(&mut r, &[6], 0.0, 1.0);
        let enc = rng::normal(&mut r, &[3, 6], 0.0, 1.0);
        let (ctx, cache) = attend(&q, &enc, &enc);
        let (dq, denc) = attend_backward_self(&cache, &ctx);
        let full = attend_backward(&cache, &ctx);
        assert_eq!(dq, full.d_query);
        let manual = ops::add(&full.d_keys, &full.d_values);
        assert_eq!(denc, manual);
    }
}
