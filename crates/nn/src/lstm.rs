//! LSTM cell with backpropagation-through-time.
//!
//! §II-B: "LSTM layer consists of an input-to-hidden matrix and a
//! hidden-to-hidden matrix and takes current step embedding vector and
//! previous step hidden vector as inputs." Gate ordering throughout the
//! workspace is **i, f, g, o** (input, forget, update/candidate, output),
//! matching the paper's §IV-B dataflow description.

use crate::activation::Activation;
use crate::layer::Param;
use duet_tensor::rng::Rng;
use duet_tensor::{ops, Tensor};

/// Number of LSTM gates.
pub const LSTM_GATES: usize = 4;

/// Hidden/cell state pair.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden state `h` of length `hidden`.
    pub h: Tensor,
    /// Cell state `c` of length `hidden`.
    pub c: Tensor,
}

impl LstmState {
    /// All-zero state for a given hidden size.
    pub fn zeros(hidden: usize) -> Self {
        Self {
            h: Tensor::zeros(&[hidden]),
            c: Tensor::zeros(&[hidden]),
        }
    }
}

/// Per-step cache for BPTT.
#[derive(Debug, Clone)]
pub struct LstmStepCache {
    x: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    i: Tensor,
    f: Tensor,
    g: Tensor,
    o: Tensor,
    c: Tensor,
}

/// An LSTM cell: `W_ih ∈ R^{4h×d}`, `W_hh ∈ R^{4h×h}`, bias `∈ R^{4h}`.
#[derive(Debug, Clone)]
pub struct LstmCell {
    /// Input-to-hidden weights.
    pub w_ih: Param,
    /// Hidden-to-hidden weights.
    pub w_hh: Param,
    /// Gate bias.
    pub bias: Param,
    input: usize,
    hidden: usize,
}

impl LstmCell {
    /// Creates an LSTM cell with LeCun-uniform weights and the customary
    /// forget-gate bias of 1.
    pub fn new(input: usize, hidden: usize, r: &mut Rng) -> Self {
        let w_ih = crate::init::lecun_uniform(r, &[LSTM_GATES * hidden, input], input);
        let w_hh = crate::init::lecun_uniform(r, &[LSTM_GATES * hidden, hidden], hidden);
        let mut bias = Tensor::zeros(&[LSTM_GATES * hidden]);
        for v in &mut bias.data_mut()[hidden..2 * hidden] {
            *v = 1.0; // forget-gate bias
        }
        Self {
            w_ih: Param::new(w_ih),
            w_hh: Param::new(w_hh),
            bias: Param::new(bias),
            input,
            hidden,
        }
    }

    /// Input size `d`.
    pub fn input_size(&self) -> usize {
        self.input
    }

    /// Hidden size `h`.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Raw pre-activations for all four gates: `W_ih x + W_hh h + b`,
    /// length `4h`. This is what the DUET Speculator approximates gate by
    /// gate.
    pub fn gate_preactivations(&self, x: &Tensor, h_prev: &Tensor) -> Tensor {
        let mut a = ops::gemv(&self.w_ih.value, x);
        let ah = ops::gemv(&self.w_hh.value, h_prev);
        ops::axpy(1.0, &ah, &mut a);
        ops::axpy(1.0, &self.bias.value, &mut a);
        a
    }

    /// One forward step, returning the new state and a BPTT cache.
    ///
    /// # Panics
    ///
    /// Panics if `x` or the state have the wrong length.
    pub fn step(&self, x: &Tensor, state: &LstmState) -> (LstmState, LstmStepCache) {
        assert_eq!(x.len(), self.input, "input length mismatch");
        assert_eq!(state.h.len(), self.hidden, "state length mismatch");
        let a = self.gate_preactivations(x, &state.h);
        let h = self.hidden;
        let slice = |k: usize| Tensor::from_vec(a.data()[k * h..(k + 1) * h].to_vec(), &[h]);
        let i = slice(0).map(|v| Activation::Sigmoid.apply_scalar(v));
        let f = slice(1).map(|v| Activation::Sigmoid.apply_scalar(v));
        let g = slice(2).map(|v| v.tanh());
        let o = slice(3).map(|v| Activation::Sigmoid.apply_scalar(v));

        let c = ops::add(&ops::hadamard(&f, &state.c), &ops::hadamard(&i, &g));
        let h_new = ops::hadamard(&o, &c.map(|v| v.tanh()));

        let cache = LstmStepCache {
            x: x.clone(),
            h_prev: state.h.clone(),
            c_prev: state.c.clone(),
            i,
            f,
            g,
            o,
            c: c.clone(),
        };
        (LstmState { h: h_new, c }, cache)
    }

    /// One BPTT step. `dh`/`dc` are gradients flowing into this step's
    /// outputs; returns `(dx, dh_prev, dc_prev)` and accumulates parameter
    /// gradients.
    pub fn backward_step(
        &mut self,
        cache: &LstmStepCache,
        dh: &Tensor,
        dc_in: &Tensor,
    ) -> (Tensor, Tensor, Tensor) {
        let h = self.hidden;
        let tanh_c = cache.c.map(|v| v.tanh());

        // dc = dc_in + dh ⊙ o ⊙ (1 − tanh²(c))
        let mut dc = dc_in.clone();
        let dtanh = tanh_c.map(|t| 1.0 - t * t);
        let dh_o_dtanh = ops::hadamard(&ops::hadamard(dh, &cache.o), &dtanh);
        ops::axpy(1.0, &dh_o_dtanh, &mut dc);

        let d_o = ops::hadamard(dh, &tanh_c);
        let d_i = ops::hadamard(&dc, &cache.g);
        let d_f = ops::hadamard(&dc, &cache.c_prev);
        let d_g = ops::hadamard(&dc, &cache.i);
        let dc_prev = ops::hadamard(&dc, &cache.f);

        // pre-activation grads (sigmoid: s(1−s); tanh: 1−g²)
        let da_i = ops::hadamard(&d_i, &cache.i.map(|s| s * (1.0 - s)));
        let da_f = ops::hadamard(&d_f, &cache.f.map(|s| s * (1.0 - s)));
        let da_g = ops::hadamard(&d_g, &cache.g.map(|g| 1.0 - g * g));
        let da_o = ops::hadamard(&d_o, &cache.o.map(|s| s * (1.0 - s)));

        let mut da = Tensor::zeros(&[LSTM_GATES * h]);
        da.data_mut()[0..h].copy_from_slice(da_i.data());
        da.data_mut()[h..2 * h].copy_from_slice(da_f.data());
        da.data_mut()[2 * h..3 * h].copy_from_slice(da_g.data());
        da.data_mut()[3 * h..4 * h].copy_from_slice(da_o.data());

        // parameter grads: dW_ih += da ⊗ x, dW_hh += da ⊗ h_prev, db += da
        outer_accumulate(&mut self.w_ih.grad, &da, &cache.x);
        outer_accumulate(&mut self.w_hh.grad, &da, &cache.h_prev);
        ops::axpy(1.0, &da, &mut self.bias.grad);

        // dx = W_ihᵀ da, dh_prev = W_hhᵀ da
        let dx = ops::gemv(&self.w_ih.value.transposed(), &da);
        let dh_prev = ops::gemv(&self.w_hh.value.transposed(), &da);
        (dx, dh_prev, dc_prev)
    }

    /// Runs a full sequence from a zero state, returning hidden states per
    /// step and the caches for [`LstmCell::backward_sequence`].
    pub fn forward_sequence(&self, xs: &[Tensor]) -> (Vec<LstmState>, Vec<LstmStepCache>) {
        let mut state = LstmState::zeros(self.hidden);
        let mut states = Vec::with_capacity(xs.len());
        let mut caches = Vec::with_capacity(xs.len());
        for x in xs {
            let (next, cache) = self.step(x, &state);
            state = next.clone();
            states.push(next);
            caches.push(cache);
        }
        (states, caches)
    }

    /// Full BPTT through a sequence given per-step gradients on the hidden
    /// states ("we sum the loss of all time-steps in back-propagation",
    /// §II-B). Returns per-step input gradients.
    ///
    /// # Panics
    ///
    /// Panics if `dhs.len() != caches.len()`.
    pub fn backward_sequence(&mut self, caches: &[LstmStepCache], dhs: &[Tensor]) -> Vec<Tensor> {
        assert_eq!(caches.len(), dhs.len(), "one dh per step required");
        let h = self.hidden;
        let mut dh_next = Tensor::zeros(&[h]);
        let mut dc_next = Tensor::zeros(&[h]);
        let mut dxs = vec![Tensor::zeros(&[self.input]); caches.len()];
        for t in (0..caches.len()).rev() {
            let mut dh = dhs[t].clone();
            ops::axpy(1.0, &dh_next, &mut dh);
            let (dx, dh_prev, dc_prev) = self.backward_step(&caches[t], &dh, &dc_next);
            dxs[t] = dx;
            dh_next = dh_prev;
            dc_next = dc_prev;
        }
        dxs
    }

    /// Visits trainable parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w_ih);
        f(&mut self.w_hh);
        f(&mut self.bias);
    }

    /// Zeroes parameter gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

pub(crate) use crate::layer::outer_accumulate;

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::{self, seeded};

    #[test]
    fn step_shapes_and_bounds() {
        let mut r = seeded(1);
        let cell = LstmCell::new(6, 4, &mut r);
        let x = rng::normal(&mut r, &[6], 0.0, 1.0);
        let (s, _) = cell.step(&x, &LstmState::zeros(4));
        assert_eq!(s.h.len(), 4);
        assert_eq!(s.c.len(), 4);
        // h = o ⊙ tanh(c) is bounded by 1
        assert!(s.h.max_abs() <= 1.0);
    }

    #[test]
    fn forget_gate_bias_initialized_to_one() {
        let mut r = seeded(2);
        let cell = LstmCell::new(3, 5, &mut r);
        assert!(cell.bias.value.data()[5..10].iter().all(|&v| v == 1.0));
        assert!(cell.bias.value.data()[..5].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sequence_carries_state() {
        let mut r = seeded(3);
        let cell = LstmCell::new(2, 3, &mut r);
        let xs: Vec<Tensor> = (0..4)
            .map(|_| rng::normal(&mut r, &[2], 0.0, 1.0))
            .collect();
        let (states, caches) = cell.forward_sequence(&xs);
        assert_eq!(states.len(), 4);
        assert_eq!(caches.len(), 4);
        // replay manually and compare final state
        let mut s = LstmState::zeros(3);
        for x in &xs {
            s = cell.step(x, &s).0;
        }
        assert_eq!(s.h, states[3].h);
        assert_eq!(s.c, states[3].c);
    }

    /// Full BPTT gradient check on a small LSTM: loss = 0.5·Σ_t ||h_t||².
    #[test]
    fn bptt_gradient_check() {
        let mut r = seeded(4);
        let mut cell = LstmCell::new(3, 2, &mut r);
        let xs: Vec<Tensor> = (0..3)
            .map(|_| rng::normal(&mut r, &[3], 0.0, 1.0))
            .collect();

        let loss = |cell: &LstmCell, xs: &[Tensor]| -> f32 {
            let (states, _) = cell.forward_sequence(xs);
            states.iter().map(|s| 0.5 * s.h.norm_sq()).sum()
        };

        let (states, caches) = cell.forward_sequence(&xs);
        let dhs: Vec<Tensor> = states.iter().map(|s| s.h.clone()).collect();
        cell.zero_grads();
        let dxs = cell.backward_sequence(&caches, &dhs);

        let eps = 1e-3f32;
        // check a few W_ih entries
        for idx in [0usize, 7, 15] {
            let mut cp = cell.clone();
            cp.w_ih.value.data_mut()[idx] += eps;
            let fp = loss(&cp, &xs);
            let mut cm = cell.clone();
            cm.w_ih.value.data_mut()[idx] -= eps;
            let fm = loss(&cm, &xs);
            let fd = (fp - fm) / (2.0 * eps);
            let an = cell.w_ih.grad.data()[idx];
            assert!((fd - an).abs() < 2e-2, "w_ih[{idx}]: fd {fd} vs {an}");
        }
        // check a W_hh entry and a bias entry
        for idx in [0usize, 3] {
            let mut cp = cell.clone();
            cp.w_hh.value.data_mut()[idx] += eps;
            let fp = loss(&cp, &xs);
            let mut cm = cell.clone();
            cm.w_hh.value.data_mut()[idx] -= eps;
            let fm = loss(&cm, &xs);
            let fd = (fp - fm) / (2.0 * eps);
            let an = cell.w_hh.grad.data()[idx];
            assert!((fd - an).abs() < 2e-2, "w_hh[{idx}]: fd {fd} vs {an}");
        }
        // check input gradient at t=0
        for idx in 0..3 {
            let mut xp = xs.clone();
            xp[0].data_mut()[idx] += eps;
            let fp = loss(&cell, &xp);
            let mut xm = xs.clone();
            xm[0].data_mut()[idx] -= eps;
            let fm = loss(&cell, &xm);
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - dxs[0].data()[idx]).abs() < 2e-2);
        }
    }

    #[test]
    fn gate_preactivations_length() {
        let mut r = seeded(5);
        let cell = LstmCell::new(4, 6, &mut r);
        let a = cell.gate_preactivations(&Tensor::zeros(&[4]), &Tensor::zeros(&[6]));
        assert_eq!(a.len(), 24);
        // zero inputs → pre-activations equal the bias
        assert_eq!(a, cell.bias.value);
    }
}
