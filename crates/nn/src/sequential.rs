//! A feed-forward network container with a training loop.

use crate::activation::Activation;
use crate::conv::Conv2d;
use crate::layer::{Layer, Param};
use crate::linear::Linear;
use crate::loss;
use crate::optim::Optimizer;
use crate::pool::MaxPool2d;
use duet_tensor::Tensor;

/// One stage in a [`Sequential`] network.
#[derive(Debug)]
enum Stage {
    Linear(Linear),
    Conv(Conv2d),
    Pool(MaxPool2d),
    Act {
        act: Activation,
        cached_pre: Option<Tensor>,
    },
    Flatten {
        cached_dims: Option<Vec<usize>>,
    },
}

/// A feed-forward stack of layers (linear / conv / pool / activation /
/// flatten) with joint forward, backward, and a mini-batch training loop.
///
/// This is the "accurate module" trainer: the workloads crate uses it to
/// produce real pre-trained CNN/MLP classifiers whose layers then become
/// teachers for dual-module distillation.
#[derive(Debug, Default)]
pub struct Sequential {
    stages: Vec<Stage>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self { stages: Vec::new() }
    }

    /// Appends a fully-connected layer.
    pub fn push_linear(&mut self, l: Linear) -> &mut Self {
        self.stages.push(Stage::Linear(l));
        self
    }

    /// Appends a convolution layer.
    pub fn push_conv(&mut self, c: Conv2d) -> &mut Self {
        self.stages.push(Stage::Conv(c));
        self
    }

    /// Appends a max-pooling layer.
    pub fn push_pool(&mut self, p: MaxPool2d) -> &mut Self {
        self.stages.push(Stage::Pool(p));
        self
    }

    /// Appends an element-wise activation.
    pub fn push_activation(&mut self, act: Activation) -> &mut Self {
        self.stages.push(Stage::Act {
            act,
            cached_pre: None,
        });
        self
    }

    /// Appends a flatten stage (`[B, …] → [B, prod]`).
    pub fn push_flatten(&mut self) -> &mut Self {
        self.stages.push(Stage::Flatten { cached_dims: None });
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the network has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Returns references to the linear layers in order (used by the
    /// dual-module extractor).
    pub fn linear_layers(&self) -> Vec<&Linear> {
        self.stages
            .iter()
            .filter_map(|s| match s {
                Stage::Linear(l) => Some(l),
                _ => None,
            })
            .collect()
    }

    /// Returns references to the conv layers in order.
    pub fn conv_layers(&self) -> Vec<&Conv2d> {
        self.stages
            .iter()
            .filter_map(|s| match s {
                Stage::Conv(c) => Some(c),
                _ => None,
            })
            .collect()
    }

    /// Forward pass over a batch.
    ///
    /// # Panics
    ///
    /// Panics if an intermediate shape is incompatible with the next stage.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for stage in &mut self.stages {
            cur = match stage {
                Stage::Linear(l) => l.forward(&cur),
                Stage::Conv(c) => c.forward(&cur),
                Stage::Pool(p) => p.forward(&cur),
                Stage::Act { act, cached_pre } => {
                    *cached_pre = Some(cur.clone());
                    act.apply(&cur)
                }
                Stage::Flatten { cached_dims } => {
                    let dims = cur.shape().dims().to_vec();
                    let b = dims[0];
                    let rest: usize = dims[1..].iter().product();
                    *cached_dims = Some(dims);
                    cur.reshaped(&[b, rest])
                }
            };
        }
        cur
    }

    /// Backward pass; accumulates gradients in every stage.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Sequential::forward`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for stage in self.stages.iter_mut().rev() {
            g = match stage {
                Stage::Linear(l) => l.backward(&g),
                Stage::Conv(c) => c.backward(&g),
                Stage::Pool(p) => p.backward(&g),
                Stage::Act { act, cached_pre } => {
                    let pre = cached_pre.as_ref().expect("backward before forward");
                    duet_tensor::ops::hadamard(&g, &act.derivative(pre))
                }
                Stage::Flatten { cached_dims } => {
                    let dims = cached_dims.as_ref().expect("backward before forward");
                    g.reshaped(dims)
                }
            };
        }
        g
    }

    /// Visits every parameter in the network.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for stage in &mut self.stages {
            match stage {
                Stage::Linear(l) => l.visit_params(f),
                Stage::Conv(c) => c.visit_params(f),
                Stage::Pool(p) => p.visit_params(f),
                _ => {}
            }
        }
    }

    /// Zeroes all gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total scalar parameter count.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// One cross-entropy training step on a mini-batch; returns the loss.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the batch size.
    pub fn train_step(&mut self, x: &Tensor, targets: &[usize], opt: &mut Optimizer) -> f32 {
        let logits = self.forward(x);
        let (l, grad) = loss::cross_entropy(&logits, targets);
        self.zero_grads();
        self.backward(&grad);
        opt.tick();
        self.visit_params(&mut |p| opt.step(p));
        l
    }

    /// Classification accuracy on a batch.
    pub fn evaluate(&mut self, x: &Tensor, targets: &[usize]) -> f64 {
        let logits = self.forward(x);
        loss::accuracy(&logits, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::im2col::ConvGeometry;
    use duet_tensor::rng::{self, seeded};

    #[test]
    fn mlp_learns_linearly_separable_data() {
        let mut r = seeded(7);
        let mut net = Sequential::new();
        net.push_linear(Linear::new(2, 16, &mut r));
        net.push_activation(Activation::Relu);
        net.push_linear(Linear::new(16, 2, &mut r));

        // class = (x0 + x1 > 0)
        let n = 128;
        let x = rng::normal(&mut r, &[n, 2], 0.0, 1.0);
        let targets: Vec<usize> = (0..n)
            .map(|i| usize::from(x.at(&[i, 0]) + x.at(&[i, 1]) > 0.0))
            .collect();

        let mut opt = Optimizer::adam(0.01);
        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for e in 0..200 {
            let l = net.train_step(&x, &targets, &mut opt);
            if e == 0 {
                first_loss = l;
            }
            last_loss = l;
        }
        assert!(last_loss < first_loss * 0.2, "{first_loss} -> {last_loss}");
        assert!(net.evaluate(&x, &targets) > 0.95);
    }

    #[test]
    fn cnn_pipeline_shapes() {
        let mut r = seeded(8);
        let g = ConvGeometry {
            in_channels: 1,
            in_h: 8,
            in_w: 8,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        };
        let mut net = Sequential::new();
        net.push_conv(Conv2d::new(g, 4, &mut r));
        net.push_activation(Activation::Relu);
        net.push_pool(MaxPool2d::new(2));
        net.push_flatten();
        net.push_linear(Linear::new(4 * 4 * 4, 3, &mut r));

        let x = rng::normal(&mut r, &[2, 1, 8, 8], 0.0, 1.0);
        let y = net.forward(&x);
        assert_eq!(y.shape().dims(), &[2, 3]);

        // one training step runs end-to-end
        let mut opt = Optimizer::sgd(0.01);
        let l = net.train_step(&x, &[0, 2], &mut opt);
        assert!(l.is_finite());
    }

    #[test]
    fn whole_network_gradient_check() {
        let mut r = seeded(9);
        let mut net = Sequential::new();
        net.push_linear(Linear::new(3, 4, &mut r));
        net.push_activation(Activation::Tanh);
        net.push_linear(Linear::new(4, 2, &mut r));

        let x = rng::normal(&mut r, &[1, 3], 0.0, 1.0);
        let y = net.forward(&x);
        net.zero_grads();
        let dx = net.backward(&y); // loss = 0.5||y||²

        let eps = 1e-3f32;
        for idx in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let fp = 0.5 * net.forward(&xp).norm_sq();
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fm = 0.5 * net.forward(&xm).norm_sq();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - dx.data()[idx]).abs() < 1e-2,
                "fd {fd} vs {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn param_count_adds_up() {
        let mut r = seeded(10);
        let mut net = Sequential::new();
        net.push_linear(Linear::new(10, 5, &mut r)); // 50 + 5
        net.push_linear(Linear::new(5, 2, &mut r)); // 10 + 2
        assert_eq!(net.param_count(), 67);
    }

    #[test]
    fn layer_accessors() {
        let mut r = seeded(11);
        let mut net = Sequential::new();
        net.push_linear(Linear::new(4, 4, &mut r));
        net.push_activation(Activation::Relu);
        net.push_linear(Linear::new(4, 2, &mut r));
        assert_eq!(net.linear_layers().len(), 2);
        assert_eq!(net.conv_layers().len(), 0);
        assert_eq!(net.len(), 3);
    }
}
