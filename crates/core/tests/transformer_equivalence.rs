//! Dual-attention equivalence contract: at θ = −∞ every projection lane
//! is sensitive, so the speculated transformer pieces must be **bitwise**
//! equal to their dense references — `DualAttention`/`DualFfn` against
//! the reference path built on dense [`duet_nn::attention::attend`], the
//! whole block against `forward_dense`, and the refactored
//! `DualModuleLayer` against the shared `DualProjection` it is now
//! backed by.
//!
//! `scripts/verify.sh` runs this suite under `DUET_NUM_THREADS` ∈
//! {1, 4, 7}: the dense references are single-threaded by construction,
//! so passing at every width pins the engine path's thread-invariance
//! too.

use duet_core::engine::{MacMode, SpeculationEngine};
use duet_core::{
    DualAttention, DualFfn, DualModuleLayer, DualProjection, DualTransformerBlock, SwitchingPolicy,
    TransformerThresholds,
};
use duet_nn::Activation;
use duet_tensor::rng::{self, seeded, Rng};
use duet_tensor::Tensor;

fn proj(r: &mut Rng, n: usize, d: usize, k: usize) -> DualProjection {
    let w = rng::normal(r, &[n, d], 0.0, 0.3);
    let b = rng::normal(r, &[n], 0.0, 0.05);
    DualProjection::learn(&w, &b, MacMode::SkipZeroWeights, k, 200, r)
}

fn attention(r: &mut Rng, m: usize) -> DualAttention {
    let k = (m / 2).max(2);
    DualAttention::new(
        proj(r, m, m, k),
        proj(r, m, m, k),
        proj(r, m, m, k),
        proj(r, m, m, k),
    )
}

fn ffn(r: &mut Rng, m: usize, f: usize) -> DualFfn {
    DualFfn::new(proj(r, f, m, (m / 2).max(2)), proj(r, m, f, (f / 2).max(2)))
}

#[test]
fn dual_attention_never_switch_is_bitwise_dense_attend() {
    for &(m, t_len, seed) in &[(4usize, 1usize, 1u64), (8, 5, 2), (12, 9, 3)] {
        let mut r = seeded(seed);
        let attn = attention(&mut r, m);
        let xs = rng::normal(&mut r, &[t_len, m], 0.0, 1.0);
        let mut engine = SpeculationEngine::new();
        let (out, maps) = attn.forward_with(&mut engine, &xs, f32::NEG_INFINITY, None);
        let reference = attn.forward_reference(&xs);
        assert_eq!(
            out.data(),
            reference.data(),
            "m={m} T={t_len}: θ=-inf attention must be bitwise dense"
        );
        assert_eq!(maps.len(), 4 * t_len);
        assert!(
            maps.iter().all(|map| map.sensitive_count() == map.len()),
            "θ=-inf leaves no insensitive lane"
        );
    }
}

#[test]
fn dual_ffn_never_switch_is_bitwise_reference() {
    for &(m, f, seed) in &[(4usize, 8usize, 4u64), (8, 16, 5), (10, 30, 6)] {
        let mut r = seeded(seed);
        let ffn = ffn(&mut r, m, f);
        let x = rng::normal(&mut r, &[m], 0.0, 1.0);
        let mut engine = SpeculationEngine::new();
        let (y, [m1, m2]) =
            ffn.forward_with(&mut engine, &x, f32::NEG_INFINITY, f32::NEG_INFINITY, None);
        assert_eq!(
            y.data(),
            ffn.forward_reference(&x).data(),
            "m={m} f={f}: θ=-inf FFN must be bitwise dense"
        );
        assert_eq!(m1.sensitive_count(), f);
        assert_eq!(m2.sensitive_count(), m);
    }
}

#[test]
fn dual_block_never_switch_is_bitwise_forward_dense() {
    for &(m, f, t_len, seed) in &[
        (4usize, 8usize, 3usize, 7u64),
        (8, 16, 6, 8),
        (6, 18, 11, 9),
    ] {
        let mut r = seeded(seed);
        let block = DualTransformerBlock::new(attention(&mut r, m), ffn(&mut r, m, f));
        let xs = rng::normal(&mut r, &[t_len, m], 0.0, 1.0);
        let out = block.forward(&xs, &TransformerThresholds::never_switch());
        let dense = block.forward_dense(&xs);
        assert_eq!(
            out.output.data(),
            dense.data(),
            "m={m} f={f} T={t_len}: θ=-inf block must be bitwise dense"
        );
        assert_eq!(out.report.outputs_exact, out.report.outputs_total);
        assert_eq!(out.report.executor_macs, out.report.dense_macs);
    }
}

/// The refactor contract for the FF layer: `DualModuleLayer` is now a
/// `DualProjection` plus an activation, and its dual path must stay
/// bitwise-equal to running that projection directly — no behavior may
/// have moved in the extraction.
#[test]
fn dual_layer_is_bitwise_its_projection_plus_activation() {
    for &(n, d, seed) in &[(6usize, 10usize, 10u64), (16, 24, 11), (33, 7, 12)] {
        let mut r = seeded(seed);
        let w = rng::normal(&mut r, &[n, d], 0.0, 0.3);
        let b = rng::normal(&mut r, &[n], 0.0, 0.05);
        let layer = DualModuleLayer::learn(&w, &b, Activation::Relu, (d / 2).max(2), 200, &mut r);
        let x = rng::normal(&mut r, &[d], 0.0, 1.0);
        for policy in [SwitchingPolicy::never_switch(), SwitchingPolicy::relu(0.3)] {
            let out = layer.forward(&x, &policy);
            let mut engine = SpeculationEngine::new();
            let (pre, map) = layer.projection().forward(&mut engine, &policy, &x, None);
            assert_eq!(
                out.output.data(),
                Activation::Relu.apply(&pre).data(),
                "n={n} d={d} θ={}: layer must equal projection + activation",
                policy.theta
            );
            assert_eq!(out.map, map);
        }
        // and the projection's engine path matches its scalar reference
        let reference = layer.projection().forward_reference(&x);
        let mut engine = SpeculationEngine::new();
        let (pre, _) =
            layer
                .projection()
                .forward(&mut engine, &SwitchingPolicy::never_switch(), &x, None);
        assert_eq!(pre.data(), reference.data());
    }
}

/// Residual wiring: the block output must be exactly
/// `x + attn(x) + ffn(x + attn(x))` lane by lane — a wrong residual
/// would still "look dense" at θ = −∞ but change every value.
#[test]
fn dense_block_composes_attention_and_ffn_with_residuals() {
    let (m, f, t_len) = (6usize, 12usize, 4usize);
    let mut r = seeded(13);
    let block = DualTransformerBlock::new(attention(&mut r, m), ffn(&mut r, m, f));
    let xs = rng::normal(&mut r, &[t_len, m], 0.0, 1.0);
    let dense = block.forward_dense(&xs);

    let attn_out = block.attention().forward_reference(&xs);
    for t in 0..t_len {
        let a: Vec<f32> = (0..m)
            .map(|i| xs.data()[t * m + i] + attn_out.data()[t * m + i])
            .collect();
        let a_t = Tensor::from_vec(a.clone(), &[m]);
        let y = block.ffn().forward_reference(&a_t);
        for (i, (&a_i, &y_i)) in a.iter().zip(y.data()).enumerate() {
            assert_eq!(
                dense.data()[t * m + i],
                a_i + y_i,
                "t={t} lane {i}: residual composition mismatch"
            );
        }
    }
}
