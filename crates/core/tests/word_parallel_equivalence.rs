//! Property sweep pinning the word-parallel sparse-execute loop to the
//! historical index-by-index loop it replaced.
//!
//! The reference here is the *literal definition* of sparse execution —
//! visit `(0..len).filter(|i| map.is_sensitive(i))` in ascending order,
//! accumulate each row as `bias + Σ w·x` in element order — reimplemented
//! with plain scalar loops, independent of the engine. Both engine paths
//! (the closure `execute`/`execute_into` and the batched mask-compaction
//! `execute_rows_into`) must reproduce it **bitwise**: same outputs, same
//! visit order, same exact-output counts, same `SavingsReport` — over
//! random maps at densities 0, ~0.5, 1, single-straggler-bit patterns,
//! tail lengths `len % 64 ∈ {0, 1, 63}`, and 1/4/7 worker threads.

use duet_core::engine::{EngineCosts, ExecutorWeightBytes, Gather, MacMode, RowSegment};
use duet_core::{SavingsReport, SpeculationEngine, SwitchingMap};
use duet_tensor::rng::{self, seeded, Rng};
use duet_tensor::{parallel, Tensor};

/// Map patterns the sweep covers, per length.
fn sweep_maps(len: usize, r: &mut Rng) -> Vec<SwitchingMap> {
    let mut maps = vec![
        SwitchingMap::all_insensitive(len), // density 0
        SwitchingMap::all_sensitive(len),   // density 1
        SwitchingMap::from_flags((0..len).map(|_| r.random::<f64>() < 0.5).collect()),
    ];
    // single-straggler-bit patterns: first, last, and one interior bit
    for straggler in [0, len - 1, len / 2] {
        maps.push(SwitchingMap::from_flags(
            (0..len).map(|i| i == straggler).collect(),
        ));
    }
    maps
}

/// The old loop's row accumulation under `MacMode::SkipZeroWeights`,
/// also counting the MACs/weight words the kernel must report.
fn row_dot_skip_zero(bias: f32, weights: &[f32], x: &[f32], macs: &mut u64) -> f32 {
    let mut acc = bias;
    for (&w, &v) in weights.iter().zip(x) {
        if w != 0.0 {
            acc += w * v;
            *macs += 1;
        }
    }
    acc
}

struct Reference {
    mixed: Vec<f32>,
    visits: Vec<usize>,
    macs: u64,
}

/// Literal index-by-index sparse execution over an FF-style row set.
fn reference_execute(
    map: &SwitchingMap,
    approx: &[f32],
    w: &[f32],
    bias: &[f32],
    x: &[f32],
    d: usize,
) -> Reference {
    let mut mixed = approx.to_vec();
    let mut visits = Vec::new();
    let mut macs = 0u64;
    for i in (0..map.len()).filter(|&i| map.is_sensitive(i)) {
        visits.push(i);
        mixed[i] = row_dot_skip_zero(bias[i], &w[i * d..(i + 1) * d], x, &mut macs);
    }
    Reference {
        mixed,
        visits,
        macs,
    }
}

fn costs(n: usize, d: usize) -> EngineCosts {
    EngineCosts {
        dense_macs: (n * d) as u64,
        dense_weight_bytes: (n * d * 2) as u64,
        speculator_macs: (n * 4) as u64,
        speculator_adds: 0,
        speculator_weight_bytes: (n * 2) as u64,
        executor_weight_bytes: ExecutorWeightBytes::CountedWords,
    }
}

/// Runs the closure path on one map and returns (mixed, visits, report).
fn run_closure_path(
    map: &SwitchingMap,
    approx: &[f32],
    w: &[f32],
    bias: &[f32],
    x: &[f32],
    d: usize,
) -> (Vec<f32>, Vec<usize>, SavingsReport) {
    let n = map.len();
    let mut engine = SpeculationEngine::new();
    engine.account_map(map);
    let mut mixed = approx.to_vec();
    let mut visits = Vec::new();
    engine.execute_into(map, &mut mixed, |i, kernel| {
        visits.push(i);
        kernel.dot(
            bias[i],
            &w[i * d..(i + 1) * d],
            Gather::Dense(x),
            MacMode::SkipZeroWeights,
        )
    });
    let report = engine.finish(costs(n, d));
    (mixed, visits, report)
}

/// Runs the batched mask-compaction path on one map.
fn run_batched_path(
    map: &SwitchingMap,
    approx: &[f32],
    w: &[f32],
    bias: &[f32],
    x: &[f32],
    d: usize,
) -> (Vec<f32>, SavingsReport) {
    let n = map.len();
    let mut engine = SpeculationEngine::new();
    engine.account_map(map);
    let mut mixed = approx.to_vec();
    let segments = [RowSegment {
        weights: w,
        d,
        x: Gather::Dense(x),
        mode: MacMode::SkipZeroWeights,
    }];
    engine.execute_rows_into(map, &mut mixed, 0, bias, &segments);
    let report = engine.finish(costs(n, d));
    (mixed, report)
}

#[test]
fn word_parallel_execute_matches_index_loop_bitwise() {
    // tail lengths: % 64 ∈ {0, 1, 63}, plus sub-word and multi-word
    for (seed, len) in [
        (41u64, 64usize),
        (42, 128),
        (43, 192),
        (44, 1),
        (45, 65),
        (46, 129),
        (47, 63),
        (48, 127),
        (49, 191),
    ] {
        let mut r = seeded(seed);
        let d = 48;
        let mut w = rng::normal(&mut r, &[len, d], 0.0, 0.5);
        // sprinkle zero weights so SkipZeroWeights actually skips
        for v in w.data_mut().iter_mut() {
            if *v < -0.3 {
                *v = 0.0;
            }
        }
        let bias = rng::normal(&mut r, &[len], 0.0, 0.1);
        let x = rng::normal(&mut r, &[d], 0.0, 1.0);
        let approx = rng::normal(&mut r, &[len], 0.0, 1.0);

        for (mi, map) in sweep_maps(len, &mut r).into_iter().enumerate() {
            let what = format!("len {len} map {mi}");
            let reference =
                reference_execute(&map, approx.data(), w.data(), bias.data(), x.data(), d);
            let (mixed, visits, report) =
                run_closure_path(&map, approx.data(), w.data(), bias.data(), x.data(), d);
            assert_eq!(visits, reference.visits, "{what}: visit order");
            assert_eq!(mixed, reference.mixed, "{what}: outputs not bitwise");
            assert_eq!(
                report.outputs_exact,
                reference.visits.len() as u64,
                "{what}: exact count"
            );
            assert_eq!(report.executor_macs, reference.macs, "{what}: MACs");

            let (batched, batched_report) =
                run_batched_path(&map, approx.data(), w.data(), bias.data(), x.data(), d);
            assert_eq!(batched, reference.mixed, "{what}: batched outputs");
            assert_eq!(batched_report, report, "{what}: batched report");
        }
    }
}

#[test]
fn word_parallel_execute_thread_invariant_at_1_4_7() {
    let mut r = seeded(77);
    let (len, d) = (130, 64);
    let w = rng::normal(&mut r, &[len, d], 0.0, 0.5);
    let bias = rng::normal(&mut r, &[len], 0.0, 0.1);
    let approx = rng::normal(&mut r, &[len], 0.0, 1.0);
    let maps = sweep_maps(len, &mut r);
    let batch: Vec<Tensor> = (0..12)
        .map(|_| rng::normal(&mut r, &[d], 0.0, 1.0))
        .collect();

    // One (map, input) execution per batch lane, fanned out over worker
    // threads: the engine touches no shared state, so every thread count
    // must produce bit-identical outputs and reports.
    let run = |threads: usize| -> Vec<(Vec<f32>, SavingsReport)> {
        parallel::map_indexed(batch.len(), threads, |bi| {
            let map = &maps[bi % maps.len()];
            let x = &batch[bi];
            run_batched_path(map, approx.data(), w.data(), bias.data(), x.data(), d)
        })
    };
    let serial = run(1);
    for threads in [4, 7] {
        assert_eq!(serial, run(threads), "threads={threads} diverged");
    }
}
