//! The engine's correctness contract: under `never_switch` every output
//! is sensitive, so the dual-module path must reproduce the dense
//! reference for all four variants across a seeded shape sweep.
//!
//! Two levels of strictness apply. The dual path accumulates each row as
//! `bias + Σ w·x` in element order, skipping zero weights where the
//! variant does — an order this test reimplements literally and checks
//! **bitwise**, so any engine refactor that perturbs the accumulation
//! order (and would silently drift the committed `results/*.txt`
//! exhibits) fails loudly. The library's `forward_dense`/`step_dense`
//! references use the blocked kernels in `duet-tensor::ops`, which add
//! the bias last; those agree only to rounding, so they are checked to a
//! tight tolerance.

use duet_core::dual_rnn::RnnThresholds;
use duet_core::{
    DualConvLayer, DualGruCell, DualLstmCell, DualModuleLayer, GuardConfig, SpeculationGuard,
    SwitchingPolicy,
};
use duet_nn::lstm::LstmState;
use duet_nn::{Activation, GruCell, LstmCell};
use duet_tensor::im2col::{im2col, ConvGeometry};
use duet_tensor::rng::{self, seeded};

const TOL: f32 = 1e-5;

fn assert_close(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() < TOL, "{what}[{i}]: {x} vs {y}");
    }
}

/// Row accumulation in the dual path's exact order: seed with the bias,
/// add non-zero-weight products in element order.
fn row_dot(bias: f32, weights: &[f32], x: &[f32]) -> f32 {
    let mut acc = bias;
    for (&w, &v) in weights.iter().zip(x) {
        if w != 0.0 {
            acc += w * v;
        }
    }
    acc
}

#[test]
fn ff_never_switch_is_bitwise_row_exact() {
    for (seed, n, d, k) in [
        (11u64, 8usize, 16usize, 8usize),
        (12, 40, 80, 32),
        (13, 33, 65, 16),
    ] {
        let mut r = seeded(seed);
        let w = rng::normal(&mut r, &[n, d], 0.0, 0.2);
        let b = rng::normal(&mut r, &[n], 0.0, 0.05);
        let layer = DualModuleLayer::learn(&w, &b, Activation::Relu, k, 200, &mut r);
        let x = rng::normal(&mut r, &[d], 0.0, 1.0);

        let out = layer.forward(&x, &SwitchingPolicy::never_switch());
        assert_eq!(out.report.outputs_exact, n as u64, "seed {seed}");
        assert_eq!(out.map.sensitive_count(), n, "seed {seed}");

        // bitwise against the dual path's own accumulation order
        for i in 0..n {
            let want = row_dot(b.data()[i], &w.data()[i * d..(i + 1) * d], x.data());
            assert_eq!(
                out.pre_activation.data()[i],
                want,
                "seed {seed} row {i} not bitwise"
            );
        }
        // and close to the blocked dense reference
        assert_close(
            out.output.data(),
            layer.forward_dense(&x).data(),
            &format!("ff seed {seed} vs dense"),
        );
    }
}

#[test]
fn conv_never_switch_is_bitwise_element_exact() {
    for (seed, c, s, k) in [(21u64, 2usize, 6usize, 4usize), (22, 3, 8, 8)] {
        let mut r = seeded(seed);
        let geom = ConvGeometry {
            in_channels: c,
            in_h: s,
            in_w: s,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        };
        let filters = rng::normal(&mut r, &[k, c, 3, 3], 0.0, 0.25);
        let bias = rng::normal(&mut r, &[k], 0.0, 0.05);
        let layer = DualConvLayer::learn(geom, &filters, &bias, 12, 200, &mut r);
        let x = rng::normal(&mut r, &[c, s, s], 0.0, 1.0);

        let out = layer.forward(&x, &SwitchingPolicy::never_switch(), None);
        let positions = geom.out_h() * geom.out_w();
        let d = geom.patch_len();
        assert_eq!(
            out.report.outputs_exact,
            (k * positions) as u64,
            "seed {seed}"
        );

        // bitwise: the conv kernel skips zero *inputs* (exact, the
        // products are zero) and applies ReLU after
        let cols = im2col(&x, &geom);
        let cd = cols.data();
        let fd = layer.filter_matrix().data();
        for kk in 0..k {
            for p in 0..positions {
                let mut acc = bias.data()[kk];
                for (j, &w) in fd[kk * d..(kk + 1) * d].iter().enumerate() {
                    let v = cd[j * positions + p];
                    if v != 0.0 {
                        acc += w * v;
                    }
                }
                let want = acc.max(0.0);
                assert_eq!(
                    out.output.data()[kk * positions + p],
                    want,
                    "seed {seed} ch {kk} pos {p} not bitwise"
                );
            }
        }
        assert_close(
            out.output.data(),
            layer.forward_dense(&x).data(),
            &format!("conv seed {seed} vs dense"),
        );
    }
}

/// `DegradationPolicy::Off` must make the guarded path *free*: for all
/// four variants, `forward_guarded`/`step_guarded` with an `Off` guard is
/// byte-for-byte the unguarded call — same outputs, same maps, same
/// accounting, and the guard never observes anything.
#[test]
fn guard_off_is_bitwise_identical_for_all_variants() {
    let mut off = SpeculationGuard::new(GuardConfig::off());
    let mut r = seeded(71);

    // FF
    let w = rng::normal(&mut r, &[24, 48], 0.0, 0.2);
    let b = rng::normal(&mut r, &[24], 0.0, 0.05);
    let ff = DualModuleLayer::learn(&w, &b, duet_nn::Activation::Relu, 16, 200, &mut r);
    let x = rng::normal(&mut r, &[48], 0.0, 1.0);
    let policy = SwitchingPolicy::relu(0.0);
    let plain = ff.forward(&x, &policy);
    let guarded = ff.forward_guarded(&x, &policy, &mut off);
    assert_eq!(plain.output.data(), guarded.output.data());
    assert_eq!(plain.pre_activation.data(), guarded.pre_activation.data());
    assert_eq!(plain.map, guarded.map);
    assert_eq!(plain.report, guarded.report);

    // CONV
    let geom = ConvGeometry {
        in_channels: 2,
        in_h: 6,
        in_w: 6,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
    };
    let filters = rng::normal(&mut r, &[4, 2, 3, 3], 0.0, 0.25);
    let cbias = rng::normal(&mut r, &[4], 0.0, 0.05);
    let conv = DualConvLayer::learn(geom, &filters, &cbias, 8, 200, &mut r);
    let img = rng::normal(&mut r, &[2, 6, 6], 0.0, 1.0);
    let plain = conv.forward(&img, &policy, None);
    let guarded = conv.forward_guarded(&img, &policy, None, &mut off);
    assert_eq!(plain.output.data(), guarded.output.data());
    assert_eq!(plain.omap, guarded.omap);
    assert_eq!(plain.channel_workloads, guarded.channel_workloads);

    // LSTM
    let cell = LstmCell::new(10, 8, &mut r);
    let lstm = DualLstmCell::learn(&cell, 8, 200, &mut r);
    let xs = rng::normal(&mut r, &[10], 0.0, 1.0);
    let mut state = LstmState::zeros(8);
    state.h = rng::normal(&mut r, &[8], 0.0, 0.5);
    let th = RnnThresholds {
        theta_sigmoid: 2.0,
        theta_tanh: 1.5,
    };
    let plain = lstm.step(&xs, &state, &th);
    let guarded = lstm.step_guarded(&xs, &state, &th, &mut off);
    assert_eq!(plain.h.data(), guarded.h.data());
    assert_eq!(plain.c.data(), guarded.c.data());
    assert_eq!(plain.gate_maps, guarded.gate_maps);

    // GRU
    let gcell = GruCell::new(9, 7, &mut r);
    let gru = DualGruCell::learn(&gcell, 7, 200, &mut r);
    let xg = rng::normal(&mut r, &[9], 0.0, 1.0);
    let hg = rng::normal(&mut r, &[7], 0.0, 0.5);
    let plain = gru.step(&xg, &hg, &th);
    let guarded = gru.step_guarded(&xg, &hg, &th, &mut off);
    assert_eq!(plain.h.data(), guarded.h.data());
    assert_eq!(plain.gate_maps, guarded.gate_maps);

    // the Off guard stayed completely inert
    assert_eq!(off.stats().checks, 0);
    assert_eq!(off.trips(), 0);
}

/// LSTM gate lane in the dual path's order: bias, then the W_ih row, then
/// the W_hh row (dense — recurrent rows are not pruned).
fn lstm_lane(cell_bias: f32, wih: &[f32], x: &[f32], whh: &[f32], h: &[f32]) -> f32 {
    let mut acc = cell_bias;
    for (&w, &v) in wih.iter().zip(x) {
        acc += w * v;
    }
    for (&w, &v) in whh.iter().zip(h) {
        acc += w * v;
    }
    acc
}

#[test]
fn lstm_never_switch_matches_dense_across_shapes() {
    for (seed, d, h) in [(31u64, 8usize, 6usize), (32, 16, 12), (33, 20, 17)] {
        let mut r = seeded(seed);
        let cell = LstmCell::new(d, h, &mut r);
        let dual = DualLstmCell::learn(&cell, h.min(12), 200, &mut r);
        let x = rng::normal(&mut r, &[d], 0.0, 1.0);
        let mut state = LstmState::zeros(h);
        state.h = rng::normal(&mut r, &[h], 0.0, 0.5);
        state.c = rng::normal(&mut r, &[h], 0.0, 0.5);

        let out = dual.step(&x, &state, &RnnThresholds::never_switch());
        assert_eq!(out.report.outputs_exact, (4 * h) as u64, "seed {seed}");
        assert_eq!(out.gate_maps.len(), 4);
        assert!(out.gate_maps.iter().all(|m| m.sensitive_count() == h));

        // the mixed pre-activations are bitwise the per-lane reference;
        // check through the recomputed gates by rebuilding lane values
        let wih = cell.w_ih.value.data();
        let whh = cell.w_hh.value.data();
        let bias = cell.bias.value.data();
        let mut a = vec![0.0f32; 4 * h];
        for (row, lane) in a.iter_mut().enumerate() {
            *lane = lstm_lane(
                bias[row],
                &wih[row * d..(row + 1) * d],
                x.data(),
                &whh[row * h..(row + 1) * h],
                state.h.data(),
            );
        }
        // combine exactly as the cell does
        let sig = |v: f32| Activation::Sigmoid.apply_scalar(v);
        for i in 0..h {
            let ig = sig(a[i]);
            let fg = sig(a[h + i]);
            let gg = a[2 * h + i].tanh();
            let og = sig(a[3 * h + i]);
            let c = fg * state.c.data()[i] + ig * gg;
            let want = og * c.tanh();
            assert_eq!(out.h.data()[i], want, "seed {seed} lane {i} not bitwise");
        }

        let dense = dual.step_dense(&x, &state);
        assert_close(out.h.data(), dense.h.data(), &format!("lstm h seed {seed}"));
        assert_close(out.c.data(), dense.c.data(), &format!("lstm c seed {seed}"));
    }
}

#[test]
fn gru_never_switch_matches_dense_across_shapes() {
    for (seed, d, h) in [(41u64, 7usize, 5usize), (42, 10, 8), (43, 19, 13)] {
        let mut r = seeded(seed);
        let cell = GruCell::new(d, h, &mut r);
        let dual = DualGruCell::learn(&cell, h.min(8), 200, &mut r);
        let x = rng::normal(&mut r, &[d], 0.0, 1.0);
        let h_prev = rng::normal(&mut r, &[h], 0.0, 0.5);

        let out = dual.step(&x, &h_prev, &RnnThresholds::never_switch());
        assert_eq!(out.report.outputs_exact, (3 * h) as u64, "seed {seed}");
        assert!(out.gate_maps.iter().all(|m| m.sensitive_count() == h));

        // bitwise: every lane of both streams is recomputed exactly, so
        // the combine sees the same values the reference loop produces
        let wih = cell.w_ih.value.data();
        let whh = cell.w_hh.value.data();
        let bih = cell.b_ih.value.data();
        let bhh = cell.b_hh.value.data();
        let lane = |b: &[f32], w: &[f32], v: &[f32], row: usize, width: usize| {
            let mut acc = b[row];
            for (&wv, &xv) in w[row * width..(row + 1) * width].iter().zip(v) {
                acc += wv * xv;
            }
            acc
        };
        let sig = |v: f32| Activation::Sigmoid.apply_scalar(v);
        for i in 0..h {
            let ax = |gi: usize| lane(bih, wih, x.data(), gi * h + i, d);
            let ah = |gi: usize| lane(bhh, whh, h_prev.data(), gi * h + i, h);
            let rg = sig(ax(0) + ah(0));
            let zg = sig(ax(1) + ah(1));
            let ng = (ax(2) + rg * ah(2)).tanh();
            let want = (1.0 - zg) * ng + zg * h_prev.data()[i];
            assert_eq!(out.h.data()[i], want, "seed {seed} lane {i} not bitwise");
        }

        let dense = dual.step_dense(&x, &h_prev);
        assert_close(out.h.data(), dense.data(), &format!("gru seed {seed}"));
    }
}
