//! The watchdog's degradation contract: a NaN-poisoned Speculator under
//! `FallbackDense` must yield **bitwise-dense** outputs (the all-sensitive
//! fallback map makes the Executor recompute everything) and a nonzero
//! trip count — for every variant. `WarnOnly` must observe without
//! altering execution.

use duet_core::dual_rnn::RnnThresholds;
use duet_core::guard::DegradationPolicy;
use duet_core::{
    ApproxLinear, DualConvLayer, DualGruCell, DualLstmCell, DualModuleLayer, GuardConfig,
    SpeculationGuard, SwitchingPolicy,
};
use duet_nn::lstm::LstmState;
use duet_nn::{Activation, GruCell, LstmCell};
use duet_tensor::im2col::ConvGeometry;
use duet_tensor::rng::{self, seeded};
use duet_tensor::Tensor;

/// Rebuilds an approximate module with a NaN bias: every speculator
/// output becomes non-finite while projection/weights stay intact.
fn nan_poisoned(approx: &ApproxLinear) -> ApproxLinear {
    ApproxLinear::from_quantized(
        approx.projection().clone(),
        approx.weights().clone(),
        Tensor::full(&[approx.output_dim()], f32::NAN),
        *approx.config(),
    )
}

#[test]
fn ff_nan_poison_falls_back_to_bitwise_dense() {
    duet_obs::set_metrics_enabled(true);
    let trips_before = duet_obs::registry::counter("core.guard.trips").get();

    let mut r = seeded(101);
    let w = rng::normal(&mut r, &[20, 40], 0.0, 0.2);
    let b = rng::normal(&mut r, &[20], 0.0, 0.05);
    let layer = DualModuleLayer::learn(&w, &b, Activation::Relu, 12, 200, &mut r);
    let x = rng::normal(&mut r, &[40], 0.0, 1.0);

    // bitwise-dense reference: the healthy layer under never-switch
    let reference = layer.forward(&x, &SwitchingPolicy::never_switch());

    let mut poisoned = layer.clone();
    poisoned.set_approx(nan_poisoned(layer.approx()));
    let mut guard =
        SpeculationGuard::new(GuardConfig::fallback_dense(duet_core::SwitchRateBand::any()));
    let out = poisoned.forward_guarded(&x, &SwitchingPolicy::relu(0.0), &mut guard);

    assert!(guard.is_tripped());
    assert!(guard.trips() > 0, "NaN speculator must trip the guard");
    assert_eq!(
        out.pre_activation.data(),
        reference.pre_activation.data(),
        "fallback must be bitwise the dense path"
    );
    assert_eq!(out.output.data(), reference.output.data());
    assert!(out.output.data().iter().all(|v| v.is_finite()));
    assert_eq!(
        out.map.sensitive_count(),
        20,
        "fallback map is all-sensitive"
    );

    let trips_after = duet_obs::registry::counter("core.guard.trips").get();
    assert!(
        trips_after > trips_before,
        "core.guard.trips must advance on a trip"
    );
}

#[test]
fn conv_nan_poison_falls_back_to_bitwise_dense() {
    let mut r = seeded(102);
    let geom = ConvGeometry {
        in_channels: 2,
        in_h: 6,
        in_w: 6,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
    };
    let filters = rng::normal(&mut r, &[4, 2, 3, 3], 0.0, 0.25);
    let bias = rng::normal(&mut r, &[4], 0.0, 0.05);
    let layer = DualConvLayer::learn(geom, &filters, &bias, 8, 200, &mut r);
    let x = rng::normal(&mut r, &[2, 6, 6], 0.0, 1.0);

    let reference = layer.forward(&x, &SwitchingPolicy::never_switch(), None);

    let mut poisoned = layer.clone();
    poisoned.set_approx(nan_poisoned(layer.approx()));
    let mut guard =
        SpeculationGuard::new(GuardConfig::fallback_dense(duet_core::SwitchRateBand::any()));
    let out = poisoned.forward_guarded(&x, &SwitchingPolicy::relu(0.0), None, &mut guard);

    assert!(guard.trips() > 0);
    assert_eq!(out.output.data(), reference.output.data());
    assert_eq!(out.omap, reference.omap);
    assert!(out.output.data().iter().all(|v| v.is_finite()));
}

#[test]
fn lstm_nan_poison_falls_back_to_bitwise_dense() {
    let mut r = seeded(103);
    let cell = LstmCell::new(10, 8, &mut r);
    let dual = DualLstmCell::learn(&cell, 8, 200, &mut r);
    let x = rng::normal(&mut r, &[10], 0.0, 1.0);
    let mut state = LstmState::zeros(8);
    state.h = rng::normal(&mut r, &[8], 0.0, 0.5);
    state.c = rng::normal(&mut r, &[8], 0.0, 0.5);

    let reference = dual.step(&x, &state, &RnnThresholds::never_switch());

    let mut poisoned = dual.clone();
    poisoned.set_approx(
        nan_poisoned(dual.approx_ih()),
        nan_poisoned(dual.approx_hh()),
    );
    let mut guard =
        SpeculationGuard::new(GuardConfig::fallback_dense(duet_core::SwitchRateBand::any()));
    let th = RnnThresholds {
        theta_sigmoid: 2.0,
        theta_tanh: 1.5,
    };
    let out = poisoned.step_guarded(&x, &state, &th, &mut guard);

    assert!(guard.trips() > 0);
    assert_eq!(out.h.data(), reference.h.data());
    assert_eq!(out.c.data(), reference.c.data());
    assert!(out.h.data().iter().all(|v| v.is_finite()));
}

#[test]
fn gru_nan_poison_falls_back_to_bitwise_dense() {
    let mut r = seeded(104);
    let cell = GruCell::new(9, 7, &mut r);
    let dual = DualGruCell::learn(&cell, 7, 200, &mut r);
    let x = rng::normal(&mut r, &[9], 0.0, 1.0);
    let h_prev = rng::normal(&mut r, &[7], 0.0, 0.5);

    let reference = dual.step(&x, &h_prev, &RnnThresholds::never_switch());

    let mut poisoned = dual.clone();
    poisoned.set_approx(
        nan_poisoned(dual.approx_ih()),
        nan_poisoned(dual.approx_hh()),
    );
    let mut guard =
        SpeculationGuard::new(GuardConfig::fallback_dense(duet_core::SwitchRateBand::any()));
    let th = RnnThresholds {
        theta_sigmoid: 2.0,
        theta_tanh: 1.5,
    };
    let out = poisoned.step_guarded(&x, &h_prev, &th, &mut guard);

    assert!(guard.trips() > 0);
    assert_eq!(out.h.data(), reference.h.data());
    assert!(out.h.data().iter().all(|v| v.is_finite()));
}

#[test]
fn warn_only_counts_but_does_not_alter_execution() {
    let mut r = seeded(105);
    let w = rng::normal(&mut r, &[16, 32], 0.0, 0.2);
    let b = rng::normal(&mut r, &[16], 0.0, 0.05);
    let layer = DualModuleLayer::learn(&w, &b, Activation::Relu, 8, 200, &mut r);
    let x = rng::normal(&mut r, &[32], 0.0, 1.0);

    let mut poisoned = layer.clone();
    poisoned.set_approx(nan_poisoned(layer.approx()));

    let unguarded = poisoned.forward(&x, &SwitchingPolicy::relu(0.0));
    let mut guard = SpeculationGuard::new(GuardConfig::warn_only(duet_core::SwitchRateBand::any()));
    let warned = poisoned.forward_guarded(&x, &SwitchingPolicy::relu(0.0), &mut guard);

    assert!(guard.is_tripped(), "WarnOnly still detects and trips");
    assert_eq!(guard.config().policy, DegradationPolicy::WarnOnly);
    assert_eq!(guard.stats().fallback_maps, 0);
    // execution is untouched: same map, bit-identical values (NaNs and
    // all — compare bit patterns since NaN != NaN)
    assert_eq!(warned.map, unguarded.map);
    let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&warned.output), bits(&unguarded.output));
}

/// A switch-rate collapse (not NaN) also degrades to dense: feed a layer
/// whose policy suddenly marks everything insensitive against a tight
/// calibrated band.
#[test]
fn switch_rate_collapse_trips_after_streak_and_recovers() {
    let mut r = seeded(106);
    let w = rng::normal(&mut r, &[16, 32], 0.0, 0.2);
    let b = rng::normal(&mut r, &[16], 0.0, 0.05);
    let layer = DualModuleLayer::learn(&w, &b, Activation::Relu, 8, 200, &mut r);
    let x = rng::normal(&mut r, &[32], 0.0, 1.0);

    let cfg = GuardConfig {
        ewma_alpha: 1.0,
        trip_after: 2,
        clear_after: 2,
        ..GuardConfig::fallback_dense(duet_core::SwitchRateBand { lo: 0.0, hi: 0.8 })
    };
    let mut guard = SpeculationGuard::new(cfg);

    // θ = +∞ marks every neuron insensitive: fraction 1.0, out of band
    let collapse = SwitchingPolicy::relu(f32::INFINITY);
    let first = layer.forward_guarded(&x, &collapse, &mut guard);
    assert_eq!(first.report.outputs_exact, 0, "not yet tripped");
    let second = layer.forward_guarded(&x, &collapse, &mut guard);
    assert!(guard.is_tripped());
    assert_eq!(
        second.report.outputs_exact, 16,
        "tripped layer runs fully dense"
    );
    let reference = layer.forward(&x, &SwitchingPolicy::never_switch());
    assert_eq!(
        second.pre_activation.data(),
        reference.pre_activation.data()
    );

    // healthy maps clear the trip after the hysteresis run
    let healthy = SwitchingPolicy::relu(0.0);
    layer.forward_guarded(&x, &healthy, &mut guard);
    layer.forward_guarded(&x, &healthy, &mut guard);
    assert!(!guard.is_tripped(), "guard must recover");
    let after = layer.forward_guarded(&x, &healthy, &mut guard);
    let plain = layer.forward(&x, &healthy);
    assert_eq!(after.pre_activation.data(), plain.pre_activation.data());
    assert_eq!(after.map, plain.map);
}
