//! Property-style tests of the dual-module algorithm's invariants,
//! driven by the in-tree seeded RNG (no external property-testing crate).

use duet_core::{distill, ApproxConfig, DualModuleLayer, SwitchingPolicy, TernaryProjection};
use duet_nn::Activation;
use duet_tensor::{ops, rng, Tensor};

const CASES: u64 = 24;

/// The ternary projection is linear: P(αx + βy) = αPx + βPy.
#[test]
fn projection_linearity() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let alpha = r.random_range(-3.0f32..3.0);
        let beta = r.random_range(-3.0f32..3.0);
        let p = TernaryProjection::sample(24, 8, &mut r);
        let x = rng::normal(&mut r, &[24], 0.0, 1.0);
        let y = rng::normal(&mut r, &[24], 0.0, 1.0);
        let combo = ops::add(&ops::scale(&x, alpha), &ops::scale(&y, beta));
        let lhs = p.project(&combo);
        let rhs = ops::add(
            &ops::scale(&p.project(&x), alpha),
            &ops::scale(&p.project(&y), beta),
        );
        for (a, b) in lhs.data().iter().zip(rhs.data()) {
            assert!((a - b).abs() < 1e-2, "seed {seed}: {a} vs {b}");
        }
    }
}

/// Projection entries are exactly ternary and the density is near 1/3
/// for any seed.
#[test]
fn projection_structure() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let p = TernaryProjection::sample(120, 30, &mut r);
        assert!(p.entries().iter().all(|&e| (-1..=1).contains(&e)));
        let d = p.density();
        assert!((0.2..0.5).contains(&d), "seed {seed}: density {d}");
    }
}

/// Distillation of a rank-deficient teacher on matching calibration
/// data never fails and never produces NaNs (the ridge keeps the
/// normal equations positive definite).
#[test]
fn distillation_numerically_robust() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let latent = r.random_range(1usize..6);
        let d = 16;
        let basis = rng::normal(&mut r, &[d, latent], 0.0, 1.0);
        let mut acts = Tensor::zeros(&[40, d]);
        for i in 0..40 {
            let z = rng::normal(&mut r, &[latent], 0.0, 1.0);
            let x = ops::gemv(&basis, &z);
            acts.row_mut(i).copy_from_slice(x.data());
        }
        let w = rng::normal(&mut r, &[8, d], 0.0, 0.3);
        let b = Tensor::zeros(&[8]);
        let student = distill::distill_linear_from_activations(
            &w,
            &b,
            ApproxConfig::paper_default(8),
            &acts,
            &mut r,
        );
        let out = student.forward(&Tensor::from_vec(acts.row(0).to_vec(), &[d]));
        assert!(out.data().iter().all(|v| v.is_finite()), "seed {seed}");
    }
}

/// Dual-layer guarantee: at θ = −∞ (ReLU) the output matches the
/// dense reference bit-for-bit in the sensitive sense, for any layer.
#[test]
fn conservative_threshold_is_lossless() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let w = rng::normal(&mut r, &[10, 14], 0.0, 0.4);
        let b = rng::normal(&mut r, &[10], 0.0, 0.1);
        let layer = DualModuleLayer::learn(&w, &b, Activation::Relu, 7, 60, &mut r);
        let x = rng::normal(&mut r, &[14], 0.0, 1.0);
        let out = layer.forward(&x, &SwitchingPolicy::relu(f32::NEG_INFINITY));
        let dense = layer.forward_dense(&x);
        for (a, b) in out.output.data().iter().zip(dense.data()) {
            assert!((a - b).abs() < 1e-4, "seed {seed}");
        }
        assert_eq!(out.report.outputs_exact, 10, "seed {seed}");
    }
}

/// Savings accounting is internally consistent for any threshold:
/// executor MACs ≤ dense MACs, exact outputs ≤ total outputs, and
/// the approximate fraction matches the map.
#[test]
fn report_consistency() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let theta = r.random_range(-3.0f32..3.0);
        let w = rng::normal(&mut r, &[12, 20], 0.0, 0.3);
        let b = Tensor::zeros(&[12]);
        let layer = DualModuleLayer::learn(&w, &b, Activation::Relu, 10, 80, &mut r);
        let x = rng::normal(&mut r, &[20], 0.0, 1.0);
        let out = layer.forward(&x, &SwitchingPolicy::relu(theta));
        assert!(out.report.executor_macs <= out.report.dense_macs);
        assert!(out.report.outputs_exact <= out.report.outputs_total);
        let frac = out.report.approximate_fraction();
        let map_frac = out.map.insensitive_fraction();
        assert!((frac - map_frac).abs() < 1e-9, "seed {seed}");
        assert!(out.report.flops_reduction() >= 0.0, "seed {seed}");
    }
}

/// Sigmoid and tanh share the |y| > θ rule; their maps agree for the
/// same threshold.
#[test]
fn saturation_rules_agree() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let n = r.random_range(1usize..64);
        let theta = r.random_range(0.5f32..4.0);
        let y = rng::uniform(&mut r, &[n], -6.0, 6.0);
        let sig = SwitchingPolicy::sigmoid(theta).map(&y);
        let tan = SwitchingPolicy::tanh(theta).map(&y);
        assert_eq!(sig, tan, "seed {seed}");
    }
}
