//! Multi-layer dual-module CNN execution with OMap → IMap chaining.
//!
//! §III-C: "we pay the overhead of dynamic switching once, but the
//! switching map is used twice for the current layer's OMap and the next
//! layer's IMap." This module chains [`DualConvLayer`]s so each layer's
//! corrected output map feeds the next layer's input-sparsity skipping,
//! with optional pooling stages between them.

use crate::dual_conv::DualConvLayer;
use crate::metrics::SavingsReport;
use crate::switching::{SwitchingMap, SwitchingPolicy};
use duet_tensor::Tensor;

/// A stage in a dual-module CNN. The conv variant is boxed so the enum
/// stays small (a `DualConvLayer` carries its weights).
#[derive(Debug, Clone)]
enum Stage {
    Conv(Box<DualConvLayer>),
    Pool(usize),
}

/// Per-layer record from a chained forward pass.
#[derive(Debug, Clone)]
pub struct ChainLayerRecord {
    /// Layer index among conv stages.
    pub layer: usize,
    /// Whether an IMap from the previous layer was available.
    pub had_imap: bool,
    /// This layer's savings.
    pub report: SavingsReport,
}

/// Result of a chained forward pass.
#[derive(Debug, Clone)]
pub struct ChainOutput {
    /// Final feature map.
    pub output: Tensor,
    /// Per-conv-layer records.
    pub layers: Vec<ChainLayerRecord>,
}

impl ChainOutput {
    /// Aggregate savings over all conv layers.
    pub fn total_report(&self) -> SavingsReport {
        self.layers.iter().map(|l| l.report).sum()
    }
}

/// A stack of dual-module conv layers (+ pooling) executed with
/// map chaining.
#[derive(Debug, Clone, Default)]
pub struct DualConvNet {
    stages: Vec<Stage>,
}

impl DualConvNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self { stages: Vec::new() }
    }

    /// Appends a dual conv layer.
    pub fn push_conv(&mut self, layer: DualConvLayer) -> &mut Self {
        self.stages.push(Stage::Conv(Box::new(layer)));
        self
    }

    /// Appends a max-pool stage with the given square window.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn push_pool(&mut self, window: usize) -> &mut Self {
        assert!(window > 0, "pool window must be positive");
        self.stages.push(Stage::Pool(window));
        self
    }

    /// Number of conv stages.
    pub fn conv_count(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| matches!(s, Stage::Conv(_)))
            .count()
    }

    /// Runs the stack on a `[C, H, W]` input. Each conv layer receives
    /// the previous conv's corrected OMap as its IMap — transformed
    /// through any pooling in between (a pooled position is effectual if
    /// *any* element of its window was).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches between stages.
    pub fn forward(&self, input: &Tensor, policy: &SwitchingPolicy) -> ChainOutput {
        let mut cur = input.clone();
        let mut imap: Option<SwitchingMap> = None;
        let mut layers = Vec::new();
        let mut conv_idx = 0usize;
        for stage in &self.stages {
            match stage {
                Stage::Conv(layer) => {
                    let _layer_span =
                        duet_obs::span_lazy("core.dual.conv_layer", || format!("conv{conv_idx}"));
                    let out = layer.forward(&cur, policy, imap.as_ref());
                    layers.push(ChainLayerRecord {
                        layer: conv_idx,
                        had_imap: imap.is_some(),
                        report: out.report,
                    });
                    conv_idx += 1;
                    cur = out.output;
                    imap = Some(out.omap);
                }
                Stage::Pool(win) => {
                    let (pooled, pooled_map) = pool_with_map(&cur, imap.as_ref(), *win);
                    cur = pooled;
                    imap = pooled_map;
                }
            }
        }
        ChainOutput {
            output: cur,
            layers,
        }
    }
}

/// Max-pools a `[C, H, W]` tensor and (if given) its effectuality map.
/// The pooled map marks a position effectual when any element of its
/// window was effectual — conservative, so input skipping stays exact.
fn pool_with_map(
    x: &Tensor,
    map: Option<&SwitchingMap>,
    win: usize,
) -> (Tensor, Option<SwitchingMap>) {
    assert_eq!(x.shape().rank(), 3, "pooling expects [C, H, W]");
    let (c, h, w) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    assert!(h >= win && w >= win, "input smaller than pool window");
    let (oh, ow) = (h / win, w / win);
    let mut out = Tensor::zeros(&[c, oh, ow]);
    // pooled positions are visited in flat index order, so the packed map
    // is built bit by bit with no intermediate flag buffer
    let mut out_map = map.map(|_| SwitchingMap::empty());
    for ci in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut any = false;
                for dy in 0..win {
                    for dx in 0..win {
                        let iy = oy * win + dy;
                        let ix = ox * win + dx;
                        best = best.max(x.at(&[ci, iy, ix]));
                        if let Some(m) = map {
                            any |= m.is_sensitive((ci * h + iy) * w + ix);
                        }
                    }
                }
                out.set(&[ci, oy, ox], best);
                if let Some(om) = out_map.as_mut() {
                    om.push(any);
                }
            }
        }
    }
    (out, out_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::im2col::ConvGeometry;
    use duet_tensor::rng::{self, seeded};

    fn geom(c: usize, s: usize) -> ConvGeometry {
        ConvGeometry {
            in_channels: c,
            in_h: s,
            in_w: s,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        }
    }

    fn net(seed: u64) -> (DualConvNet, duet_tensor::rng::Rng) {
        let mut r = seeded(seed);
        let f1 = rng::normal(&mut r, &[6, 2, 3, 3], 0.0, 0.3);
        let f2 = rng::normal(&mut r, &[4, 6, 3, 3], 0.0, 0.2);
        let l1 = DualConvLayer::learn(geom(2, 8), &f1, &Tensor::zeros(&[6]), 12, 300, &mut r);
        let l2 = DualConvLayer::learn(geom(6, 4), &f2, &Tensor::zeros(&[4]), 24, 300, &mut r);
        let mut n = DualConvNet::new();
        n.push_conv(l1);
        n.push_pool(2);
        n.push_conv(l2);
        (n, r)
    }

    #[test]
    fn chaining_provides_imap_to_second_layer() {
        let (n, mut r) = net(1);
        let x = rng::normal(&mut r, &[2, 8, 8], 0.0, 1.0);
        let out = n.forward(&x, &SwitchingPolicy::relu(0.0));
        assert_eq!(out.layers.len(), 2);
        assert!(!out.layers[0].had_imap, "first layer has no IMap");
        assert!(
            out.layers[1].had_imap,
            "second layer must get the chained IMap"
        );
        assert_eq!(n.conv_count(), 2);
    }

    #[test]
    fn imap_chaining_reduces_second_layer_macs() {
        let (n, mut r) = net(2);
        let x = rng::normal(&mut r, &[2, 8, 8], 0.0, 1.0);
        let chained = n.forward(&x, &SwitchingPolicy::relu(0.0));

        // rebuild the same net but break the chain by rebuilding stages
        // and forwarding layer by layer without maps
        let (n2, _) = net(2);
        let mut cur = x.clone();
        let mut unchained_macs = 0u64;
        let mut idx = 0;
        for stage in &n2.stages {
            match stage {
                Stage::Conv(l) => {
                    let o = l.forward(&cur, &SwitchingPolicy::relu(0.0), None);
                    unchained_macs += o.report.executor_macs;
                    cur = o.output;
                    idx += 1;
                }
                Stage::Pool(w) => {
                    let (p, _) = pool_with_map(&cur, None, *w);
                    cur = p;
                }
            }
        }
        let _ = idx;
        let chained_macs: u64 = chained.layers.iter().map(|l| l.report.executor_macs).sum();
        assert!(
            chained_macs <= unchained_macs,
            "chained {chained_macs} vs unchained {unchained_macs}"
        );
    }

    #[test]
    fn chained_output_matches_unchained_values() {
        // IMap skipping only skips exact zeros, so outputs are identical.
        let (n, mut r) = net(3);
        let x = rng::normal(&mut r, &[2, 8, 8], 0.0, 1.0);
        let chained = n.forward(&x, &SwitchingPolicy::relu(0.0));

        let (n2, _) = net(3);
        let mut cur = x;
        for stage in &n2.stages {
            match stage {
                Stage::Conv(l) => {
                    cur = l.forward(&cur, &SwitchingPolicy::relu(0.0), None).output;
                }
                Stage::Pool(w) => {
                    cur = pool_with_map(&cur, None, *w).0;
                }
            }
        }
        for (a, b) in chained.output.data().iter().zip(cur.data()) {
            assert_eq!(a, b, "chaining changed a value");
        }
    }

    #[test]
    fn pool_map_is_conservative() {
        let x = Tensor::from_fn(&[1, 4, 4], |i| i as f32);
        let flags: Vec<bool> = (0..16).map(|i| i == 5).collect(); // one effectual element
        let m = SwitchingMap::from_flags(flags);
        let (_, pooled) = pool_with_map(&x, Some(&m), 2);
        let pm = pooled.unwrap();
        // element 5 = (1,1) lands in pooled window (0,0)
        assert!(pm.is_sensitive(0));
        assert!(!pm.is_sensitive(1));
        assert!(!pm.is_sensitive(2));
        assert!(!pm.is_sensitive(3));
    }

    #[test]
    fn total_report_sums_layers() {
        let (n, mut r) = net(4);
        let x = rng::normal(&mut r, &[2, 8, 8], 0.0, 1.0);
        let out = n.forward(&x, &SwitchingPolicy::relu(0.0));
        let total = out.total_report();
        let manual: u64 = out.layers.iter().map(|l| l.report.dense_macs).sum();
        assert_eq!(total.dense_macs, manual);
    }
}
