//! Threshold-based dynamic switching (Eq. 2–3).
//!
//! Given the approximate pre-activations `y'`, the switching map `m`
//! marks which neurons are **sensitive** (`m_i = 1`: must be recomputed by
//! the Executor) and which are **insensitive** (`m_i = 0`: keep the cheap
//! approximate value):
//!
//! * ReLU: `y'_i < θ  ⇒  m_i = 0` (deep negative pre-activations die in
//!   ReLU anyway),
//! * sigmoid / tanh: `|y'_i| > θ  ⇒  m_i = 0` (saturation regions).

use duet_nn::Activation;
use duet_tensor::Tensor;

/// A switching decision rule: activation type + threshold θ.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SwitchingPolicy {
    /// The activation whose insensitive region the rule exploits.
    pub activation: Activation,
    /// Threshold θ (tuned offline; see [`crate::tuning`]).
    pub theta: f32,
}

impl SwitchingPolicy {
    /// ReLU policy: outputs with `y' < theta` are insensitive.
    pub fn relu(theta: f32) -> Self {
        Self {
            activation: Activation::Relu,
            theta,
        }
    }

    /// Sigmoid policy: outputs with `|y'| > theta` are insensitive.
    pub fn sigmoid(theta: f32) -> Self {
        Self {
            activation: Activation::Sigmoid,
            theta,
        }
    }

    /// Tanh policy: outputs with `|y'| > theta` are insensitive.
    pub fn tanh(theta: f32) -> Self {
        Self {
            activation: Activation::Tanh,
            theta,
        }
    }

    /// A policy that never switches (every output sensitive) — the
    /// single-module baseline.
    pub fn never_switch() -> Self {
        Self {
            activation: Activation::Identity,
            theta: 0.0,
        }
    }

    /// Whether a single approximate pre-activation is sensitive (must be
    /// recomputed exactly).
    pub fn is_sensitive(&self, y_approx: f32) -> bool {
        !self.activation.is_insensitive(y_approx, self.theta)
    }

    /// Generates the switching map for a vector of approximate
    /// pre-activations.
    pub fn map(&self, y_approx: &Tensor) -> SwitchingMap {
        SwitchingMap {
            sensitive: y_approx
                .data()
                .iter()
                .map(|&y| self.is_sensitive(y))
                .collect(),
        }
    }
}

/// A binary switching map: `sensitive[i] == true` means neuron *i* needs
/// the Executor (the paper's `m_i = 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SwitchingMap {
    sensitive: Vec<bool>,
}

impl SwitchingMap {
    /// Builds a map from explicit flags.
    pub fn from_flags(sensitive: Vec<bool>) -> Self {
        Self { sensitive }
    }

    /// An all-sensitive map of length `n` (dense execution).
    pub fn all_sensitive(n: usize) -> Self {
        Self {
            sensitive: vec![true; n],
        }
    }

    /// Number of neurons covered.
    pub fn len(&self) -> usize {
        self.sensitive.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.sensitive.is_empty()
    }

    /// Whether neuron `i` is sensitive.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_sensitive(&self, i: usize) -> bool {
        self.sensitive[i]
    }

    /// The raw flags.
    pub fn flags(&self) -> &[bool] {
        &self.sensitive
    }

    /// Count of sensitive neurons (Executor workload).
    pub fn sensitive_count(&self) -> usize {
        self.sensitive.iter().filter(|&&s| s).count()
    }

    /// Fraction of insensitive neurons — the computation-saving
    /// opportunity.
    pub fn insensitive_fraction(&self) -> f64 {
        if self.sensitive.is_empty() {
            return 0.0;
        }
        1.0 - self.sensitive_count() as f64 / self.len() as f64
    }

    /// Iterator over sensitive indices.
    pub fn sensitive_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.sensitive
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i))
    }

    /// Marks a neuron insensitive — the §III-C correction step: "if a
    /// predicted effectual neuron turns out to be ineffectual after ReLU,
    /// we will update the switching index of that neuron from 1 to 0".
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn correct_to_insensitive(&mut self, i: usize) {
        self.sensitive[i] = false;
    }

    /// Mixes accurate and approximate pre-activations per Eq. (2):
    /// `y = y ⊙ m + y' ⊙ (1 − m)`.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn mix(&self, accurate: &Tensor, approximate: &Tensor) -> Tensor {
        assert_eq!(accurate.len(), self.len(), "accurate length mismatch");
        assert_eq!(approximate.len(), self.len(), "approximate length mismatch");
        Tensor::from_vec(
            self.sensitive
                .iter()
                .zip(accurate.data().iter().zip(approximate.data()))
                .map(|(&s, (&a, &ap))| if s { a } else { ap })
                .collect(),
            accurate.shape().dims(),
        )
    }

    /// Packs the map into bits (one bit per neuron, little-endian within a
    /// byte) — the format stored in the GLB; used for memory-traffic
    /// accounting.
    pub fn packed_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len().div_ceil(8)];
        for (i, &s) in self.sensitive.iter().enumerate() {
            if s {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Unpacks a map of known length from packed bits.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too short for `len`.
    pub fn from_packed(bytes: &[u8], len: usize) -> Self {
        assert!(bytes.len() * 8 >= len, "packed buffer too short");
        Self {
            sensitive: (0..len).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_rule_matches_eq3() {
        let p = SwitchingPolicy::relu(0.0);
        let y = Tensor::from_vec(vec![-1.0, -0.01, 0.0, 0.5], &[4]);
        let m = p.map(&y);
        assert_eq!(m.flags(), &[false, false, true, true]);
    }

    #[test]
    fn sigmoid_rule_matches_eq3() {
        let p = SwitchingPolicy::sigmoid(3.0);
        let y = Tensor::from_vec(vec![-5.0, -1.0, 0.0, 2.9, 3.1], &[5]);
        let m = p.map(&y);
        assert_eq!(m.flags(), &[false, true, true, true, false]);
    }

    #[test]
    fn never_switch_keeps_everything_sensitive() {
        let p = SwitchingPolicy::never_switch();
        let y = Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[3]);
        assert_eq!(p.map(&y).sensitive_count(), 3);
    }

    #[test]
    fn mix_selects_by_flag() {
        let m = SwitchingMap::from_flags(vec![true, false, true]);
        let acc = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let app = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        assert_eq!(m.mix(&acc, &app).data(), &[1.0, 20.0, 3.0]);
    }

    #[test]
    fn counting_and_fraction() {
        let m = SwitchingMap::from_flags(vec![true, false, false, false]);
        assert_eq!(m.sensitive_count(), 1);
        assert!((m.insensitive_fraction() - 0.75).abs() < 1e-9);
        assert_eq!(m.sensitive_indices().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn correction_step() {
        let mut m = SwitchingMap::from_flags(vec![true, true]);
        m.correct_to_insensitive(0);
        assert_eq!(m.flags(), &[false, true]);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let flags: Vec<bool> = (0..19).map(|i| i % 3 == 0).collect();
        let m = SwitchingMap::from_flags(flags.clone());
        let packed = m.packed_bytes();
        assert_eq!(packed.len(), 3);
        let back = SwitchingMap::from_packed(&packed, 19);
        assert_eq!(back.flags(), &flags[..]);
    }

    #[test]
    fn higher_relu_theta_means_more_insensitive() {
        let y = Tensor::from_fn(&[100], |i| i as f32 / 50.0 - 1.0); // [-1, 1)
        let low = SwitchingPolicy::relu(-0.5).map(&y).insensitive_fraction();
        let high = SwitchingPolicy::relu(0.5).map(&y).insensitive_fraction();
        assert!(high > low);
    }

    #[test]
    fn lower_tanh_theta_means_more_insensitive() {
        let y = Tensor::from_fn(&[100], |i| i as f32 / 10.0 - 5.0); // [-5, 5)
        let tight = SwitchingPolicy::tanh(1.0).map(&y).insensitive_fraction();
        let loose = SwitchingPolicy::tanh(4.0).map(&y).insensitive_fraction();
        assert!(tight > loose);
    }
}
