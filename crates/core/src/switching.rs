//! Threshold-based dynamic switching (Eq. 2–3).
//!
//! Given the approximate pre-activations `y'`, the switching map `m`
//! marks which neurons are **sensitive** (`m_i = 1`: must be recomputed by
//! the Executor) and which are **insensitive** (`m_i = 0`: keep the cheap
//! approximate value):
//!
//! * ReLU / GELU: `y'_i < θ  ⇒  m_i = 0` (deep negative pre-activations
//!   die in the one-sided tail anyway),
//! * sigmoid / tanh: `|y'_i| > θ  ⇒  m_i = 0` (saturation regions),
//! * magnitude (identity): `|y'_i| < θ  ⇒  m_i = 0` — the
//!   Precision-Gating-style rule for projections feeding scale-bounded
//!   mixers such as attention logits.
//!
//! The map is stored bit-packed in `u64` words — the same one-bit-per-
//! neuron artifact the hardware keeps in the GLB. Bit `i` lives in word
//! `i / 64` at position `i % 64`; serialized little-endian this is
//! exactly the byte layout of [`SwitchingMap::packed_bytes`] (bit `i` in
//! byte `i / 8` at position `i % 8`).

use duet_nn::Activation;
use duet_tensor::Tensor;

/// A switching decision rule: activation type + threshold θ.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SwitchingPolicy {
    /// The activation whose insensitive region the rule exploits.
    pub activation: Activation,
    /// Threshold θ (tuned offline; see [`crate::tuning`]).
    pub theta: f32,
}

impl SwitchingPolicy {
    /// ReLU policy: outputs with `y' < theta` are insensitive.
    pub fn relu(theta: f32) -> Self {
        Self {
            activation: Activation::Relu,
            theta,
        }
    }

    /// Sigmoid policy: outputs with `|y'| > theta` are insensitive.
    pub fn sigmoid(theta: f32) -> Self {
        Self {
            activation: Activation::Sigmoid,
            theta,
        }
    }

    /// Tanh policy: outputs with `|y'| > theta` are insensitive.
    pub fn tanh(theta: f32) -> Self {
        Self {
            activation: Activation::Tanh,
            theta,
        }
    }

    /// GELU policy: outputs with `y' < theta` are insensitive — the same
    /// one-sided band as ReLU (deep-negative pre-activations die in the
    /// GELU tail).
    pub fn gelu(theta: f32) -> Self {
        Self {
            activation: Activation::Gelu,
            theta,
        }
    }

    /// Magnitude policy for linear projections feeding scale-bounded
    /// mixers (attention Q/K/V/output GEMVs): outputs with
    /// `|y'| < theta` are insensitive — small entries barely move the
    /// scaled-dot-product softmax, so the cheap approximate value is
    /// kept. `theta <= 0` keeps everything sensitive (dense).
    pub fn magnitude(theta: f32) -> Self {
        Self {
            activation: Activation::Identity,
            theta,
        }
    }

    /// A policy that never switches (every output sensitive) — the
    /// single-module baseline.
    pub fn never_switch() -> Self {
        Self {
            activation: Activation::Identity,
            theta: 0.0,
        }
    }

    /// Whether a single approximate pre-activation is sensitive (must be
    /// recomputed exactly).
    pub fn is_sensitive(&self, y_approx: f32) -> bool {
        !self.activation.is_insensitive(y_approx, self.theta)
    }

    /// Generates the switching map for a vector of approximate
    /// pre-activations.
    pub fn map(&self, y_approx: &Tensor) -> SwitchingMap {
        y_approx
            .data()
            .iter()
            .map(|&y| self.is_sensitive(y))
            .collect()
    }
}

/// A binary switching map: bit `i` set means neuron *i* needs the
/// Executor (the paper's `m_i = 1`).
///
/// Storage is bit-packed `u64` words. Invariant: bits at positions
/// `>= len` in the last word are always zero, so derived equality and
/// word-level popcounts are exact.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SwitchingMap {
    words: Vec<u64>,
    len: usize,
}

/// Mask selecting the live bits of the last word of an `n`-bit map.
#[inline]
fn tail_mask(n: usize) -> u64 {
    match n % 64 {
        0 => u64::MAX,
        r => (1u64 << r) - 1,
    }
}

impl SwitchingMap {
    /// An empty map (zero neurons) — the seed for bit-wise builders.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a map from explicit flags.
    pub fn from_flags(sensitive: Vec<bool>) -> Self {
        sensitive.into_iter().collect()
    }

    /// An all-sensitive map of length `n` (dense execution).
    pub fn all_sensitive(n: usize) -> Self {
        let mut words = vec![u64::MAX; n.div_ceil(64)];
        if let Some(last) = words.last_mut() {
            *last &= tail_mask(n);
        }
        Self { words, len: n }
    }

    /// An all-insensitive map of length `n` (nothing to execute) — e.g.
    /// the identity for [`SwitchingMap::union_in_place`].
    pub fn all_insensitive(n: usize) -> Self {
        Self {
            words: vec![0u64; n.div_ceil(64)],
            len: n,
        }
    }

    /// Number of neurons covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words backing the map (bit `i` of the map is bit
    /// `i % 64` of word `i / 64`; tail bits past `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Whether neuron `i` is sensitive.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_sensitive(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "index {i} out of range for map of {}",
            self.len
        );
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Appends one neuron's flag.
    pub fn push(&mut self, sensitive: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if sensitive {
            *self.words.last_mut().expect("word just ensured") |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Appends another map's flags (bit-level concatenation; `other` need
    /// not be word-aligned).
    pub fn extend_from_map(&mut self, other: &SwitchingMap) {
        if self.len.is_multiple_of(64) {
            // word-aligned fast path: tail bits of `other` are already zero
            self.words.extend_from_slice(&other.words);
            self.len += other.len;
            self.words.truncate(self.len.div_ceil(64));
        } else {
            self.extend(other.iter());
        }
    }

    /// Iterator over the per-neuron flags.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| self.words[i / 64] >> (i % 64) & 1 == 1)
    }

    /// Count of sensitive neurons (Executor workload) — a popcount over
    /// the packed words.
    pub fn sensitive_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Count of sensitive neurons in `start..end` — e.g. one channel's
    /// workload within a channel-major CONV map.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn sensitive_count_in(&self, start: usize, end: usize) -> usize {
        assert!(start <= end && end <= self.len, "range out of bounds");
        if start == end {
            return 0;
        }
        let (wa, wb) = (start / 64, (end - 1) / 64);
        let lo = u64::MAX << (start % 64);
        let hi = tail_mask(end);
        if wa == wb {
            return (self.words[wa] & lo & hi).count_ones() as usize;
        }
        let mut n = (self.words[wa] & lo).count_ones() as usize;
        for w in &self.words[wa + 1..wb] {
            n += w.count_ones() as usize;
        }
        n + (self.words[wb] & hi).count_ones() as usize
    }

    /// Per-word popcounts over the packed backing words (tail bits past
    /// `len` are invariantly zero, so the last count covers live bits
    /// only). This is the word-granular form of the Executor's workload
    /// accounting: summing it is [`SwitchingMap::sensitive_count`].
    pub fn popcount_words(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().map(|w| w.count_ones())
    }

    /// Iterator over `(word_index, word)` pairs, **skipping all-zero
    /// words** — the run-length skip of all-insensitive spans that makes
    /// sparse execution cost O(popcount) instead of O(bits). Bit `b` of a
    /// yielded word is neuron `word_index * 64 + b`.
    pub fn iter_words(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter_map(|(i, &w)| (w != 0).then_some((i, w)))
    }

    /// Calls `f` for every sensitive index in `start..end`, ascending —
    /// word-at-a-time (masked first/last word, zero words skipped,
    /// `trailing_zeros` extraction inside a word). This is the ranged
    /// companion of [`SwitchingMap::iter_words`] for consumers whose rows
    /// are not word-aligned (e.g. one channel of a channel-major CONV
    /// map).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn for_each_sensitive_in(&self, start: usize, end: usize, mut f: impl FnMut(usize)) {
        assert!(start <= end && end <= self.len, "range out of bounds");
        if start == end {
            return;
        }
        let (wa, wb) = (start / 64, (end - 1) / 64);
        let lo = u64::MAX << (start % 64);
        let hi = tail_mask(end);
        for wi in wa..=wb {
            let mut w = self.words[wi];
            if wi == wa {
                w &= lo;
            }
            if wi == wb {
                w &= hi;
            }
            while w != 0 {
                f(wi * 64 + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
    }

    /// Fraction of insensitive neurons — the computation-saving
    /// opportunity.
    pub fn insensitive_fraction(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        1.0 - self.sensitive_count() as f64 / self.len as f64
    }

    /// Iterator over sensitive indices, in ascending order.
    pub fn sensitive_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            std::iter::successors((w != 0).then_some(w), |&rest| {
                let next = rest & (rest - 1); // clear lowest set bit
                (next != 0).then_some(next)
            })
            .map(move |bits| wi * 64 + bits.trailing_zeros() as usize)
        })
    }

    /// Marks a neuron insensitive — the §III-C correction step: "if a
    /// predicted effectual neuron turns out to be ineffectual after ReLU,
    /// we will update the switching index of that neuron from 1 to 0".
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn correct_to_insensitive(&mut self, i: usize) {
        assert!(
            i < self.len,
            "index {i} out of range for map of {}",
            self.len
        );
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// ORs another map into this one — the touched-row union of a
    /// weight-stationary batch schedule.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn union_in_place(&mut self, other: &SwitchingMap) {
        assert_eq!(self.len, other.len, "union length mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Mixes accurate and approximate pre-activations per Eq. (2):
    /// `y = y ⊙ m + y' ⊙ (1 − m)`.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn mix(&self, accurate: &Tensor, approximate: &Tensor) -> Tensor {
        assert_eq!(accurate.len(), self.len(), "accurate length mismatch");
        assert_eq!(approximate.len(), self.len(), "approximate length mismatch");
        let mut out = approximate.clone();
        let od = out.data_mut();
        let ad = accurate.data();
        for (wi, &w) in self.words.iter().enumerate() {
            let base = wi * 64;
            let span = 64.min(self.len - base);
            let full = if span == 64 {
                u64::MAX
            } else {
                (1u64 << span) - 1
            };
            if w == full {
                // fully sensitive word: copy the accurate chunk wholesale
                od[base..base + span].copy_from_slice(&ad[base..base + span]);
            } else if w != 0 {
                let mut bits = w;
                while bits != 0 {
                    let i = base + bits.trailing_zeros() as usize;
                    od[i] = ad[i];
                    bits &= bits - 1;
                }
            }
        }
        out
    }

    /// Packs the map into bits (one bit per neuron, little-endian within a
    /// byte) — the format stored in the GLB and the canonical on-disk
    /// codec of `duet-sim`'s trace blobs.
    pub fn packed_bytes(&self) -> Vec<u8> {
        self.words
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .take(self.len.div_ceil(8))
            .collect()
    }

    /// Unpacks a map of known length from packed bits. Slack bits past
    /// `len` in the buffer are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too short for `len`.
    pub fn from_packed(bytes: &[u8], len: usize) -> Self {
        assert!(bytes.len() * 8 >= len, "packed buffer too short");
        let mut words = vec![0u64; len.div_ceil(64)];
        for (i, &b) in bytes.iter().take(len.div_ceil(8)).enumerate() {
            words[i / 8] |= (b as u64) << (8 * (i % 8));
        }
        if let Some(last) = words.last_mut() {
            *last &= tail_mask(len);
        }
        Self { words, len }
    }
}

impl FromIterator<bool> for SwitchingMap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut m = SwitchingMap::empty();
        m.extend(iter);
        m
    }
}

impl Extend<bool> for SwitchingMap {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for s in iter {
            self.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags_of(m: &SwitchingMap) -> Vec<bool> {
        m.iter().collect()
    }

    #[test]
    fn relu_rule_matches_eq3() {
        let p = SwitchingPolicy::relu(0.0);
        let y = Tensor::from_vec(vec![-1.0, -0.01, 0.0, 0.5], &[4]);
        let m = p.map(&y);
        assert_eq!(flags_of(&m), &[false, false, true, true]);
    }

    #[test]
    fn sigmoid_rule_matches_eq3() {
        let p = SwitchingPolicy::sigmoid(3.0);
        let y = Tensor::from_vec(vec![-5.0, -1.0, 0.0, 2.9, 3.1], &[5]);
        let m = p.map(&y);
        assert_eq!(flags_of(&m), &[false, true, true, true, false]);
    }

    #[test]
    fn never_switch_keeps_everything_sensitive() {
        let p = SwitchingPolicy::never_switch();
        let y = Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[3]);
        assert_eq!(p.map(&y).sensitive_count(), 3);
    }

    #[test]
    fn gelu_rule_is_one_sided_like_relu() {
        let p = SwitchingPolicy::gelu(0.0);
        let y = Tensor::from_vec(vec![-1.0, -0.01, 0.0, 0.5], &[4]);
        assert_eq!(flags_of(&p.map(&y)), &[false, false, true, true]);
        // θ = −∞ keeps everything sensitive (dense)
        let dense = SwitchingPolicy::gelu(f32::NEG_INFINITY);
        assert_eq!(dense.map(&y).sensitive_count(), 4);
    }

    #[test]
    fn magnitude_rule_gates_small_entries() {
        let p = SwitchingPolicy::magnitude(0.5);
        let y = Tensor::from_vec(vec![-1.0, -0.2, 0.0, 0.4, 0.6], &[5]);
        assert_eq!(flags_of(&p.map(&y)), &[true, false, false, false, true]);
        // θ = 0 and θ = −∞ are both all-sensitive — never_switch() is
        // literally magnitude(0.0)
        assert_eq!(
            SwitchingPolicy::magnitude(0.0),
            SwitchingPolicy::never_switch()
        );
        let dense = SwitchingPolicy::magnitude(f32::NEG_INFINITY);
        assert_eq!(dense.map(&y).sensitive_count(), 5);
    }

    #[test]
    fn mix_selects_by_flag() {
        let m = SwitchingMap::from_flags(vec![true, false, true]);
        let acc = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let app = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        assert_eq!(m.mix(&acc, &app).data(), &[1.0, 20.0, 3.0]);
    }

    #[test]
    fn mix_handles_multi_word_maps() {
        // spans three words with a fully-sensitive middle word
        let n = 150;
        let flags: Vec<bool> = (0..n)
            .map(|i| (64..128).contains(&i) || i % 7 == 0)
            .collect();
        let m = SwitchingMap::from_flags(flags.clone());
        let acc = Tensor::from_fn(&[n], |i| i as f32);
        let app = Tensor::from_fn(&[n], |i| -(i as f32) - 1.0);
        let mixed = m.mix(&acc, &app);
        for (i, &f) in flags.iter().enumerate() {
            let want = if f { acc.data()[i] } else { app.data()[i] };
            assert_eq!(mixed.data()[i], want, "index {i}");
        }
    }

    #[test]
    fn counting_and_fraction() {
        let m = SwitchingMap::from_flags(vec![true, false, false, false]);
        assert_eq!(m.sensitive_count(), 1);
        assert!((m.insensitive_fraction() - 0.75).abs() < 1e-9);
        assert_eq!(m.sensitive_indices().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn sensitive_indices_cross_word_boundaries() {
        let flags: Vec<bool> = (0..200).map(|i| i % 63 == 0).collect();
        let m = SwitchingMap::from_flags(flags.clone());
        let want: Vec<usize> = (0..200).filter(|i| i % 63 == 0).collect();
        assert_eq!(m.sensitive_indices().collect::<Vec<_>>(), want);
    }

    #[test]
    fn count_in_range_matches_filter() {
        let flags: Vec<bool> = (0..300).map(|i| i % 5 == 0 || i % 17 == 0).collect();
        let m = SwitchingMap::from_flags(flags.clone());
        for (start, end) in [
            (0, 0),
            (0, 300),
            (3, 64),
            (64, 128),
            (60, 70),
            (1, 299),
            (130, 131),
        ] {
            let want = flags[start..end].iter().filter(|&&s| s).count();
            assert_eq!(m.sensitive_count_in(start, end), want, "{start}..{end}");
        }
    }

    #[test]
    fn correction_step() {
        let mut m = SwitchingMap::from_flags(vec![true, true]);
        m.correct_to_insensitive(0);
        assert_eq!(flags_of(&m), &[false, true]);
    }

    #[test]
    fn union_is_bitwise_or() {
        let a: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let b: Vec<bool> = (0..100).map(|i| i % 4 == 0).collect();
        let mut u = SwitchingMap::from_flags(a.clone());
        u.union_in_place(&SwitchingMap::from_flags(b.clone()));
        for i in 0..100 {
            assert_eq!(u.is_sensitive(i), a[i] || b[i], "index {i}");
        }
    }

    #[test]
    fn extend_from_map_concatenates_unaligned() {
        let a: Vec<bool> = (0..70).map(|i| i % 2 == 0).collect();
        let b: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let mut m = SwitchingMap::from_flags(a.clone());
        m.extend_from_map(&SwitchingMap::from_flags(b.clone()));
        let mut want = a;
        want.extend(b);
        assert_eq!(flags_of(&m), want);
        // and the aligned fast path
        let mut m2 = SwitchingMap::from_flags(want[..64].to_vec());
        m2.extend_from_map(&SwitchingMap::from_flags(want[64..].to_vec()));
        assert_eq!(flags_of(&m2), want);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let flags: Vec<bool> = (0..19).map(|i| i % 3 == 0).collect();
        let m = SwitchingMap::from_flags(flags.clone());
        let packed = m.packed_bytes();
        assert_eq!(packed.len(), 3);
        let back = SwitchingMap::from_packed(&packed, 19);
        assert_eq!(back, m);
        assert_eq!(flags_of(&back), flags);
    }

    #[test]
    fn pack_roundtrip_non_byte_aligned_lengths() {
        for n in [1usize, 7, 9, 19, 63, 65, 127, 129, 200] {
            let flags: Vec<bool> = (0..n).map(|i| i % 3 == 0 || i % 11 == 0).collect();
            let m = SwitchingMap::from_flags(flags.clone());
            let packed = m.packed_bytes();
            assert_eq!(packed.len(), n.div_ceil(8), "len {n}");
            let back = SwitchingMap::from_packed(&packed, n);
            assert_eq!(back, m, "len {n}");
            assert_eq!(flags_of(&back), flags, "len {n}");
        }
    }

    #[test]
    fn pack_roundtrip_empty_map() {
        let m = SwitchingMap::empty();
        assert_eq!(m.len(), 0);
        assert!(m.is_empty());
        let packed = m.packed_bytes();
        assert!(packed.is_empty());
        let back = SwitchingMap::from_packed(&packed, 0);
        assert_eq!(back, m);
        assert_eq!(back.sensitive_count(), 0);
    }

    #[test]
    fn pack_roundtrip_all_sensitive_and_all_insensitive() {
        for n in [1usize, 8, 64, 65, 100] {
            let all = SwitchingMap::all_sensitive(n);
            assert_eq!(all.sensitive_count(), n);
            let back = SwitchingMap::from_packed(&all.packed_bytes(), n);
            assert_eq!(back, all, "all-sensitive len {n}");

            let none = SwitchingMap::all_insensitive(n);
            assert_eq!(none.sensitive_count(), 0);
            assert!(none.packed_bytes().iter().all(|&b| b == 0));
            let back = SwitchingMap::from_packed(&none.packed_bytes(), n);
            assert_eq!(back, none, "all-insensitive len {n}");
        }
    }

    #[test]
    fn packed_byte_layout_is_lsb_first() {
        // bit i sits in byte i/8 at position i%8 — the GLB layout the
        // trace codec has always written.
        let mut flags = vec![false; 16];
        flags[0] = true;
        flags[3] = true;
        flags[9] = true;
        let m = SwitchingMap::from_flags(flags);
        assert_eq!(m.packed_bytes(), vec![0b0000_1001, 0b0000_0010]);
    }

    #[test]
    fn from_packed_ignores_slack_bits() {
        // A 3-bit map from a byte with garbage in the high bits must not
        // resurrect them through equality or popcount.
        let m = SwitchingMap::from_packed(&[0b1111_1101], 3);
        assert_eq!(m.sensitive_count(), 2);
        assert_eq!(m, SwitchingMap::from_flags(vec![true, false, true]));
    }

    #[test]
    fn word_combinators_match_bit_iteration_at_tail_lengths() {
        // lengths chosen so len % 64 ∈ {0, 1, 63} plus small/multi-word
        for n in [64usize, 128, 192, 1, 65, 129, 63, 127, 191] {
            let flags: Vec<bool> = (0..n).map(|i| i % 3 == 0 || i % 13 == 5).collect();
            let m = SwitchingMap::from_flags(flags.clone());

            // popcount_words sums to sensitive_count and covers all words
            assert_eq!(m.popcount_words().count(), n.div_ceil(64), "len {n}");
            assert_eq!(
                m.popcount_words().map(|c| c as usize).sum::<usize>(),
                m.sensitive_count(),
                "len {n}"
            );

            // iter_words reconstructs exactly the sensitive index set
            let from_words: Vec<usize> = m
                .iter_words()
                .flat_map(|(wi, w)| {
                    (0..64).filter_map(move |b| (w >> b & 1 == 1).then_some(wi * 64 + b))
                })
                .collect();
            let want: Vec<usize> = (0..n).filter(|&i| flags[i]).collect();
            assert_eq!(from_words, want, "len {n}");
        }
    }

    #[test]
    fn iter_words_skips_zero_words() {
        // 3 words; middle word all-insensitive
        let flags: Vec<bool> = (0..192)
            .map(|i| !(64..128).contains(&i) && i % 5 == 0)
            .collect();
        let m = SwitchingMap::from_flags(flags);
        let indices: Vec<usize> = m.iter_words().map(|(wi, _)| wi).collect();
        assert_eq!(indices, vec![0, 2]);

        assert_eq!(SwitchingMap::all_insensitive(200).iter_words().count(), 0);
        assert_eq!(SwitchingMap::empty().iter_words().count(), 0);
        assert_eq!(SwitchingMap::empty().popcount_words().count(), 0);
    }

    #[test]
    fn for_each_sensitive_in_matches_filter() {
        let flags: Vec<bool> = (0..300).map(|i| i % 5 == 0 || i % 17 == 0).collect();
        let m = SwitchingMap::from_flags(flags.clone());
        for (start, end) in [
            (0, 0),
            (0, 300),
            (3, 64),
            (64, 128),
            (60, 70),
            (1, 299),
            (130, 131),
            (0, 1),
            (63, 65),
            (128, 191),
        ] {
            let mut got = Vec::new();
            m.for_each_sensitive_in(start, end, |i| got.push(i));
            let want: Vec<usize> = (start..end).filter(|&i| flags[i]).collect();
            assert_eq!(got, want, "{start}..{end}");
        }
    }

    #[test]
    fn tail_word_straggler_bits_survive_word_iteration() {
        // a single set bit at every boundary-adjacent position
        for n in [64usize, 65, 127, 191] {
            for hot in [0, 1, 62, 63, n - 1] {
                let mut m = SwitchingMap::all_insensitive(n);
                m.union_in_place(&{
                    let mut flags = vec![false; n];
                    flags[hot] = true;
                    SwitchingMap::from_flags(flags)
                });
                let got: Vec<(usize, u64)> = m.iter_words().collect();
                assert_eq!(got.len(), 1, "len {n} hot {hot}");
                assert_eq!(got[0].0, hot / 64, "len {n} hot {hot}");
                assert_eq!(got[0].1, 1u64 << (hot % 64), "len {n} hot {hot}");
                assert_eq!(m.popcount_words().sum::<u32>(), 1, "len {n} hot {hot}");
            }
        }
    }

    #[test]
    fn higher_relu_theta_means_more_insensitive() {
        let y = Tensor::from_fn(&[100], |i| i as f32 / 50.0 - 1.0); // [-1, 1)
        let low = SwitchingPolicy::relu(-0.5).map(&y).insensitive_fraction();
        let high = SwitchingPolicy::relu(0.5).map(&y).insensitive_fraction();
        assert!(high > low);
    }

    #[test]
    fn lower_tanh_theta_means_more_insensitive() {
        let y = Tensor::from_fn(&[100], |i| i as f32 / 10.0 - 5.0); // [-5, 5)
        let tight = SwitchingPolicy::tanh(1.0).map(&y).insensitive_fraction();
        let loose = SwitchingPolicy::tanh(4.0).map(&y).insensitive_fraction();
        assert!(tight > loose);
    }
}
