//! Ternary random projection (§II-A).
//!
//! The projection matrix `P ∈ R^{k×d}` has entries drawn from the
//! Achlioptas sparse distribution: each entry is `+s` with probability 1/6,
//! `−s` with probability 1/6, and `0` with probability 2/3, where
//! `s = sqrt(3/k)`. With that scale, `E[‖Px‖²] = ‖x‖²`, so inner products
//! survive the dimension reduction — exactly why the distilled approximate
//! module can track the teacher.
//!
//! Because the entries are ternary, the product `Px` needs only sign flips
//! and additions — the paper's Alignment Units + Adder Trees (§III-B
//! step 2). [`TernaryProjection::project`] mirrors that: no
//! multiplications on the data path.

use duet_tensor::rng::Rng;
use duet_tensor::Tensor;

/// A ternary random projection `R^d → R^k`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TernaryProjection {
    /// Entries in {-1, 0, +1}, row-major `[k, d]`.
    entries: Vec<i8>,
    k: usize,
    d: usize,
    scale: f32,
}

impl TernaryProjection {
    /// Samples a projection from the Achlioptas distribution.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `d == 0`, or `k > d` (a "dimension reduction"
    /// that increases dimension is almost certainly a bug).
    pub fn sample(d: usize, k: usize, rng: &mut Rng) -> Self {
        assert!(k > 0 && d > 0, "projection dims must be positive");
        assert!(
            k <= d,
            "reduced dim k = {k} must not exceed input dim d = {d}"
        );
        let entries = (0..k * d)
            .map(|_| {
                let u: f32 = rng.random();
                if u < 1.0 / 6.0 {
                    1i8
                } else if u < 2.0 / 6.0 {
                    -1i8
                } else {
                    0i8
                }
            })
            .collect();
        Self {
            entries,
            k,
            d,
            scale: (3.0 / k as f32).sqrt(),
        }
    }

    /// Input dimension `d`.
    pub fn input_dim(&self) -> usize {
        self.d
    }

    /// Reduced dimension `k`.
    pub fn reduced_dim(&self) -> usize {
        self.k
    }

    /// The common scale `sqrt(3/k)` applied after the integer adder tree.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The ternary entries, row-major `[k, d]`.
    pub fn entries(&self) -> &[i8] {
        &self.entries
    }

    /// Fraction of non-zero entries (expected ≈ 1/3).
    pub fn density(&self) -> f64 {
        self.entries.iter().filter(|&&e| e != 0).count() as f64 / self.entries.len() as f64
    }

    /// Projects a vector: `x' = P x`, computed with additions and
    /// subtractions only, then one scalar scale.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != d`.
    pub fn project(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.len(), self.d, "projection input length mismatch");
        let xd = x.data();
        let mut out = Tensor::zeros(&[self.k]);
        let od = out.data_mut();
        for (i, o) in od.iter_mut().enumerate() {
            let row = &self.entries[i * self.d..(i + 1) * self.d];
            let mut acc = 0.0f32;
            for (&e, &v) in row.iter().zip(xd) {
                match e {
                    1 => acc += v,
                    -1 => acc -= v,
                    _ => {}
                }
            }
            *o = acc * self.scale;
        }
        out
    }

    /// Projects every column of a `[d, cols]` matrix (the im2col patch
    /// matrix of a CONV layer): returns `[k, cols]`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not `[d, cols]`.
    pub fn project_columns(&self, m: &Tensor) -> Tensor {
        assert_eq!(m.shape().rank(), 2, "project_columns expects a matrix");
        assert_eq!(m.shape().dim(0), self.d, "row count must equal d");
        let cols = m.shape().dim(1);
        let md = m.data();
        let mut out = Tensor::zeros(&[self.k, cols]);
        let od = out.data_mut();
        for i in 0..self.k {
            let row = &self.entries[i * self.d..(i + 1) * self.d];
            let orow = &mut od[i * cols..(i + 1) * cols];
            for (j, &e) in row.iter().enumerate() {
                if e == 0 {
                    continue;
                }
                let mrow = &md[j * cols..(j + 1) * cols];
                if e == 1 {
                    for (o, &v) in orow.iter_mut().zip(mrow) {
                        *o += v;
                    }
                } else {
                    for (o, &v) in orow.iter_mut().zip(mrow) {
                        *o -= v;
                    }
                }
            }
            for o in orow.iter_mut() {
                *o *= self.scale;
            }
        }
        out
    }

    /// The projection as a dense `f32` matrix `[k, d]` (for testing and
    /// for the least-squares distillation, which needs `P` explicitly).
    pub fn to_dense(&self) -> Tensor {
        Tensor::from_vec(
            self.entries
                .iter()
                .map(|&e| e as f32 * self.scale)
                .collect(),
            &[self.k, self.d],
        )
    }

    /// Number of add/sub operations one projection costs (non-zero entry
    /// count) — the quantity the Speculator's adder tree actually performs.
    pub fn additions_per_projection(&self) -> usize {
        self.entries.iter().filter(|&&e| e != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::ops;
    use duet_tensor::rng::{self, seeded};

    #[test]
    fn density_near_one_third() {
        let p = TernaryProjection::sample(300, 100, &mut seeded(1));
        let d = p.density();
        assert!((d - 1.0 / 3.0).abs() < 0.02, "density {d}");
    }

    #[test]
    fn project_matches_dense_matmul() {
        let mut r = seeded(2);
        let p = TernaryProjection::sample(40, 10, &mut r);
        let x = rng::normal(&mut r, &[40], 0.0, 1.0);
        let fast = p.project(&x);
        let dense = ops::gemv(&p.to_dense(), &x);
        for (a, b) in fast.data().iter().zip(dense.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn project_columns_matches_per_column() {
        let mut r = seeded(3);
        let p = TernaryProjection::sample(12, 5, &mut r);
        let m = rng::normal(&mut r, &[12, 7], 0.0, 1.0);
        let fast = p.project_columns(&m);
        for c in 0..7 {
            let col = Tensor::from_vec((0..12).map(|j| m.at(&[j, c])).collect(), &[12]);
            let pc = p.project(&col);
            for i in 0..5 {
                assert!((fast.at(&[i, c]) - pc.data()[i]).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn norm_preserved_in_expectation() {
        // Johnson–Lindenstrauss-ish sanity: averaged over many projections,
        // ‖Px‖² ≈ ‖x‖².
        let mut r = seeded(4);
        let x = rng::normal(&mut r, &[64], 0.0, 1.0);
        let norm = x.norm_sq();
        let mut acc = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let p = TernaryProjection::sample(64, 16, &mut r);
            acc += p.project(&x).norm_sq();
        }
        let mean = acc / trials as f32;
        assert!(
            (mean - norm).abs() < norm * 0.1,
            "mean ‖Px‖² = {mean}, ‖x‖² = {norm}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = TernaryProjection::sample(20, 5, &mut seeded(9));
        let b = TernaryProjection::sample(20, 5, &mut seeded(9));
        assert_eq!(a, b);
    }

    #[test]
    fn additions_equal_nonzeros() {
        let p = TernaryProjection::sample(50, 10, &mut seeded(5));
        assert_eq!(
            p.additions_per_projection(),
            p.entries().iter().filter(|&&e| e != 0).count()
        );
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn expanding_projection_panics() {
        TernaryProjection::sample(4, 8, &mut seeded(0));
    }
}
