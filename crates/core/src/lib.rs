//! # duet-core
//!
//! The algorithmic half of the DUET co-design (§II of the paper):
//! *dual-module processing*.
//!
//! Every DNN layer (the **accurate module**) gets a lightweight
//! **approximate module** distilled from it offline. At inference time the
//! approximate module runs first — on quantized, dimension-reduced (QDR)
//! inputs — and a threshold test on its outputs produces a binary
//! *switching map* deciding, neuron by neuron, which outputs may keep the
//! cheap approximate value (the activation function's insensitive region)
//! and which must be recomputed exactly.
//!
//! * [`TernaryProjection`] — Achlioptas random projection with ternary
//!   entries, computable with additions only (§II-A),
//! * [`ApproxLinear`] — the approximate module: INT4 weights over the
//!   projected input,
//! * [`distill`] — least-squares knowledge distillation of approximate
//!   modules from their teachers (Eq. 1),
//! * [`SwitchingPolicy`] / [`SwitchingMap`] — Eq. (2)–(3) dynamic
//!   switching,
//! * [`DualProjection`] — one speculated GEMV (weights + INT4
//!   speculator + engine call site + guard hook); every layer below is
//!   a composition of projections,
//! * [`DualModuleLayer`], [`DualConvLayer`], [`DualLstmCell`],
//!   [`DualGruCell`] — dual-module execution for FF, CONV, LSTM and GRU
//!   layers,
//! * [`DualAttention`], [`DualFfn`], [`DualTransformerBlock`] —
//!   speculated Q/K/V/output and FFN projections around a dense
//!   softmax mixer,
//! * [`metrics`] — FLOP and byte accounting behind every savings number in
//!   the evaluation,
//! * [`tuning`] — threshold calibration against a quality budget
//!   (the "tuned with the validation set" step of §II-A).
//!
//! # Example
//!
//! ```
//! use duet_core::{DualModuleLayer, SwitchingPolicy};
//! use duet_nn::Activation;
//! use duet_tensor::{rng, Tensor};
//!
//! let mut r = rng::seeded(7);
//! let w = rng::normal(&mut r, &[32, 64], 0.0, 0.2);
//! let b = Tensor::zeros(&[32]);
//! let layer = DualModuleLayer::learn(&w, &b, Activation::Relu, 16, 256, &mut r);
//! let x = rng::normal(&mut r, &[64], 0.0, 1.0);
//! let out = layer.forward(&x, &SwitchingPolicy::relu(0.0));
//! // every sensitive neuron is exact, every insensitive one approximate
//! assert_eq!(out.output.len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod batch;
pub mod calibration;
pub mod control;
pub mod distill;
pub mod dual_attention;
pub mod dual_conv;
pub mod dual_layer;
pub mod dual_net;
pub mod dual_proj;
pub mod dual_rnn;
pub mod engine;
pub mod guard;
pub mod metrics;
pub mod projection;
pub mod switching;
pub mod tuning;

pub use approx::{ApproxConfig, ApproxLinear};
pub use control::{
    ControlAction, ControlConfig, ControlDecision, ControlStats, PrecisionLadder, ThetaController,
};
pub use dual_attention::{DualAttention, DualFfn, DualTransformerBlock, TransformerThresholds};
pub use dual_conv::{DualConvLayer, DualConvOutput};
pub use dual_layer::{DualModuleLayer, DualOutput};
pub use dual_proj::{DualProjection, ProjectionCosts};
pub use dual_rnn::{DualGruCell, DualLstmCell};
pub use engine::SpeculationEngine;
pub use guard::{DegradationPolicy, GuardConfig, SpeculationGuard, SwitchRateBand};
pub use metrics::SavingsReport;
pub use projection::TernaryProjection;
pub use switching::{SwitchingMap, SwitchingPolicy};
