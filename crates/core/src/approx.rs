//! The approximate module: quantized, dimension-reduced linear layer.
//!
//! Mirrors the Speculator pipeline of §III-B: (1) quantize the input to
//! INT4 by truncation, (2) dimension-reduce through the ternary projection
//! (adds only), (3) INT4 GEMV against the QDR weights, (4) dequantize.

use crate::projection::TernaryProjection;
use duet_tensor::fixed::{Fixed16Tensor, Int4Tensor};
use duet_tensor::rng::Rng;
use duet_tensor::{ops, Tensor};

/// Precision / size configuration of an approximate module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ApproxConfig {
    /// Reduced input dimension `k`.
    pub reduced_dim: usize,
    /// Weight precision in bits (paper default: 4).
    pub weight_bits: u32,
    /// Activation precision in bits after the Quantizer (paper default: 4).
    pub activation_bits: u32,
}

impl ApproxConfig {
    /// The paper's configuration: INT4 weights, INT4 activations.
    pub fn paper_default(reduced_dim: usize) -> Self {
        Self {
            reduced_dim,
            weight_bits: 4,
            activation_bits: 4,
        }
    }
}

/// An approximate module for a linear (FF / gate) layer:
/// `y' = W' (P x_q) + b'` with `W'` quantized to `weight_bits`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ApproxLinear {
    projection: TernaryProjection,
    /// Quantized weights `[n, k]`.
    weights: Int4Tensor,
    bias: Tensor,
    config: ApproxConfig,
}

impl ApproxLinear {
    /// Builds an approximate module from already-fitted float weights
    /// `w_prime [n, k]` (quantizing them to `config.weight_bits`) and a
    /// bias.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the projection.
    pub fn from_parts(
        projection: TernaryProjection,
        w_prime: &Tensor,
        bias: Tensor,
        config: ApproxConfig,
    ) -> Self {
        assert_eq!(w_prime.shape().rank(), 2, "w' must be [n, k]");
        assert_eq!(
            w_prime.shape().dim(1),
            projection.reduced_dim(),
            "w' columns must equal reduced dim"
        );
        assert_eq!(
            w_prime.shape().dim(0),
            bias.len(),
            "bias must match output count"
        );
        assert_eq!(
            config.reduced_dim,
            projection.reduced_dim(),
            "config reduced_dim disagrees with projection"
        );
        let weights = Int4Tensor::quantize_with_bits(w_prime, config.weight_bits);
        Self {
            projection,
            weights,
            bias,
            config,
        }
    }

    /// Builds an approximate module directly from already-quantized
    /// weights, bypassing the float→INT quantization of
    /// [`ApproxLinear::from_parts`]. This is the reassembly path for fault
    /// injection (`duet-sim`): flip bits in an existing module's
    /// [`weights`](ApproxLinear::weights) payload and rebuild the module
    /// around the corrupted tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the projection.
    pub fn from_quantized(
        projection: TernaryProjection,
        weights: Int4Tensor,
        bias: Tensor,
        config: ApproxConfig,
    ) -> Self {
        assert_eq!(weights.shape().rank(), 2, "weights must be [n, k]");
        assert_eq!(
            weights.shape().dim(1),
            projection.reduced_dim(),
            "weight columns must equal reduced dim"
        );
        assert_eq!(
            weights.shape().dim(0),
            bias.len(),
            "bias must match output count"
        );
        assert_eq!(
            config.reduced_dim,
            projection.reduced_dim(),
            "config reduced_dim disagrees with projection"
        );
        Self {
            projection,
            weights,
            bias,
            config,
        }
    }

    /// The ternary projection.
    pub fn projection(&self) -> &TernaryProjection {
        &self.projection
    }

    /// The quantized weight tensor `[n, k]`.
    pub fn weights(&self) -> &Int4Tensor {
        &self.weights
    }

    /// The bias vector `[n]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// The configuration this module was built with.
    pub fn config(&self) -> &ApproxConfig {
        &self.config
    }

    /// Output dimension `n`.
    pub fn output_dim(&self) -> usize {
        self.bias.len()
    }

    /// Input dimension `d` (before reduction).
    pub fn input_dim(&self) -> usize {
        self.projection.input_dim()
    }

    /// Full hardware-faithful forward pass: quantize → project → INT-GEMV
    /// → dequantize → add bias.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimension.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        // Step 1 (Quantizer): emulate the INT16→INT4 truncation by
        // re-quantizing the float input at `activation_bits`.
        let xq = if self.config.activation_bits >= 16 {
            x.clone()
        } else if self.config.activation_bits == 4 {
            Fixed16Tensor::quantize(x).truncate_to_int4().dequantize()
        } else {
            Int4Tensor::quantize_with_bits(x, self.config.activation_bits).dequantize()
        };
        // Step 2 (Alignment Units + Adder Trees): ternary projection.
        let projected = self.projection.project(&xq);
        // Step 3 (Systolic Array): low-precision GEMV.
        let w = self.weights.dequantize();
        let mut y = ops::gemv(&w, &projected);
        // Step 4: bias.
        ops::axpy(1.0, &self.bias, &mut y);
        y
    }

    /// Forward for every column of a `[d, cols]` matrix; returns
    /// `[n, cols]`. Used by the CONV path where the im2col patch matrix
    /// replaces the input vector.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not `[d, cols]`.
    pub fn forward_columns(&self, m: &Tensor) -> Tensor {
        assert_eq!(m.shape().dim(0), self.input_dim(), "row count mismatch");
        let mq = if self.config.activation_bits >= 16 {
            m.clone()
        } else if self.config.activation_bits == 4 {
            Fixed16Tensor::quantize(m).truncate_to_int4().dequantize()
        } else {
            Int4Tensor::quantize_with_bits(m, self.config.activation_bits).dequantize()
        };
        let projected = self.projection.project_columns(&mq);
        let w = self.weights.dequantize();
        let mut y = ops::matmul(&w, &projected);
        let cols = y.shape().dim(1);
        for i in 0..self.output_dim() {
            let b = self.bias.data()[i];
            for v in &mut y.data_mut()[i * cols..(i + 1) * cols] {
                *v += b;
            }
        }
        y
    }

    /// Parameter count of the approximate module (weights only; the
    /// projection is ternary metadata).
    pub fn param_count(&self) -> usize {
        self.weights.len()
    }

    /// Approximate-module weight storage in bytes (packed nibbles for
    /// ≤4-bit, one byte otherwise) — what the Speculator's QDR Weight
    /// Buffer holds. Delegates to the tensor's own width-aware accounting.
    pub fn weight_bytes(&self) -> usize {
        self.weights.payload_bytes()
    }

    /// Re-quantizes the module's weights at `weight_bits`, keeping the
    /// projection, bias and activation precision — the θ-controller's
    /// graduated-degradation actuator (a saturated controller trades
    /// speculator precision for throughput one bit at a time instead of
    /// falling back dense). Pure and deterministic: requantizing back at
    /// the original width after a round trip through the float domain
    /// reproduces the quantizer's output for that width.
    pub fn requantized(&self, weight_bits: u32) -> Self {
        let config = ApproxConfig {
            weight_bits,
            ..self.config
        };
        Self::from_parts(
            self.projection.clone(),
            &self.weights.dequantize(),
            self.bias.clone(),
            config,
        )
    }

    /// Builds a *random* (undistilled) approximate module — only useful as
    /// a baseline to show distillation matters.
    pub fn random(d: usize, n: usize, config: ApproxConfig, rng: &mut Rng) -> Self {
        let projection = TernaryProjection::sample(d, config.reduced_dim, rng);
        let w = duet_tensor::rng::normal(rng, &[n, config.reduced_dim], 0.0, 0.1);
        Self::from_parts(projection, &w, Tensor::zeros(&[n]), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::{self, seeded};

    #[test]
    fn forward_shapes() {
        let mut r = seeded(1);
        let m = ApproxLinear::random(32, 8, ApproxConfig::paper_default(16), &mut r);
        let x = rng::normal(&mut r, &[32], 0.0, 1.0);
        let y = m.forward(&x);
        assert_eq!(y.len(), 8);
        assert_eq!(m.input_dim(), 32);
        assert_eq!(m.output_dim(), 8);
        assert_eq!(m.param_count(), 8 * 16);
    }

    #[test]
    fn forward_columns_matches_vector_path() {
        let mut r = seeded(2);
        let m = ApproxLinear::random(12, 5, ApproxConfig::paper_default(6), &mut r);
        let cols = rng::normal(&mut r, &[12, 4], 0.0, 1.0);
        let batch = m.forward_columns(&cols);
        for c in 0..4 {
            let x = Tensor::from_vec((0..12).map(|j| cols.at(&[j, c])).collect(), &[12]);
            let y = m.forward(&x);
            for i in 0..5 {
                // The two paths quantize at different granularity (whole
                // matrix vs single column), so allow a loose tolerance.
                assert!(
                    (batch.at(&[i, c]) - y.data()[i]).abs() < 0.5,
                    "col {c} row {i}: {} vs {}",
                    batch.at(&[i, c]),
                    y.data()[i]
                );
            }
        }
    }

    #[test]
    fn weight_bytes_packing() {
        let mut r = seeded(3);
        let m4 = ApproxLinear::random(16, 3, ApproxConfig::paper_default(8), &mut r);
        assert_eq!(m4.weight_bytes(), 12); // 24 nibbles → 12 bytes
        let cfg8 = ApproxConfig {
            reduced_dim: 8,
            weight_bits: 8,
            activation_bits: 8,
        };
        let m8 = ApproxLinear::random(16, 3, cfg8, &mut r);
        assert_eq!(m8.weight_bytes(), 24);
    }

    #[test]
    fn bias_flows_through() {
        let mut r = seeded(4);
        let proj = TernaryProjection::sample(8, 4, &mut r);
        let m = ApproxLinear::from_parts(
            proj,
            &Tensor::zeros(&[2, 4]),
            Tensor::from_vec(vec![1.5, -2.5], &[2]),
            ApproxConfig::paper_default(4),
        );
        let y = m.forward(&Tensor::zeros(&[8]));
        assert_eq!(y.data(), &[1.5, -2.5]);
    }

    #[test]
    fn requantized_narrows_storage_and_round_trips() {
        let mut r = seeded(6);
        let m4 = ApproxLinear::random(24, 8, ApproxConfig::paper_default(12), &mut r);
        let m2 = m4.requantized(2);
        assert_eq!(m2.config().weight_bits, 2);
        assert_eq!(m2.config().reduced_dim, m4.config().reduced_dim);
        // storage never grows (sub-nibble widths still pack as nibbles)
        assert!(m2.weight_bytes() <= m4.weight_bytes());
        // 2-bit weights are a strictly coarser grid: outputs still finite
        // and shaped right.
        let x = rng::normal(&mut r, &[24], 0.0, 1.0);
        let y = m2.forward(&x);
        assert_eq!(y.len(), 8);
        assert!(y.data().iter().all(|v| v.is_finite()));
        // Requantizing back at the original width is the identity on the
        // already-quantized grid.
        let back = m2.requantized(2);
        assert_eq!(back.weights().data(), m2.weights().data());
    }

    #[test]
    #[should_panic(expected = "columns must equal reduced dim")]
    fn mismatched_weight_width_panics() {
        let mut r = seeded(5);
        let proj = TernaryProjection::sample(8, 4, &mut r);
        ApproxLinear::from_parts(
            proj,
            &Tensor::zeros(&[2, 5]),
            Tensor::zeros(&[2]),
            ApproxConfig::paper_default(4),
        );
    }
}
