//! Dual-module execution of a convolutional layer (§II-B, §III-C).
//!
//! The CONV layer is lowered with im2col so the approximate module works
//! on the patch matrix exactly as on an FF input. The switching map is
//! per output *element* (channel × position); after ReLU it doubles as the
//! next layer's input-sparsity map (IMap) including the §III-C correction
//! step.

use crate::approx::{ApproxConfig, ApproxLinear};
use crate::distill;
use crate::engine::{EngineCosts, ExecutorWeightBytes, Gather, MacMode, SpeculationEngine};
use crate::guard::SpeculationGuard;
use crate::metrics::SavingsReport;
use crate::switching::{SwitchingMap, SwitchingPolicy};
use duet_tensor::im2col::{im2col, ConvGeometry};
use duet_tensor::rng::Rng;
use duet_tensor::{ops, Tensor};

/// Result of one dual-module convolution.
#[derive(Debug, Clone)]
pub struct DualConvOutput {
    /// Post-ReLU output feature map `[K, oh, ow]`.
    pub output: Tensor,
    /// Per-element output switching map (length `K · oh · ow`), after the
    /// post-ReLU correction step — ready to serve as the next layer's
    /// IMap.
    pub omap: SwitchingMap,
    /// Per-channel sensitive-output counts — what the Reorder Unit's
    /// adder trees compute for adaptive mapping (§IV-A).
    pub channel_workloads: Vec<usize>,
    /// Operation / byte accounting.
    pub report: SavingsReport,
}

/// A convolutional layer paired with its distilled approximate module.
#[derive(Debug, Clone)]
pub struct DualConvLayer {
    geom: ConvGeometry,
    filters: Tensor, // [K, C·R·S]
    bias: Tensor,    // [K]
    approx: ApproxLinear,
}

impl DualConvLayer {
    /// Wraps an accurate conv layer (`filters [K, C, R, S]`) and a
    /// pre-distilled approximate module over the patch dimension.
    ///
    /// # Panics
    ///
    /// Panics on shape inconsistencies.
    pub fn new(geom: ConvGeometry, filters: &Tensor, bias: Tensor, approx: ApproxLinear) -> Self {
        assert_eq!(filters.shape().rank(), 4, "filters must be [K,C,R,S]");
        let k = filters.shape().dim(0);
        assert_eq!(bias.len(), k, "bias length mismatch");
        assert_eq!(
            approx.input_dim(),
            geom.patch_len(),
            "approximate module must take the patch vector"
        );
        assert_eq!(approx.output_dim(), k, "approximate module output mismatch");
        Self {
            geom,
            filters: filters.reshaped(&[k, geom.patch_len()]),
            bias,
            approx,
        }
    }

    /// Distills the approximate module from the filter bank using
    /// standard-normal patch samples.
    pub fn learn(
        geom: ConvGeometry,
        filters: &Tensor,
        bias: &Tensor,
        reduced_dim: usize,
        samples: usize,
        rng: &mut Rng,
    ) -> Self {
        let k = filters.shape().dim(0);
        let fmat = filters.reshaped(&[k, geom.patch_len()]);
        let cfg = ApproxConfig::paper_default(reduced_dim);
        let approx = distill::distill_linear(&fmat, bias, cfg, samples, rng);
        Self::new(geom, filters, bias.clone(), approx)
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geom
    }

    /// Output channel count `K`.
    pub fn out_channels(&self) -> usize {
        self.filters.shape().dim(0)
    }

    /// The approximate module.
    pub fn approx(&self) -> &ApproxLinear {
        &self.approx
    }

    /// Replaces the approximate module (fault injection / corrupted-
    /// speculator studies); the accurate filter bank is untouched.
    ///
    /// # Panics
    ///
    /// Panics if the replacement's dimensions disagree with the layer.
    pub fn set_approx(&mut self, approx: ApproxLinear) {
        assert_eq!(
            approx.input_dim(),
            self.geom.patch_len(),
            "input dim mismatch"
        );
        assert_eq!(
            approx.output_dim(),
            self.out_channels(),
            "output dim mismatch"
        );
        self.approx = approx;
    }

    /// The filter matrix in GEMM form `[K, C·R·S]`.
    pub fn filter_matrix(&self) -> &Tensor {
        &self.filters
    }

    /// Dense reference execution (with ReLU).
    pub fn forward_dense(&self, input: &Tensor) -> Tensor {
        let cols = im2col(input, &self.geom);
        let mut y = ops::matmul(&self.filters, &cols);
        let cols_n = y.shape().dim(1);
        for kk in 0..self.out_channels() {
            let b = self.bias.data()[kk];
            for v in &mut y.data_mut()[kk * cols_n..(kk + 1) * cols_n] {
                *v = (*v + b).max(0.0);
            }
        }
        y.reshaped(&[self.out_channels(), self.geom.out_h(), self.geom.out_w()])
    }

    /// Dual-module forward pass.
    ///
    /// `imap`, when given, is the previous layer's corrected OMap reused as
    /// the input-sparsity map: MACs whose input element is flagged
    /// ineffectual (zero) are skipped in the accounting, mirroring the
    /// per-PE tag-bit logic of Fig. 6. It must have length
    /// `C·H·W` of this layer's input.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not `[C, H, W]` matching the geometry, or the
    /// imap length disagrees.
    pub fn forward(
        &self,
        input: &Tensor,
        policy: &SwitchingPolicy,
        imap: Option<&SwitchingMap>,
    ) -> DualConvOutput {
        self.forward_impl(input, policy, imap, None)
    }

    /// [`DualConvLayer::forward`] watched by a [`SpeculationGuard`]: a
    /// tripped guard under `FallbackDense` reroutes the layer through the
    /// bitwise-dense path (see [`crate::guard`]).
    pub fn forward_guarded(
        &self,
        input: &Tensor,
        policy: &SwitchingPolicy,
        imap: Option<&SwitchingMap>,
        guard: &mut SpeculationGuard,
    ) -> DualConvOutput {
        self.forward_impl(input, policy, imap, Some(guard))
    }

    fn forward_impl(
        &self,
        input: &Tensor,
        policy: &SwitchingPolicy,
        imap: Option<&SwitchingMap>,
        guard: Option<&mut SpeculationGuard>,
    ) -> DualConvOutput {
        let k = self.out_channels();
        let d = self.geom.patch_len();
        let (oh, ow) = (self.geom.out_h(), self.geom.out_w());
        let positions = oh * ow;
        if let Some(m) = imap {
            assert_eq!(
                m.len(),
                input.len(),
                "imap length must equal input element count"
            );
        }

        let mut engine = SpeculationEngine::new();

        // Speculator: approximate the whole output map.
        let cols = im2col(input, &self.geom);
        let mut y_approx = self.approx.forward_columns(&cols); // [K, positions]

        // Switching map over all output elements.
        let flat = y_approx.reshaped(&[k * positions]);
        let map = match guard {
            Some(g) => engine.speculate_guarded(policy, &flat, g),
            None => engine.speculate(policy, &flat),
        };

        // Executor + Eq. (2) mix: recompute sensitive elements exactly,
        // in place over the approximate map; skip zero inputs in the MAC
        // accounting only when an IMap is present (input-sparsity
        // skipping costs nothing extra because ineffectual values are
        // exact zeros — without an IMap the PE still issues them).
        let cd = cols.data();
        let fd = self.filters.data();
        let bd = self.bias.data();
        let count_skipped = imap.is_none();
        engine.execute_into(&map, y_approx.data_mut(), |idx, kernel| {
            let (kk, p) = (idx / positions, idx % positions);
            kernel.dot(
                bd[kk],
                &fd[kk * d..(kk + 1) * d],
                Gather::Column {
                    data: cd,
                    stride: positions,
                    col: p,
                },
                MacMode::SkipZeroInputs { count_skipped },
            )
        });

        // ReLU + §III-C correction step: predicted-effectual neurons that
        // die in ReLU flip to insensitive in the stored OMap.
        let mut omap = map.clone();
        let mut output = y_approx;
        for (i, v) in output.data_mut().iter_mut().enumerate() {
            *v = v.max(0.0);
            if *v == 0.0 && omap.is_sensitive(i) {
                omap.correct_to_insensitive(i);
            }
        }
        // Insensitive CONV outputs are set to zero ("the ineffectual
        // neurons are set to zero, making the OMap become the input
        // sparsity maps for the next layer", §III-C).
        for i in 0..omap.len() {
            if !omap.is_sensitive(i) {
                output.data_mut()[i] = 0.0;
            }
        }

        let channel_workloads: Vec<usize> = (0..k)
            .map(|kk| map.sensitive_count_in(kk * positions, (kk + 1) * positions))
            .collect();

        let kcfg = self.approx.config().reduced_dim;
        let report = engine.finish(EngineCosts {
            dense_macs: (k * positions * d) as u64,
            dense_weight_bytes: (k * d * 2) as u64,
            speculator_macs: (k * kcfg * positions) as u64,
            speculator_adds: (self.approx.projection().additions_per_projection() * positions)
                as u64,
            speculator_weight_bytes: self.approx.weight_bytes() as u64,
            // CONV weights are reused across positions; a compute-bound
            // layer always loads the full (small) filter bank once.
            executor_weight_bytes: ExecutorWeightBytes::Fixed((k * d * 2) as u64),
        });

        DualConvOutput {
            output: output.reshaped(&[k, oh, ow]),
            omap,
            channel_workloads,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::{self, seeded};

    fn geom() -> ConvGeometry {
        ConvGeometry {
            in_channels: 3,
            in_h: 8,
            in_w: 8,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        }
    }

    fn make_layer(seed: u64) -> (DualConvLayer, Rng) {
        let mut r = seeded(seed);
        let g = geom();
        let filters = rng::normal(&mut r, &[8, 3, 3, 3], 0.0, 0.25);
        let bias = rng::normal(&mut r, &[8], 0.0, 0.05);
        let layer = DualConvLayer::learn(g, &filters, &bias, 16, 500, &mut r);
        (layer, r)
    }

    #[test]
    fn never_switch_matches_dense() {
        let (layer, mut r) = make_layer(1);
        let x = rng::normal(&mut r, &[3, 8, 8], 0.0, 1.0);
        let out = layer.forward(&x, &SwitchingPolicy::never_switch(), None);
        let dense = layer.forward_dense(&x);
        for (a, b) in out.output.data().iter().zip(dense.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn switching_saves_macs_with_bounded_error() {
        let (layer, mut r) = make_layer(2);
        let x = rng::normal(&mut r, &[3, 8, 8], 0.0, 1.0);
        let out = layer.forward(&x, &SwitchingPolicy::relu(0.0), None);
        let dense = layer.forward_dense(&x);
        let rel = ops::sub(&out.output, &dense).norm_sq() / dense.norm_sq();
        assert!(
            out.report.mac_skip_fraction() > 0.2,
            "skip {}",
            out.report.mac_skip_fraction()
        );
        assert!(rel < 0.2, "error {rel}");
    }

    #[test]
    fn corrected_omap_matches_output_zeros() {
        let (layer, mut r) = make_layer(3);
        let x = rng::normal(&mut r, &[3, 8, 8], 0.0, 1.0);
        let out = layer.forward(&x, &SwitchingPolicy::relu(0.0), None);
        for (i, &v) in out.output.data().iter().enumerate() {
            if out.omap.is_sensitive(i) {
                assert!(v > 0.0, "sensitive output {i} is zero");
            } else {
                assert_eq!(v, 0.0, "insensitive output {i} non-zero");
            }
        }
    }

    #[test]
    fn imap_reduces_counted_macs() {
        let (layer, mut r) = make_layer(4);
        let mut x = rng::normal(&mut r, &[3, 8, 8], 0.0, 1.0);
        // zero out half the input (as a previous ReLU would)
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let imap = SwitchingMap::from_flags(x.data().iter().map(|&v| v != 0.0).collect());
        let with = layer.forward(&x, &SwitchingPolicy::relu(0.0), Some(&imap));
        let without = layer.forward(&x, &SwitchingPolicy::relu(0.0), None);
        assert!(with.report.executor_macs < without.report.executor_macs);
        // results identical — skipping zeros is exact
        for (a, b) in with.output.data().iter().zip(without.output.data()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn channel_workloads_sum_to_sensitive_count() {
        let (layer, mut r) = make_layer(5);
        let x = rng::normal(&mut r, &[3, 8, 8], 0.0, 1.0);
        let out = layer.forward(&x, &SwitchingPolicy::relu(0.0), None);
        let total: usize = out.channel_workloads.iter().sum();
        assert_eq!(total as u64, out.report.outputs_exact);
        assert_eq!(out.channel_workloads.len(), 8);
    }

    #[test]
    fn output_shape() {
        let (layer, mut r) = make_layer(6);
        let x = rng::normal(&mut r, &[3, 8, 8], 0.0, 1.0);
        let out = layer.forward(&x, &SwitchingPolicy::relu(0.0), None);
        assert_eq!(out.output.shape().dims(), &[8, 8, 8]);
        assert_eq!(out.omap.len(), 8 * 8 * 8);
    }
}
