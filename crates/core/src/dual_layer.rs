//! Dual-module execution of a feed-forward layer (Fig. 3).
//!
//! The flow is: approximate module → switching map → sparse accurate
//! GEMV over sensitive rows only → Eq. (2) mix → activation.

use crate::approx::ApproxLinear;
use crate::dual_proj::DualProjection;
use crate::engine::{MacMode, SpeculationEngine};
use crate::guard::SpeculationGuard;
use crate::metrics::SavingsReport;
use crate::switching::{SwitchingMap, SwitchingPolicy};
use duet_nn::Activation;
use duet_tensor::rng::Rng;
use duet_tensor::{ops, Tensor};

/// Result of one dual-module forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct DualOutput {
    /// Post-activation outputs (mixed accurate/approximate, Eq. 2).
    pub output: Tensor,
    /// Pre-activation mixed values.
    pub pre_activation: Tensor,
    /// The switching map that drove execution.
    pub map: SwitchingMap,
    /// Operation / byte accounting.
    pub report: SavingsReport,
}

/// A feed-forward layer with its distilled approximate module: one
/// [`DualProjection`] plus an activation.
#[derive(Debug, Clone)]
pub struct DualModuleLayer {
    proj: DualProjection,
    activation: Activation,
}

impl DualModuleLayer {
    /// Wraps an existing accurate layer and a pre-distilled approximate
    /// module.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn new(weight: Tensor, bias: Tensor, activation: Activation, approx: ApproxLinear) -> Self {
        Self {
            // Zero weights (from a pruned accurate module, §VI) are
            // statically removed from the MAC-instruction LUT, so they
            // cost neither a MAC nor a weight fetch — dual-module
            // processing composes with static compression for free.
            proj: DualProjection::new(weight, bias, approx, MacMode::SkipZeroWeights),
            activation,
        }
    }

    /// Distills an approximate module from the accurate layer (standard-
    /// normal calibration inputs) and wraps both. `reduced_dim` is the
    /// projection size `k`, `samples` the distillation sample count.
    pub fn learn(
        weight: &Tensor,
        bias: &Tensor,
        activation: Activation,
        reduced_dim: usize,
        samples: usize,
        rng: &mut Rng,
    ) -> Self {
        Self {
            proj: DualProjection::learn(
                weight,
                bias,
                MacMode::SkipZeroWeights,
                reduced_dim,
                samples,
                rng,
            ),
            activation,
        }
    }

    /// Distills using recorded calibration activations `[s, d]`.
    pub fn learn_from_activations(
        weight: &Tensor,
        bias: &Tensor,
        activation: Activation,
        reduced_dim: usize,
        activations: &Tensor,
        rng: &mut Rng,
    ) -> Self {
        Self {
            proj: DualProjection::learn_from_activations(
                weight,
                bias,
                MacMode::SkipZeroWeights,
                reduced_dim,
                activations,
                rng,
            ),
            activation,
        }
    }

    /// The accurate weight matrix `[n, d]`.
    pub fn weight(&self) -> &Tensor {
        self.proj.weight()
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor {
        self.proj.bias()
    }

    /// The activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The approximate module.
    pub fn approx(&self) -> &ApproxLinear {
        self.proj.approx()
    }

    /// The underlying speculated projection.
    pub fn projection(&self) -> &DualProjection {
        &self.proj
    }

    /// Replaces the approximate module — the write-back half of fault
    /// injection and speculator-corruption studies (the accurate module is
    /// untouched, so §II's resilience argument can be probed directly).
    ///
    /// # Panics
    ///
    /// Panics if the replacement's dimensions disagree with the layer.
    pub fn set_approx(&mut self, approx: ApproxLinear) {
        self.proj.set_approx(approx);
    }

    /// Output dimension `n`.
    pub fn output_dim(&self) -> usize {
        self.proj.output_dim()
    }

    /// Input dimension `d`.
    pub fn input_dim(&self) -> usize {
        self.proj.input_dim()
    }

    /// Dense (single-module) reference execution.
    pub fn forward_dense(&self, x: &Tensor) -> Tensor {
        self.activation
            .apply(&ops::affine(self.proj.weight(), x, self.proj.bias()))
    }

    /// Dual-module forward pass.
    ///
    /// The accurate GEMV touches only the weight rows of sensitive
    /// neurons: for a memory-bound layer this is the §IV-B saving — "only
    /// the rows related to the accurate output activations need to be
    /// fetched from DRAM".
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimension.
    pub fn forward(&self, x: &Tensor, policy: &SwitchingPolicy) -> DualOutput {
        self.forward_impl(x, policy, None)
    }

    /// [`DualModuleLayer::forward`] watched by a [`SpeculationGuard`]: a
    /// tripped guard under `FallbackDense` reroutes the layer through the
    /// bitwise-dense path (see [`crate::guard`]).
    pub fn forward_guarded(
        &self,
        x: &Tensor,
        policy: &SwitchingPolicy,
        guard: &mut SpeculationGuard,
    ) -> DualOutput {
        self.forward_impl(x, policy, Some(guard))
    }

    fn forward_impl(
        &self,
        x: &Tensor,
        policy: &SwitchingPolicy,
        guard: Option<&mut SpeculationGuard>,
    ) -> DualOutput {
        let mut engine = SpeculationEngine::new();

        // Speculate → switching map → sparse exact rows over the
        // approximate buffer (Eq. 2 mix) — the single-projection
        // lifecycle, owned by DualProjection.
        let (pre, map) = self.proj.forward(&mut engine, policy, x, guard);

        // Activation on the mixed pre-activations.
        let output = self.activation.apply(&pre);

        let report = engine.finish(self.proj.costs().engine_costs());

        DualOutput {
            output,
            pre_activation: pre,
            map,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::{self, seeded};

    fn make_layer(act: Activation, seed: u64) -> (DualModuleLayer, Rng) {
        let mut r = seeded(seed);
        let w = rng::normal(&mut r, &[40, 80], 0.0, 0.2);
        let b = rng::normal(&mut r, &[40], 0.0, 0.05);
        let layer = DualModuleLayer::learn(&w, &b, act, 32, 400, &mut r);
        (layer, r)
    }

    #[test]
    fn never_switch_equals_dense() {
        let (layer, mut r) = make_layer(Activation::Relu, 1);
        let x = rng::normal(&mut r, &[80], 0.0, 1.0);
        let out = layer.forward(&x, &SwitchingPolicy::never_switch());
        let dense = layer.forward_dense(&x);
        for (a, b) in out.output.data().iter().zip(dense.data()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        assert_eq!(out.report.outputs_exact, 40);
        assert_eq!(out.report.executor_macs, out.report.dense_macs);
    }

    #[test]
    fn sensitive_outputs_are_exact() {
        let (layer, mut r) = make_layer(Activation::Relu, 2);
        let x = rng::normal(&mut r, &[80], 0.0, 1.0);
        let out = layer.forward(&x, &SwitchingPolicy::relu(0.0));
        let dense_pre = ops::affine(layer.weight(), &x, layer.bias());
        for i in 0..40 {
            if out.map.is_sensitive(i) {
                assert!(
                    (out.pre_activation.data()[i] - dense_pre.data()[i]).abs() < 1e-5,
                    "sensitive neuron {i} not exact"
                );
            }
        }
    }

    #[test]
    fn relu_switching_saves_work_with_small_error() {
        let (layer, mut r) = make_layer(Activation::Relu, 3);
        let mut total_err = 0.0f32;
        let mut total_norm = 0.0f32;
        let mut saved = 0.0;
        let trials = 20;
        for _ in 0..trials {
            let x = rng::normal(&mut r, &[80], 0.0, 1.0);
            let out = layer.forward(&x, &SwitchingPolicy::relu(0.0));
            let dense = layer.forward_dense(&x);
            total_err += ops::sub(&out.output, &dense).norm_sq();
            total_norm += dense.norm_sq();
            saved += out.report.mac_skip_fraction();
        }
        let rel = total_err / total_norm.max(1e-9);
        let avg_saved = saved / trials as f64;
        assert!(avg_saved > 0.25, "too little saving: {avg_saved}");
        assert!(rel < 0.15, "too much post-ReLU error: {rel}");
    }

    #[test]
    fn tanh_saturation_switching_is_cheap_and_accurate() {
        // A trained-looking low-rank teacher, scaled so many
        // pre-activations saturate — the regime Fig. 2 reports for RNNs.
        let mut r = seeded(4);
        let u = rng::normal(&mut r, &[32, 6], 0.0, 1.0);
        let v = rng::normal(&mut r, &[6, 64], 0.0, 0.25);
        let w = ops::matmul(&u, &v);
        let b = Tensor::zeros(&[32]);
        let layer = DualModuleLayer::learn(&w, &b, Activation::Tanh, 32, 600, &mut r);
        let x = rng::normal(&mut r, &[64], 0.0, 1.0);
        let out = layer.forward(&x, &SwitchingPolicy::tanh(2.5));
        let dense = layer.forward_dense(&x);
        let rel = ops::sub(&out.output, &dense).norm_sq() / dense.norm_sq();
        assert!(rel < 0.05, "tanh mix error {rel}");
        assert!(out.report.approximate_fraction() > 0.05);
    }

    #[test]
    fn report_row_skipping_reduces_weight_bytes() {
        let (layer, mut r) = make_layer(Activation::Relu, 5);
        let x = rng::normal(&mut r, &[80], 0.0, 1.0);
        let out = layer.forward(&x, &SwitchingPolicy::relu(0.0));
        let exact = out.report.outputs_exact;
        assert_eq!(out.report.executor_weight_bytes, exact * 80 * 2);
        assert!(out.report.weight_access_reduction() > 1.0);
    }

    #[test]
    fn extreme_theta_drives_everything_approximate() {
        let (layer, mut r) = make_layer(Activation::Relu, 6);
        let x = rng::normal(&mut r, &[80], 0.0, 1.0);
        let out = layer.forward(&x, &SwitchingPolicy::relu(f32::INFINITY));
        assert_eq!(out.report.outputs_exact, 0);
        assert_eq!(out.report.executor_macs, 0);
    }
}

#[cfg(test)]
mod pruning_composition_tests {
    use super::*;
    use duet_tensor::rng::{self, seeded};

    /// §VI: "dual-module processing can be combined with other model
    /// compression techniques by taking compressed layers as accurate
    /// modules" — zero weights cost neither MACs nor fetches.
    #[test]
    fn pruned_accurate_module_compounds_savings() {
        let mut r = seeded(31);
        let mut w = rng::normal(&mut r, &[32, 64], 0.0, 0.2);
        // prune half the weights
        for (i, v) in w.data_mut().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let b = Tensor::zeros(&[32]);
        let layer = DualModuleLayer::learn(&w, &b, Activation::Relu, 24, 300, &mut r);
        let x = rng::normal(&mut r, &[64], 0.0, 1.0);

        // even with every output sensitive, the executor only runs the
        // non-zero half of the MACs
        let out = layer.forward(&x, &SwitchingPolicy::never_switch());
        assert_eq!(out.report.executor_macs, 32 * 32);
        assert_eq!(out.report.executor_weight_bytes, 32 * 32 * 2);
        // and the result still matches the dense reference exactly
        let dense = layer.forward_dense(&x);
        for (a, b) in out.output.data().iter().zip(dense.data()) {
            assert!((a - b).abs() < 1e-5);
        }

        // with switching on top, savings compound
        let dual = layer.forward(&x, &SwitchingPolicy::relu(0.0));
        assert!(dual.report.executor_macs < out.report.executor_macs);
    }
}
