//! Batched dual-module execution.
//!
//! The single-vector [`DualModuleLayer::forward`] mirrors the hardware's
//! per-inference flow; this module adds the batched form used by the
//! software evaluation harness (throughput) and by CONV layers after
//! im2col, where the "batch" is the set of output positions.

use crate::dual_layer::DualModuleLayer;
use crate::metrics::SavingsReport;
use crate::switching::{SwitchingMap, SwitchingPolicy};
use duet_tensor::{ops, parallel, Tensor};

/// Result of a batched dual-module forward pass.
#[derive(Debug, Clone)]
pub struct BatchDualOutput {
    /// Post-activation outputs `[B, n]`.
    pub output: Tensor,
    /// Per-sample switching maps.
    pub maps: Vec<SwitchingMap>,
    /// Aggregate accounting over the batch.
    pub report: SavingsReport,
}

/// Runs a dual-module layer over a batch `[B, d]`, sample-parallel,
/// sharing the (already loaded) approximate module across the batch.
///
/// Samples are distributed over [`parallel::num_threads`] scoped threads;
/// results are merged in sample order, so the output (and every map and
/// counter in the report) is identical to the serial row-by-row loop.
///
/// # Panics
///
/// Panics if `x` is not `[B, d]` with `d` matching the layer.
pub fn forward_batch(
    layer: &DualModuleLayer,
    x: &Tensor,
    policy: &SwitchingPolicy,
) -> BatchDualOutput {
    assert_eq!(x.shape().rank(), 2, "batched input must be [B, d]");
    let b = x.shape().dim(0);
    let d = x.shape().dim(1);
    assert_eq!(d, layer.input_dim(), "input width mismatch");
    let n = layer.output_dim();

    // A micro-batcher can legitimately flush an empty batch; it performs
    // no work and reports none (no thread fan-out, no per-batch weight
    // amortization to divide by zero on).
    if b == 0 {
        return BatchDualOutput {
            output: Tensor::zeros(&[0, n]),
            maps: Vec::new(),
            report: SavingsReport::new(),
        };
    }

    let mut output = Tensor::zeros(&[b, n]);
    let mut maps = Vec::with_capacity(b);
    let mut report = SavingsReport::new();
    // Per-sample engines run on pool threads, which do not inherit this
    // thread's recorder scope; re-install it so their EngineFinish events
    // keep the caller's request/batch attribution. Recorder off: no TLS
    // touched.
    let scope = duet_obs::recorder_enabled().then(duet_obs::event::current_scope);
    let results = parallel::map_indexed(b, parallel::num_threads().min(b), |bi| {
        let _scope = scope.map(|(request, tenant)| duet_obs::event::scoped(request, tenant));
        let row = Tensor::from_vec(x.row(bi).to_vec(), &[d]);
        layer.forward(&row, policy)
    });
    for (bi, out) in results.into_iter().enumerate() {
        output.row_mut(bi).copy_from_slice(out.output.data());
        maps.push(out.map);
        report += out.report;
    }
    // the approximate module's weights are loaded once per batch, not
    // once per sample
    report.speculator_weight_bytes /= b as u64;
    // likewise the executor's weight rows are reused across the batch in
    // a weight-stationary schedule: count the union of touched rows
    let mut touched = SwitchingMap::all_insensitive(n);
    for m in &maps {
        touched.union_in_place(m);
    }
    let touched_rows = touched.sensitive_count() as u64;
    report.executor_weight_bytes = touched_rows * d as u64 * 2;
    report.dense_weight_bytes = (n * d * 2) as u64;

    BatchDualOutput {
        output,
        maps,
        report,
    }
}

/// Dense batched reference for comparison (also sample-parallel).
///
/// # Panics
///
/// Panics if `x` is not `[B, d]` with `d` matching the layer.
pub fn forward_batch_dense(layer: &DualModuleLayer, x: &Tensor) -> Tensor {
    assert_eq!(x.shape().rank(), 2, "batched input must be [B, d]");
    let b = x.shape().dim(0);
    let d = x.shape().dim(1);
    assert_eq!(d, layer.input_dim(), "input width mismatch");
    let n = layer.output_dim();
    let mut out = Tensor::zeros(&[b, n]);
    parallel::for_each_row_chunk(
        out.data_mut(),
        b,
        n,
        parallel::num_threads().min(b),
        |rows, chunk| {
            for (local, bi) in rows.enumerate() {
                let row = Tensor::from_vec(x.row(bi).to_vec(), &[d]);
                let y = layer.forward_dense(&row);
                chunk[local * n..(local + 1) * n].copy_from_slice(y.data());
            }
        },
    );
    out
}

/// Mean relative L2 error between two batched outputs.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn batch_relative_error(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "batch shapes differ");
    let err = ops::sub(a, b).norm_sq();
    (err / b.norm_sq().max(1e-12)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_nn::Activation;
    use duet_tensor::rng::{self, seeded};

    fn layer() -> (DualModuleLayer, duet_tensor::rng::Rng) {
        let mut r = seeded(5);
        let w = rng::normal(&mut r, &[24, 48], 0.0, 0.2);
        let b = Tensor::zeros(&[24]);
        (
            DualModuleLayer::learn(&w, &b, Activation::Relu, 24, 300, &mut r),
            r,
        )
    }

    #[test]
    fn batch_matches_per_sample() {
        let (layer, mut r) = layer();
        let x = rng::normal(&mut r, &[6, 48], 0.0, 1.0);
        let batch = forward_batch(&layer, &x, &SwitchingPolicy::relu(0.0));
        for bi in 0..6 {
            let row = Tensor::from_vec(x.row(bi).to_vec(), &[48]);
            let single = layer.forward(&row, &SwitchingPolicy::relu(0.0));
            for (a, b) in batch.output.row(bi).iter().zip(single.output.data()) {
                assert_eq!(a, b);
            }
            assert_eq!(batch.maps[bi], single.map);
        }
    }

    #[test]
    fn never_switch_equals_dense_batch() {
        let (layer, mut r) = layer();
        let x = rng::normal(&mut r, &[4, 48], 0.0, 1.0);
        let dual = forward_batch(&layer, &x, &SwitchingPolicy::never_switch());
        let dense = forward_batch_dense(&layer, &x);
        assert!(batch_relative_error(&dual.output, &dense) < 1e-5);
    }

    #[test]
    fn weight_bytes_count_touched_union() {
        let (layer, mut r) = layer();
        let x = rng::normal(&mut r, &[8, 48], 0.0, 1.0);
        let out = forward_batch(&layer, &x, &SwitchingPolicy::relu(0.0));
        // union of touched rows ≤ n, and weight bytes reflect it
        assert!(out.report.executor_weight_bytes <= out.report.dense_weight_bytes);
        let touched = out.report.executor_weight_bytes / (48 * 2);
        assert!(touched <= 24);
        // at least one sample's sensitive count is ≤ union
        let max_single = out
            .maps
            .iter()
            .map(|m| m.sensitive_count() as u64)
            .max()
            .unwrap();
        assert!(touched >= max_single);
    }

    #[test]
    fn empty_batch_returns_empty_output() {
        // A micro-batcher can flush an empty batch: no panic, no
        // zero-thread fan-out, no divide-by-zero amortization.
        let (layer, _) = layer();
        let x = Tensor::zeros(&[0, 48]);
        let out = forward_batch(&layer, &x, &SwitchingPolicy::relu(0.0));
        assert_eq!(out.output.shape().dims(), &[0, 24]);
        assert!(out.output.is_empty());
        assert!(out.maps.is_empty());
        assert_eq!(out.report, SavingsReport::new());
        // the empty aggregate report keeps its neutral ratios (the PR 3
        // empty-report guards cover aggregation over zero samples)
        assert_eq!(out.report.flops_reduction(), 1.0);
        assert_eq!(out.report.weight_access_reduction(), 1.0);
        assert_eq!(out.report.approximate_fraction(), 0.0);
        // and the dense reference accepts the same degenerate batch
        let dense = forward_batch_dense(&layer, &x);
        assert_eq!(dense.shape().dims(), &[0, 24]);
    }

    #[test]
    fn single_sample_batch_matches_forward() {
        let (layer, mut r) = layer();
        let x = rng::normal(&mut r, &[1, 48], 0.0, 1.0);
        let batch = forward_batch(&layer, &x, &SwitchingPolicy::relu(0.0));
        let row = Tensor::from_vec(x.row(0).to_vec(), &[48]);
        let single = layer.forward(&row, &SwitchingPolicy::relu(0.0));
        assert_eq!(batch.output.row(0), single.output.data());
        assert_eq!(batch.maps.len(), 1);
        assert_eq!(batch.maps[0], single.map);
        // B == 1 amortizes nothing: the speculator loads once either way
        assert_eq!(
            batch.report.speculator_weight_bytes,
            single.report.speculator_weight_bytes
        );
    }

    #[test]
    #[should_panic(expected = "batched input must be [B, d]")]
    fn dense_rejects_non_matrix_input() {
        let (layer, mut r) = layer();
        let x = rng::normal(&mut r, &[48], 0.0, 1.0);
        forward_batch_dense(&layer, &x);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn dense_rejects_wrong_width() {
        let (layer, mut r) = layer();
        let x = rng::normal(&mut r, &[4, 47], 0.0, 1.0);
        forward_batch_dense(&layer, &x);
    }

    #[test]
    fn aggregate_report_sums_macs() {
        let (layer, mut r) = layer();
        let x = rng::normal(&mut r, &[3, 48], 0.0, 1.0);
        let out = forward_batch(&layer, &x, &SwitchingPolicy::relu(0.0));
        assert_eq!(out.report.dense_macs, 3 * 24 * 48);
        assert_eq!(out.report.outputs_total, 3 * 24);
    }
}
