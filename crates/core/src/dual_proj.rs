//! [`DualProjection`] — speculation as a property of a *projection*.
//!
//! Every dual-module variant in this crate is, structurally, one or more
//! speculated GEMVs: an accurate weight matrix `[n, d]` with a bias, a
//! distilled INT4 approximate module, a [`SpeculationEngine`] call site
//! and an optional guard hook. Historically each layer type (FF, LSTM,
//! GRU, CONV) hand-rolled that bundle; `DualProjection` owns it once, so
//! a layer is only the *composition* of its projections plus whatever
//! dense glue (activations, gate combines, softmax) sits between them.
//!
//! * [`crate::DualModuleLayer`] is one projection + an activation,
//! * [`crate::DualLstmCell`] / [`crate::DualGruCell`] are an
//!   input-to-hidden and a hidden-to-hidden projection whose row
//!   segments chain per gate,
//! * [`crate::DualAttention`] is four projections (Q/K/V/output) around
//!   a dense softmax mixer,
//! * [`crate::DualFfn`] is an expand projection with a GELU band and a
//!   contract projection with a magnitude band.
//!
//! The per-row arithmetic still runs through the engine's
//! [`RowKernel`], in the exact element order the hand-rolled variants
//! used, so re-backed layers are bitwise identical to their
//! pre-refactor outputs.

use crate::approx::{ApproxConfig, ApproxLinear};
use crate::distill;
use crate::engine::{
    EngineCosts, ExecutorWeightBytes, Gather, MacMode, RowKernel, RowSegment, SpeculationEngine,
};
use crate::guard::SpeculationGuard;
use crate::switching::{SwitchingMap, SwitchingPolicy};
use duet_tensor::rng::Rng;
use duet_tensor::Tensor;

/// Speculator-side constants of one projection — the per-projection
/// slice of [`EngineCosts`]. Additive: a layer made of several
/// projections sums their costs; a sequence workload scales them by the
/// number of positions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProjectionCosts {
    /// MACs a dense single-module execution of this projection issues.
    pub dense_macs: u64,
    /// Weight bytes a dense execution fetches (INT16 weights).
    pub dense_weight_bytes: u64,
    /// Approximate-module MACs (INT4 over the projected input).
    pub speculator_macs: u64,
    /// Additions of the ternary projection.
    pub speculator_adds: u64,
    /// Approximate-module weight bytes.
    pub speculator_weight_bytes: u64,
}

impl ProjectionCosts {
    /// The costs of `invocations` runs of this projection (e.g. one per
    /// sequence position).
    pub fn times(self, invocations: u64) -> Self {
        Self {
            dense_macs: self.dense_macs * invocations,
            dense_weight_bytes: self.dense_weight_bytes * invocations,
            speculator_macs: self.speculator_macs * invocations,
            speculator_adds: self.speculator_adds * invocations,
            speculator_weight_bytes: self.speculator_weight_bytes * invocations,
        }
    }

    /// Converts to the [`EngineCosts`] handed to
    /// [`SpeculationEngine::finish`], with the memory-bound
    /// row-fetch accounting every projection-backed layer uses
    /// ([`ExecutorWeightBytes::CountedWords`]).
    pub fn engine_costs(self) -> EngineCosts {
        EngineCosts {
            dense_macs: self.dense_macs,
            dense_weight_bytes: self.dense_weight_bytes,
            speculator_macs: self.speculator_macs,
            speculator_adds: self.speculator_adds,
            speculator_weight_bytes: self.speculator_weight_bytes,
            executor_weight_bytes: ExecutorWeightBytes::CountedWords,
        }
    }
}

impl std::ops::Add for ProjectionCosts {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            dense_macs: self.dense_macs + rhs.dense_macs,
            dense_weight_bytes: self.dense_weight_bytes + rhs.dense_weight_bytes,
            speculator_macs: self.speculator_macs + rhs.speculator_macs,
            speculator_adds: self.speculator_adds + rhs.speculator_adds,
            speculator_weight_bytes: self.speculator_weight_bytes + rhs.speculator_weight_bytes,
        }
    }
}

impl std::ops::AddAssign for ProjectionCosts {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for ProjectionCosts {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |a, b| a + b)
    }
}

/// One speculated GEMV: accurate weights `[n, d]` + bias `[n]` + the
/// distilled INT4 speculator + the MAC-issue semantics of its rows.
///
/// See the module docs for how layers compose projections; see
/// [`DualProjection::forward`] for the single-projection lifecycle.
#[derive(Debug, Clone)]
pub struct DualProjection {
    weight: Tensor, // [n, d]
    bias: Tensor,   // [n]
    approx: ApproxLinear,
    mode: MacMode,
}

impl DualProjection {
    /// Wraps accurate weights and a pre-distilled approximate module.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn new(weight: Tensor, bias: Tensor, approx: ApproxLinear, mode: MacMode) -> Self {
        assert_eq!(weight.shape().rank(), 2, "weight must be [n, d]");
        assert_eq!(weight.shape().dim(0), bias.len(), "bias length mismatch");
        assert_eq!(
            weight.shape().dim(1),
            approx.input_dim(),
            "approximate module input dim mismatch"
        );
        assert_eq!(
            weight.shape().dim(0),
            approx.output_dim(),
            "approximate module output dim mismatch"
        );
        Self {
            weight,
            bias,
            approx,
            mode,
        }
    }

    /// Distills an INT4 speculator from the accurate weights (standard-
    /// normal calibration inputs) and wraps both. `reduced_dim` is the
    /// projection size `k`, `samples` the distillation sample count.
    pub fn learn(
        weight: &Tensor,
        bias: &Tensor,
        mode: MacMode,
        reduced_dim: usize,
        samples: usize,
        rng: &mut Rng,
    ) -> Self {
        let cfg = ApproxConfig::paper_default(reduced_dim);
        let approx = distill::distill_linear(weight, bias, cfg, samples, rng);
        Self::new(weight.clone(), bias.clone(), approx, mode)
    }

    /// Distills using recorded calibration activations `[s, d]`.
    pub fn learn_from_activations(
        weight: &Tensor,
        bias: &Tensor,
        mode: MacMode,
        reduced_dim: usize,
        activations: &Tensor,
        rng: &mut Rng,
    ) -> Self {
        let cfg = ApproxConfig::paper_default(reduced_dim);
        let approx = distill::distill_linear_from_activations(weight, bias, cfg, activations, rng);
        Self::new(weight.clone(), bias.clone(), approx, mode)
    }

    /// The accurate weight matrix `[n, d]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias vector `[n]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// The approximate module.
    pub fn approx(&self) -> &ApproxLinear {
        &self.approx
    }

    /// MAC-issue semantics of this projection's rows.
    pub fn mode(&self) -> MacMode {
        self.mode
    }

    /// Replaces the approximate module — the write-back half of fault
    /// injection and speculator-corruption studies (the accurate weights
    /// are untouched).
    ///
    /// # Panics
    ///
    /// Panics if the replacement's dimensions disagree.
    pub fn set_approx(&mut self, approx: ApproxLinear) {
        assert_eq!(approx.input_dim(), self.input_dim(), "input dim mismatch");
        assert_eq!(
            approx.output_dim(),
            self.output_dim(),
            "output dim mismatch"
        );
        self.approx = approx;
    }

    /// Output dimension `n`.
    pub fn output_dim(&self) -> usize {
        self.weight.shape().dim(0)
    }

    /// Input dimension `d`.
    pub fn input_dim(&self) -> usize {
        self.weight.shape().dim(1)
    }

    /// Runs the speculator: approximate pre-activations `[n]`.
    pub fn speculate(&self, x: &Tensor) -> Tensor {
        self.approx.forward(x)
    }

    /// This projection as one reduction segment of an accurate row —
    /// composed layers (RNN gates) chain several projections' segments
    /// into one [`SpeculationEngine::execute_rows_into`] call.
    pub fn segment<'a>(&'a self, x: &'a [f32]) -> RowSegment<'a> {
        RowSegment {
            weights: self.weight.data(),
            d: self.input_dim(),
            x: Gather::Dense(x),
            mode: self.mode,
        }
    }

    /// One accurate row through the shared kernel:
    /// `bias[row] + W[row]·x` under this projection's MAC mode — for
    /// composed layers whose sensitive lanes recompute several
    /// projections separately (the GRU r/z gates).
    pub fn dot_row(&self, kernel: &mut RowKernel, row: usize, x: &[f32]) -> f32 {
        let d = self.input_dim();
        kernel.dot(
            self.bias.data()[row],
            &self.weight.data()[row * d..(row + 1) * d],
            Gather::Dense(x),
            self.mode,
        )
    }

    /// The full single-projection lifecycle: speculate, derive the
    /// switching map (guarded if a guard is given), and overwrite the
    /// sensitive lanes of the approximate buffer with exact rows
    /// (Eq. 2 mix). Returns the mixed pre-activations and the map.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimension.
    pub fn forward(
        &self,
        engine: &mut SpeculationEngine,
        policy: &SwitchingPolicy,
        x: &Tensor,
        guard: Option<&mut SpeculationGuard>,
    ) -> (Tensor, SwitchingMap) {
        assert_eq!(x.len(), self.input_dim(), "input length mismatch");
        let y_approx = self.speculate(x);
        let map = match guard {
            Some(g) => engine.speculate_guarded(policy, &y_approx, g),
            None => engine.speculate(policy, &y_approx),
        };
        let mut pre = y_approx;
        let segments = [self.segment(x.data())];
        engine.execute_rows_into(&map, pre.data_mut(), 0, self.bias.data(), &segments);
        (pre, map)
    }

    /// Dense reference `bias + W·x`, accumulated in exactly the
    /// element order (and zero-weight skipping) of the sparse
    /// [`RowKernel`] — so an all-sensitive [`DualProjection::forward`]
    /// is bitwise-equal to this, and dense fallback paths can share it.
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.len(), self.input_dim(), "input length mismatch");
        let (n, d) = (self.output_dim(), self.input_dim());
        let xd = x.data();
        let mut out = Tensor::zeros(&[n]);
        for (row, o) in out.data_mut().iter_mut().enumerate() {
            let mut acc = self.bias.data()[row];
            let w = &self.weight.data()[row * d..(row + 1) * d];
            match self.mode {
                MacMode::SkipZeroWeights => {
                    for (&wv, &xv) in w.iter().zip(xd) {
                        if wv != 0.0 {
                            acc += wv * xv;
                        }
                    }
                }
                _ => {
                    for (&wv, &xv) in w.iter().zip(xd) {
                        acc += wv * xv;
                    }
                }
            }
            *o = acc;
        }
        out
    }

    /// This projection's speculator-side cost constants.
    pub fn costs(&self) -> ProjectionCosts {
        let (n, d) = (self.output_dim(), self.input_dim());
        let k = self.approx.config().reduced_dim;
        ProjectionCosts {
            dense_macs: (n * d) as u64,
            dense_weight_bytes: (n * d * 2) as u64, // INT16 weights
            speculator_macs: (n * k) as u64,
            speculator_adds: self.approx.projection().additions_per_projection() as u64,
            speculator_weight_bytes: self.approx.weight_bytes() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::{self, seeded};

    fn make_proj(seed: u64, mode: MacMode) -> (DualProjection, Rng) {
        let mut r = seeded(seed);
        let w = rng::normal(&mut r, &[24, 40], 0.0, 0.2);
        let b = rng::normal(&mut r, &[24], 0.0, 0.05);
        let proj = DualProjection::learn(&w, &b, mode, 16, 300, &mut r);
        (proj, r)
    }

    #[test]
    fn never_switch_forward_is_bitwise_reference() {
        for mode in [MacMode::SkipZeroWeights, MacMode::Dense] {
            let (proj, mut r) = make_proj(1, mode);
            let x = rng::normal(&mut r, &[40], 0.0, 1.0);
            let mut engine = SpeculationEngine::new();
            let (pre, map) = proj.forward(&mut engine, &SwitchingPolicy::never_switch(), &x, None);
            engine.finish(proj.costs().engine_costs());
            assert_eq!(map.sensitive_count(), 24);
            assert_eq!(pre.data(), proj.forward_reference(&x).data());
        }
    }

    #[test]
    fn insensitive_lanes_keep_speculator_values() {
        let (proj, mut r) = make_proj(2, MacMode::SkipZeroWeights);
        let x = rng::normal(&mut r, &[40], 0.0, 1.0);
        let approx = proj.speculate(&x);
        let mut engine = SpeculationEngine::new();
        let (pre, map) = proj.forward(&mut engine, &SwitchingPolicy::relu(0.0), &x, None);
        engine.finish(proj.costs().engine_costs());
        let exact = proj.forward_reference(&x);
        for i in 0..24 {
            if map.is_sensitive(i) {
                assert_eq!(pre.data()[i], exact.data()[i], "lane {i} not exact");
            } else {
                assert_eq!(pre.data()[i], approx.data()[i], "lane {i} not approximate");
            }
        }
    }

    #[test]
    fn costs_are_additive_and_scale() {
        let (a, _) = make_proj(3, MacMode::Dense);
        let (b, _) = make_proj(4, MacMode::Dense);
        let sum = a.costs() + b.costs();
        assert_eq!(sum.dense_macs, a.costs().dense_macs + b.costs().dense_macs);
        assert_eq!(
            sum.speculator_adds,
            a.costs().speculator_adds + b.costs().speculator_adds
        );
        assert_eq!(a.costs().times(3).dense_macs, 3 * a.costs().dense_macs);
        let summed: ProjectionCosts = [a.costs(), b.costs()].into_iter().sum();
        assert_eq!(summed, sum);
    }

    #[test]
    fn dot_row_matches_reference() {
        let (proj, mut r) = make_proj(5, MacMode::Dense);
        let x = rng::normal(&mut r, &[40], 0.0, 1.0);
        let exact = proj.forward_reference(&x);
        let mut engine = SpeculationEngine::new();
        let map = SwitchingMap::all_sensitive(24);
        engine.account_map(&map);
        let mut out = vec![0.0f32; 24];
        engine.execute(&map, |i, kernel| {
            out[i] = proj.dot_row(kernel, i, x.data());
        });
        engine.finish(proj.costs().engine_costs());
        assert_eq!(out, exact.data());
    }

    #[test]
    fn guard_fallback_forces_dense_map() {
        use crate::guard::{GuardConfig, SwitchRateBand};
        let (proj, mut r) = make_proj(6, MacMode::SkipZeroWeights);
        let x = rng::normal(&mut r, &[40], 0.0, 1.0);
        // A band nothing satisfies: first observation trips the guard.
        let mut guard = SpeculationGuard::new(GuardConfig {
            trip_after: 1,
            ..GuardConfig::fallback_dense(SwitchRateBand { lo: 2.0, hi: 3.0 })
        });
        let mut engine = SpeculationEngine::new();
        let (_, m1) = proj.forward(
            &mut engine,
            &SwitchingPolicy::relu(f32::INFINITY),
            &x,
            Some(&mut guard),
        );
        engine.finish(proj.costs().engine_costs());
        assert!(guard.is_tripped());
        assert_eq!(m1.sensitive_count(), 24, "tripped guard must run dense");
        let mut engine = SpeculationEngine::new();
        let (pre, _) = proj.forward(
            &mut engine,
            &SwitchingPolicy::relu(f32::INFINITY),
            &x,
            Some(&mut guard),
        );
        engine.finish(proj.costs().engine_costs());
        assert_eq!(pre.data(), proj.forward_reference(&x).data());
    }
}
