//! FLOP and memory-access accounting for dual-module execution.
//!
//! Every savings number in the paper's evaluation (Fig. 10's FLOPs
//! reduction, §IV-B's weight-fetch reduction) is derived from these
//! counters.

use std::ops::AddAssign;

/// Operation and byte counters for one dual-module layer execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SavingsReport {
    /// MACs a dense (single-module) execution would perform.
    pub dense_macs: u64,
    /// MACs the Executor actually performed (sensitive outputs only,
    /// minus input-sparsity skips where applicable).
    pub executor_macs: u64,
    /// Low-precision multiply-accumulates performed by the Speculator's
    /// systolic array.
    pub speculator_macs: u64,
    /// Additions performed by the Speculator's dimension-reduction adder
    /// trees.
    pub speculator_adds: u64,
    /// Weight bytes a dense execution would fetch.
    pub dense_weight_bytes: u64,
    /// Weight bytes actually fetched for the Executor (skipped rows are
    /// never loaded, §IV-B).
    pub executor_weight_bytes: u64,
    /// QDR weight + projection bytes fetched for the Speculator.
    pub speculator_weight_bytes: u64,
    /// Total output neurons.
    pub outputs_total: u64,
    /// Output neurons computed exactly by the Executor.
    pub outputs_exact: u64,
}

impl SavingsReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// FLOPs-reduction factor of the accurate path, counting the
    /// Speculator's low-precision work at its native cost ratio
    /// (an INT4 MAC ≈ 1/16 the energy/area of an INT16 MAC; we charge it
    /// 1/16 of a MAC, and an add 1/32).
    pub fn flops_reduction(&self) -> f64 {
        let effective = self.executor_macs as f64
            + self.speculator_macs as f64 / 16.0
            + self.speculator_adds as f64 / 32.0;
        if effective == 0.0 {
            // An empty report reduces nothing — a neutral 1.0, never
            // 0/0. Real work done entirely by free speculation is a
            // genuinely unbounded reduction.
            return if self.dense_macs == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.dense_macs as f64 / effective
    }

    /// Weight-access reduction factor (DRAM traffic for memory-bound
    /// layers).
    pub fn weight_access_reduction(&self) -> f64 {
        let fetched = self.executor_weight_bytes + self.speculator_weight_bytes;
        if fetched == 0 {
            // Same guard as [`Self::flops_reduction`]: no dense traffic
            // and no fetches is a no-op layer, not an infinite saving.
            return if self.dense_weight_bytes == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.dense_weight_bytes as f64 / fetched as f64
    }

    /// Fraction of outputs that kept the approximate value.
    pub fn approximate_fraction(&self) -> f64 {
        if self.outputs_total == 0 {
            return 0.0;
        }
        1.0 - self.outputs_exact as f64 / self.outputs_total as f64
    }

    /// Fraction of dense MACs the Executor skipped.
    pub fn mac_skip_fraction(&self) -> f64 {
        if self.dense_macs == 0 {
            return 0.0;
        }
        1.0 - self.executor_macs as f64 / self.dense_macs as f64
    }
}

impl AddAssign for SavingsReport {
    fn add_assign(&mut self, rhs: Self) {
        self.dense_macs += rhs.dense_macs;
        self.executor_macs += rhs.executor_macs;
        self.speculator_macs += rhs.speculator_macs;
        self.speculator_adds += rhs.speculator_adds;
        self.dense_weight_bytes += rhs.dense_weight_bytes;
        self.executor_weight_bytes += rhs.executor_weight_bytes;
        self.speculator_weight_bytes += rhs.speculator_weight_bytes;
        self.outputs_total += rhs.outputs_total;
        self.outputs_exact += rhs.outputs_exact;
    }
}

impl std::iter::Sum for SavingsReport {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        let mut acc = SavingsReport::new();
        for r in iter {
            acc += r;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SavingsReport {
        SavingsReport {
            dense_macs: 1000,
            executor_macs: 250,
            speculator_macs: 160,
            speculator_adds: 320,
            dense_weight_bytes: 2000,
            executor_weight_bytes: 500,
            speculator_weight_bytes: 100,
            outputs_total: 100,
            outputs_exact: 25,
        }
    }

    #[test]
    fn reductions() {
        let r = sample();
        // effective = 250 + 10 + 10 = 270
        assert!((r.flops_reduction() - 1000.0 / 270.0).abs() < 1e-9);
        assert!((r.weight_access_reduction() - 2000.0 / 600.0).abs() < 1e-9);
        assert!((r.approximate_fraction() - 0.75).abs() < 1e-12);
        assert!((r.mac_skip_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn accumulation() {
        let mut a = sample();
        a += sample();
        assert_eq!(a.dense_macs, 2000);
        assert_eq!(a.outputs_exact, 50);
        let s: SavingsReport = vec![sample(), sample(), sample()].into_iter().sum();
        assert_eq!(s.dense_macs, 3000);
    }

    #[test]
    fn empty_report_edge_cases() {
        // A fresh report is a no-op, not an infinite (or NaN) saving:
        // every ratio helper must return a finite neutral value.
        let r = SavingsReport::new();
        assert_eq!(r.approximate_fraction(), 0.0);
        assert_eq!(r.mac_skip_fraction(), 0.0);
        assert_eq!(r.flops_reduction(), 1.0);
        assert_eq!(r.weight_access_reduction(), 1.0);
        assert!(r.flops_reduction().is_finite());
        assert!(r.weight_access_reduction().is_finite());
    }

    #[test]
    fn fully_speculative_real_work_is_unbounded() {
        // dense work done with zero executor cost is a true ∞ reduction
        let r = SavingsReport {
            dense_macs: 1000,
            dense_weight_bytes: 2000,
            outputs_total: 10,
            ..SavingsReport::new()
        };
        assert!(r.flops_reduction().is_infinite());
        assert!(r.weight_access_reduction().is_infinite());
        assert_eq!(r.approximate_fraction(), 1.0);
    }
}
