//! Threshold calibration (the "tuning phase" of §II-A).
//!
//! The paper tunes θ on a validation set to trade model quality against
//! savings (Fig. 10). This module provides the generic sweep machinery:
//! evaluate a quality metric and a [`SavingsReport`] at each candidate
//! threshold, then pick the most aggressive threshold that stays within a
//! quality budget.

use crate::metrics::SavingsReport;

/// One point of a threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepPoint {
    /// The threshold evaluated.
    pub theta: f32,
    /// Task quality at this threshold (higher is better: accuracy,
    /// negative perplexity, …).
    pub quality: f64,
    /// Aggregate savings at this threshold.
    pub report: SavingsReport,
}

impl SweepPoint {
    /// FLOPs-reduction factor at this point.
    pub fn flops_reduction(&self) -> f64 {
        self.report.flops_reduction()
    }
}

/// Evaluates `eval` at every candidate threshold.
///
/// `eval` receives θ and returns `(quality, savings)`.
pub fn sweep<F>(thetas: &[f32], mut eval: F) -> Vec<SweepPoint>
where
    F: FnMut(f32) -> (f64, SavingsReport),
{
    thetas
        .iter()
        .map(|&theta| {
            let (quality, report) = eval(theta);
            SweepPoint {
                theta,
                quality,
                report,
            }
        })
        .collect()
}

/// Picks the sweep point with the highest FLOPs reduction whose quality is
/// at least `min_quality`. Returns `None` if no point qualifies.
pub fn best_within_budget(points: &[SweepPoint], min_quality: f64) -> Option<SweepPoint> {
    points
        .iter()
        .filter(|p| p.quality >= min_quality)
        .max_by(|a, b| {
            a.flops_reduction()
                .partial_cmp(&b.flops_reduction())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .copied()
}

/// Picks the point with the highest *weight-access* reduction within the
/// quality budget (the RNN selection criterion, §IV-B).
pub fn best_memory_within_budget(points: &[SweepPoint], min_quality: f64) -> Option<SweepPoint> {
    points
        .iter()
        .filter(|p| p.quality >= min_quality)
        .max_by(|a, b| {
            a.report
                .weight_access_reduction()
                .partial_cmp(&b.report.weight_access_reduction())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .copied()
}

/// Builds a linearly spaced threshold grid.
///
/// Returns `None` for a degenerate grid (`n < 2` or `lo >= hi`) instead
/// of panicking — grid shapes often come from CLI flags or sweep configs,
/// i.e. caller-supplied data.
pub fn linspace(lo: f32, hi: f32, n: usize) -> Option<Vec<f32>> {
    if n < 2 || lo >= hi {
        return None;
    }
    Some(
        (0..n)
            .map(|i| lo + (hi - lo) * i as f32 / (n - 1) as f32)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_eval(theta: f32) -> (f64, SavingsReport) {
        // quality decreases, savings increase with theta
        let quality = 1.0 - theta as f64 * 0.1;
        let report = SavingsReport {
            dense_macs: 1000,
            executor_macs: (1000.0 / (1.0 + theta as f64)) as u64,
            ..SavingsReport::new()
        };
        (quality, report)
    }

    #[test]
    fn sweep_evaluates_each_theta() {
        let pts = sweep(&[0.0, 1.0, 2.0], fake_eval);
        assert_eq!(pts.len(), 3);
        assert!(pts[0].quality > pts[2].quality);
        assert!(pts[2].flops_reduction() > pts[0].flops_reduction());
    }

    #[test]
    fn budget_selection_respects_quality_floor() {
        let pts = sweep(&linspace(0.0, 5.0, 11).expect("valid grid"), fake_eval);
        let best = best_within_budget(&pts, 0.8).expect("some point qualifies");
        assert!(best.quality >= 0.8);
        // the most aggressive qualifying theta is 2.0
        assert!((best.theta - 2.0).abs() < 1e-6, "theta {}", best.theta);
    }

    #[test]
    fn budget_selection_none_when_impossible() {
        let pts = sweep(&[5.0], fake_eval);
        assert!(best_within_budget(&pts, 0.99).is_none());
    }

    #[test]
    fn memory_budget_selection() {
        let mk = |theta: f32, fetched: u64| SweepPoint {
            theta,
            quality: 1.0,
            report: SavingsReport {
                dense_weight_bytes: 1000,
                executor_weight_bytes: fetched,
                ..SavingsReport::new()
            },
        };
        let pts = vec![mk(1.0, 800), mk(2.0, 400)];
        let best = best_memory_within_budget(&pts, 0.5).unwrap();
        assert_eq!(best.theta, 2.0);
    }

    #[test]
    fn linspace_endpoints() {
        let g = linspace(-1.0, 1.0, 5).expect("valid grid");
        assert_eq!(g.len(), 5);
        assert_eq!(g[0], -1.0);
        assert_eq!(g[4], 1.0);
        assert!((g[2]).abs() < 1e-7);
    }

    #[test]
    fn linspace_rejects_degenerate_grids() {
        assert_eq!(linspace(0.0, 1.0, 1), None);
        assert_eq!(linspace(0.0, 1.0, 0), None);
        assert_eq!(linspace(1.0, 1.0, 5), None);
        assert_eq!(linspace(2.0, 1.0, 5), None);
    }
}
