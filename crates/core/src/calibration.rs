//! Per-layer threshold calibration against a global quality budget.
//!
//! §II-A: "the threshold can be obtained by tuning with the validation
//! set." A network has one θ per layer; greedily calibrating layer by
//! layer — most savings first, re-checking the end-to-end quality after
//! each move — is the standard knob-turning procedure and what this
//! module automates on top of [`crate::tuning`].

use crate::guard::SwitchRateBand;
use crate::metrics::SavingsReport;

/// A calibrated per-layer threshold assignment.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Calibration {
    /// Chosen threshold per layer.
    pub thetas: Vec<f32>,
    /// End-to-end quality at the chosen assignment.
    pub quality: f64,
    /// Aggregate savings at the chosen assignment.
    pub report: SavingsReport,
}

impl Calibration {
    /// Derives the healthy switch-rate operating band for a
    /// [`crate::guard::SpeculationGuard`]: the insensitive fraction
    /// observed at the calibrated assignment, widened by ±`margin`
    /// (clamped to `[0, 1]`). A deployed layer whose smoothed switch rate
    /// leaves this band is running far from where it was validated.
    pub fn insensitive_band(&self, margin: f64) -> SwitchRateBand {
        let center = self.report.approximate_fraction();
        SwitchRateBand {
            lo: (center - margin).max(0.0),
            hi: (center + margin).min(1.0),
        }
    }
}

/// Greedy coordinate-ascent calibration.
///
/// * `layers` — number of layers (thresholds) to calibrate,
/// * `candidates` — the candidate θ grid, ordered from conservative to
///   aggressive (index 0 must be the "never switch" extreme),
/// * `evaluate` — maps a full threshold assignment to
///   `(quality, savings)`; called O(layers × candidates) times,
/// * `min_quality` — the quality floor the result must respect.
///
/// Starting from all-conservative, each layer in turn is pushed to the
/// most aggressive candidate that keeps end-to-end quality above the
/// floor. Returns the final assignment (which always satisfies the floor
/// if the all-conservative assignment does; otherwise returns `None`).
/// An empty candidate grid is infeasible and also returns `None`.
pub fn calibrate<F>(
    layers: usize,
    candidates: &[f32],
    mut evaluate: F,
    min_quality: f64,
) -> Option<Calibration>
where
    F: FnMut(&[f32]) -> (f64, SavingsReport),
{
    let first = *candidates.first()?;
    let mut thetas = vec![first; layers];
    let (q0, r0) = evaluate(&thetas);
    if q0 < min_quality {
        return None;
    }
    let mut best = Calibration {
        thetas: thetas.clone(),
        quality: q0,
        report: r0,
    };

    for layer in 0..layers {
        // try successively more aggressive candidates for this layer
        for &cand in &candidates[1..] {
            let mut trial = best.thetas.clone();
            trial[layer] = cand;
            let (q, r) = evaluate(&trial);
            if q >= min_quality {
                best = Calibration {
                    thetas: trial,
                    quality: q,
                    report: r,
                };
            } else {
                break; // candidates are ordered; further ones only worse
            }
        }
        thetas.clone_from(&best.thetas);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy two-layer "network": quality drops by 0.05·θ per layer,
    /// savings grow linearly; layer 1 is twice as sensitive.
    fn toy_eval(thetas: &[f32]) -> (f64, SavingsReport) {
        let quality = 1.0 - 0.05 * thetas[0] as f64 - 0.10 * thetas[1] as f64;
        let saved = (thetas[0] + thetas[1]) as f64;
        let report = SavingsReport {
            dense_macs: 1000,
            executor_macs: (1000.0 / (1.0 + saved)) as u64,
            ..SavingsReport::new()
        };
        (quality, report)
    }

    #[test]
    fn calibrates_within_budget() {
        let grid = [0.0f32, 1.0, 2.0, 3.0];
        let cal = calibrate(2, &grid, toy_eval, 0.70).expect("feasible");
        assert!(cal.quality >= 0.70);
        // greedy should exploit the less sensitive layer 0 more
        assert!(cal.thetas[0] >= cal.thetas[1]);
        // must beat the all-conservative baseline on savings
        let (_, base) = toy_eval(&[0.0, 0.0]);
        assert!(cal.report.flops_reduction() > base.flops_reduction());
    }

    #[test]
    fn infeasible_floor_returns_none() {
        let grid = [0.0f32, 1.0];
        assert!(calibrate(2, &grid, toy_eval, 1.5).is_none());
    }

    #[test]
    fn empty_candidate_grid_returns_none() {
        assert!(calibrate(2, &[], toy_eval, 0.0).is_none());
    }

    #[test]
    fn insensitive_band_centers_on_approximate_fraction() {
        let cal = Calibration {
            thetas: vec![1.0],
            quality: 0.9,
            report: SavingsReport {
                outputs_total: 100,
                outputs_exact: 60, // 40% kept approximate
                ..SavingsReport::new()
            },
        };
        let band = cal.insensitive_band(0.15);
        assert!((band.lo - 0.25).abs() < 1e-9);
        assert!((band.hi - 0.55).abs() < 1e-9);
        assert!(band.contains(0.4));
        // clamping at the edges
        let wide = cal.insensitive_band(0.9);
        assert_eq!(wide.lo, 0.0);
        assert_eq!(wide.hi, 1.0);
    }

    #[test]
    fn tight_floor_keeps_conservative() {
        let grid = [0.0f32, 1.0, 2.0];
        let cal = calibrate(2, &grid, toy_eval, 0.9999).expect("baseline ok");
        assert_eq!(cal.thetas, vec![0.0, 0.0]);
    }

    #[test]
    fn single_layer_matches_scan() {
        let grid = [0.0f32, 1.0, 2.0, 3.0];
        let cal = calibrate(1, &grid, toy_eval_single, 0.86).unwrap();
        // quality = 1 − 0.05θ ≥ 0.86 ⇒ θ ≤ 2.8 ⇒ best grid point 2.0
        assert_eq!(cal.thetas, vec![2.0]);
    }

    fn toy_eval_single(thetas: &[f32]) -> (f64, SavingsReport) {
        let quality = 1.0 - 0.05 * thetas[0] as f64;
        let report = SavingsReport {
            dense_macs: 100,
            executor_macs: (100.0 / (1.0 + thetas[0] as f64)) as u64,
            ..SavingsReport::new()
        };
        (quality, report)
    }
}
