//! Dual-module LSTM and GRU cells (§II-B, §IV-B).
//!
//! Each recurrent cell gets **two** approximate modules — one for the
//! input-to-hidden matrix and one for the hidden-to-hidden matrix — whose
//! outputs are summed into approximate gate pre-activations. Switching is
//! per gate: sigmoid gates (i, f, o / r, z) use the saturation rule,
//! tanh gates (g / n) likewise with their own threshold.
//!
//! The crucial memory effect (§IV-B): a weight **row** is fetched from
//! DRAM only when its output neuron is sensitive.

use crate::approx::ApproxLinear;
use crate::dual_proj::DualProjection;
use crate::engine::{MacMode, SpeculationEngine};
use crate::guard::SpeculationGuard;
use crate::metrics::SavingsReport;
use crate::switching::{SwitchingMap, SwitchingPolicy};
use duet_nn::lstm::LstmState;
use duet_nn::{Activation, GruCell, LstmCell};
use duet_tensor::rng::Rng;
use duet_tensor::{ops, Tensor};

/// Per-gate thresholds for recurrent switching.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RnnThresholds {
    /// θ for sigmoid gates (insensitive iff `|y'| > theta_sigmoid`).
    pub theta_sigmoid: f32,
    /// θ for tanh gates.
    pub theta_tanh: f32,
}

impl RnnThresholds {
    /// Thresholds that never switch (dense baseline).
    pub fn never_switch() -> Self {
        Self {
            theta_sigmoid: f32::INFINITY,
            theta_tanh: f32::INFINITY,
        }
    }
}

/// Result of one dual-module recurrent step.
#[derive(Debug, Clone)]
pub struct DualRnnStepOutput {
    /// New hidden state.
    pub h: Tensor,
    /// New cell state (LSTM only; zeros for GRU).
    pub c: Tensor,
    /// Per-gate switching maps in gate order.
    pub gate_maps: Vec<SwitchingMap>,
    /// Operation / byte accounting for the step.
    pub report: SavingsReport,
}

/// An LSTM cell with distilled approximate modules: an input-to-hidden
/// and a hidden-to-hidden [`DualProjection`] whose row segments chain
/// per gate.
#[derive(Debug, Clone)]
pub struct DualLstmCell {
    proj_ih: DualProjection, // [4h, d], carries the gate bias
    proj_hh: DualProjection, // [4h, h], zero bias
    input: usize,
    hidden: usize,
}

impl DualLstmCell {
    /// Distills approximate modules from a trained [`LstmCell`].
    pub fn learn(cell: &LstmCell, reduced_dim: usize, samples: usize, rng: &mut Rng) -> Self {
        let (d, h) = (cell.input_size(), cell.hidden_size());

        let k_ih = reduced_dim.min(d);
        let k_hh = reduced_dim.min(h);
        // The input-side student carries the gate bias; the hidden-side
        // student is purely linear so the sum matches the teacher. The
        // rows are dense (no static pruning in the recurrent teachers),
        // so the §IV-B saving is whole skipped rows.
        let proj_ih = DualProjection::learn(
            &cell.w_ih.value,
            &cell.bias.value,
            MacMode::Dense,
            k_ih,
            samples,
            rng,
        );
        let proj_hh = DualProjection::learn(
            &cell.w_hh.value,
            &Tensor::zeros(&[4 * h]),
            MacMode::Dense,
            k_hh,
            samples,
            rng,
        );
        Self {
            proj_ih,
            proj_hh,
            input: d,
            hidden: h,
        }
    }

    /// Hidden size `h`.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Input size `d`.
    pub fn input_size(&self) -> usize {
        self.input
    }

    /// The input-to-hidden approximate module.
    pub fn approx_ih(&self) -> &ApproxLinear {
        self.proj_ih.approx()
    }

    /// The hidden-to-hidden approximate module.
    pub fn approx_hh(&self) -> &ApproxLinear {
        self.proj_hh.approx()
    }

    /// Replaces both approximate modules (fault injection / corrupted-
    /// speculator studies); the accurate weights are untouched.
    ///
    /// # Panics
    ///
    /// Panics if the replacements' dimensions disagree with the cell.
    pub fn set_approx(&mut self, approx_ih: ApproxLinear, approx_hh: ApproxLinear) {
        self.proj_ih.set_approx(approx_ih);
        self.proj_hh.set_approx(approx_hh);
    }

    /// Approximate gate pre-activations `a' = A_ih(x) + A_hh(h)`.
    pub fn approx_preactivations(&self, x: &Tensor, h_prev: &Tensor) -> Tensor {
        let mut a = self.proj_ih.speculate(x);
        let ah = self.proj_hh.speculate(h_prev);
        ops::axpy(1.0, &ah, &mut a);
        a
    }

    /// Dense (single-module) reference step.
    pub fn step_dense(&self, x: &Tensor, state: &LstmState) -> LstmState {
        let mut a = ops::gemv(self.proj_ih.weight(), x);
        let ah = ops::gemv(self.proj_hh.weight(), &state.h);
        ops::axpy(1.0, &ah, &mut a);
        ops::axpy(1.0, self.proj_ih.bias(), &mut a);
        self.combine(&a, state)
    }

    fn combine(&self, a: &Tensor, state: &LstmState) -> LstmState {
        let h = self.hidden;
        let seg = |k: usize| Tensor::from_vec(a.data()[k * h..(k + 1) * h].to_vec(), &[h]);
        let i = seg(0).map(|v| Activation::Sigmoid.apply_scalar(v));
        let f = seg(1).map(|v| Activation::Sigmoid.apply_scalar(v));
        let g = seg(2).map(|v| v.tanh());
        let o = seg(3).map(|v| Activation::Sigmoid.apply_scalar(v));
        let c = ops::add(&ops::hadamard(&f, &state.c), &ops::hadamard(&i, &g));
        let h_new = ops::hadamard(&o, &c.map(|v| v.tanh()));
        LstmState { h: h_new, c }
    }

    /// One dual-module step: speculate per gate, recompute sensitive rows
    /// exactly, mix, and run the cell combine on mixed pre-activations.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn step(
        &self,
        x: &Tensor,
        state: &LstmState,
        thresholds: &RnnThresholds,
    ) -> DualRnnStepOutput {
        self.step_impl(x, state, thresholds, None)
    }

    /// [`DualLstmCell::step`] watched by a [`SpeculationGuard`]: the guard
    /// observes each gate's speculation round; tripped under
    /// `FallbackDense` every gate runs bitwise-dense (see
    /// [`crate::guard`]).
    pub fn step_guarded(
        &self,
        x: &Tensor,
        state: &LstmState,
        thresholds: &RnnThresholds,
        guard: &mut SpeculationGuard,
    ) -> DualRnnStepOutput {
        self.step_impl(x, state, thresholds, Some(guard))
    }

    fn step_impl(
        &self,
        x: &Tensor,
        state: &LstmState,
        thresholds: &RnnThresholds,
        mut guard: Option<&mut SpeculationGuard>,
    ) -> DualRnnStepOutput {
        assert_eq!(x.len(), self.input, "input length mismatch");
        assert_eq!(state.h.len(), self.hidden, "state length mismatch");
        let h = self.hidden;

        let mut engine = SpeculationEngine::new();
        let mut a = self.approx_preactivations(x, &state.h);

        // Gate policies in i, f, g, o order.
        let policies = [
            SwitchingPolicy::sigmoid(thresholds.theta_sigmoid),
            SwitchingPolicy::sigmoid(thresholds.theta_sigmoid),
            SwitchingPolicy::tanh(thresholds.theta_tanh),
            SwitchingPolicy::sigmoid(thresholds.theta_sigmoid),
        ];

        let xd = x.data();
        let hd = state.h.data();
        let mut gate_maps = Vec::with_capacity(4);
        for (gi, policy) in policies.iter().enumerate() {
            let slice = Tensor::from_vec(a.data()[gi * h..(gi + 1) * h].to_vec(), &[h]);
            let map = match guard.as_deref_mut() {
                Some(g) => engine.speculate_guarded(policy, &slice, g),
                None => engine.speculate(policy, &slice),
            };
            // A weight row is fetched only when its gate lane is
            // sensitive. Gate lane `r` maps to weight/bias row
            // `gi * h + r`; the two projections' segments chain
            // bias -> W_ih·x -> W_hh·h exactly as the old closure did.
            let segments = [self.proj_ih.segment(xd), self.proj_hh.segment(hd)];
            engine.execute_rows_into(
                &map,
                &mut a.data_mut()[gi * h..(gi + 1) * h],
                gi * h,
                self.proj_ih.bias().data(),
                &segments,
            );
            gate_maps.push(map);
        }

        let next = self.combine(&a, state);

        let report = engine.finish((self.proj_ih.costs() + self.proj_hh.costs()).engine_costs());

        DualRnnStepOutput {
            h: next.h,
            c: next.c,
            gate_maps,
            report,
        }
    }
}

/// A GRU cell with distilled approximate modules: two
/// [`DualProjection`]s (input-to-hidden with `b_ih`, hidden-to-hidden
/// with `b_hh`) whose sensitive lanes recompute both halves of a gate's
/// sum.
#[derive(Debug, Clone)]
pub struct DualGruCell {
    proj_ih: DualProjection, // [3h, d], bias b_ih
    proj_hh: DualProjection, // [3h, h], bias b_hh
    input: usize,
    hidden: usize,
}

impl DualGruCell {
    /// Distills approximate modules from a trained [`GruCell`].
    pub fn learn(cell: &GruCell, reduced_dim: usize, samples: usize, rng: &mut Rng) -> Self {
        let (d, h) = (cell.input_size(), cell.hidden_size());
        let proj_ih = DualProjection::learn(
            &cell.w_ih.value,
            &cell.b_ih.value,
            MacMode::Dense,
            reduced_dim.min(d),
            samples,
            rng,
        );
        let proj_hh = DualProjection::learn(
            &cell.w_hh.value,
            &cell.b_hh.value,
            MacMode::Dense,
            reduced_dim.min(h),
            samples,
            rng,
        );
        Self {
            proj_ih,
            proj_hh,
            input: d,
            hidden: h,
        }
    }

    /// Hidden size `h`.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// The input-to-hidden approximate module.
    pub fn approx_ih(&self) -> &ApproxLinear {
        self.proj_ih.approx()
    }

    /// The hidden-to-hidden approximate module.
    pub fn approx_hh(&self) -> &ApproxLinear {
        self.proj_hh.approx()
    }

    /// Replaces both approximate modules (fault injection / corrupted-
    /// speculator studies); the accurate weights are untouched.
    ///
    /// # Panics
    ///
    /// Panics if the replacements' dimensions disagree with the cell.
    pub fn set_approx(&mut self, approx_ih: ApproxLinear, approx_hh: ApproxLinear) {
        self.proj_ih.set_approx(approx_ih);
        self.proj_hh.set_approx(approx_hh);
    }

    /// Dense reference step.
    pub fn step_dense(&self, x: &Tensor, h_prev: &Tensor) -> Tensor {
        let ax = {
            let mut t = ops::gemv(self.proj_ih.weight(), x);
            ops::axpy(1.0, self.proj_ih.bias(), &mut t);
            t
        };
        let ah = {
            let mut t = ops::gemv(self.proj_hh.weight(), h_prev);
            ops::axpy(1.0, self.proj_hh.bias(), &mut t);
            t
        };
        self.combine(&ax, &ah, h_prev)
    }

    fn combine(&self, ax: &Tensor, ah: &Tensor, h_prev: &Tensor) -> Tensor {
        let h = self.hidden;
        let seg =
            |t: &Tensor, k: usize| Tensor::from_vec(t.data()[k * h..(k + 1) * h].to_vec(), &[h]);
        let r = ops::add(&seg(ax, 0), &seg(ah, 0)).map(|v| Activation::Sigmoid.apply_scalar(v));
        let z = ops::add(&seg(ax, 1), &seg(ah, 1)).map(|v| Activation::Sigmoid.apply_scalar(v));
        let n = ops::add(&seg(ax, 2), &ops::hadamard(&r, &seg(ah, 2))).map(|v| v.tanh());
        let ones = Tensor::full(&[h], 1.0);
        ops::add(
            &ops::hadamard(&ops::sub(&ones, &z), &n),
            &ops::hadamard(&z, h_prev),
        )
    }

    /// One dual-module GRU step. Gates r and z use the sigmoid rule; the
    /// candidate n uses the tanh rule on its (r-gated) approximate
    /// pre-activation.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn step(
        &self,
        x: &Tensor,
        h_prev: &Tensor,
        thresholds: &RnnThresholds,
    ) -> DualRnnStepOutput {
        self.step_impl(x, h_prev, thresholds, None)
    }

    /// [`DualGruCell::step`] watched by a [`SpeculationGuard`]: the guard
    /// observes each gate's speculation round; tripped under
    /// `FallbackDense` every gate runs bitwise-dense (see
    /// [`crate::guard`]).
    pub fn step_guarded(
        &self,
        x: &Tensor,
        h_prev: &Tensor,
        thresholds: &RnnThresholds,
        guard: &mut SpeculationGuard,
    ) -> DualRnnStepOutput {
        self.step_impl(x, h_prev, thresholds, Some(guard))
    }

    fn step_impl(
        &self,
        x: &Tensor,
        h_prev: &Tensor,
        thresholds: &RnnThresholds,
        mut guard: Option<&mut SpeculationGuard>,
    ) -> DualRnnStepOutput {
        assert_eq!(x.len(), self.input, "input length mismatch");
        assert_eq!(h_prev.len(), self.hidden, "state length mismatch");
        let h = self.hidden;

        let mut engine = SpeculationEngine::new();
        let mut ax = self.proj_ih.speculate(x);
        let mut ah = self.proj_hh.speculate(h_prev);

        let mut gate_maps = Vec::with_capacity(3);

        // r and z gates: switch on the summed approximate pre-activation.
        // A sensitive lane recomputes *both* halves of the sum exactly
        // (one row each of W_ih and W_hh); the engine counts the lane as
        // one exact output.
        for gi in 0..2 {
            let policy = SwitchingPolicy::sigmoid(thresholds.theta_sigmoid);
            let slice = Tensor::from_vec(
                (0..h)
                    .map(|i| ax.data()[gi * h + i] + ah.data()[gi * h + i])
                    .collect(),
                &[h],
            );
            let map = match guard.as_deref_mut() {
                Some(g) => engine.speculate_guarded(&policy, &slice, g),
                None => engine.speculate(&policy, &slice),
            };
            let (axd, ahd) = (ax.data_mut(), ah.data_mut());
            engine.execute(&map, |rr, kernel| {
                let row = gi * h + rr;
                axd[row] = self.proj_ih.dot_row(kernel, row, x.data());
                ahd[row] = self.proj_hh.dot_row(kernel, row, h_prev.data());
            });
            gate_maps.push(map);
        }

        // Candidate gate: approximate pre-activation includes the r-gating
        // on the hidden part (r is already mixed/accurate where needed).
        let r_gate = Tensor::from_vec(
            (0..h)
                .map(|i| Activation::Sigmoid.apply_scalar(ax.data()[i] + ah.data()[i]))
                .collect(),
            &[h],
        );
        let n_pre_approx = Tensor::from_vec(
            (0..h)
                .map(|i| ax.data()[2 * h + i] + r_gate.data()[i] * ah.data()[2 * h + i])
                .collect(),
            &[h],
        );
        let n_policy = SwitchingPolicy::tanh(thresholds.theta_tanh);
        let n_map = match guard {
            Some(g) => engine.speculate_guarded(&n_policy, &n_pre_approx, g),
            None => engine.speculate(&n_policy, &n_pre_approx),
        };
        let (axd, ahd) = (ax.data_mut(), ah.data_mut());
        engine.execute(&n_map, |rr, kernel| {
            let row = 2 * h + rr;
            axd[row] = self.proj_ih.dot_row(kernel, row, x.data());
            ahd[row] = self.proj_hh.dot_row(kernel, row, h_prev.data());
        });
        gate_maps.push(n_map);

        let h_new = self.combine(&ax, &ah, h_prev);

        let report = engine.finish((self.proj_ih.costs() + self.proj_hh.costs()).engine_costs());

        DualRnnStepOutput {
            h: h_new,
            c: Tensor::zeros(&[h]),
            gate_maps,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::{self, seeded};

    #[test]
    fn lstm_never_switch_matches_dense() {
        let mut r = seeded(1);
        let cell = LstmCell::new(16, 12, &mut r);
        let dual = DualLstmCell::learn(&cell, 12, 300, &mut r);
        let x = rng::normal(&mut r, &[16], 0.0, 1.0);
        let state = LstmState::zeros(12);
        let out = dual.step(&x, &state, &RnnThresholds::never_switch());
        let dense = dual.step_dense(&x, &state);
        for (a, b) in out.h.data().iter().zip(dense.h.data()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        assert_eq!(out.report.outputs_exact, 48);
    }

    #[test]
    fn lstm_dense_step_matches_nn_cell() {
        let mut r = seeded(2);
        let cell = LstmCell::new(8, 6, &mut r);
        let dual = DualLstmCell::learn(&cell, 6, 200, &mut r);
        let x = rng::normal(&mut r, &[8], 0.0, 1.0);
        let state = LstmState::zeros(6);
        let a = dual.step_dense(&x, &state);
        let (b, _) = cell.step(&x, &state);
        for (p, q) in a.h.data().iter().zip(b.h.data()) {
            assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn lstm_switching_saves_rows_with_small_state_error() {
        let mut r = seeded(3);
        let mut cell = LstmCell::new(32, 32, &mut r);
        // Scale weights up to emulate a trained LSTM whose gates saturate
        // (Fig. 2 shows large saturated fractions in trained RNNs).
        cell.w_ih.value.map_inplace(|v| v * 4.0);
        cell.w_hh.value.map_inplace(|v| v * 4.0);
        let dual = DualLstmCell::learn(&cell, 24, 500, &mut r);
        let thresholds = RnnThresholds {
            theta_sigmoid: 2.5,
            theta_tanh: 2.0,
        };
        let mut state = LstmState::zeros(32);
        let mut dense_state = LstmState::zeros(32);
        let mut total = SavingsReport::new();
        for _ in 0..5 {
            let x = rng::normal(&mut r, &[32], 0.0, 1.5);
            let out = dual.step(&x, &state, &thresholds);
            dense_state = dual.step_dense(&x, &dense_state);
            state = LstmState {
                h: out.h.clone(),
                c: out.c.clone(),
            };
            total += out.report;
        }
        // rows skipped → weight fetches reduced
        assert!(total.weight_access_reduction() >= 1.0);
        // states stay close to the dense trajectory
        let err = ops::sub(&state.h, &dense_state.h).norm_sq();
        let norm = dense_state.h.norm_sq().max(1e-6);
        assert!(err / norm < 0.5, "trajectory divergence {}", err / norm);
    }

    #[test]
    fn gru_never_switch_matches_dense() {
        let mut r = seeded(4);
        let cell = GruCell::new(10, 8, &mut r);
        let dual = DualGruCell::learn(&cell, 8, 300, &mut r);
        let x = rng::normal(&mut r, &[10], 0.0, 1.0);
        let h_prev = rng::normal(&mut r, &[8], 0.0, 0.5);
        let out = dual.step(&x, &h_prev, &RnnThresholds::never_switch());
        let dense = dual.step_dense(&x, &h_prev);
        for (a, b) in out.h.data().iter().zip(dense.data()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn gru_dense_step_matches_nn_cell() {
        let mut r = seeded(5);
        let cell = GruCell::new(7, 5, &mut r);
        let dual = DualGruCell::learn(&cell, 5, 200, &mut r);
        let x = rng::normal(&mut r, &[7], 0.0, 1.0);
        let h_prev = rng::normal(&mut r, &[5], 0.0, 0.5);
        let a = dual.step_dense(&x, &h_prev);
        let (b, _) = cell.step(&x, &h_prev);
        for (p, q) in a.data().iter().zip(b.data()) {
            assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn gate_maps_have_gate_lengths() {
        let mut r = seeded(6);
        let cell = LstmCell::new(8, 6, &mut r);
        let dual = DualLstmCell::learn(&cell, 6, 150, &mut r);
        let out = dual.step(
            &Tensor::zeros(&[8]),
            &LstmState::zeros(6),
            &RnnThresholds::never_switch(),
        );
        assert_eq!(out.gate_maps.len(), 4);
        assert!(out.gate_maps.iter().all(|m| m.len() == 6));
    }
}
