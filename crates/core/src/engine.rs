//! The shared speculation engine behind every dual-module variant.
//!
//! All four execution variants — FF ([`crate::DualModuleLayer`]), CONV
//! ([`crate::DualConvLayer`]), LSTM and GRU ([`crate::DualLstmCell`],
//! [`crate::DualGruCell`]) — implement the same §II pattern: run the
//! approximate module, derive a switching map (Eq. 3), recompute the
//! sensitive outputs exactly with a row-sparse kernel, and keep the
//! approximate value everywhere else (Eq. 2). [`SpeculationEngine`] owns
//! that pattern once: the map construction, the single sparse-execute
//! loop, the in-place mix into the approximate buffer, the op/byte
//! accounting behind [`SavingsReport`], and the duet-obs counters — so a
//! variant is only the layer-specific row arithmetic it hands to
//! [`SpeculationEngine::execute_into`].
//!
//! An engine lives for one layer invocation (one `forward` / `step`): it
//! opens the `core.dual.forward` span on creation, accumulates counts
//! across any number of `speculate`/`execute` rounds (an RNN step runs
//! one per gate), and emits every metric exactly once in
//! [`SpeculationEngine::finish`].

use crate::guard::{DegradationPolicy, SpeculationGuard};
use crate::metrics::SavingsReport;
use crate::switching::{SwitchingMap, SwitchingPolicy};
use duet_tensor::Tensor;

/// How the accurate row kernel gathers its input operand.
#[derive(Debug, Clone, Copy)]
pub enum Gather<'a> {
    /// Contiguous input vector: element `j` is `x[j]` (FF rows, RNN
    /// rows).
    Dense(&'a [f32]),
    /// One column of a row-major `[d, stride]` patch matrix: element `j`
    /// is `data[j * stride + col]` (im2col CONV).
    Column {
        /// The patch matrix data.
        data: &'a [f32],
        /// Row stride (number of output positions).
        stride: usize,
        /// Column (output position) to gather.
        col: usize,
    },
}

/// MAC-issue semantics of one row: what is computed, skipped, and
/// counted. Each variant mirrors a hardware behaviour from the paper.
#[derive(Debug, Clone, Copy)]
pub enum MacMode {
    /// Skip zero *weights*: a pruned accurate module's zeros are
    /// statically removed from the MAC-instruction LUT, costing neither a
    /// MAC nor a weight fetch (§VI).
    SkipZeroWeights,
    /// Dense row: every element is computed and counted (RNN gates — the
    /// rows are dense and the saving is whole rows, §IV-B).
    Dense,
    /// Skip zero *inputs* in the arithmetic (exact, since the skipped
    /// products are zero). `count_skipped` controls whether skipped MACs
    /// still occupy issue slots: without an IMap the PE issues them
    /// anyway (Fig. 6 tag bits are only configured when a map exists).
    SkipZeroInputs {
        /// Count skipped MACs as issued (no IMap present).
        count_skipped: bool,
    },
}

/// One reduction segment of an accurate row: a row-major weight matrix,
/// the operand it gathers, and the MAC-issue semantics. A row's dot
/// product is `bias + Σ segments`, accumulated segment by segment in
/// declaration order — an FF row is one segment (`W·x`), an RNN gate lane
/// is two (`W_ih·x` then `W_hh·h`), matching each variant's historical
/// accumulation order exactly.
#[derive(Debug, Clone, Copy)]
pub struct RowSegment<'a> {
    /// Row-major weight matrix data; row `i` is `weights[i*d..(i+1)*d]`.
    pub weights: &'a [f32],
    /// Row length (reduction dimension of this segment).
    pub d: usize,
    /// How the segment gathers its input operand.
    pub x: Gather<'a>,
    /// MAC-issue semantics of the segment.
    pub mode: MacMode,
}

/// The row-sparse accurate kernel — the one place a sensitive output's
/// dot product is computed. Counts MACs and touched weight words as it
/// goes.
#[derive(Debug)]
pub struct RowKernel {
    macs: u64,
    weight_words: u64,
}

impl RowKernel {
    /// Accumulates `init + Σ weights[j] · gather(j)` under `mode`.
    ///
    /// The accumulation order is exactly the element order of `weights` —
    /// every variant's historical per-row order — so results are bitwise
    /// stable across the refactor.
    pub fn dot(&mut self, init: f32, weights: &[f32], x: Gather<'_>, mode: MacMode) -> f32 {
        let mut acc = init;
        match (x, mode) {
            (Gather::Dense(xd), MacMode::SkipZeroWeights) => {
                for (&w, &v) in weights.iter().zip(xd) {
                    if w != 0.0 {
                        acc += w * v;
                        self.macs += 1;
                        self.weight_words += 1;
                    }
                }
            }
            (Gather::Dense(xd), MacMode::Dense) => {
                for (&w, &v) in weights.iter().zip(xd) {
                    acc += w * v;
                }
                self.macs += weights.len() as u64;
                self.weight_words += weights.len() as u64;
            }
            (Gather::Column { data, stride, col }, MacMode::SkipZeroInputs { count_skipped }) => {
                for (j, &w) in weights.iter().enumerate() {
                    let v = data[j * stride + col];
                    if v != 0.0 {
                        acc += w * v;
                        self.macs += 1;
                    } else if count_skipped {
                        self.macs += 1;
                    }
                }
            }
            // The remaining combinations are well-defined but unused;
            // handle them generically so the kernel stays total.
            (Gather::Column { data, stride, col }, MacMode::Dense) => {
                for (j, &w) in weights.iter().enumerate() {
                    acc += w * data[j * stride + col];
                }
                self.macs += weights.len() as u64;
                self.weight_words += weights.len() as u64;
            }
            (Gather::Column { data, stride, col }, MacMode::SkipZeroWeights) => {
                for (j, &w) in weights.iter().enumerate() {
                    if w != 0.0 {
                        acc += w * data[j * stride + col];
                        self.macs += 1;
                        self.weight_words += 1;
                    }
                }
            }
            (Gather::Dense(xd), MacMode::SkipZeroInputs { count_skipped }) => {
                for (&w, &v) in weights.iter().zip(xd) {
                    if v != 0.0 {
                        acc += w * v;
                        self.macs += 1;
                    } else if count_skipped {
                        self.macs += 1;
                    }
                }
            }
        }
        acc
    }

    /// Mask-compaction gather over one switching-map word: the set bits of
    /// `word` are compacted into a lane batch (`trailing_zeros` / clear-
    /// lowest-bit), and each selected row `base + lane` (offset by
    /// `row_offset` into the weight/bias arrays) is computed as
    /// `bias[row] + Σ segments` via [`RowKernel::dot`] — one batch per map
    /// word instead of one callback per bit, with the gathered operand
    /// staying hot across the whole batch. Results land in
    /// `out[base + lane]`; the lane order (ascending) and per-row
    /// accumulation order are exactly the bit-serial loop's, so outputs
    /// are bitwise identical.
    ///
    /// Returns the number of lanes executed (the word's popcount).
    pub fn dot_rows(
        &mut self,
        word: u64,
        base: usize,
        row_offset: usize,
        bias: &[f32],
        segments: &[RowSegment<'_>],
        out: &mut [f32],
    ) -> u32 {
        let mut lanes = [0u8; 64];
        let n = if word == u64::MAX {
            // all-sensitive word: dense fast path, no bit extraction
            for (i, l) in lanes.iter_mut().enumerate() {
                *l = i as u8;
            }
            64
        } else {
            let mut n = 0usize;
            let mut bits = word;
            while bits != 0 {
                lanes[n] = bits.trailing_zeros() as u8;
                n += 1;
                bits &= bits - 1;
            }
            n
        };
        for &lane in &lanes[..n] {
            let local = base + lane as usize;
            let row = row_offset + local;
            let mut acc = bias[row];
            for seg in segments {
                acc = self.dot(
                    acc,
                    &seg.weights[row * seg.d..(row + 1) * seg.d],
                    seg.x,
                    seg.mode,
                );
            }
            out[local] = acc;
        }
        n as u32
    }
}

/// How a variant's executor weight traffic is accounted.
#[derive(Debug, Clone, Copy)]
pub enum ExecutorWeightBytes {
    /// Two bytes (INT16) per weight word the kernel actually touched —
    /// the memory-bound row-fetch model of FF/RNN layers (§IV-B).
    CountedWords,
    /// A fixed byte count independent of the switching map — the
    /// compute-bound CONV model, where the small filter bank is loaded
    /// once and reused across positions.
    Fixed(u64),
}

/// Speculator-side constants a variant reports for its approximate
/// module(s); everything executor-side is measured by the engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineCosts {
    /// MACs a dense single-module execution would issue.
    pub dense_macs: u64,
    /// Weight bytes a dense execution would fetch.
    pub dense_weight_bytes: u64,
    /// Approximate-module MACs (INT4 over the projected input).
    pub speculator_macs: u64,
    /// Additions of the ternary projection.
    pub speculator_adds: u64,
    /// Approximate-module weight bytes.
    pub speculator_weight_bytes: u64,
    /// Executor weight-byte accounting mode.
    pub executor_weight_bytes: ExecutorWeightBytes,
}

/// One dual-module layer invocation: speculate → execute sparsely → mix →
/// account. See the module docs for the lifecycle.
#[derive(Debug)]
pub struct SpeculationEngine {
    outputs_total: u64,
    outputs_exact: u64,
    kernel: RowKernel,
    map_packed_bytes: u64,
    _span: duet_obs::Span,
}

impl Default for SpeculationEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SpeculationEngine {
    /// Opens the engine (and its `core.dual.forward` span) for one layer
    /// invocation.
    pub fn new() -> Self {
        Self {
            outputs_total: 0,
            outputs_exact: 0,
            kernel: RowKernel {
                macs: 0,
                weight_words: 0,
            },
            map_packed_bytes: 0,
            _span: duet_obs::span("core.dual.forward"),
        }
    }

    /// Builds the switching map for a vector of approximate
    /// pre-activations (Eq. 3) and accounts for its outputs and packed
    /// GLB footprint.
    pub fn speculate(&mut self, policy: &SwitchingPolicy, y_approx: &Tensor) -> SwitchingMap {
        let map = policy.map(y_approx);
        self.account_map(&map);
        map
    }

    /// [`SpeculationEngine::speculate`] watched by a
    /// [`SpeculationGuard`]: feeds the approximate pre-activations and the
    /// raw policy map's insensitive fraction to the guard, and — if the
    /// guard is tripped under [`DegradationPolicy::FallbackDense`] —
    /// replaces the map with the all-sensitive fallback so the layer runs
    /// bitwise-dense. This is the single call site for all `core.guard.*`
    /// telemetry.
    ///
    /// With [`DegradationPolicy::Off`] this is exactly
    /// [`SpeculationEngine::speculate`]: no checks, no counters, no guard
    /// state changes.
    pub fn speculate_guarded(
        &mut self,
        policy: &SwitchingPolicy,
        y_approx: &Tensor,
        guard: &mut SpeculationGuard,
    ) -> SwitchingMap {
        if matches!(guard.config().policy, DegradationPolicy::Off) {
            return self.speculate(policy, y_approx);
        }
        // A zero-length output says nothing about speculator health: an
        // empty map's insensitive fraction is a synthetic 0.0 that would
        // drag the EWMA out of band and trip the guard on degenerate
        // (e.g. empty-batch) inputs. Nothing to observe — skip the guard.
        if y_approx.is_empty() {
            return self.speculate(policy, y_approx);
        }
        let nonfinite = y_approx.data().iter().any(|v| !v.is_finite());
        let raw = policy.map(y_approx);
        let was_tripped = guard.is_tripped();
        let obs = guard.observe(nonfinite, raw.insensitive_fraction());

        duet_obs::counter!("core.guard.checks").inc();
        if obs.nonfinite {
            duet_obs::counter!("core.guard.nonfinite").inc();
        }
        if obs.anomalous {
            duet_obs::counter!("core.guard.anomalies").inc();
        }
        if obs.newly_tripped {
            duet_obs::counter!("core.guard.trips").inc();
            duet_obs::event::emit_scoped(
                duet_obs::event::EventKind::GuardTrip,
                0,
                u64::MAX,
                u64::from(obs.nonfinite),
                guard.ewma().unwrap_or(0.0),
            );
        } else if was_tripped && !guard.is_tripped() {
            duet_obs::event::emit_scoped(
                duet_obs::event::EventKind::GuardClear,
                0,
                u64::MAX,
                0,
                guard.ewma().unwrap_or(0.0),
            );
        }

        let map = if obs.fallback {
            duet_obs::counter!("core.guard.fallback_maps").inc();
            SwitchingMap::all_sensitive(raw.len())
        } else {
            raw
        };
        self.account_map(&map);
        map
    }

    /// Accounts for an externally built switching map (e.g. the GRU
    /// candidate gate, whose pre-activation mixes two approximate
    /// streams before thresholding).
    pub fn account_map(&mut self, map: &SwitchingMap) {
        self.outputs_total += map.len() as u64;
        self.map_packed_bytes += map.len().div_ceil(8) as u64;
        duet_obs::histogram!("core.dual.map.insensitive_bp")
            .record((map.insensitive_fraction() * 10_000.0) as u64);
    }

    /// The sparse-execute loop: runs `row` once per sensitive index, in
    /// ascending order, counting one exact output each. `row` receives
    /// the index and the shared [`RowKernel`].
    ///
    /// The map is consumed a whole `u64` word at a time, so skipping
    /// costs O(popcount), not O(bits): all-insensitive (zero) words are
    /// run-length skipped by [`SwitchingMap::iter_words`], all-sensitive
    /// (`u64::MAX`-within-span) words take a dense fast path with no bit
    /// extraction, and mixed words extract set bits with
    /// `trailing_zeros` / clear-lowest-bit. Execution order is unchanged
    /// (ascending index), so outputs and accounting are bitwise identical
    /// to the historical index-by-index loop.
    pub fn execute(&mut self, map: &SwitchingMap, mut row: impl FnMut(usize, &mut RowKernel)) {
        let len = map.len();
        for (wi, w) in map.iter_words() {
            let base = wi * 64;
            let span = 64.min(len - base);
            let full = if span == 64 {
                u64::MAX
            } else {
                (1u64 << span) - 1
            };
            if w == full {
                for i in base..base + span {
                    row(i, &mut self.kernel);
                }
                self.outputs_exact += span as u64;
            } else {
                let mut bits = w;
                while bits != 0 {
                    row(base + bits.trailing_zeros() as usize, &mut self.kernel);
                    self.outputs_exact += 1;
                    bits &= bits - 1;
                }
            }
        }
    }

    /// [`SpeculationEngine::execute`] fused with the Eq. (2) mix:
    /// `out` holds the approximate values on entry; each sensitive index
    /// is overwritten with the exact value `row` returns, leaving
    /// insensitive outputs approximate.
    pub fn execute_into(
        &mut self,
        map: &SwitchingMap,
        out: &mut [f32],
        mut row: impl FnMut(usize, &mut RowKernel) -> f32,
    ) {
        assert_eq!(out.len(), map.len(), "mix buffer length mismatch");
        self.execute(map, |i, k| out[i] = row(i, k));
    }

    /// The batched form of [`SpeculationEngine::execute_into`] for
    /// variants whose rows are plain weight-matrix dot products: each
    /// non-zero map word is handed to [`RowKernel::dot_rows`], which
    /// mask-compacts the word's sensitive lanes and processes them as one
    /// batch (the gathered operand stays hot across the batch, and the
    /// per-bit closure dispatch disappears). `row_offset` maps local map
    /// index `i` to weight/bias row `row_offset + i` — an RNN gate `g`
    /// over a per-gate map passes `g * hidden`.
    ///
    /// Bitwise identical to the closure path: same lane order, same
    /// per-row accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != map.len()`.
    pub fn execute_rows_into(
        &mut self,
        map: &SwitchingMap,
        out: &mut [f32],
        row_offset: usize,
        bias: &[f32],
        segments: &[RowSegment<'_>],
    ) {
        assert_eq!(out.len(), map.len(), "mix buffer length mismatch");
        let len = map.len();
        for (wi, w) in map.iter_words() {
            let base = wi * 64;
            let span = 64.min(len - base);
            debug_assert!(span == 64 || w < (1u64 << span), "tail bits must be zero");
            let n = self
                .kernel
                .dot_rows(w, base, row_offset, bias, segments, out);
            self.outputs_exact += n as u64;
        }
    }

    /// Closes the invocation: assembles the [`SavingsReport`] and emits
    /// the consolidated duet-obs metrics (the single call site for all
    /// `core.dual.*` counters).
    pub fn finish(self, costs: EngineCosts) -> SavingsReport {
        let report = SavingsReport {
            dense_macs: costs.dense_macs,
            executor_macs: self.kernel.macs,
            speculator_macs: costs.speculator_macs,
            speculator_adds: costs.speculator_adds,
            dense_weight_bytes: costs.dense_weight_bytes,
            executor_weight_bytes: match costs.executor_weight_bytes {
                ExecutorWeightBytes::CountedWords => self.kernel.weight_words * 2,
                ExecutorWeightBytes::Fixed(bytes) => bytes,
            },
            speculator_weight_bytes: costs.speculator_weight_bytes,
            outputs_total: self.outputs_total,
            outputs_exact: self.outputs_exact,
        };

        duet_obs::counter!("core.dual.forward_calls").inc();
        duet_obs::counter!("core.dual.outputs_total").add(report.outputs_total);
        duet_obs::counter!("core.dual.outputs_exact").add(report.outputs_exact);
        duet_obs::counter!("core.dual.executor_macs").add(report.executor_macs);
        duet_obs::counter!("core.dual.speculator_macs").add(report.speculator_macs);
        duet_obs::counter!("core.dual.map.packed_bytes").add(self.map_packed_bytes);
        // switch rate in basis points (0..=10000): share of outputs that
        // kept the Speculator's approximate value
        duet_obs::histogram!("core.dual.switch_rate_bp")
            .record((report.approximate_fraction() * 10_000.0) as u64);
        duet_obs::event::emit_scoped(
            duet_obs::event::EventKind::EngineFinish,
            report.executor_macs,
            report.speculator_macs,
            report.outputs_exact,
            report.approximate_fraction() * 10_000.0,
        );

        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_counts_follow_mode() {
        let mut k = RowKernel {
            macs: 0,
            weight_words: 0,
        };
        let w = [1.0f32, 0.0, 2.0, 0.0];
        let x = [1.0f32, 1.0, 1.0, 1.0];
        let y = k.dot(0.5, &w, Gather::Dense(&x), MacMode::SkipZeroWeights);
        assert_eq!(y, 3.5);
        assert_eq!((k.macs, k.weight_words), (2, 2));

        let y = k.dot(0.0, &w, Gather::Dense(&x), MacMode::Dense);
        assert_eq!(y, 3.0);
        assert_eq!((k.macs, k.weight_words), (6, 6));
    }

    #[test]
    fn column_gather_strides() {
        let mut k = RowKernel {
            macs: 0,
            weight_words: 0,
        };
        // 2×3 patch matrix, column 1 is [20, 0]
        let data = [10.0f32, 20.0, 30.0, 40.0, 0.0, 60.0];
        let w = [1.0f32, 1.0];
        let g = Gather::Column {
            data: &data,
            stride: 3,
            col: 1,
        };
        let y = k.dot(
            0.0,
            &w,
            g,
            MacMode::SkipZeroInputs {
                count_skipped: true,
            },
        );
        assert_eq!(y, 20.0);
        assert_eq!(k.macs, 2, "skipped MAC still issued without an IMap");
        let y = k.dot(
            0.0,
            &w,
            g,
            MacMode::SkipZeroInputs {
                count_skipped: false,
            },
        );
        assert_eq!(y, 20.0);
        assert_eq!(k.macs, 3, "with an IMap the zero input costs nothing");
    }

    #[test]
    fn engine_executes_only_sensitive_rows_and_mixes() {
        let mut e = SpeculationEngine::new();
        let approx = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[4]);
        // relu(0): negative pre-activations are insensitive
        let map = e.speculate(&SwitchingPolicy::relu(0.0), &approx);
        let mut buf = approx.data().to_vec();
        e.execute_into(&map, &mut buf, |i, _| 100.0 + i as f32);
        assert_eq!(buf, vec![-1.0, 101.0, -3.0, 103.0]);
        let report = e.finish(EngineCosts {
            dense_macs: 8,
            dense_weight_bytes: 16,
            speculator_macs: 4,
            speculator_adds: 2,
            speculator_weight_bytes: 4,
            executor_weight_bytes: ExecutorWeightBytes::CountedWords,
        });
        assert_eq!(report.outputs_total, 4);
        assert_eq!(report.outputs_exact, 2);
        assert_eq!(report.executor_weight_bytes, 0, "no dot() ⇒ no words");
    }

    #[test]
    fn zero_length_output_does_not_move_the_guard() {
        use crate::guard::{GuardConfig, SpeculationGuard, SwitchRateBand};
        // A band whose floor is above 0.0: an empty map's synthetic 0.0
        // insensitive fraction would read as out-of-band if observed.
        let cfg = GuardConfig {
            ewma_alpha: 1.0,
            ..GuardConfig::fallback_dense(SwitchRateBand { lo: 0.2, hi: 0.8 })
        };
        let mut guard = SpeculationGuard::new(cfg);
        let empty = Tensor::zeros(&[0]);
        for _ in 0..10 {
            let mut e = SpeculationEngine::new();
            let map = e.speculate_guarded(&SwitchingPolicy::relu(0.0), &empty, &mut guard);
            assert!(map.is_empty());
        }
        assert!(!guard.is_tripped());
        assert_eq!(guard.stats().checks, 0, "empty outputs are not observed");
        assert_eq!(guard.ewma(), None);
        // a healthy non-empty observation afterwards behaves as if the
        // empty rounds never happened
        let mut e = SpeculationEngine::new();
        let y = Tensor::from_vec(vec![-1.0, -2.0, 3.0, 4.0], &[4]);
        e.speculate_guarded(&SwitchingPolicy::relu(0.0), &y, &mut guard);
        assert!(!guard.is_tripped());
        assert_eq!(guard.stats().checks, 1);
    }

    #[test]
    fn fixed_weight_bytes_override_counted_words() {
        let mut e = SpeculationEngine::new();
        let map = e.speculate(
            &SwitchingPolicy::never_switch(),
            &Tensor::from_vec(vec![1.0, 2.0], &[2]),
        );
        let w = [1.0f32; 3];
        let x = [1.0f32; 3];
        e.execute(&map, |_, k| {
            k.dot(0.0, &w, Gather::Dense(&x), MacMode::Dense);
        });
        let report = e.finish(EngineCosts {
            dense_macs: 6,
            dense_weight_bytes: 12,
            speculator_macs: 2,
            speculator_adds: 1,
            speculator_weight_bytes: 2,
            executor_weight_bytes: ExecutorWeightBytes::Fixed(12),
        });
        assert_eq!(report.executor_macs, 6);
        assert_eq!(report.executor_weight_bytes, 12);
        assert_eq!(report.outputs_exact, 2);
    }
}
