//! Closed-loop θ-control: graduated precision degradation.
//!
//! The guard ([`crate::guard`]) is binary — healthy speculation or
//! bitwise-dense fallback. This module adds the *graduated* rungs in
//! between: a per-projection feedback controller that consumes the
//! guard's EWMA switch-rate signal and nudges θ (and optionally the
//! speculator's weight precision) toward a calibrated setpoint, so
//! saturation and drift move the accuracy–efficiency knob smoothly
//! instead of slamming it.
//!
//! The loop is a proportional controller with three stabilisers:
//!
//! * **hysteresis** — errors inside the deadband cause no actuation, so
//!   θ cannot limit-cycle around the setpoint;
//! * **slew-rate limiting** — one update moves θ by at most
//!   [`ControlConfig::max_step`], so a transient cannot yank the policy
//!   across its whole range;
//! * **clamping** — θ stays inside `[theta_min, theta_max]`; a
//!   persistent error against a pinned θ is *saturation*, which (when a
//!   [`PrecisionLadder`] is configured) escalates to the next-cheaper
//!   speculator bit width rather than being silently ignored.
//!
//! The setpoint itself comes from calibration:
//! [`ControlConfig::from_calibration`] centers the loop on
//! [`Calibration::insensitive_band`], the same band the guard polices.
//! The controller is a pure function of its observation sequence — no
//! clocks, no randomness — so control trajectories replay
//! byte-identically at any thread count.

use crate::calibration::Calibration;
use crate::guard::SwitchRateBand;
use crate::switching::SwitchingPolicy;
use duet_nn::Activation;

/// Speculator weight precisions the controller may walk through when θ
/// saturates: `full_bits` down to `min_bits`, one bit at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PrecisionLadder {
    /// Bit width at full quality (the paper's default speculator is 4).
    pub full_bits: u32,
    /// Cheapest width the controller may degrade to (≥ 1).
    pub min_bits: u32,
    /// Consecutive saturated updates before dropping one bit.
    pub escalate_after: u32,
    /// Consecutive in-band updates before restoring one bit.
    pub recover_after: u32,
}

impl PrecisionLadder {
    /// The paper-default ladder: INT4 down to INT2, escalating after 4
    /// saturated updates and recovering after 6 healthy ones.
    pub fn int4_to_int2() -> Self {
        Self {
            full_bits: 4,
            min_bits: 2,
            escalate_after: 4,
            recover_after: 6,
        }
    }
}

/// Tuning of one [`ThetaController`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ControlConfig {
    /// Target insensitive fraction (the center of the calibrated band).
    pub setpoint: f64,
    /// Hysteresis half-width: errors with `|e| ≤ deadband` cause no
    /// actuation.
    pub deadband: f64,
    /// Proportional gain in θ-units per unit of switch-rate error.
    pub gain: f32,
    /// Largest |Δθ| one update may apply (slew-rate limit).
    pub max_step: f32,
    /// Lower θ clamp.
    pub theta_min: f32,
    /// Upper θ clamp.
    pub theta_max: f32,
    /// Optional speculator bit-width escalation when θ saturates.
    pub precision: Option<PrecisionLadder>,
}

impl ControlConfig {
    /// A controller centered on `band`: setpoint at the band's midpoint,
    /// deadband at its half-width, unit gain, quarter-θ slew limit, no
    /// θ clamps, no precision ladder.
    pub fn for_band(band: SwitchRateBand) -> Self {
        Self {
            setpoint: 0.5 * (band.lo + band.hi),
            deadband: 0.5 * (band.hi - band.lo),
            gain: 1.0,
            max_step: 0.25,
            theta_min: f32::NEG_INFINITY,
            theta_max: f32::INFINITY,
            precision: None,
        }
    }

    /// Centers the loop on a calibration's operating band
    /// ([`Calibration::insensitive_band`] with `margin`).
    pub fn from_calibration(cal: &Calibration, margin: f64) -> Self {
        Self::for_band(cal.insensitive_band(margin))
    }

    /// Replaces the θ clamps.
    pub fn with_theta_bounds(mut self, theta_min: f32, theta_max: f32) -> Self {
        self.theta_min = theta_min;
        self.theta_max = theta_max;
        self
    }

    /// Installs a precision ladder.
    pub fn with_precision(mut self, ladder: PrecisionLadder) -> Self {
        self.precision = Some(ladder);
        self
    }
}

/// What one [`ThetaController::update`] did, in precedence order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlAction {
    /// No actuation: no signal yet, error inside the deadband, or a
    /// non-actuating activation.
    Hold,
    /// θ moved by the proportional (slew-limited) step.
    Step,
    /// The step wanted to widen past a pinned θ clamp (counted toward
    /// precision escalation when a ladder is configured).
    Saturated,
    /// Sustained saturation dropped the speculator one bit.
    BitsDropped,
    /// A sustained in-band run restored the speculator one bit.
    BitsRestored,
}

/// Lifetime actuation counters of one controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ControlStats {
    /// Updates received (including holds).
    pub updates: u64,
    /// Updates that caused no actuation.
    pub holds: u64,
    /// Updates that moved θ.
    pub steps: u64,
    /// Updates whose proportional step was cut by a θ clamp.
    pub clamped: u64,
    /// Precision escalations (one bit dropped each).
    pub bits_drops: u64,
    /// Precision recoveries (one bit restored each).
    pub bits_restores: u64,
}

/// The θ and bit width a caller should apply after an update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlDecision {
    /// Current θ.
    pub theta: f32,
    /// Current speculator bit width.
    pub bits: u32,
    /// What this update did.
    pub action: ControlAction,
}

/// Which way θ moves to *widen* the activation's insensitive region
/// (mirrors [`crate::switching::SwitchingPolicy`] semantics): ReLU/GELU
/// mark `y' < θ` insensitive so widening raises θ; sigmoid/tanh mark
/// `|y'| > θ` insensitive so widening lowers θ; the Identity
/// magnitude band has no overload convention and is never actuated.
fn widen_direction(activation: Activation) -> f32 {
    match activation {
        Activation::Relu | Activation::Gelu => 1.0,
        Activation::Sigmoid | Activation::Tanh => -1.0,
        Activation::Identity => 0.0,
    }
}

/// Per-projection closed-loop θ-controller. See the module docs.
#[derive(Debug, Clone)]
pub struct ThetaController {
    cfg: ControlConfig,
    activation: Activation,
    theta: f32,
    bits: u32,
    saturated_streak: u32,
    recover_streak: u32,
    last_error: Option<f64>,
    stats: ControlStats,
}

impl ThetaController {
    /// Creates a controller starting from `base` (its θ clamped into the
    /// configured bounds).
    ///
    /// # Panics
    ///
    /// Panics if the config is inconsistent: negative deadband,
    /// non-positive gain or slew limit, inverted θ bounds, or a
    /// precision ladder with `min_bits` of zero or above `full_bits`.
    pub fn new(base: SwitchingPolicy, cfg: ControlConfig) -> Self {
        assert!(cfg.deadband >= 0.0, "deadband must be non-negative");
        assert!(cfg.gain > 0.0, "gain must be positive");
        assert!(cfg.max_step > 0.0, "max_step must be positive");
        assert!(cfg.theta_min <= cfg.theta_max, "inverted theta bounds");
        if let Some(p) = &cfg.precision {
            assert!(p.min_bits >= 1, "min_bits must be at least 1");
            assert!(p.min_bits <= p.full_bits, "min_bits above full_bits");
        }
        let bits = cfg.precision.as_ref().map_or(4, |p| p.full_bits);
        Self {
            theta: base.theta.clamp(cfg.theta_min, cfg.theta_max),
            activation: base.activation,
            cfg,
            bits,
            saturated_streak: 0,
            recover_streak: 0,
            last_error: None,
            stats: ControlStats::default(),
        }
    }

    /// One controller per calibrated layer, each seeded from that
    /// layer's tuned θ, sharing `template` for every other knob (the
    /// setpoint stays the template's — per-layer switch rates are
    /// calibrated against the same network-level band the guard uses).
    pub fn per_layer(
        cal: &Calibration,
        activation: Activation,
        template: ControlConfig,
    ) -> Vec<ThetaController> {
        cal.thetas
            .iter()
            .map(|&theta| ThetaController::new(SwitchingPolicy { activation, theta }, template))
            .collect()
    }

    /// The configuration this controller runs with.
    pub fn config(&self) -> &ControlConfig {
        &self.cfg
    }

    /// The current switching policy (actuated θ over the base
    /// activation).
    pub fn policy(&self) -> SwitchingPolicy {
        SwitchingPolicy {
            activation: self.activation,
            theta: self.theta,
        }
    }

    /// Current θ.
    pub fn theta(&self) -> f32 {
        self.theta
    }

    /// Current speculator bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Setpoint error of the last update with a signal
    /// (`setpoint − measured`; positive means below-target insensitive
    /// fraction), or `None` when the last update had no signal.
    pub fn last_error(&self) -> Option<f64> {
        self.last_error
    }

    /// Lifetime actuation counters.
    pub fn stats(&self) -> ControlStats {
        self.stats
    }

    /// Feeds one EWMA switch-rate observation into the loop and returns
    /// the θ/bit-width decision.
    ///
    /// `measured` is the guard's EWMA insensitive fraction — `None`
    /// (no signal yet, e.g. cold start) is an explicit hold, **not** a
    /// 0.0 reading. `setpoint_shift` is added to the configured setpoint
    /// before the error is computed (clamped to `[0, 1]`); admission
    /// control uses it to ask for cheaper batches under backlog without
    /// touching θ directly.
    pub fn update(&mut self, measured: Option<f64>, setpoint_shift: f64) -> ControlDecision {
        self.stats.updates += 1;
        let Some(measured) = measured else {
            // Cold start: no observation has reached the guard yet.
            // Holding (rather than treating "no signal" as a 0.0 switch
            // rate) keeps a false full-dense error term out of the loop.
            self.last_error = None;
            self.stats.holds += 1;
            return self.decision(ControlAction::Hold);
        };
        let setpoint = (self.cfg.setpoint + setpoint_shift).clamp(0.0, 1.0);
        let error = setpoint - measured;
        self.last_error = Some(error);

        if error.abs() <= self.cfg.deadband {
            // Inside the deadband: hysteresis holds θ, and sustained
            // health walks any degraded precision back up.
            self.stats.holds += 1;
            self.saturated_streak = 0;
            if let Some(p) = self.cfg.precision {
                if self.bits < p.full_bits {
                    self.recover_streak += 1;
                    if self.recover_streak >= p.recover_after {
                        self.bits += 1;
                        self.recover_streak = 0;
                        self.stats.bits_restores += 1;
                        return self.decision(ControlAction::BitsRestored);
                    }
                }
            }
            return self.decision(ControlAction::Hold);
        }
        self.recover_streak = 0;

        let dir = widen_direction(self.activation);
        if dir == 0.0 {
            self.stats.holds += 1;
            return self.decision(ControlAction::Hold);
        }
        // Proportional step, slew-limited, applied along the widening
        // direction, then clamped.
        #[allow(clippy::cast_possible_truncation)]
        let raw = (self.cfg.gain * error as f32).clamp(-self.cfg.max_step, self.cfg.max_step);
        let proposed = self.theta + dir * raw;
        let clamped = proposed.clamp(self.cfg.theta_min, self.cfg.theta_max);
        let moved = clamped != self.theta;
        let cut = clamped != proposed;
        self.theta = clamped;
        if moved {
            self.stats.steps += 1;
        }
        if cut {
            self.stats.clamped += 1;
        }

        // Saturation: the loop still wants a wider insensitive region,
        // but θ is pinned at its widening clamp.
        let pinned = (dir > 0.0 && self.theta >= self.cfg.theta_max)
            || (dir < 0.0 && self.theta <= self.cfg.theta_min);
        if error > self.cfg.deadband && pinned {
            if let Some(p) = self.cfg.precision {
                self.saturated_streak += 1;
                if self.saturated_streak >= p.escalate_after && self.bits > p.min_bits {
                    self.bits -= 1;
                    self.saturated_streak = 0;
                    self.stats.bits_drops += 1;
                    return self.decision(ControlAction::BitsDropped);
                }
            }
            return self.decision(ControlAction::Saturated);
        }
        self.saturated_streak = 0;
        self.decision(if moved {
            ControlAction::Step
        } else {
            ControlAction::Hold
        })
    }

    fn decision(&self, action: ControlAction) -> ControlDecision {
        ControlDecision {
            theta: self.theta,
            bits: self.bits,
            action,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band() -> SwitchRateBand {
        SwitchRateBand { lo: 0.4, hi: 0.5 }
    }

    fn relu_controller(cfg: ControlConfig) -> ThetaController {
        ThetaController::new(SwitchingPolicy::relu(0.0), cfg)
    }

    /// A monotone synthetic plant: higher θ → higher insensitive
    /// fraction (the ReLU shape), saturating at `cap`.
    fn plant(theta: f32, cap: f64) -> f64 {
        (0.45 + 0.2 * f64::from(theta)).clamp(0.0, cap)
    }

    #[test]
    fn converges_to_setpoint_and_stops_stepping() {
        let cfg = ControlConfig {
            deadband: 0.02,
            gain: 2.0,
            ..ControlConfig::for_band(band())
        };
        let mut c = relu_controller(cfg);
        let mut post_convergence_steps = 0u64;
        let mut converged_at = None;
        for i in 0..200 {
            let steps_before = c.stats().steps;
            c.update(Some(plant(c.theta(), 1.0)), 0.0);
            if converged_at.is_some() {
                post_convergence_steps += c.stats().steps - steps_before;
            } else if c.last_error().is_some_and(|e| e.abs() <= 0.02) {
                converged_at = Some(i);
            }
        }
        let at = converged_at.expect("controller never converged");
        assert!(at < 50, "convergence too slow: {at} updates");
        // Hysteresis: once inside the deadband against a stationary
        // plant, θ must not oscillate.
        assert_eq!(post_convergence_steps, 0, "θ oscillated around setpoint");
    }

    #[test]
    fn no_signal_is_a_hold_not_a_zero_reading() {
        let mut c = relu_controller(ControlConfig::for_band(band()));
        let before = c.theta();
        let d = c.update(None, 0.0);
        assert_eq!(d.action, ControlAction::Hold);
        assert_eq!(c.theta(), before);
        assert_eq!(c.last_error(), None);
        assert_eq!(c.stats().holds, 1);
    }

    #[test]
    fn slew_rate_limits_each_step() {
        let cfg = ControlConfig {
            gain: 100.0, // a huge gain the slew limit must contain
            max_step: 0.1,
            ..ControlConfig::for_band(band())
        };
        let mut c = relu_controller(cfg);
        c.update(Some(0.0), 0.0); // error ≈ 0.45, wants a huge step
        assert!((c.theta() - 0.1).abs() < 1e-6, "theta {}", c.theta());
        c.update(Some(0.0), 0.0);
        assert!((c.theta() - 0.2).abs() < 1e-6, "theta {}", c.theta());
    }

    #[test]
    fn saturating_activations_actuate_downward() {
        let cfg = ControlConfig {
            theta_min: 0.0,
            ..ControlConfig::for_band(band())
        };
        let mut c = ThetaController::new(SwitchingPolicy::tanh(2.0), cfg);
        // Below-target insensitive fraction: tanh widens by *lowering* θ.
        c.update(Some(0.1), 0.0);
        assert!(c.theta() < 2.0);
        // Above-target: quality pullback raises θ.
        let low = c.theta();
        c.update(Some(0.95), 0.0);
        assert!(c.theta() > low);
    }

    #[test]
    fn clamping_pins_theta_and_counts() {
        let cfg = ControlConfig {
            gain: 10.0,
            max_step: 5.0,
            ..ControlConfig::for_band(band())
        }
        .with_theta_bounds(-1.0, 1.0);
        let mut c = relu_controller(cfg);
        for _ in 0..4 {
            c.update(Some(0.0), 0.0);
        }
        assert_eq!(c.theta(), 1.0);
        assert!(c.stats().clamped >= 1);
        // Saturated, but without a ladder the action stays `Saturated`.
        let d = c.update(Some(0.0), 0.0);
        assert_eq!(d.action, ControlAction::Saturated);
        assert_eq!(d.bits, 4);
    }

    #[test]
    fn saturation_walks_the_precision_ladder_and_recovers() {
        let cfg = ControlConfig {
            gain: 10.0,
            max_step: 5.0,
            ..ControlConfig::for_band(band())
        }
        .with_theta_bounds(-1.0, 1.0)
        .with_precision(PrecisionLadder {
            full_bits: 4,
            min_bits: 2,
            escalate_after: 3,
            recover_after: 2,
        });
        let mut c = relu_controller(cfg);
        // Persistent under-target signal pins θ at +1 and then walks
        // 4 → 3 → 2 bits, holding at min_bits.
        let mut actions = Vec::new();
        for _ in 0..12 {
            actions.push(c.update(Some(0.0), 0.0).action);
        }
        assert_eq!(
            actions
                .iter()
                .filter(|a| **a == ControlAction::BitsDropped)
                .count(),
            2
        );
        assert_eq!(c.bits(), 2);
        // Healthy in-band signal restores one bit per `recover_after`
        // run, back to full precision.
        let mid = 0.5 * (band().lo + band().hi);
        let mut restores = 0;
        for _ in 0..8 {
            if c.update(Some(mid), 0.0).action == ControlAction::BitsRestored {
                restores += 1;
            }
        }
        assert_eq!(restores, 2);
        assert_eq!(c.bits(), 4);
        assert_eq!(c.stats().bits_drops, 2);
        assert_eq!(c.stats().bits_restores, 2);
    }

    #[test]
    fn setpoint_shift_requests_a_wider_band() {
        let cfg = ControlConfig {
            deadband: 0.02,
            ..ControlConfig::for_band(band())
        };
        let mut c = relu_controller(cfg);
        let mid = 0.45;
        // At the unshifted setpoint: hold.
        assert_eq!(c.update(Some(mid), 0.0).action, ControlAction::Hold);
        // An overload shift asks for a higher insensitive fraction: the
        // same measurement now reads as below target, so θ widens.
        let d = c.update(Some(mid), 0.3);
        assert_eq!(d.action, ControlAction::Step);
        assert!(c.theta() > 0.0);
        assert!(c.last_error().is_some_and(|e| e > 0.0));
    }

    #[test]
    fn identity_activation_never_actuates() {
        let mut c = ThetaController::new(
            SwitchingPolicy::never_switch(),
            ControlConfig::for_band(band()),
        );
        let d = c.update(Some(0.0), 0.5);
        assert_eq!(d.action, ControlAction::Hold);
        assert_eq!(c.theta(), 0.0);
    }

    #[test]
    fn per_layer_seeds_each_theta_from_calibration() {
        use crate::metrics::SavingsReport;
        let cal = Calibration {
            thetas: vec![0.1, 0.7, -0.2],
            quality: 0.99,
            report: SavingsReport::new(),
        };
        let cfg = ControlConfig::for_band(band());
        let cs = ThetaController::per_layer(&cal, Activation::Relu, cfg);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].theta(), 0.1);
        assert_eq!(cs[1].theta(), 0.7);
        assert_eq!(cs[2].theta(), -0.2);
    }

    #[test]
    fn deterministic_trajectory() {
        let cfg = ControlConfig::for_band(band()).with_theta_bounds(-1.0, 2.0);
        let run = || {
            let mut c = relu_controller(cfg);
            let mut trail = Vec::new();
            for i in 0..64 {
                let sig = plant(c.theta(), 0.9) + if i % 7 == 0 { 0.05 } else { -0.01 };
                let d = c.update(Some(sig), f64::from(u8::from(i % 5 == 0)) * 0.1);
                trail.push((d.theta.to_bits(), d.bits));
            }
            (trail, c.stats())
        };
        assert_eq!(run(), run());
    }
}
