//! Speculation watchdog: graceful degradation when the Speculator
//! misbehaves.
//!
//! DUET's resilience argument (§II) is structural: the approximate module
//! only *steers* execution, and every sensitive output is recomputed
//! exactly — so a broken Speculator should cost efficiency, never
//! correctness. That argument has a hole in deployment: a collapsed
//! approximate module (non-finite outputs from corrupted QDR weights, or a
//! switch rate drifted far outside the calibrated operating band) silently
//! degrades *quality* because the insensitive outputs keep its garbage
//! values. This module closes the hole with a per-layer watchdog:
//!
//! * **non-finite detection** — any NaN/∞ in the approximate
//!   pre-activations trips the guard immediately;
//! * **switch-rate anomaly detection** — an EWMA of the per-invocation
//!   insensitive fraction is compared against the calibrated band (see
//!   [`crate::calibration::Calibration::insensitive_band`]); a sustained
//!   excursion trips the guard;
//! * **graceful degradation** — a tripped layer under
//!   [`DegradationPolicy::FallbackDense`] reroutes through the existing
//!   bitwise-dense path by forcing an all-sensitive switching map, so the
//!   Executor recomputes every output exactly. Recovery is hysteretic: the
//!   guard keeps observing the *raw* policy map while tripped and clears
//!   only after a run of healthy observations.
//!
//! The guard is caller-owned and long-lived (one per layer/cell), threaded
//! into [`crate::SpeculationEngine::speculate_guarded`] — the single call
//! site that also emits all `core.guard.*` telemetry. With
//! [`DegradationPolicy::Off`] the guarded path is byte-for-byte the
//! unguarded one.

/// What a tripped guard does to the layer it watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DegradationPolicy {
    /// Watchdog disabled: no checks, no telemetry, bitwise identical to
    /// the unguarded path.
    Off,
    /// Detect and count anomalies/trips but never alter execution.
    WarnOnly,
    /// On trip, force an all-sensitive switching map so the layer runs
    /// bitwise-dense until the guard clears.
    FallbackDense,
}

/// The calibrated operating band for a layer's insensitive fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SwitchRateBand {
    /// Lowest healthy insensitive fraction (inclusive).
    pub lo: f64,
    /// Highest healthy insensitive fraction (inclusive).
    pub hi: f64,
}

impl SwitchRateBand {
    /// A band that accepts every fraction — useful when only non-finite
    /// detection is wanted.
    pub fn any() -> Self {
        Self { lo: 0.0, hi: 1.0 }
    }

    /// Whether `fraction` lies inside the band.
    pub fn contains(&self, fraction: f64) -> bool {
        (self.lo..=self.hi).contains(&fraction)
    }
}

/// Tuning knobs of the watchdog.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GuardConfig {
    /// What a trip does.
    pub policy: DegradationPolicy,
    /// Healthy band for the EWMA of the insensitive fraction.
    pub band: SwitchRateBand,
    /// EWMA smoothing factor in (0, 1]; 1.0 means no smoothing.
    pub ewma_alpha: f64,
    /// Consecutive out-of-band observations before a switch-rate trip.
    pub trip_after: u32,
    /// Consecutive healthy observations before a tripped guard clears
    /// (hysteresis; non-finite observations reset the run).
    pub clear_after: u32,
}

impl GuardConfig {
    /// A disabled guard.
    pub fn off() -> Self {
        Self {
            policy: DegradationPolicy::Off,
            band: SwitchRateBand::any(),
            ewma_alpha: 0.2,
            trip_after: 3,
            clear_after: 8,
        }
    }

    /// Default watchdog with dense fallback over `band`.
    pub fn fallback_dense(band: SwitchRateBand) -> Self {
        Self {
            policy: DegradationPolicy::FallbackDense,
            ..Self::off()
        }
        .with_band(band)
    }

    /// Default watchdog that only counts anomalies over `band`.
    pub fn warn_only(band: SwitchRateBand) -> Self {
        Self {
            policy: DegradationPolicy::WarnOnly,
            ..Self::off()
        }
        .with_band(band)
    }

    /// Replaces the healthy band.
    pub fn with_band(mut self, band: SwitchRateBand) -> Self {
        self.band = band;
        self
    }
}

/// Running counters of one guard (monotonic over its lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GuardStats {
    /// Observations made (one per guarded `speculate`).
    pub checks: u64,
    /// Observations containing a non-finite approximate pre-activation.
    pub nonfinite: u64,
    /// Observations flagged anomalous (non-finite or out-of-band EWMA).
    pub anomalies: u64,
    /// Healthy→tripped transitions.
    pub trips: u64,
    /// Switching maps replaced by the all-sensitive fallback map.
    pub fallback_maps: u64,
}

/// What one observation decided; consumed by the engine to build the map
/// and emit telemetry.
#[derive(Debug, Clone, Copy)]
pub struct GuardObservation {
    /// This observation was anomalous.
    pub anomalous: bool,
    /// The approximate pre-activations contained a non-finite value.
    pub nonfinite: bool,
    /// The guard transitioned healthy→tripped on this observation.
    pub newly_tripped: bool,
    /// The switching map must be replaced by the all-sensitive fallback.
    pub fallback: bool,
}

/// Per-layer speculation watchdog. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct SpeculationGuard {
    config: GuardConfig,
    ewma: Option<f64>,
    anomalous_streak: u32,
    healthy_streak: u32,
    tripped: bool,
    stats: GuardStats,
}

impl SpeculationGuard {
    /// Creates a guard with `config`.
    pub fn new(config: GuardConfig) -> Self {
        Self {
            config,
            ewma: None,
            anomalous_streak: 0,
            healthy_streak: 0,
            tripped: false,
            stats: GuardStats::default(),
        }
    }

    /// The guard's configuration.
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// Whether the guard is currently tripped.
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }

    /// Lifetime counters.
    pub fn stats(&self) -> GuardStats {
        self.stats
    }

    /// Total healthy→tripped transitions so far.
    pub fn trips(&self) -> u64 {
        self.stats.trips
    }

    /// Current EWMA of the insensitive fraction, if any finite observation
    /// has been made.
    pub fn ewma(&self) -> Option<f64> {
        self.ewma
    }

    /// Trips the guard from outside the observation path — the fault-
    /// injection hook chaos campaigns use to quarantine a healthy
    /// replica. Counted in [`GuardStats::trips`] like an observed trip;
    /// recovery goes through the normal hysteretic clear (a run of
    /// [`GuardConfig::clear_after`] healthy observations). A no-op when
    /// already tripped.
    pub fn force_trip(&mut self) {
        if self.tripped {
            return;
        }
        self.tripped = true;
        self.healthy_streak = 0;
        self.stats.trips += 1;
    }

    /// Clears the trip state and streaks (counters are kept).
    pub fn reset(&mut self) {
        self.ewma = None;
        self.anomalous_streak = 0;
        self.healthy_streak = 0;
        self.tripped = false;
    }

    /// Feeds one layer invocation into the watchdog: whether the
    /// approximate pre-activations contained a non-finite value, and the
    /// *raw* policy map's insensitive fraction (pre-override, so a tripped
    /// guard can observe recovery).
    ///
    /// Called by [`crate::SpeculationEngine::speculate_guarded`]; exposed
    /// for tests and custom integrations.
    pub fn observe(&mut self, nonfinite: bool, insensitive_fraction: f64) -> GuardObservation {
        self.stats.checks += 1;

        let anomalous = if nonfinite {
            true
        } else {
            // EWMA only over finite observations; a non-finite round says
            // nothing about the switch rate.
            let alpha = self.config.ewma_alpha.clamp(f64::EPSILON, 1.0);
            let ewma = match self.ewma {
                Some(prev) => prev + alpha * (insensitive_fraction - prev),
                None => insensitive_fraction,
            };
            self.ewma = Some(ewma);
            !self.config.band.contains(ewma)
        };

        let was_tripped = self.tripped;
        if anomalous {
            self.anomalous_streak = self.anomalous_streak.saturating_add(1);
            self.healthy_streak = 0;
            // A non-finite Speculator output would corrupt kept values
            // directly — trip immediately rather than waiting out a
            // streak.
            if nonfinite || self.anomalous_streak >= self.config.trip_after {
                self.tripped = true;
            }
        } else {
            self.healthy_streak = self.healthy_streak.saturating_add(1);
            self.anomalous_streak = 0;
            if self.tripped && self.healthy_streak >= self.config.clear_after {
                self.tripped = false;
                self.healthy_streak = 0;
            }
        }

        let newly_tripped = self.tripped && !was_tripped;
        if nonfinite {
            self.stats.nonfinite += 1;
        }
        if anomalous {
            self.stats.anomalies += 1;
        }
        if newly_tripped {
            self.stats.trips += 1;
        }
        let fallback =
            self.tripped && matches!(self.config.policy, DegradationPolicy::FallbackDense);
        if fallback {
            self.stats.fallback_maps += 1;
        }

        GuardObservation {
            anomalous,
            nonfinite,
            newly_tripped,
            fallback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band() -> SwitchRateBand {
        SwitchRateBand { lo: 0.2, hi: 0.6 }
    }

    #[test]
    fn nonfinite_trips_immediately() {
        let mut g = SpeculationGuard::new(GuardConfig::fallback_dense(band()));
        let obs = g.observe(true, 0.4);
        assert!(obs.newly_tripped && obs.fallback && obs.nonfinite);
        assert!(g.is_tripped());
        assert_eq!(g.trips(), 1);
        assert_eq!(g.stats().nonfinite, 1);
    }

    #[test]
    fn out_of_band_needs_a_streak() {
        let cfg = GuardConfig {
            ewma_alpha: 1.0, // no smoothing: each observation is the EWMA
            ..GuardConfig::fallback_dense(band())
        };
        let mut g = SpeculationGuard::new(cfg);
        assert!(!g.observe(false, 0.95).fallback);
        assert!(!g.observe(false, 0.95).fallback);
        let third = g.observe(false, 0.95);
        assert!(third.newly_tripped && third.fallback);
        assert_eq!(g.trips(), 1);
        assert_eq!(g.stats().anomalies, 3);
    }

    #[test]
    fn hysteresis_clears_after_healthy_run() {
        let cfg = GuardConfig {
            ewma_alpha: 1.0,
            clear_after: 2,
            ..GuardConfig::fallback_dense(band())
        };
        let mut g = SpeculationGuard::new(cfg);
        for _ in 0..3 {
            g.observe(false, 0.95);
        }
        assert!(g.is_tripped());
        // one healthy observation is not enough (hysteresis) ...
        assert!(g.observe(false, 0.4).fallback);
        assert!(g.is_tripped());
        // ... the second clears the trip
        g.observe(false, 0.4);
        assert!(!g.is_tripped());
        // and a fresh excursion can trip again
        for _ in 0..3 {
            g.observe(false, 0.0);
        }
        assert!(g.is_tripped());
        assert_eq!(g.trips(), 2);
    }

    #[test]
    fn warn_only_never_falls_back() {
        let cfg = GuardConfig {
            ewma_alpha: 1.0,
            ..GuardConfig::warn_only(band())
        };
        let mut g = SpeculationGuard::new(cfg);
        let obs = g.observe(true, 0.4);
        assert!(obs.newly_tripped && !obs.fallback);
        assert!(g.is_tripped());
        assert_eq!(g.stats().fallback_maps, 0);
    }

    #[test]
    fn ewma_smooths_single_excursions() {
        let cfg = GuardConfig {
            ewma_alpha: 0.1,
            ..GuardConfig::fallback_dense(band())
        };
        let mut g = SpeculationGuard::new(cfg);
        g.observe(false, 0.4);
        // one wild observation barely moves the smoothed rate
        let obs = g.observe(false, 1.0);
        assert!(!obs.anomalous, "ewma {:?}", g.ewma());
        assert!(!g.is_tripped());
    }

    #[test]
    fn force_trip_counts_once_and_clears_hysteretically() {
        let cfg = GuardConfig {
            ewma_alpha: 1.0,
            clear_after: 2,
            ..GuardConfig::fallback_dense(band())
        };
        let mut g = SpeculationGuard::new(cfg);
        g.force_trip();
        g.force_trip(); // idempotent while tripped
        assert!(g.is_tripped());
        assert_eq!(g.trips(), 1);
        // recovery is the normal healthy-streak clear
        assert!(g.observe(false, 0.4).fallback);
        g.observe(false, 0.4);
        assert!(!g.is_tripped());
    }

    #[test]
    fn reset_keeps_counters() {
        let mut g = SpeculationGuard::new(GuardConfig::fallback_dense(band()));
        g.observe(true, 0.4);
        assert!(g.is_tripped());
        g.reset();
        assert!(!g.is_tripped());
        assert_eq!(g.trips(), 1);
        assert_eq!(g.ewma(), None);
    }
}
