//! Dual-module attention and FFN blocks — speculated projections around
//! a dense softmax mixer.
//!
//! A single-head causal transformer block is, per position, six GEMVs
//! and one softmax mix:
//!
//! ```text
//! q_t = W_q·x_t + b_q   k_t = W_k·x_t + b_k   v_t = W_v·x_t + b_v
//! ctx_t = Σ_{s≤t} softmax(q_t·k_s / √m) v_s          (dense mixer)
//! attn_t = W_o·ctx_t + b_o
//! a_t = x_t + attn_t                                  (residual)
//! y_t = a_t + W_2·gelu(W_1·a_t + b_1) + b_2           (FFN + residual)
//! ```
//!
//! Every GEMV is a [`DualProjection`] and speculates under Eq. 2–3:
//!
//! * **Q/K/V and the output projection** use the *magnitude* rule
//!   (`|y'| < θ` keeps the approximate value). The mixer bounds their
//!   influence: attention logits pass through a `1/√m`-scaled softmax,
//!   so a small-magnitude entry of `q`/`k` moves the weights little,
//!   and small entries of `v`/`ctx` contribute proportionally little
//!   to the convex combination — the Precision Gating observation.
//! * **The FFN expand projection** uses the *GELU* band (`y' < θ` dies
//!   in the one-sided tail), exactly ReLU's rule in the paper.
//! * **The FFN contract projection** uses the magnitude rule again
//!   (its output feeds a residual sum).
//!
//! The softmax itself stays dense: it is O(T·m) against the
//! projections' O(T·m²), has no insensitive region (weights must sum
//! to 1, and a wrong max shifts every weight), and reuses no weight
//! bytes — there is nothing for a speculator to save.

use crate::dual_proj::{DualProjection, ProjectionCosts};
use crate::engine::SpeculationEngine;
use crate::guard::SpeculationGuard;
use crate::metrics::SavingsReport;
use crate::switching::{SwitchingMap, SwitchingPolicy};
use duet_nn::attention::attend;
use duet_nn::Activation;
use duet_tensor::Tensor;

/// Per-band thresholds for a dual transformer block.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransformerThresholds {
    /// θ for the magnitude rule on Q/K/V and output projections
    /// (insensitive iff `|y'| < theta_attn`).
    pub theta_attn: f32,
    /// θ for the GELU band on the FFN expand projection (insensitive
    /// iff `y' < theta_gelu`).
    pub theta_gelu: f32,
    /// θ for the magnitude rule on the FFN contract projection.
    pub theta_ffn_out: f32,
}

impl TransformerThresholds {
    /// Thresholds that never switch (dense baseline): `−∞` satisfies
    /// neither `|y'| < θ` nor `y' < θ`, so every lane is sensitive.
    pub fn never_switch() -> Self {
        Self {
            theta_attn: f32::NEG_INFINITY,
            theta_gelu: f32::NEG_INFINITY,
            theta_ffn_out: f32::NEG_INFINITY,
        }
    }

    /// A uniform starting point: magnitude bands at `theta`, GELU band
    /// at `-theta` (the one-sided analogue).
    pub fn uniform(theta: f32) -> Self {
        Self {
            theta_attn: theta,
            theta_gelu: -theta,
            theta_ffn_out: theta,
        }
    }
}

/// Single-head causal self-attention with speculated Q/K/V/output
/// projections and a dense softmax mixer.
#[derive(Debug, Clone)]
pub struct DualAttention {
    wq: DualProjection,
    wk: DualProjection,
    wv: DualProjection,
    wo: DualProjection,
    m: usize,
}

impl DualAttention {
    /// Composes four pre-built `[m, m]` projections.
    ///
    /// # Panics
    ///
    /// Panics if any projection is not square `[m, m]` with a shared
    /// model dimension.
    pub fn new(
        wq: DualProjection,
        wk: DualProjection,
        wv: DualProjection,
        wo: DualProjection,
    ) -> Self {
        let m = wq.input_dim();
        for (name, p) in [("wq", &wq), ("wk", &wk), ("wv", &wv), ("wo", &wo)] {
            assert_eq!(p.input_dim(), m, "{name} input dim mismatch");
            assert_eq!(p.output_dim(), m, "{name} output dim mismatch");
        }
        Self { wq, wk, wv, wo, m }
    }

    /// Model dimension `m`.
    pub fn model_dim(&self) -> usize {
        self.m
    }

    /// The query projection.
    pub fn wq(&self) -> &DualProjection {
        &self.wq
    }

    /// The key projection.
    pub fn wk(&self) -> &DualProjection {
        &self.wk
    }

    /// The value projection.
    pub fn wv(&self) -> &DualProjection {
        &self.wv
    }

    /// The output projection.
    pub fn wo(&self) -> &DualProjection {
        &self.wo
    }

    /// Speculator-side costs of one *position* (all four projections);
    /// scale by the sequence length for a whole pass.
    pub fn costs(&self) -> ProjectionCosts {
        self.wq.costs() + self.wk.costs() + self.wv.costs() + self.wo.costs()
    }

    /// Causal forward over a `[T, m]` sequence on a shared engine:
    /// Q/K/V per position (speculated), dense causal
    /// [`attend`] mix, speculated output projection. Returns the
    /// `[T, m]` attention outputs and the switching maps in
    /// (q, k, v, o) order per position.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is not `[T, m]`.
    pub fn forward_with(
        &self,
        engine: &mut SpeculationEngine,
        xs: &Tensor,
        theta_attn: f32,
        mut guard: Option<&mut SpeculationGuard>,
    ) -> (Tensor, Vec<SwitchingMap>) {
        assert_eq!(xs.shape().rank(), 2, "input must be [T, m]");
        assert_eq!(xs.shape().dim(1), self.m, "model dim mismatch");
        let t_len = xs.shape().dim(0);
        let m = self.m;
        let policy = SwitchingPolicy::magnitude(theta_attn);

        let mut q_all = Vec::with_capacity(t_len * m);
        let mut k_all = Vec::with_capacity(t_len * m);
        let mut v_all = Vec::with_capacity(t_len * m);
        let mut maps = Vec::with_capacity(4 * t_len);
        for t in 0..t_len {
            let x_t = Tensor::from_vec(xs.data()[t * m..(t + 1) * m].to_vec(), &[m]);
            let (q, mq) = self.wq.forward(engine, &policy, &x_t, guard.as_deref_mut());
            let (k, mk) = self.wk.forward(engine, &policy, &x_t, guard.as_deref_mut());
            let (v, mv) = self.wv.forward(engine, &policy, &x_t, guard.as_deref_mut());
            q_all.extend_from_slice(q.data());
            k_all.extend_from_slice(k.data());
            v_all.extend_from_slice(v.data());
            maps.push(mq);
            maps.push(mk);
            maps.push(mv);
        }

        let mut out = Tensor::zeros(&[t_len, m]);
        for t in 0..t_len {
            let q_t = Tensor::from_vec(q_all[t * m..(t + 1) * m].to_vec(), &[m]);
            let keys = Tensor::from_vec(k_all[..(t + 1) * m].to_vec(), &[t + 1, m]);
            let values = Tensor::from_vec(v_all[..(t + 1) * m].to_vec(), &[t + 1, m]);
            let (ctx, _) = attend(&q_t, &keys, &values);
            let (attn, mo) = self.wo.forward(engine, &policy, &ctx, guard.as_deref_mut());
            out.data_mut()[t * m..(t + 1) * m].copy_from_slice(attn.data());
            maps.push(mo);
        }
        (out, maps)
    }

    /// Dense reference over the sequence, in the exact arithmetic order
    /// of the sparse path — bitwise-equal to
    /// [`DualAttention::forward_with`] when every lane is sensitive
    /// (θ = −∞).
    pub fn forward_reference(&self, xs: &Tensor) -> Tensor {
        assert_eq!(xs.shape().rank(), 2, "input must be [T, m]");
        assert_eq!(xs.shape().dim(1), self.m, "model dim mismatch");
        let t_len = xs.shape().dim(0);
        let m = self.m;
        let mut k_all = Vec::with_capacity(t_len * m);
        let mut v_all = Vec::with_capacity(t_len * m);
        let mut q_all = Vec::with_capacity(t_len * m);
        for t in 0..t_len {
            let x_t = Tensor::from_vec(xs.data()[t * m..(t + 1) * m].to_vec(), &[m]);
            q_all.extend_from_slice(self.wq.forward_reference(&x_t).data());
            k_all.extend_from_slice(self.wk.forward_reference(&x_t).data());
            v_all.extend_from_slice(self.wv.forward_reference(&x_t).data());
        }
        let mut out = Tensor::zeros(&[t_len, m]);
        for t in 0..t_len {
            let q_t = Tensor::from_vec(q_all[t * m..(t + 1) * m].to_vec(), &[m]);
            let keys = Tensor::from_vec(k_all[..(t + 1) * m].to_vec(), &[t + 1, m]);
            let values = Tensor::from_vec(v_all[..(t + 1) * m].to_vec(), &[t + 1, m]);
            let (ctx, _) = attend(&q_t, &keys, &values);
            out.data_mut()[t * m..(t + 1) * m]
                .copy_from_slice(self.wo.forward_reference(&ctx).data());
        }
        out
    }
}

/// A position-wise feed-forward block: a speculated expand projection
/// with a GELU band and a speculated contract projection with a
/// magnitude band.
#[derive(Debug, Clone)]
pub struct DualFfn {
    expand: DualProjection,   // [f, m]
    contract: DualProjection, // [m, f]
}

impl DualFfn {
    /// Composes a pre-built expand/contract pair.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions don't chain (`[f, m]` then `[m, f]`).
    pub fn new(expand: DualProjection, contract: DualProjection) -> Self {
        assert_eq!(
            expand.output_dim(),
            contract.input_dim(),
            "hidden dim mismatch"
        );
        assert_eq!(
            expand.input_dim(),
            contract.output_dim(),
            "model dim mismatch"
        );
        Self { expand, contract }
    }

    /// Model dimension `m`.
    pub fn model_dim(&self) -> usize {
        self.expand.input_dim()
    }

    /// Hidden (expanded) dimension `f`.
    pub fn hidden_dim(&self) -> usize {
        self.expand.output_dim()
    }

    /// The expand projection `[f, m]`.
    pub fn expand(&self) -> &DualProjection {
        &self.expand
    }

    /// The contract projection `[m, f]`.
    pub fn contract(&self) -> &DualProjection {
        &self.contract
    }

    /// Speculator-side costs of one position (both projections).
    pub fn costs(&self) -> ProjectionCosts {
        self.expand.costs() + self.contract.costs()
    }

    /// One position through the FFN on a shared engine:
    /// `W_2·gelu(W_1·x + b_1) + b_2`, both GEMVs speculated. Returns
    /// the `[m]` output and the (expand, contract) maps.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[m]`.
    pub fn forward_with(
        &self,
        engine: &mut SpeculationEngine,
        x: &Tensor,
        theta_gelu: f32,
        theta_out: f32,
        mut guard: Option<&mut SpeculationGuard>,
    ) -> (Tensor, [SwitchingMap; 2]) {
        let (h_pre, m1) = self.expand.forward(
            engine,
            &SwitchingPolicy::gelu(theta_gelu),
            x,
            guard.as_deref_mut(),
        );
        let h = Activation::Gelu.apply(&h_pre);
        let (y, m2) =
            self.contract
                .forward(engine, &SwitchingPolicy::magnitude(theta_out), &h, guard);
        (y, [m1, m2])
    }

    /// Dense reference in the sparse path's arithmetic order —
    /// bitwise-equal to [`DualFfn::forward_with`] at θ = −∞.
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        let h = Activation::Gelu.apply(&self.expand.forward_reference(x));
        self.contract.forward_reference(&h)
    }
}

/// Result of one dual transformer block pass over a sequence.
#[derive(Debug, Clone)]
pub struct DualBlockOutput {
    /// Block outputs `[T, m]` (after both residual sums).
    pub output: Tensor,
    /// All switching maps: attention maps (q, k, v per position, then o
    /// per position), then (expand, contract) per position.
    pub maps: Vec<SwitchingMap>,
    /// Operation / byte accounting for the whole pass.
    pub report: SavingsReport,
}

/// One pre-norm-free transformer block: dual attention + residual +
/// dual FFN + residual, accounted on a single [`SpeculationEngine`].
#[derive(Debug, Clone)]
pub struct DualTransformerBlock {
    attn: DualAttention,
    ffn: DualFfn,
}

impl DualTransformerBlock {
    /// Composes an attention and an FFN block.
    ///
    /// # Panics
    ///
    /// Panics if model dimensions disagree.
    pub fn new(attn: DualAttention, ffn: DualFfn) -> Self {
        assert_eq!(
            attn.model_dim(),
            ffn.model_dim(),
            "attention/FFN model dim mismatch"
        );
        Self { attn, ffn }
    }

    /// The attention half.
    pub fn attention(&self) -> &DualAttention {
        &self.attn
    }

    /// The FFN half.
    pub fn ffn(&self) -> &DualFfn {
        &self.ffn
    }

    /// Model dimension `m`.
    pub fn model_dim(&self) -> usize {
        self.attn.model_dim()
    }

    /// Speculator-side costs of one position (all six projections).
    pub fn costs(&self) -> ProjectionCosts {
        self.attn.costs() + self.ffn.costs()
    }

    /// Full dual pass over a `[T, m]` sequence.
    pub fn forward(&self, xs: &Tensor, thresholds: &TransformerThresholds) -> DualBlockOutput {
        self.forward_impl(xs, thresholds, None)
    }

    /// [`DualTransformerBlock::forward`] watched by a
    /// [`SpeculationGuard`]: the guard observes every projection's
    /// speculation round; tripped under `FallbackDense` the rest of the
    /// pass runs bitwise-dense.
    pub fn forward_guarded(
        &self,
        xs: &Tensor,
        thresholds: &TransformerThresholds,
        guard: &mut SpeculationGuard,
    ) -> DualBlockOutput {
        self.forward_impl(xs, thresholds, Some(guard))
    }

    fn forward_impl(
        &self,
        xs: &Tensor,
        thresholds: &TransformerThresholds,
        mut guard: Option<&mut SpeculationGuard>,
    ) -> DualBlockOutput {
        assert_eq!(xs.shape().rank(), 2, "input must be [T, m]");
        let (t_len, m) = (xs.shape().dim(0), self.model_dim());
        assert_eq!(xs.shape().dim(1), m, "model dim mismatch");
        let mut engine = SpeculationEngine::new();

        let (attn_out, mut maps) =
            self.attn
                .forward_with(&mut engine, xs, thresholds.theta_attn, guard.as_deref_mut());

        // residual 1: a = x + attn(x)
        let mut a = xs.clone();
        for (av, &bv) in a.data_mut().iter_mut().zip(attn_out.data()) {
            *av += bv;
        }

        // FFN per position + residual 2
        let mut out = a.clone();
        for t in 0..t_len {
            let a_t = Tensor::from_vec(a.data()[t * m..(t + 1) * m].to_vec(), &[m]);
            let (y_t, [m1, m2]) = self.ffn.forward_with(
                &mut engine,
                &a_t,
                thresholds.theta_gelu,
                thresholds.theta_ffn_out,
                guard.as_deref_mut(),
            );
            for (ov, &yv) in out.data_mut()[t * m..(t + 1) * m]
                .iter_mut()
                .zip(y_t.data())
            {
                *ov += yv;
            }
            maps.push(m1);
            maps.push(m2);
        }

        let report = engine.finish(self.costs().times(t_len as u64).engine_costs());
        DualBlockOutput {
            output: out,
            maps,
            report,
        }
    }

    /// Dense reference for the whole block, in the sparse path's
    /// arithmetic order — bitwise-equal to
    /// [`DualTransformerBlock::forward`] at
    /// [`TransformerThresholds::never_switch`].
    pub fn forward_dense(&self, xs: &Tensor) -> Tensor {
        assert_eq!(xs.shape().rank(), 2, "input must be [T, m]");
        let (t_len, m) = (xs.shape().dim(0), self.model_dim());
        assert_eq!(xs.shape().dim(1), m, "model dim mismatch");
        let attn_out = self.attn.forward_reference(xs);
        let mut a = xs.clone();
        for (av, &bv) in a.data_mut().iter_mut().zip(attn_out.data()) {
            *av += bv;
        }
        let mut out = a.clone();
        for t in 0..t_len {
            let a_t = Tensor::from_vec(a.data()[t * m..(t + 1) * m].to_vec(), &[m]);
            let y_t = self.ffn.forward_reference(&a_t);
            for (ov, &yv) in out.data_mut()[t * m..(t + 1) * m]
                .iter_mut()
                .zip(y_t.data())
            {
                *ov += yv;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MacMode;
    use duet_tensor::rng::{self, seeded, Rng};

    fn proj(r: &mut Rng, n: usize, d: usize, k: usize) -> DualProjection {
        let w = rng::normal(r, &[n, d], 0.0, 0.3);
        let b = rng::normal(r, &[n], 0.0, 0.05);
        DualProjection::learn(&w, &b, MacMode::SkipZeroWeights, k, 200, r)
    }

    fn block(seed: u64, m: usize, f: usize) -> (DualTransformerBlock, Rng) {
        let mut r = seeded(seed);
        let k = (m / 2).max(4);
        let attn = DualAttention::new(
            proj(&mut r, m, m, k),
            proj(&mut r, m, m, k),
            proj(&mut r, m, m, k),
            proj(&mut r, m, m, k),
        );
        let ffn = DualFfn::new(proj(&mut r, f, m, k), proj(&mut r, m, f, (f / 2).max(4)));
        (DualTransformerBlock::new(attn, ffn), r)
    }

    #[test]
    fn never_switch_is_bitwise_dense() {
        let (blk, mut r) = block(1, 16, 32);
        let xs = rng::normal(&mut r, &[5, 16], 0.0, 1.0);
        let out = blk.forward(&xs, &TransformerThresholds::never_switch());
        let dense = blk.forward_dense(&xs);
        assert_eq!(out.output.data(), dense.data());
        assert_eq!(out.report.outputs_exact, out.report.outputs_total);
        assert_eq!(out.report.executor_macs, out.report.dense_macs);
    }

    #[test]
    fn switching_saves_macs_with_bounded_error() {
        let (blk, mut r) = block(2, 16, 32);
        let xs = rng::normal(&mut r, &[6, 16], 0.0, 1.0);
        let th = TransformerThresholds {
            theta_attn: 0.05,
            theta_gelu: -1.0,
            theta_ffn_out: 0.05,
        };
        let out = blk.forward(&xs, &th);
        let dense = blk.forward_dense(&xs);
        assert!(
            out.report.executor_macs < out.report.dense_macs,
            "no MACs saved"
        );
        assert!(out.report.flops_reduction() > 1.0);
        let mut err = 0.0f32;
        let mut norm = 0.0f32;
        for (a, b) in out.output.data().iter().zip(dense.data()) {
            err += (a - b) * (a - b);
            norm += b * b;
        }
        assert!(
            err / norm.max(1e-9) < 0.1,
            "error too large: {}",
            err / norm
        );
    }

    #[test]
    fn map_and_cost_accounting_match_shape() {
        let (blk, mut r) = block(3, 8, 16);
        let t_len = 4;
        let xs = rng::normal(&mut r, &[t_len, 8], 0.0, 1.0);
        let out = blk.forward(&xs, &TransformerThresholds::never_switch());
        // 4 attention maps + 2 FFN maps per position
        assert_eq!(out.maps.len(), 6 * t_len);
        // outputs: 4 [m] projections + expand [f] + contract [m] per pos
        assert_eq!(out.report.outputs_total, (t_len * (4 * 8 + 16 + 8)) as u64);
        assert_eq!(
            out.report.dense_macs,
            blk.costs().times(t_len as u64).dense_macs
        );
    }

    #[test]
    fn empty_sequence_is_well_defined() {
        let (blk, _) = block(4, 8, 16);
        let xs = Tensor::zeros(&[0, 8]);
        let out = blk.forward(&xs, &TransformerThresholds::never_switch());
        assert_eq!(out.output.shape().dims(), &[0, 8]);
        assert!(out.maps.is_empty());
        assert_eq!(out.report.outputs_total, 0);
        assert_eq!(out.report.flops_reduction(), 1.0);
        assert_eq!(blk.forward_dense(&xs).shape().dims(), &[0, 8]);
    }

    #[test]
    fn guard_fallback_runs_block_dense() {
        use crate::guard::{GuardConfig, SwitchRateBand};
        let (blk, mut r) = block(5, 8, 16);
        let xs = rng::normal(&mut r, &[3, 8], 0.0, 1.0);
        // A band nothing satisfies: the first projection's observation
        // trips the guard and the whole pass runs dense.
        let mut guard = SpeculationGuard::new(GuardConfig {
            trip_after: 1,
            ..GuardConfig::fallback_dense(SwitchRateBand { lo: 2.0, hi: 3.0 })
        });
        let out = blk.forward_guarded(&xs, &TransformerThresholds::uniform(10.0), &mut guard);
        assert!(guard.is_tripped());
        assert_eq!(out.output.data(), blk.forward_dense(&xs).data());
    }

    #[test]
    fn higher_theta_saves_more() {
        let (blk, mut r) = block(6, 16, 32);
        let xs = rng::normal(&mut r, &[5, 16], 0.0, 1.0);
        let low = blk.forward(&xs, &TransformerThresholds::uniform(0.02));
        let high = blk.forward(&xs, &TransformerThresholds::uniform(0.2));
        assert!(high.report.executor_macs <= low.report.executor_macs);
        assert!(high.report.approximate_fraction() >= low.report.approximate_fraction());
    }
}
