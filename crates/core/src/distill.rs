//! Knowledge distillation of approximate modules (Eq. 1).
//!
//! The optimization goal is
//! `min Σ_s ‖(W x + b) − (W' P x + b')‖²` — a linear least-squares problem
//! in `W'` once the projection `P` is fixed. We solve it in closed form
//! with ridge-regularized normal equations and a Cholesky factorization:
//! deterministic, fast (the system is only `k×k`), and exactly the
//! "teacher/student" fit the paper describes, with the teacher's bias
//! reused as `b'`.

use crate::approx::{ApproxConfig, ApproxLinear};
use crate::projection::TernaryProjection;
use duet_tensor::rng::Rng;
use duet_tensor::{ops, Tensor};

/// Ridge regularizer added to the normal equations for numerical safety.
pub const DEFAULT_RIDGE: f32 = 1e-4;

/// Cholesky factorization of a symmetric positive-definite matrix
/// (lower-triangular `L` with `A = L Lᵀ`).
///
/// # Panics
///
/// Panics if `a` is not square or not positive definite.
pub fn cholesky(a: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "cholesky needs a matrix");
    let n = a.shape().dim(0);
    assert_eq!(n, a.shape().dim(1), "cholesky needs a square matrix");
    let ad = a.data();
    let mut l = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = ad[i * n + j];
            for p in 0..j {
                sum -= l[i * n + p] * l[j * n + p];
            }
            if i == j {
                assert!(
                    sum > 0.0,
                    "matrix not positive definite at pivot {i} (sum {sum})"
                );
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Tensor::from_vec(l, &[n, n])
}

/// Solves `A x = rhs` for SPD `A` via Cholesky (forward + back
/// substitution).
///
/// # Panics
///
/// Panics if dimensions disagree or `A` is not positive definite.
pub fn solve_spd(a: &Tensor, rhs: &Tensor) -> Tensor {
    let n = a.shape().dim(0);
    assert_eq!(rhs.len(), n, "rhs length mismatch");
    let l = cholesky(a);
    let ld = l.data();
    // forward: L y = rhs
    let mut y = vec![0.0f32; n];
    for i in 0..n {
        let mut sum = rhs.data()[i];
        for j in 0..i {
            sum -= ld[i * n + j] * y[j];
        }
        y[i] = sum / ld[i * n + i];
    }
    // backward: Lᵀ x = y
    let mut x = vec![0.0f32; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for j in i + 1..n {
            sum -= ld[j * n + i] * x[j];
        }
        x[i] = sum / ld[i * n + i];
    }
    Tensor::from_vec(x, &[n])
}

/// Fits `W' [n, k]` minimizing `‖Y − W' Z‖² + λ‖W'‖²` where
/// `Z [k, s]` holds projected inputs column-wise and `Y [n, s]` the teacher
/// outputs column-wise.
///
/// # Panics
///
/// Panics if sample counts disagree.
pub fn ridge_fit(z: &Tensor, y: &Tensor, lambda: f32) -> Tensor {
    assert_eq!(z.shape().rank(), 2, "Z must be [k, s]");
    assert_eq!(y.shape().rank(), 2, "Y must be [n, s]");
    let (k, s) = (z.shape().dim(0), z.shape().dim(1));
    assert_eq!(y.shape().dim(1), s, "sample count mismatch");
    let n = y.shape().dim(0);

    // G = Z Zᵀ + λ·scale·I  (k×k),   B = Y Zᵀ  (n×k).
    // The ridge scales with the Gram matrix's mean diagonal so that
    // rank-deficient calibration sets (real activations often live in a
    // low-dimensional subspace) stay numerically positive definite in
    // f32.
    let zt = z.transposed();
    let mut g = ops::matmul(z, &zt);
    let mean_diag: f32 = (0..k).map(|i| g.data()[i * k + i]).sum::<f32>() / k as f32;
    let ridge = lambda * mean_diag.max(1.0);
    for i in 0..k {
        let off = i * k + i;
        g.data_mut()[off] += ridge;
    }
    let b = ops::matmul(y, &zt);

    // Solve G w_iᵀ = b_iᵀ for each output row i.
    let mut w = Tensor::zeros(&[n, k]);
    for i in 0..n {
        let rhs = Tensor::from_vec(b.row(i).to_vec(), &[k]);
        let sol = solve_spd(&g, &rhs);
        w.row_mut(i).copy_from_slice(sol.data());
    }
    w
}

/// Distills an approximate module from a teacher layer `(w [n,d], b [n])`.
///
/// Draws `samples` synthetic inputs from the provided sampler, computes
/// teacher pre-activations, projects the inputs, and ridge-fits the student
/// weights; the teacher's bias is reused as `b'`.
///
/// # Panics
///
/// Panics if `samples == 0` or shapes disagree.
pub fn distill_linear_with_sampler(
    w: &Tensor,
    b: &Tensor,
    config: ApproxConfig,
    samples: usize,
    rng: &mut Rng,
    mut sampler: impl FnMut(&mut Rng) -> Tensor,
) -> ApproxLinear {
    assert!(samples > 0, "need at least one distillation sample");
    assert_eq!(w.shape().rank(), 2, "teacher weight must be [n, d]");
    let (n, d) = (w.shape().dim(0), w.shape().dim(1));
    assert_eq!(b.len(), n, "teacher bias length mismatch");
    let _distill_span = duet_obs::span("core.distill.linear");
    duet_obs::counter!("core.distill.calls").inc();
    duet_obs::counter!("core.distill.samples").add(samples as u64);

    let projection = TernaryProjection::sample(d, config.reduced_dim, rng);
    let k = config.reduced_dim;

    // Build Z [k, s] (projected inputs) and Y [n, s] (teacher outputs
    // minus bias — the student learns the linear part, b' := b).
    let mut z = Tensor::zeros(&[k, samples]);
    let mut y = Tensor::zeros(&[n, samples]);
    for s in 0..samples {
        let x = sampler(rng);
        assert_eq!(x.len(), d, "sampler returned wrong input length");
        let t = ops::gemv(w, &x);
        let p = projection.project(&x);
        for i in 0..k {
            z.data_mut()[i * samples + s] = p.data()[i];
        }
        for i in 0..n {
            y.data_mut()[i * samples + s] = t.data()[i];
        }
    }

    let w_prime = ridge_fit(&z, &y, DEFAULT_RIDGE);
    ApproxLinear::from_parts(projection, &w_prime, b.clone(), config)
}

/// Distills with a standard-normal input sampler — the default when no
/// calibration activations are available.
pub fn distill_linear(
    w: &Tensor,
    b: &Tensor,
    config: ApproxConfig,
    samples: usize,
    rng: &mut Rng,
) -> ApproxLinear {
    let d = w.shape().dim(1);
    distill_linear_with_sampler(w, b, config, samples, rng, move |r| {
        duet_tensor::rng::normal(r, &[d], 0.0, 1.0)
    })
}

/// Distills from recorded calibration activations (one row per sample,
/// `[s, d]`), the setting that matches the paper's use of real layer
/// inputs.
///
/// # Panics
///
/// Panics if `activations` is not `[s, d]` with `s > 0`.
pub fn distill_linear_from_activations(
    w: &Tensor,
    b: &Tensor,
    config: ApproxConfig,
    activations: &Tensor,
    rng: &mut Rng,
) -> ApproxLinear {
    assert_eq!(activations.shape().rank(), 2, "activations must be [s, d]");
    let s = activations.shape().dim(0);
    assert!(s > 0, "need at least one calibration sample");
    let d = activations.shape().dim(1);
    assert_eq!(d, w.shape().dim(1), "activation width mismatch");
    let mut idx = 0usize;
    distill_linear_with_sampler(w, b, config, s, rng, move |_| {
        let row = Tensor::from_vec(activations.row(idx).to_vec(), &[d]);
        idx += 1;
        row
    })
}

/// Relative approximation error of a student against its teacher over
/// fresh samples drawn from `sampler`: `E[‖y − y'‖²] / E[‖y‖²]`.
pub fn relative_error_with_sampler(
    w: &Tensor,
    b: &Tensor,
    student: &ApproxLinear,
    samples: usize,
    rng: &mut Rng,
    mut sampler: impl FnMut(&mut Rng) -> Tensor,
) -> f32 {
    let mut err = 0.0f32;
    let mut norm = 0.0f32;
    for _ in 0..samples {
        let x = sampler(rng);
        let teacher = ops::affine(w, &x, b);
        let approx = student.forward(&x);
        err += ops::sub(&teacher, &approx).norm_sq();
        norm += teacher.norm_sq();
    }
    err / norm.max(1e-12)
}

/// Relative approximation error over standard-normal inputs.
///
/// Note: isotropic inputs are the *worst case* for random projection —
/// `1 − k/d` of the input energy is unrecoverable. Real layer activations
/// are correlated (low intrinsic dimension), which is precisely why the
/// paper's dimension reduction works; use
/// [`relative_error_with_sampler`] with a realistic sampler to see that
/// regime.
pub fn relative_error(
    w: &Tensor,
    b: &Tensor,
    student: &ApproxLinear,
    samples: usize,
    rng: &mut Rng,
) -> f32 {
    let d = w.shape().dim(1);
    relative_error_with_sampler(w, b, student, samples, rng, move |r| {
        duet_tensor::rng::normal(r, &[d], 0.0, 1.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::{self, seeded};

    #[test]
    fn cholesky_reconstructs() {
        // A = M Mᵀ + I is SPD
        let mut r = seeded(1);
        let m = rng::normal(&mut r, &[4, 4], 0.0, 1.0);
        let mut a = ops::matmul(&m, &m.transposed());
        for i in 0..4 {
            a.data_mut()[i * 4 + i] += 1.0;
        }
        let l = cholesky(&a);
        let rec = ops::matmul(&l, &l.transposed());
        for (x, y) in a.data().iter().zip(rec.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn solve_spd_solves() {
        let a = Tensor::from_vec(vec![4.0, 1.0, 1.0, 3.0], &[2, 2]);
        let rhs = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let x = solve_spd(&a, &rhs);
        let ax = ops::gemv(&a, &x);
        for (p, q) in ax.data().iter().zip(rhs.data()) {
            assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "not positive definite")]
    fn cholesky_rejects_indefinite() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 2.0, 1.0], &[2, 2]);
        cholesky(&a);
    }

    #[test]
    fn ridge_fit_recovers_exact_linear_map() {
        // If Y = W Z exactly and λ→0, the fit must recover W.
        let mut r = seeded(2);
        let w_true = rng::normal(&mut r, &[3, 4], 0.0, 1.0);
        let z = rng::normal(&mut r, &[4, 50], 0.0, 1.0);
        let y = ops::matmul(&w_true, &z);
        let w_fit = ridge_fit(&z, &y, 1e-8);
        for (a, b) in w_true.data().iter().zip(w_fit.data()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    /// Builds a realistic "trained-looking" teacher: low-rank structure
    /// plus small full-rank noise (trained weight matrices have rapidly
    /// decaying spectra, which is what makes the paper's dimension
    /// reduction viable).
    fn low_rank_teacher(n: usize, d: usize, rank: usize, r: &mut Rng) -> Tensor {
        let u = rng::normal(r, &[n, rank], 0.0, 1.0 / (rank as f32).sqrt());
        let v = rng::normal(r, &[rank, d], 0.0, 1.0 / (d as f32).sqrt());
        let noise = rng::normal(r, &[n, d], 0.0, 0.02);
        ops::add(&ops::matmul(&u, &v), &noise)
    }

    /// Correlated ("real-activation-like") input sampler: inputs lie near
    /// a `latent`-dimensional subspace of R^d plus small noise.
    fn correlated_sampler(d: usize, latent: usize, seed: u64) -> impl FnMut(&mut Rng) -> Tensor {
        let basis = rng::normal(
            &mut seeded(seed),
            &[d, latent],
            0.0,
            1.0 / (latent as f32).sqrt(),
        );
        move |r: &mut Rng| {
            let z = rng::normal(r, &[latent], 0.0, 1.0);
            let mut x = ops::gemv(&basis, &z);
            let noise = rng::normal(r, &[d], 0.0, 0.05);
            ops::axpy(1.0, &noise, &mut x);
            x
        }
    }

    #[test]
    fn distilled_student_beats_random_student() {
        let mut r = seeded(3);
        let w = low_rank_teacher(24, 48, 8, &mut r);
        let b = rng::normal(&mut r, &[24], 0.0, 0.1);
        let cfg = ApproxConfig::paper_default(24);

        let student =
            distill_linear_with_sampler(&w, &b, cfg, 400, &mut r, correlated_sampler(48, 8, 77));
        let random = crate::approx::ApproxLinear::random(48, 24, cfg, &mut r);

        let e_student = relative_error_with_sampler(
            &w,
            &b,
            &student,
            100,
            &mut r,
            correlated_sampler(48, 8, 77),
        );
        let e_random = relative_error_with_sampler(
            &w,
            &b,
            &random,
            100,
            &mut seeded(42),
            correlated_sampler(48, 8, 77),
        );
        assert!(
            e_student < e_random * 0.5,
            "student {e_student} vs random {e_random}"
        );
        // distilled module should capture most of the signal
        assert!(e_student < 0.3, "relative error {e_student}");
    }

    #[test]
    fn isotropic_inputs_cap_projection_quality() {
        // Documents the JL floor: with isotropic inputs the best possible
        // student still loses ≈ (1 − k/d) of the energy.
        let mut r = seeded(13);
        let w = rng::normal(&mut r, &[16, 40], 0.0, 0.3);
        let b = Tensor::zeros(&[16]);
        let student = distill_linear(&w, &b, ApproxConfig::paper_default(10), 500, &mut r);
        let e = relative_error(&w, &b, &student, 200, &mut r);
        let floor = 1.0 - 10.0 / 40.0;
        assert!(e > 0.3, "error {e} suspiciously below the JL floor");
        assert!(e < floor * 1.4, "error {e} far above the JL floor {floor}");
    }

    #[test]
    fn larger_k_reduces_error() {
        let mut r = seeded(4);
        let w = low_rank_teacher(16, 64, 10, &mut r);
        let b = Tensor::zeros(&[16]);
        let e_small = relative_error(
            &w,
            &b,
            &distill_linear(&w, &b, ApproxConfig::paper_default(8), 400, &mut r),
            100,
            &mut seeded(99),
        );
        let e_large = relative_error(
            &w,
            &b,
            &distill_linear(&w, &b, ApproxConfig::paper_default(48), 400, &mut r),
            100,
            &mut seeded(99),
        );
        assert!(e_large < e_small, "k=48 err {e_large} vs k=8 err {e_small}");
    }

    #[test]
    fn distill_from_activations_uses_their_distribution() {
        let mut r = seeded(5);
        let w = rng::normal(&mut r, &[8, 16], 0.0, 0.3);
        let b = Tensor::zeros(&[8]);
        let acts = rng::normal(&mut r, &[200, 16], 2.0, 0.5); // shifted inputs
        let student =
            distill_linear_from_activations(&w, &b, ApproxConfig::paper_default(12), &acts, &mut r);
        // evaluate on the same shifted distribution
        let mut err = 0.0;
        let mut norm = 0.0;
        let mut r2 = seeded(6);
        for _ in 0..50 {
            let x = rng::normal(&mut r2, &[16], 2.0, 0.5);
            let t = ops::affine(&w, &x, &b);
            let a = student.forward(&x);
            err += ops::sub(&t, &a).norm_sq();
            norm += t.norm_sq();
        }
        assert!(err / norm < 0.35, "relative error {}", err / norm);
    }
}
