//! Thread-count determinism and decode-robustness integration tests.
//!
//! The simulator's parallel paths (`run_cnn_with_threads`,
//! `run_rnn_layer_with_threads`, `SweepGrid::run_with_threads`) promise
//! *bitwise* identical results for any thread count: per-unit partials
//! are computed by the same code regardless of which worker runs them,
//! `map_indexed` returns them in index order, and the serial composition
//! folds in that fixed order. These tests pin that contract at 1 vs 4
//! (and a non-power-of-two) threads over the synthetic paper workloads.
//!
//! The second half sweeps corrupted trace blobs through the codec:
//! truncation at every byte boundary, oversized length fields, geometry
//! mismatches, and invalid UTF-8 must all surface as `DecodeTraceError`
//! values — never a panic, never a silently wrong trace.

use duet_sim::cnn::run_cnn_with_threads;
use duet_sim::config::{ArchConfig, ExecutorFeatures};
use duet_sim::energy::EnergyTable;
use duet_sim::rnn::{run_rnn_layer_with_threads, run_rnn_with_threads, RnnOptions};
use duet_sim::sweep::{latency_checksum, SweepGrid, SweepPoint, SweepWorkload};
use duet_sim::trace::{ConvLayerTrace, RnnLayerTrace};
use duet_sim::trace_io::{self, DecodeTraceError};
use duet_tensor::rng::seeded;

fn conv_traces() -> Vec<ConvLayerTrace> {
    (0..4)
        .map(|i| {
            ConvLayerTrace::synthetic(
                format!("conv{i}"),
                32 + 16 * i,
                196,
                288,
                12544,
                0.45,
                0.3,
                0.5,
                36,
                &mut seeded(40 + i as u64),
            )
        })
        .collect()
}

fn rnn_traces() -> Vec<RnnLayerTrace> {
    (0..2)
        .map(|i| {
            RnnLayerTrace::synthetic(
                format!("l{i}"),
                4,
                256,
                256,
                6,
                0.46,
                &mut seeded(50 + i as u64),
            )
        })
        .collect()
}

#[test]
fn cnn_model_perf_is_thread_count_invariant() {
    let energy = EnergyTable::default();
    let traces = conv_traces();
    for cfg in [ArchConfig::duet(), ArchConfig::single_module()] {
        let serial = run_cnn_with_threads("m", &traces, &cfg, &energy, 1);
        for threads in [2, 4, 7] {
            let parallel = run_cnn_with_threads("m", &traces, &cfg, &energy, threads);
            assert_eq!(serial, parallel, "CNN diverged at {threads} threads");
        }
    }
}

#[test]
fn rnn_layer_result_is_thread_count_invariant() {
    let energy = EnergyTable::default();
    let cfg = ArchConfig::duet();
    let trace = &rnn_traces()[0];
    for options in [
        RnnOptions::duet(),
        RnnOptions {
            dual: true,
            gate_pipeline: false,
        },
        RnnOptions {
            dual: false,
            gate_pipeline: true,
        },
    ] {
        let serial = run_rnn_layer_with_threads(trace, &cfg, &energy, options, 1);
        for threads in [2, 4, 7] {
            let parallel = run_rnn_layer_with_threads(trace, &cfg, &energy, options, threads);
            assert_eq!(serial, parallel, "RNN layer diverged at {threads} threads");
        }
    }
}

#[test]
fn rnn_model_perf_is_thread_count_invariant() {
    let energy = EnergyTable::default();
    let cfg = ArchConfig::duet();
    let traces = rnn_traces();
    let serial = run_rnn_with_threads("lstm", &traces, &cfg, &energy, true, 1);
    let parallel = run_rnn_with_threads("lstm", &traces, &cfg, &energy, true, 4);
    assert_eq!(serial, parallel);
}

fn small_grid() -> SweepGrid {
    let points = vec![
        SweepPoint::new(
            "base",
            ArchConfig::duet().with_features(ExecutorFeatures::base()),
        ),
        SweepPoint::new("duet", ArchConfig::duet()),
    ];
    let workloads = vec![
        SweepWorkload::Cnn {
            name: "cnn".to_string(),
            traces: conv_traces(),
        },
        SweepWorkload::Rnn {
            name: "rnn".to_string(),
            traces: rnn_traces(),
            options: RnnOptions::duet(),
        },
    ];
    SweepGrid::new(points, workloads)
}

#[test]
fn sweep_cells_and_checksum_are_thread_count_invariant() {
    let energy = EnergyTable::default();
    let grid = small_grid();
    let serial = grid.run_with_threads(&energy, 1);
    for threads in [2, 4, 7] {
        let parallel = grid.run_with_threads(&energy, threads);
        assert_eq!(serial, parallel, "sweep diverged at {threads} threads");
        assert_eq!(latency_checksum(&serial), latency_checksum(&parallel));
    }
}

// ---------------------------------------------------------------------
// Corrupted-blob sweep: decode must fail loudly, never panic or accept.
// ---------------------------------------------------------------------

#[test]
fn truncated_conv_blob_errors_at_every_cut_point() {
    let blob = trace_io::encode_conv_trace(&conv_traces()[0]);
    for cut in 0..blob.len() {
        assert!(
            trace_io::decode_conv_trace(&blob[..cut]).is_err(),
            "prefix of {cut}/{} bytes decoded successfully",
            blob.len()
        );
    }
    assert!(trace_io::decode_conv_trace(&blob).is_ok());
}

#[test]
fn truncated_rnn_blob_errors_at_every_cut_point() {
    let blob = trace_io::encode_rnn_trace(&rnn_traces()[0]);
    for cut in 0..blob.len() {
        assert!(
            trace_io::decode_rnn_trace(&blob[..cut]).is_err(),
            "prefix of {cut}/{} bytes decoded successfully",
            blob.len()
        );
    }
    assert!(trace_io::decode_rnn_trace(&blob).is_ok());
}

/// Byte offset of the first fixed-width field: magic (4) + name length
/// prefix (4) + name bytes.
fn fields_offset(name: &str) -> usize {
    4 + 4 + name.len()
}

#[test]
fn oversized_name_length_rejected() {
    let mut blob = trace_io::encode_conv_trace(&conv_traces()[0]);
    // Claim the name is far longer than the blob.
    blob[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        trace_io::decode_conv_trace(&blob),
        Err(DecodeTraceError::Truncated)
    ));
}

#[test]
fn tampered_bitmap_length_rejected() {
    let t = &conv_traces()[0];
    let mut blob = trace_io::encode_conv_trace(t);
    // The omap length prefix sits after the 7 fixed 8-byte geometry
    // fields. Shrinking it leaves a well-formed but inconsistent blob:
    // the bitmap no longer covers out_channels × positions.
    let len_off = fields_offset(&t.name) + 7 * 8;
    let claimed = (t.omap.len() as u64) - 64;
    blob[len_off..len_off + 8].copy_from_slice(&claimed.to_le_bytes());
    match trace_io::decode_conv_trace(&blob) {
        Err(DecodeTraceError::Inconsistent { field, .. }) => {
            assert_eq!(field, "omap length");
        }
        other => panic!("expected Inconsistent, got {other:?}"),
    }
}

#[test]
fn tampered_rnn_hidden_rejected() {
    let t = &rnn_traces()[0];
    let mut blob = trace_io::encode_rnn_trace(t);
    // gates is the first fixed field, hidden the second.
    let hidden_off = fields_offset(&t.name) + 8;
    blob[hidden_off..hidden_off + 8].copy_from_slice(&((t.hidden as u64) * 2).to_le_bytes());
    match trace_io::decode_rnn_trace(&blob) {
        Err(DecodeTraceError::Inconsistent {
            field,
            expected,
            found,
        }) => {
            assert_eq!(field, "maps length");
            assert_eq!(found, t.maps.len() as u64);
            assert_eq!(expected, 2 * t.maps.len() as u64);
        }
        other => panic!("expected Inconsistent, got {other:?}"),
    }
}

#[test]
fn non_utf8_name_rejected() {
    let t = &conv_traces()[0];
    let mut blob = trace_io::encode_conv_trace(t);
    blob[8] = 0xff; // first name byte: 0xff is never valid UTF-8
    assert!(matches!(
        trace_io::decode_conv_trace(&blob),
        Err(DecodeTraceError::BadUtf8)
    ));
}

#[test]
fn wrong_magic_rejected() {
    let mut blob = trace_io::encode_rnn_trace(&rnn_traces()[0]);
    blob[0] ^= 0x5a;
    assert!(matches!(
        trace_io::decode_rnn_trace(&blob),
        Err(DecodeTraceError::BadMagic { .. })
    ));
}

// ---------------------------------------------------------------------
// Byte-mutation fuzz sweep: every single-byte corruption of a valid blob
// must decode to Err — never a panic, never a silent acceptance. The
// trailing FNV-1a checksum makes this total: structural validators catch
// geometry damage, the checksum catches everything else.
// ---------------------------------------------------------------------

/// Mutates every byte of `blob` through fixed XOR masks plus one seeded
/// random replacement, feeding each mutant to `decode`. Asserts all
/// mutants are rejected.
fn fuzz_every_byte<T: std::fmt::Debug>(
    blob: &[u8],
    seed: u64,
    decode: impl Fn(&[u8]) -> Result<T, DecodeTraceError>,
) {
    let mut rng = seeded(seed);
    for i in 0..blob.len() {
        let mut mutants: Vec<u8> = [0x01u8, 0x80, 0xff].iter().map(|m| blob[i] ^ m).collect();
        let random = rng.next_u64() as u8;
        if random != blob[i] {
            mutants.push(random);
        }
        for v in mutants {
            let mut m = blob.to_vec();
            m[i] = v;
            let out = decode(&m);
            assert!(
                out.is_err(),
                "byte {i} set to 0x{v:02x} decoded successfully: {out:?}"
            );
        }
    }
    assert!(decode(blob).is_ok(), "pristine blob must still decode");
}

#[test]
fn conv_blob_rejects_every_single_byte_mutation() {
    let t = ConvLayerTrace::synthetic("cv", 6, 9, 16, 64, 0.5, 0.2, 1.0, 8, &mut seeded(60));
    fuzz_every_byte(
        &trace_io::encode_conv_trace(&t),
        61,
        trace_io::decode_conv_trace,
    );
}

#[test]
fn rnn_blob_rejects_every_single_byte_mutation() {
    let t = RnnLayerTrace::synthetic("lz", 3, 16, 16, 3, 0.5, &mut seeded(62));
    fuzz_every_byte(
        &trace_io::encode_rnn_trace(&t),
        63,
        trace_io::decode_rnn_trace,
    );
}

/// Length-field oversizing must error cleanly (no OOM from trusting a huge
/// claimed size): every u64-aligned byte pair in the header region is
/// blasted to huge values.
#[test]
fn oversized_length_fields_never_allocate_unchecked() {
    let t = ConvLayerTrace::synthetic("cv", 6, 9, 16, 64, 0.5, 0.2, 1.0, 8, &mut seeded(64));
    let blob = trace_io::encode_conv_trace(&t);
    for off in (0..blob.len().saturating_sub(8)).step_by(4) {
        let mut m = blob.to_vec();
        m[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(trace_io::decode_conv_trace(&m).is_err(), "offset {off}");
    }
}

// ---------------------------------------------------------------------
// Fault campaign: grid-scale thread-count determinism.
// ---------------------------------------------------------------------

#[test]
fn fault_campaign_checksum_is_thread_count_invariant() {
    use duet_sim::fault::{campaign_checksum, FaultCampaign};
    let energy = EnergyTable::default();
    let grid = small_grid();
    let campaign = FaultCampaign::default_grid(2026);
    let serial = campaign.run_with_threads(&grid, &energy, 1);
    let sum = campaign_checksum(&serial);
    for threads in [2, 4, 7] {
        let par = campaign.run_with_threads(&grid, &energy, threads);
        assert_eq!(serial, par, "campaign diverged at {threads} threads");
        assert_eq!(sum, campaign_checksum(&par));
    }
}
