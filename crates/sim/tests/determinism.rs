//! Determinism and serialization integration tests for the simulator:
//! identical seeds must produce identical reports, and traces must
//! survive a serialize → deserialize → simulate round trip unchanged.

use duet_sim::cnn::run_cnn;
use duet_sim::config::{ArchConfig, ExecutorFeatures};
use duet_sim::energy::EnergyTable;
use duet_sim::rnn::run_rnn_layer;
use duet_sim::trace::{ConvLayerTrace, RnnLayerTrace};
use duet_sim::trace_io;
use duet_tensor::rng::seeded;

fn conv_trace(seed: u64) -> ConvLayerTrace {
    ConvLayerTrace::synthetic(
        "conv",
        64,
        196,
        288,
        12544,
        0.45,
        0.3,
        0.5,
        36,
        &mut seeded(seed),
    )
}

#[test]
fn identical_seeds_identical_reports() {
    let energy = EnergyTable::default();
    let cfg = ArchConfig::duet();
    let a = run_cnn("m", &[conv_trace(7)], &cfg, &energy);
    let b = run_cnn("m", &[conv_trace(7)], &cfg, &energy);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let energy = EnergyTable::default();
    let cfg = ArchConfig::duet();
    let a = run_cnn("m", &[conv_trace(7)], &cfg, &energy);
    let b = run_cnn("m", &[conv_trace(8)], &cfg, &energy);
    assert_ne!(a.total_latency_cycles, b.total_latency_cycles);
}

#[test]
fn serialized_trace_simulates_identically() {
    let energy = EnergyTable::default();
    let cfg = ArchConfig::duet();
    let original = conv_trace(11);
    let blob = trace_io::encode_conv_trace(&original);
    let decoded = trace_io::decode_conv_trace(&blob).expect("decode");
    let a = run_cnn("m", &[original], &cfg, &energy);
    let b = run_cnn("m", &[decoded], &cfg, &energy);
    assert_eq!(a, b);
}

#[test]
fn rnn_trace_roundtrip_simulates_identically() {
    let energy = EnergyTable::default();
    let cfg = ArchConfig::duet();
    let original = RnnLayerTrace::synthetic("l", 4, 512, 512, 8, 0.46, &mut seeded(13));
    let blob = trace_io::encode_rnn_trace(&original);
    let decoded = trace_io::decode_rnn_trace(&blob).expect("decode");
    let a = run_rnn_layer(&original, &cfg, &energy, true);
    let b = run_rnn_layer(&decoded, &cfg, &energy, true);
    assert_eq!(a, b);
}

#[test]
fn feature_ladder_is_deterministic_and_ordered() {
    // A coarse end-to-end regression net: the canonical ladder must hold
    // on this fixed workload forever (catches accidental model drift).
    let energy = EnergyTable::default();
    let traces: Vec<ConvLayerTrace> = (0..3).map(|i| conv_trace(20 + i)).collect();
    let run = |f: ExecutorFeatures| {
        run_cnn(
            "reg",
            &traces,
            &ArchConfig::duet().with_features(f),
            &energy,
        )
        .total_latency_cycles
    };
    let base = run(ExecutorFeatures::base());
    let os = run(ExecutorFeatures::os());
    let bos = run(ExecutorFeatures::bos());
    let duet = run(ExecutorFeatures::duet());
    assert!(base > os, "base {base} vs os {os}");
    assert!(os > bos, "os {os} vs bos {bos}");
    assert!(bos > duet, "bos {bos} vs duet {duet}");
}
