//! A simulator run under tracing must emit balanced begin/end events
//! that serialize to valid Chrome trace JSON — the per-layer spans the
//! trace viewer shows come from [`duet_sim::cnn`] / [`duet_sim::rnn`].

use duet_obs::json::{parse, Value};
use duet_sim::config::ArchConfig;
use duet_sim::energy::EnergyTable;
use duet_sim::trace::{ConvLayerTrace, RnnLayerTrace};
use duet_tensor::rng::seeded;

#[test]
fn simulator_trace_is_balanced_and_labeled() {
    // Sole test in this file: it owns the process-global trace buffer.
    duet_obs::set_trace_enabled(true);
    let _ = duet_obs::trace::take_events();

    let mut r = seeded(11);
    let conv: Vec<ConvLayerTrace> = (0..3)
        .map(|i| {
            ConvLayerTrace::synthetic(
                format!("conv{i}"),
                32,
                49,
                144,
                32 * 49,
                0.45,
                0.3,
                0.55,
                16,
                &mut r,
            )
        })
        .collect();
    let cfg = ArchConfig::duet();
    let energy = EnergyTable::default();
    let _cnn = duet_sim::cnn::run_cnn_with_threads("test", &conv, &cfg, &energy, 4);

    let rnn = RnnLayerTrace::synthetic("lstm", 4, 128, 128, 4, 0.46, &mut r);
    let _rnn = duet_sim::rnn::run_rnn_layer(&rnn, &cfg, &energy, true);

    duet_obs::set_trace_enabled(false);
    let events = duet_obs::trace::take_events();
    assert!(!events.is_empty(), "simulation must emit trace events");

    let begins = events.iter().filter(|e| e.begin).count();
    let ends = events.len() - begins;
    assert_eq!(begins, ends, "every span begin needs a matching end");

    // 3 cnn layer spans + 1 compose span + 1 rnn layer span
    let layer_spans = events
        .iter()
        .filter(|e| e.begin && e.name == "sim.cnn.layer")
        .count();
    assert_eq!(layer_spans, 3, "one sim.cnn.layer span per conv layer");
    assert!(events.iter().any(|e| e.name == "sim.cnn.compose"));
    assert!(events.iter().any(|e| e.name == "sim.rnn.layer"));
    // layer spans carry the trace name as their label
    assert!(events
        .iter()
        .any(|e| e.name == "sim.cnn.layer" && e.label.as_deref() == Some("conv1")));

    // and the whole thing serializes to valid Chrome trace JSON
    let json = duet_obs::trace::chrome_trace_json(&events);
    let parsed = parse(&json).expect("valid trace JSON");
    let list = parsed
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents");
    assert_eq!(list.len(), events.len());
}
