//! Area model reproducing Table I.
//!
//! Component areas scale with their sizing knobs (PE count, buffer bytes,
//! systolic cells) from per-unit constants chosen so the paper's
//! configuration lands on the reported shares: the Speculator at ~6.6% of
//! total area and the Executor at ~40%, with on-chip memory dominating the
//! rest.

use crate::config::ArchConfig;

/// Per-unit area constants (mm², 65 nm-class).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AreaModel {
    /// One Executor PE (16-bit MAC + local buffers + LUT control).
    pub pe_mm2: f64,
    /// One byte of SRAM (GLB and large buffers).
    pub sram_mm2_per_byte: f64,
    /// One INT4 systolic cell in the Speculator.
    pub systolic_cell_mm2: f64,
    /// Speculator fixed blocks: quantizer, alignment units, adder trees,
    /// MFU, reorder unit, and QDR buffers.
    pub speculator_fixed_mm2: f64,
    /// NoC + global control.
    pub noc_control_mm2: f64,
}

impl AreaModel {
    /// Default constants calibrated to Table I shares at the paper's
    /// configuration.
    pub fn default_65nm() -> Self {
        Self {
            pe_mm2: 0.0156,
            sram_mm2_per_byte: 4.3e-6,
            systolic_cell_mm2: 0.00065,
            speculator_fixed_mm2: 0.33,
            noc_control_mm2: 0.45,
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::default_65nm()
    }
}

/// Component areas for a configuration — the rows of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AreaReport {
    /// Executor PE array.
    pub executor_mm2: f64,
    /// Global buffer SRAM.
    pub glb_mm2: f64,
    /// Speculator (systolic array + fixed blocks).
    pub speculator_mm2: f64,
    /// NoC and control.
    pub noc_control_mm2: f64,
}

impl AreaReport {
    /// Computes the report for an architecture configuration.
    pub fn for_config(config: &ArchConfig, model: &AreaModel) -> Self {
        let executor_mm2 = config.pe_count() as f64 * model.pe_mm2;
        let glb_mm2 = config.glb_bytes as f64 * model.sram_mm2_per_byte;
        let cells = (config.speculator.systolic_rows * config.speculator.systolic_cols) as f64;
        // Fixed Speculator blocks scale mildly with array width (wider
        // adder trees / buffers).
        let width_scale = (cells / 512.0).sqrt();
        let speculator_mm2 =
            cells * model.systolic_cell_mm2 + model.speculator_fixed_mm2 * width_scale;
        Self {
            executor_mm2,
            glb_mm2,
            speculator_mm2,
            noc_control_mm2: model.noc_control_mm2,
        }
    }

    /// Total chip area.
    pub fn total_mm2(&self) -> f64 {
        self.executor_mm2 + self.glb_mm2 + self.speculator_mm2 + self.noc_control_mm2
    }

    /// Executor share of total area.
    pub fn executor_fraction(&self) -> f64 {
        self.executor_mm2 / self.total_mm2()
    }

    /// Speculator share of total area (paper: 6.6%).
    pub fn speculator_fraction(&self) -> f64 {
        self.speculator_mm2 / self.total_mm2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1_shares() {
        let r = AreaReport::for_config(&ArchConfig::duet(), &AreaModel::default());
        let ex = r.executor_fraction();
        let sp = r.speculator_fraction();
        assert!((ex - 0.40).abs() < 0.03, "executor share {ex}");
        assert!((sp - 0.066).abs() < 0.01, "speculator share {sp}");
        // memory should dominate the remainder
        assert!(r.glb_mm2 > r.speculator_mm2);
    }

    #[test]
    fn smaller_speculator_shrinks_share() {
        let mut cfg = ArchConfig::duet();
        cfg.speculator.systolic_rows = 8;
        cfg.speculator.systolic_cols = 8;
        let small = AreaReport::for_config(&cfg, &AreaModel::default());
        let big = AreaReport::for_config(&ArchConfig::duet(), &AreaModel::default());
        assert!(small.speculator_mm2 < big.speculator_mm2);
    }

    #[test]
    fn total_is_sum() {
        let r = AreaReport::for_config(&ArchConfig::duet(), &AreaModel::default());
        let sum = r.executor_mm2 + r.glb_mm2 + r.speculator_mm2 + r.noc_control_mm2;
        assert!((r.total_mm2() - sum).abs() < 1e-12);
    }
}
