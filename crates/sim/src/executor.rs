//! Cycle-level model of the Executor 2-D PE array running one CONV layer
//! (§III-C, §IV-A).
//!
//! Mapping (Fig. 7a): channels are processed in *steps* of `pe_rows`
//! channels; each channel occupies one PE row. The PEs of a row
//! *collaborate* on each output element — "the output partial sum will be
//! horizontally accumulated" — so one output costs
//! `ceil(patch_len / pe_cols)` row-cycles, and an insensitive output is
//! skipped by the whole row at once. A step finishes when its slowest
//! *row* finishes: this inter-row (channel) imbalance is what adaptive
//! mapping fixes by grouping channels with similar switching-map
//! workloads.
//!
//! Input-sparsity skipping removes MACs for zero inputs, but zeros are
//! spread unevenly over the row's PEs, so the row advances at the pace of
//! its densest PE — the intra-row imbalance the paper observes for IOS
//! ("Inside each row, there will still be imbalance within the PEs due to
//! input sparsity", §IV-A).
//!
//! Each PE executes MAC micro-instructions from its local LUT; an
//! instruction whose tag bit is cleared (insensitive output with OS, or
//! zero input with IS) is skipped for free.

use crate::config::ArchConfig;
use crate::energy::{EnergyBreakdown, EnergyTable};
use crate::trace::ConvLayerTrace;

/// Result of executing one CONV layer on the Executor.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExecutorLayerResult {
    /// Compute cycles (including imbalance stalls).
    pub compute_cycles: u64,
    /// Cycles the GLB needs to stream the layer's operands.
    pub glb_stream_cycles: u64,
    /// MACs actually executed.
    pub executed_macs: u64,
    /// MACs a dense execution would execute.
    pub dense_macs: u64,
    /// Energy breakdown of the Executor side (compute, RF, GLB, NoC,
    /// DRAM, control).
    pub energy: EnergyBreakdown,
    /// Bytes moved from DRAM for this layer.
    pub dram_bytes: u64,
}

impl ExecutorLayerResult {
    /// MAC-array utilization: executed MACs over issue slots
    /// (`compute_cycles × PE count`) — the metric of Fig. 12(b).
    pub fn mac_utilization(&self, config: &ArchConfig) -> f64 {
        if self.compute_cycles == 0 {
            return 0.0;
        }
        self.executed_macs as f64 / (self.compute_cycles * config.pe_count() as u64) as f64
    }

    /// Layer latency in cycles: compute and data streaming overlap via
    /// double buffering, so the slower one dominates.
    pub fn latency_cycles(&self, dram_cycles: u64) -> u64 {
        self.compute_cycles
            .max(self.glb_stream_cycles)
            .max(dram_cycles)
    }
}

/// Simulates one CONV layer on the Executor.
///
/// `order` gives the channel computation order (identity for the natural
/// order, or the Reorder Unit's output under adaptive mapping).
///
/// # Panics
///
/// Panics if `order` is not a permutation of the layer's channels.
pub fn run_conv_layer(
    trace: &ConvLayerTrace,
    order: &[usize],
    config: &ArchConfig,
    energy: &EnergyTable,
) -> ExecutorLayerResult {
    assert_eq!(
        order.len(),
        trace.out_channels,
        "order must cover every channel"
    );
    let rows = config.pe_rows;
    let cols = config.pe_cols;
    let feats = config.features;

    // Row-cycles one *sensitive* output costs, and the MACs it actually
    // executes. Without input skipping the row always walks the full
    // patch. With input skipping, MACs shrink to `patch · density`, but
    // the row's latency follows its densest PE: zero inputs cluster, so
    // the slowest PE carries `1 + (1 − density) · jitter` times its fair
    // share — a deterministic per-(channel, position) hash in
    // [0.55, 1.25] keeps the model reproducible while eroding utilization
    // exactly where Fig. 12(b) shows it.
    let dense_output_cycles = (trace.patch_len as u64).div_ceil(cols as u64);
    let output_cost = |channel: usize, position: usize| -> (u64, u64) {
        if !feats.input_skipping {
            return (dense_output_cycles, trace.patch_len as u64);
        }
        let macs = (trace.patch_len as f64 * trace.input_density)
            .round()
            .max(1.0);
        // Channel-persistent component: some channels watch denser input
        // regions. The Reorder Unit balances by OMap workload only, so
        // this component re-imbalances even adaptively mapped rows —
        // matching the paper's smaller IS gain under DUET (3.05/1.93)
        // than under IOS (2.36/1.20).
        let hc = (channel.wrapping_mul(2654435761) >> 3) % 1024;
        let hp = (position.wrapping_mul(40503).wrapping_add(channel) >> 2) % 1024;
        let jitter = 0.35 + 0.50 * (hc as f64 / 1023.0) + 0.15 * (hp as f64 / 1023.0);
        let slowdown = 1.0 + (1.0 - trace.input_density) * jitter;
        let cycles = ((macs * slowdown) / cols as f64).ceil().max(1.0) as u64;
        (cycles, macs as u64)
    };

    let mut compute_cycles = 0u64;
    let mut executed_macs = 0u64;

    // The accounting consumes the packed switching map a `u64` word at a
    // time instead of branching on `is_sensitive` per position, mirroring
    // the LUT tag hardware: when the per-output cost is
    // position-independent (no input skipping) a channel's cycles/MACs
    // are `popcount × cost`, and with input skipping only the *sensitive*
    // positions are visited via masked bit extraction. Every total is
    // bitwise identical to the historical per-position branch loop
    // (integer sums over the same visit set).
    for group in order.chunks(rows) {
        // each row's accumulated cycles for this step
        let mut step_max = 0u64;
        for &ch in group {
            let mut row_cycles = 0u64;
            if !feats.output_switching {
                // dense walk: every position is an output
                for p in 0..trace.positions {
                    let (cycles, macs) = output_cost(ch, p);
                    row_cycles += cycles;
                    executed_macs += macs;
                }
            } else {
                let lo = ch * trace.positions;
                let hi = lo + trace.positions;
                if !feats.input_skipping {
                    // position-independent cost: one popcount per map word
                    let sensitive = trace.omap.sensitive_count_in(lo, hi) as u64;
                    row_cycles = sensitive * dense_output_cycles;
                    executed_macs += sensitive * trace.patch_len as u64;
                } else {
                    trace.omap.for_each_sensitive_in(lo, hi, |idx| {
                        let (cycles, macs) = output_cost(ch, idx - lo);
                        row_cycles += cycles;
                        executed_macs += macs;
                    });
                }
            }
            step_max = step_max.max(row_cycles);
        }
        compute_cycles += step_max;
    }

    // GLB traffic (16-bit words): inputs multicast once per column group,
    // weights once per channel, outputs written once, maps read once.
    let input_words = trace.input_elems as u64;
    let weight_words = trace.weight_elems as u64;
    let output_words = trace.outputs() as u64;
    let map_words = (trace.outputs() as u64).div_ceil(16); // 1 bit each
    let glb_words = input_words + weight_words + output_words + 2 * map_words;
    let glb_stream_cycles = (glb_words * 2).div_ceil(config.glb_bytes_per_cycle as u64);

    // DRAM traffic: ifmap + weights in, ofmap + map out.
    let dram_bytes = 2 * (input_words + weight_words + output_words) + map_words * 2;

    duet_obs::counter!("sim.glb.words").add(glb_words);
    // the NoC carries every GLB word to/from the PE array in this model
    duet_obs::counter!("sim.noc.words").add(glb_words);
    duet_obs::counter!("sim.executor.macs").add(executed_macs);

    // Energy. Two-level hierarchy: MACs hit the local RF (~1.5 accesses
    // per MAC amortized by Eyeriss-style reuse), GLB pays per streamed
    // word.
    let energy_bd = EnergyBreakdown {
        executor_compute_pj: executed_macs as f64 * energy.mac_int16_pj,
        executor_rf_pj: executed_macs as f64 * 1.5 * energy.rf_16b_pj,
        glb_pj: glb_words as f64 * energy.glb_16b_pj,
        noc_pj: glb_words as f64 * energy.noc_16b_pj,
        dram_pj: dram_bytes as f64 / 2.0 * energy.dram_16b_pj,
        speculator_pj: 0.0,
        control_pj: compute_cycles as f64 * config.pe_count() as f64 * energy.control_pj_per_cycle,
    };

    ExecutorLayerResult {
        compute_cycles,
        glb_stream_cycles,
        executed_macs,
        dense_macs: trace.dense_macs(),
        energy: energy_bd,
        dram_bytes,
    }
}

/// Natural (identity) channel order for a trace.
pub fn natural_order(trace: &ConvLayerTrace) -> Vec<usize> {
    (0..trace.out_channels).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutorFeatures;
    use crate::reorder::ReorderUnit;
    use duet_tensor::rng::seeded;

    fn trace(mean_sensitive: f64, spread: f64, density: f64) -> ConvLayerTrace {
        ConvLayerTrace::synthetic(
            "t",
            64,
            196,
            576,
            32 * 28 * 28,
            mean_sensitive,
            spread,
            density,
            32,
            &mut seeded(11),
        )
    }

    #[test]
    fn dense_baseline_is_fully_utilized() {
        let t = trace(0.5, 0.25, 0.6);
        let cfg = ArchConfig::single_module();
        let r = run_conv_layer(&t, &natural_order(&t), &cfg, &EnergyTable::default());
        assert_eq!(r.executed_macs, r.dense_macs);
        let u = r.mac_utilization(&cfg);
        // positions (196) don't divide cols (16) evenly → slight loss
        assert!(u > 0.9, "utilization {u}");
    }

    #[test]
    fn output_switching_cuts_macs_but_imbalance_limits_speedup() {
        let t = trace(0.45, 0.35, 0.6);
        let base_cfg = ArchConfig::single_module();
        let os_cfg = ArchConfig::duet().with_features(ExecutorFeatures::os());
        let et = EnergyTable::default();
        let base = run_conv_layer(&t, &natural_order(&t), &base_cfg, &et);
        let os = run_conv_layer(&t, &natural_order(&t), &os_cfg, &et);
        assert!(os.executed_macs < base.executed_macs / 2 + base.executed_macs / 10);
        let speedup = base.compute_cycles as f64 / os.compute_cycles as f64;
        let theoretical = base.executed_macs as f64 / os.executed_macs as f64;
        assert!(speedup > 1.0);
        // imbalance gap: actual speedup clearly below theoretical
        assert!(
            speedup < theoretical * 0.8,
            "speedup {speedup} vs theoretical {theoretical}"
        );
    }

    #[test]
    fn adaptive_mapping_improves_speedup() {
        let t = trace(0.45, 0.35, 0.6);
        let os_cfg = ArchConfig::duet().with_features(ExecutorFeatures::os());
        let bos_cfg = ArchConfig::duet().with_features(ExecutorFeatures::bos());
        let et = EnergyTable::default();
        let os = run_conv_layer(&t, &natural_order(&t), &os_cfg, &et);
        let order = ReorderUnit::new(os_cfg.pe_rows)
            .reorder(&t.channel_workloads(), t.outputs())
            .order;
        let bos = run_conv_layer(&t, &order, &bos_cfg, &et);
        assert!(
            bos.compute_cycles < os.compute_cycles,
            "BOS {} vs OS {}",
            bos.compute_cycles,
            os.compute_cycles
        );
        assert_eq!(bos.executed_macs, os.executed_macs); // same work, less waiting
    }

    #[test]
    fn input_skipping_reduces_work_further() {
        let t = trace(0.45, 0.3, 0.55);
        let et = EnergyTable::default();
        let os = run_conv_layer(
            &t,
            &natural_order(&t),
            &ArchConfig::duet().with_features(ExecutorFeatures::os()),
            &et,
        );
        let ios = run_conv_layer(
            &t,
            &natural_order(&t),
            &ArchConfig::duet().with_features(ExecutorFeatures::ios()),
            &et,
        );
        assert!(ios.executed_macs < os.executed_macs);
        assert!(ios.compute_cycles < os.compute_cycles);
    }

    #[test]
    fn energy_tracks_work() {
        let t = trace(0.4, 0.3, 0.6);
        let et = EnergyTable::default();
        let base = run_conv_layer(&t, &natural_order(&t), &ArchConfig::single_module(), &et);
        let duet = run_conv_layer(&t, &natural_order(&t), &ArchConfig::duet(), &et);
        assert!(duet.energy.executor_compute_pj < base.energy.executor_compute_pj);
        assert!(duet.energy.executor_rf_pj < base.energy.executor_rf_pj);
        // same layer tensors stream through GLB either way
        assert_eq!(duet.energy.glb_pj, base.energy.glb_pj);
    }

    #[test]
    #[should_panic(expected = "order must cover")]
    fn bad_order_panics() {
        let t = trace(0.5, 0.1, 1.0);
        run_conv_layer(&t, &[0, 1], &ArchConfig::duet(), &EnergyTable::default());
    }

    /// The historical per-position accounting loop, kept verbatim as the
    /// reference for the word-driven rewrite.
    fn reference_totals(
        trace: &ConvLayerTrace,
        order: &[usize],
        config: &ArchConfig,
    ) -> (u64, u64) {
        let rows = config.pe_rows;
        let cols = config.pe_cols;
        let feats = config.features;
        let dense_output_cycles = (trace.patch_len as u64).div_ceil(cols as u64);
        let output_cost = |channel: usize, position: usize| -> (u64, u64) {
            if !feats.input_skipping {
                return (dense_output_cycles, trace.patch_len as u64);
            }
            let macs = (trace.patch_len as f64 * trace.input_density)
                .round()
                .max(1.0);
            let hc = (channel.wrapping_mul(2654435761) >> 3) % 1024;
            let hp = (position.wrapping_mul(40503).wrapping_add(channel) >> 2) % 1024;
            let jitter = 0.35 + 0.50 * (hc as f64 / 1023.0) + 0.15 * (hp as f64 / 1023.0);
            let slowdown = 1.0 + (1.0 - trace.input_density) * jitter;
            let cycles = ((macs * slowdown) / cols as f64).ceil().max(1.0) as u64;
            (cycles, macs as u64)
        };
        let mut compute_cycles = 0u64;
        let mut executed_macs = 0u64;
        for group in order.chunks(rows) {
            let mut step_max = 0u64;
            for &ch in group {
                let mut row_cycles = 0u64;
                for p in 0..trace.positions {
                    if feats.output_switching && !trace.is_sensitive(ch, p) {
                        continue;
                    }
                    let (cycles, macs) = output_cost(ch, p);
                    row_cycles += cycles;
                    executed_macs += macs;
                }
                step_max = step_max.max(row_cycles);
            }
            compute_cycles += step_max;
        }
        (compute_cycles, executed_macs)
    }

    #[test]
    fn word_driven_accounting_matches_bit_loop_bitwise() {
        let et = EnergyTable::default();
        let configs = [
            ArchConfig::single_module(),
            ArchConfig::duet().with_features(ExecutorFeatures::os()),
            ArchConfig::duet().with_features(ExecutorFeatures::bos()),
            ArchConfig::duet().with_features(ExecutorFeatures::ios()),
            ArchConfig::duet(),
        ];
        let mut traces = vec![
            trace(0.05, 0.02, 0.6),
            trace(0.45, 0.35, 0.55),
            trace(0.95, 0.02, 1.0),
        ];
        // density extremes the synthetic generator can't produce
        for omap in [
            duet_core::SwitchingMap::all_insensitive(64 * 196),
            duet_core::SwitchingMap::all_sensitive(64 * 196),
        ] {
            traces.push(ConvLayerTrace::from_dual_conv(
                "edge",
                64,
                196,
                576,
                32 * 28 * 28,
                &omap,
                0.6,
                32,
            ));
        }
        for t in &traces {
            for cfg in &configs {
                let order = if cfg.features.adaptive_mapping {
                    ReorderUnit::new(cfg.pe_rows)
                        .reorder(&t.channel_workloads(), t.outputs())
                        .order
                } else {
                    natural_order(t)
                };
                let (ref_cycles, ref_macs) = reference_totals(t, &order, cfg);
                let r = run_conv_layer(t, &order, cfg, &et);
                assert_eq!(r.compute_cycles, ref_cycles, "cycles diverge: {cfg:?}");
                assert_eq!(r.executed_macs, ref_macs, "macs diverge: {cfg:?}");
            }
        }
    }
}
