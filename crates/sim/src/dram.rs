//! Off-chip DRAM model: bandwidth-limited transfers with per-access
//! energy.

use crate::config::ArchConfig;
use crate::energy::EnergyTable;

/// A DRAM transfer request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DramTransfer {
    /// Bytes moved.
    pub bytes: u64,
}

impl DramTransfer {
    /// Creates a transfer of `bytes`.
    pub fn new(bytes: u64) -> Self {
        Self { bytes }
    }

    /// Cycles the transfer occupies the DRAM channel.
    pub fn cycles(&self, config: &ArchConfig) -> u64 {
        self.bytes.div_ceil(config.dram_bytes_per_cycle as u64)
    }

    /// Energy of the transfer in pJ.
    pub fn energy_pj(&self, energy: &EnergyTable) -> f64 {
        self.bytes as f64 / 2.0 * energy.dram_16b_pj
    }
}

/// Aggregate DRAM channel statistics for a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DramStats {
    /// Total bytes read.
    pub read_bytes: u64,
    /// Total bytes written.
    pub write_bytes: u64,
}

impl DramStats {
    /// Records a read.
    pub fn read(&mut self, bytes: u64) -> DramTransfer {
        self.read_bytes += bytes;
        DramTransfer::new(bytes)
    }

    /// Records a write.
    pub fn write(&mut self, bytes: u64) -> DramTransfer {
        self.write_bytes += bytes;
        DramTransfer::new(bytes)
    }

    /// Total traffic.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cycles_respect_bandwidth() {
        let cfg = ArchConfig::duet(); // 32 B/cycle
        assert_eq!(DramTransfer::new(64).cycles(&cfg), 2);
        assert_eq!(DramTransfer::new(65).cycles(&cfg), 3);
        assert_eq!(DramTransfer::new(0).cycles(&cfg), 0);
    }

    #[test]
    fn energy_per_word() {
        let e = EnergyTable::default();
        let t = DramTransfer::new(4); // two 16-bit words
        assert!((t.energy_pj(&e) - 2.0 * e.dram_16b_pj).abs() < 1e-9);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = DramStats::default();
        s.read(100);
        s.read(50);
        s.write(25);
        assert_eq!(s.read_bytes, 150);
        assert_eq!(s.write_bytes, 25);
        assert_eq!(s.total_bytes(), 175);
    }
}
