//! Deterministic fault injection — probing DUET's error-resilience claim.
//!
//! The paper's §II argument is that the Speculator only *steers*
//! execution: faults in the approximate module (QDR weights, switching
//! maps in the GLB) cost efficiency — switch rate and latency move — but
//! never correctness, because the Executor recomputes every sensitive
//! output exactly. This module provides the machinery to quantify that
//! asymmetry:
//!
//! * [`FaultInjector`] — a seeded bit-flipper over the three
//!   speculator-side storage sites ([`FaultSite`]): INT4 weight words,
//!   GLB burst words, and individual switching-map bits. All corruption
//!   is a pure function of the seed, so campaigns are reproducible
//!   bit-for-bit at any thread count.
//! * [`FaultCampaign`] — a (site × rate) grid driver that corrupts every
//!   workload of a [`SweepGrid`] and re-simulates it, producing one
//!   [`FaultCampaignCell`] per (site, rate, point, workload).
//! * [`campaign_checksum`] — an order-sensitive FNV-1a witness over the
//!   campaign results, used by `fault_campaign --smoke` and `verify.sh`
//!   to pin determinism.
//!
//! Accuracy-side injection (corrupting a real model's speculator weights
//! and measuring task accuracy) lives in the `fault_campaign` exhibit bin,
//! which combines [`FaultInjector::corrupt_int4`] with `duet-core`'s
//! `set_approx` reassembly hooks.

use crate::energy::EnergyTable;
use crate::sweep::{SweepGrid, SweepWorkload};
use crate::trace::{ConvLayerTrace, RnnLayerTrace};
use duet_core::switching::SwitchingMap;
use duet_tensor::fixed::Int4Tensor;
use duet_tensor::parallel;
use duet_tensor::rng::Rng;

/// Where a fault lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultSite {
    /// Bit flips in the Speculator's quantized (INT4/QDR) weight words.
    /// A **core-side** site: it corrupts [`Int4Tensor`] payloads via
    /// [`FaultInjector::corrupt_int4`] and manifests through regenerated
    /// switching maps; recorded simulator traces are unaffected.
    SpeculatorWeights,
    /// Whole-64-bit-word burst corruption of packed switching maps — the
    /// GLB partition holding speculation state (one fault event garbles
    /// one GLB word).
    GlbWords,
    /// Independent single-bit flips in switching maps.
    SwitchingMapBits,
}

impl FaultSite {
    /// Stable label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            FaultSite::SpeculatorWeights => "speculator_weights",
            FaultSite::GlbWords => "glb_words",
            FaultSite::SwitchingMapBits => "map_bits",
        }
    }
}

/// A seeded, deterministic bit-flipper. Fault positions are a pure
/// function of the construction seed and the call sequence; every
/// corruption method counts its fault events in [`FaultInjector::flips`]
/// (bit events for bit-level sites, word events for
/// [`FaultSite::GlbWords`]).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: Rng,
    flips: u64,
}

impl FaultInjector {
    /// Creates an injector from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Rng::seed_from_u64(seed),
            flips: 0,
        }
    }

    /// Fault events injected so far.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Flips each stored bit of an INT4/narrow-width weight tensor with
    /// probability `rate`, staying inside the two's-complement range of
    /// the tensor's bit width (the flip happens in the packed `bits`-wide
    /// word; the result is sign-extended back).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside [0, 1].
    pub fn corrupt_int4(&mut self, t: &Int4Tensor, rate: f64) -> Int4Tensor {
        let bits = t.bits();
        let mask: u8 = (((1u16) << bits) - 1) as u8;
        let sign: u8 = 1 << (bits - 1);
        let data: Vec<i8> = t
            .data()
            .iter()
            .map(|&v| {
                let mut w = (v as u8) & mask;
                for bit in 0..bits {
                    if self.rng.random_bool(rate) {
                        w ^= 1 << bit;
                        self.flips += 1;
                    }
                }
                if w & sign != 0 {
                    (w | !mask) as i8
                } else {
                    w as i8
                }
            })
            .collect();
        Int4Tensor::from_raw_with_bits(data, t.scale(), t.shape().dims(), bits)
    }

    /// Flips each bit of a switching map with probability `rate`
    /// ([`FaultSite::SwitchingMapBits`]).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside [0, 1].
    pub fn corrupt_map_bits(&mut self, m: &SwitchingMap, rate: f64) -> SwitchingMap {
        let mut bytes = m.packed_bytes();
        for i in 0..m.len() {
            if self.rng.random_bool(rate) {
                bytes[i / 8] ^= 1 << (i % 8);
                self.flips += 1;
            }
        }
        SwitchingMap::from_packed(&bytes, m.len())
    }

    /// Garbles whole 64-bit words of a packed switching map with
    /// probability `rate` per word ([`FaultSite::GlbWords`]) — the burst
    /// model of a corrupted GLB read. Each hit XORs the word with a
    /// random nonzero pattern.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside [0, 1].
    pub fn corrupt_map_words(&mut self, m: &SwitchingMap, rate: f64) -> SwitchingMap {
        let mut bytes = m.packed_bytes();
        for chunk in bytes.chunks_mut(8) {
            if self.rng.random_bool(rate) {
                let pattern = (self.rng.next_u64() | 1).to_le_bytes();
                for (b, p) in chunk.iter_mut().zip(pattern) {
                    *b ^= p;
                }
                self.flips += 1;
            }
        }
        SwitchingMap::from_packed(&bytes, m.len())
    }

    /// Corrupts one CONV trace at `site`/`rate`. Geometry is never
    /// faulted — only the speculation state (the switching map).
    pub fn corrupt_conv_trace(
        &mut self,
        t: &ConvLayerTrace,
        site: FaultSite,
        rate: f64,
    ) -> ConvLayerTrace {
        let mut out = t.clone();
        out.omap = match site {
            FaultSite::SwitchingMapBits => self.corrupt_map_bits(&t.omap, rate),
            FaultSite::GlbWords => self.corrupt_map_words(&t.omap, rate),
            FaultSite::SpeculatorWeights => t.omap.clone(),
        };
        out
    }

    /// Corrupts one RNN trace at `site`/`rate`.
    pub fn corrupt_rnn_trace(
        &mut self,
        t: &RnnLayerTrace,
        site: FaultSite,
        rate: f64,
    ) -> RnnLayerTrace {
        let mut out = t.clone();
        out.maps = match site {
            FaultSite::SwitchingMapBits => self.corrupt_map_bits(&t.maps, rate),
            FaultSite::GlbWords => self.corrupt_map_words(&t.maps, rate),
            FaultSite::SpeculatorWeights => t.maps.clone(),
        };
        out
    }

    /// Corrupts every trace of a sweep workload.
    pub fn corrupt_workload(
        &mut self,
        w: &SweepWorkload,
        site: FaultSite,
        rate: f64,
    ) -> SweepWorkload {
        match w {
            SweepWorkload::Cnn { name, traces } => SweepWorkload::Cnn {
                name: name.clone(),
                traces: traces
                    .iter()
                    .map(|t| self.corrupt_conv_trace(t, site, rate))
                    .collect(),
            },
            SweepWorkload::Rnn {
                name,
                traces,
                options,
            } => SweepWorkload::Rnn {
                name: name.clone(),
                traces: traces
                    .iter()
                    .map(|t| self.corrupt_rnn_trace(t, site, rate))
                    .collect(),
                options: *options,
            },
        }
    }
}

/// One cell of a fault campaign: a (site, rate, point, workload)
/// combination with its corrupted-run results.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultCampaignCell {
    /// Fault site label ([`FaultSite::label`]).
    pub site: String,
    /// Fault rate (per bit or per word, depending on the site).
    pub rate: f64,
    /// Architecture point label.
    pub point: String,
    /// Workload name.
    pub workload: String,
    /// Fault events injected into this (site, rate) combo's workload set.
    pub flips: u64,
    /// End-to-end latency of the corrupted run.
    pub total_latency_cycles: u64,
    /// Mean sensitive fraction of the corrupted workload's maps.
    pub sensitive_fraction: f64,
}

/// A (site × rate) fault-injection campaign over a sweep grid.
///
/// For every combination, the grid's workloads are corrupted with a seed
/// derived from `(seed, site index, rate index)` — never from thread
/// scheduling — and the corrupted grid is re-simulated through
/// [`SweepGrid::run_with_threads`], whose output is thread-count
/// invariant. Campaign results are therefore byte-identical at any
/// `DUET_NUM_THREADS`.
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    /// Fault sites to sweep (use the trace sites
    /// [`FaultSite::SwitchingMapBits`] / [`FaultSite::GlbWords`] here;
    /// [`FaultSite::SpeculatorWeights`] is core-side and leaves recorded
    /// traces unchanged).
    pub sites: Vec<FaultSite>,
    /// Fault rates to sweep.
    pub rates: Vec<f64>,
    /// Master seed.
    pub seed: u64,
}

impl FaultCampaign {
    /// The default sim-side campaign: both trace sites over a
    /// log-spaced rate ladder.
    pub fn default_grid(seed: u64) -> Self {
        Self {
            sites: vec![FaultSite::SwitchingMapBits, FaultSite::GlbWords],
            rates: vec![1e-4, 1e-3, 1e-2],
            seed,
        }
    }

    /// Runs the campaign with the process-wide thread count.
    pub fn run(&self, grid: &SweepGrid, energy: &EnergyTable) -> Vec<FaultCampaignCell> {
        self.run_with_threads(grid, energy, parallel::num_threads())
    }

    /// Runs the campaign on an explicit thread count. Output is in
    /// (site, rate, point, workload) order and bitwise identical across
    /// thread counts.
    pub fn run_with_threads(
        &self,
        grid: &SweepGrid,
        energy: &EnergyTable,
        threads: usize,
    ) -> Vec<FaultCampaignCell> {
        let _span = duet_obs::span("sim.fault.campaign");
        let mut out = Vec::new();
        for (si, &site) in self.sites.iter().enumerate() {
            for (ri, &rate) in self.rates.iter().enumerate() {
                // Per-combo seed: a pure function of the campaign seed and
                // the combo's grid position.
                let combo_seed = self
                    .seed
                    .wrapping_add((si as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add((ri as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
                let mut inj = FaultInjector::new(combo_seed);
                let corrupted: Vec<SweepWorkload> = grid
                    .workloads
                    .iter()
                    .map(|w| inj.corrupt_workload(w, site, rate))
                    .collect();
                let flips = inj.flips();
                duet_obs::counter!("sim.fault.flips").add(flips);
                let fractions: Vec<f64> =
                    corrupted.iter().map(workload_sensitive_fraction).collect();
                let sub = SweepGrid::new(grid.points.clone(), corrupted);
                let cells = sub.run_with_threads(energy, threads);
                let inner = sub.workloads.len();
                for (idx, c) in cells.iter().enumerate() {
                    out.push(FaultCampaignCell {
                        site: site.label().to_string(),
                        rate,
                        point: c.point.clone(),
                        workload: c.workload.clone(),
                        flips,
                        total_latency_cycles: c.perf.total_latency_cycles,
                        sensitive_fraction: fractions[idx % inner],
                    });
                }
            }
        }
        out
    }
}

/// Mean sensitive fraction of a workload's switching maps, weighted by
/// map length.
pub fn workload_sensitive_fraction(w: &SweepWorkload) -> f64 {
    let (sensitive, total) = match w {
        SweepWorkload::Cnn { traces, .. } => traces.iter().fold((0usize, 0usize), |acc, t| {
            (acc.0 + t.omap.sensitive_count(), acc.1 + t.omap.len())
        }),
        SweepWorkload::Rnn { traces, .. } => traces.iter().fold((0usize, 0usize), |acc, t| {
            (acc.0 + t.maps.sensitive_count(), acc.1 + t.maps.len())
        }),
    };
    if total == 0 {
        0.0
    } else {
        sensitive as f64 / total as f64
    }
}

/// Order-sensitive FNV-1a witness over a campaign's results: latency,
/// flip counts, and the map fractions (bit pattern of the f64). Two runs
/// agree on this checksum iff they produced the same cells in the same
/// order.
pub fn campaign_checksum(cells: &[FaultCampaignCell]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for c in cells {
        mix(c.total_latency_cycles);
        mix(c.flips);
        mix(c.sensitive_fraction.to_bits());
        mix(c.rate.to_bits());
        mix(c.site.len() as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchConfig;
    use crate::rnn::RnnOptions;
    use duet_tensor::rng::seeded;
    use duet_tensor::Tensor;

    #[test]
    fn int4_corruption_stays_in_range_and_is_seeded() {
        let mut r = seeded(5);
        let t = Int4Tensor::quantize(&duet_tensor::rng::normal(&mut r, &[16, 8], 0.0, 0.5));
        let a = FaultInjector::new(7).corrupt_int4(&t, 0.05);
        let b = FaultInjector::new(7).corrupt_int4(&t, 0.05);
        assert_eq!(a.data(), b.data(), "same seed, same corruption");
        let c = FaultInjector::new(8).corrupt_int4(&t, 0.05);
        assert_ne!(a.data(), c.data(), "different seed, different corruption");
        // range check: every value representable in 4 bits
        assert!(a.data().iter().all(|&v| (-8..=7).contains(&v)));
        assert_eq!(a.scale(), t.scale());
        assert_eq!(a.bits(), t.bits());
    }

    #[test]
    fn zero_rate_is_identity() {
        let mut r = seeded(6);
        let t = Int4Tensor::quantize(&duet_tensor::rng::normal(&mut r, &[4, 4], 0.0, 0.5));
        let mut inj = FaultInjector::new(1);
        assert_eq!(inj.corrupt_int4(&t, 0.0).data(), t.data());
        let m: SwitchingMap = (0..200).map(|i| i % 3 == 0).collect();
        assert_eq!(inj.corrupt_map_bits(&m, 0.0), m);
        assert_eq!(inj.corrupt_map_words(&m, 0.0), m);
        assert_eq!(inj.flips(), 0);
    }

    #[test]
    fn full_rate_flips_every_map_bit() {
        let m: SwitchingMap = (0..130).map(|i| i % 2 == 0).collect();
        let mut inj = FaultInjector::new(3);
        let c = inj.corrupt_map_bits(&m, 1.0);
        assert_eq!(inj.flips(), 130);
        for i in 0..130 {
            assert_eq!(c.is_sensitive(i), !m.is_sensitive(i), "bit {i}");
        }
    }

    #[test]
    fn word_corruption_preserves_length() {
        let m: SwitchingMap = (0..517).map(|i| i % 5 == 0).collect();
        let mut inj = FaultInjector::new(4);
        let c = inj.corrupt_map_words(&m, 1.0);
        assert_eq!(c.len(), m.len());
        assert!(inj.flips() >= 1);
        assert_ne!(c, m);
    }

    #[test]
    fn int4_sign_extension_round_trips_through_quantizer_contract() {
        // Corrupt then re-wrap: from_raw_with_bits range-checks, so this
        // test passing means every corrupted value is a valid word.
        let t = Int4Tensor::from_raw_with_bits(vec![-8, -1, 0, 7], 0.1, &[4], 4);
        let mut inj = FaultInjector::new(11);
        for _ in 0..50 {
            let c = inj.corrupt_int4(&t, 0.5);
            assert!(c.data().iter().all(|&v| (-8..=7).contains(&v)));
        }
    }

    fn small_grid(seed: u64) -> SweepGrid {
        let mut r = seeded(seed);
        let conv = vec![ConvLayerTrace::synthetic(
            "c0", 16, 25, 72, 400, 0.45, 0.3, 0.55, 8, &mut r,
        )];
        let rnn = vec![RnnLayerTrace::synthetic("l0", 4, 64, 64, 4, 0.46, &mut r)];
        SweepGrid::new(
            vec![crate::sweep::SweepPoint::new("duet", ArchConfig::duet())],
            vec![
                SweepWorkload::Cnn {
                    name: "cnn".into(),
                    traces: conv,
                },
                SweepWorkload::Rnn {
                    name: "lstm".into(),
                    traces: rnn,
                    options: RnnOptions::duet(),
                },
            ],
        )
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let grid = small_grid(42);
        let campaign = FaultCampaign {
            sites: vec![FaultSite::SwitchingMapBits, FaultSite::GlbWords],
            rates: vec![1e-3, 1e-2],
            seed: 1234,
        };
        let e = EnergyTable::default();
        let serial = campaign.run_with_threads(&grid, &e, 1);
        assert_eq!(serial.len(), 2 * 2 * 2);
        for threads in [2usize, 4, 7] {
            let par = campaign.run_with_threads(&grid, &e, threads);
            assert_eq!(serial, par, "threads={threads}");
        }
        assert_eq!(
            campaign_checksum(&serial),
            campaign_checksum(&campaign.run_with_threads(&grid, &e, 4))
        );
    }

    #[test]
    fn higher_fault_rate_moves_switch_state_monotonically_in_flips() {
        let grid = small_grid(43);
        let campaign = FaultCampaign {
            sites: vec![FaultSite::SwitchingMapBits],
            rates: vec![1e-3, 1e-1],
            seed: 99,
        };
        let cells = campaign.run_with_threads(&grid, &EnergyTable::default(), 1);
        let low: u64 = cells
            .iter()
            .filter(|c| c.rate == 1e-3)
            .map(|c| c.flips)
            .sum();
        let high: u64 = cells
            .iter()
            .filter(|c| c.rate == 1e-1)
            .map(|c| c.flips)
            .sum();
        assert!(high > low * 10, "flips {low} vs {high}");
    }

    #[test]
    fn speculator_weight_site_leaves_traces_unchanged() {
        let grid = small_grid(44);
        let mut inj = FaultInjector::new(5);
        for w in &grid.workloads {
            let c = inj.corrupt_workload(w, FaultSite::SpeculatorWeights, 0.5);
            assert_eq!(&c, w);
        }
        assert_eq!(inj.flips(), 0);
    }

    #[test]
    fn checksum_detects_any_cell_change() {
        let grid = small_grid(45);
        let campaign = FaultCampaign::default_grid(7);
        let mut cells = campaign.run_with_threads(&grid, &EnergyTable::default(), 1);
        let a = campaign_checksum(&cells);
        cells[0].total_latency_cycles ^= 1;
        assert_ne!(a, campaign_checksum(&cells));
    }

    #[test]
    fn corrupt_int4_preserves_shape() {
        let t = Int4Tensor::quantize(&Tensor::from_fn(&[3, 5], |i| (i as f32 - 7.0) * 0.1));
        let c = FaultInjector::new(2).corrupt_int4(&t, 0.3);
        assert_eq!(c.shape().dims(), t.shape().dims());
        assert_eq!(c.len(), t.len());
    }
}
