//! Functional model of the Speculator's dimension-reduction hardware
//! (§III-B step 2): Alignment Units followed by carry-save Adder Trees.
//!
//! The ternary projection `P x` needs no multipliers — the Alignment
//! Units flip operand signs according to the entries of `P`, and the
//! Adder Trees accumulate. This model executes that datapath in the
//! *integer* domain (INT4 inputs, INT16 accumulators) and is validated
//! against the float reference in `duet-core`, demonstrating that the
//! hardware computes the same projection the algorithm assumes.

use duet_core::TernaryProjection;
use duet_tensor::fixed::Int4Tensor;

/// Result of one integer projection pass.
#[derive(Debug, Clone, PartialEq)]
pub struct AdderTreeResult {
    /// Integer accumulator per reduced dimension.
    pub accumulators: Vec<i32>,
    /// Scale converting accumulators to real values
    /// (input scale × projection scale).
    pub scale: f32,
    /// Additions performed (one per non-zero projection entry).
    pub adds: u64,
    /// Cycles the pipelined trees took at the configured width.
    pub cycles: u64,
}

impl AdderTreeResult {
    /// Dequantizes the accumulators.
    pub fn values(&self) -> Vec<f32> {
        self.accumulators
            .iter()
            .map(|&a| a as f32 * self.scale)
            .collect()
    }
}

/// The Alignment-Unit + Adder-Tree block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderTreeBlock {
    /// Sign-aligned operands the trees consume per cycle.
    pub adds_per_cycle: u64,
}

impl AdderTreeBlock {
    /// The paper-scale block: wide carry-save trees matched to the
    /// 512 B/cycle GLB feed.
    pub fn paper_default() -> Self {
        Self {
            adds_per_cycle: 512,
        }
    }

    /// Projects an INT4 input vector through a ternary projection in the
    /// integer domain: sign-align, accumulate, count cycles.
    ///
    /// # Panics
    ///
    /// Panics if the input length differs from the projection's input
    /// dimension.
    pub fn project(&self, projection: &TernaryProjection, x: &Int4Tensor) -> AdderTreeResult {
        let d = projection.input_dim();
        let k = projection.reduced_dim();
        assert_eq!(x.len(), d, "input length mismatch");
        let entries = projection.entries();
        let xd = x.data();
        let mut acc = vec![0i32; k];
        let mut adds = 0u64;
        for (i, a) in acc.iter_mut().enumerate() {
            let row = &entries[i * d..(i + 1) * d];
            for (&e, &v) in row.iter().zip(xd) {
                match e {
                    // Alignment Unit: sign flip only, no multiplier
                    1 => {
                        *a += v as i32;
                        adds += 1;
                    }
                    -1 => {
                        *a -= v as i32;
                        adds += 1;
                    }
                    _ => {}
                }
            }
        }
        AdderTreeResult {
            accumulators: acc,
            scale: x.scale() * projection.scale(),
            adds,
            cycles: adds.div_ceil(self.adds_per_cycle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::{self, seeded};
    use duet_tensor::Tensor;

    #[test]
    fn integer_path_matches_float_reference() {
        let mut r = seeded(1);
        let proj = TernaryProjection::sample(48, 12, &mut r);
        let x = rng::normal(&mut r, &[48], 0.0, 1.0);
        let xq = Int4Tensor::quantize(&x);

        let hw = AdderTreeBlock::paper_default().project(&proj, &xq);
        // float reference on the *dequantized* input — must agree exactly
        // up to the shared scale
        let reference = proj.project(&xq.dequantize());
        for (a, b) in hw.values().iter().zip(reference.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn add_count_equals_nonzero_entries() {
        let mut r = seeded(2);
        let proj = TernaryProjection::sample(60, 10, &mut r);
        let x = Int4Tensor::quantize(&Tensor::full(&[60], 1.0));
        let hw = AdderTreeBlock::paper_default().project(&proj, &x);
        assert_eq!(hw.adds, proj.additions_per_projection() as u64);
    }

    #[test]
    fn cycles_respect_tree_width() {
        let mut r = seeded(3);
        let proj = TernaryProjection::sample(300, 64, &mut r);
        let x = Int4Tensor::quantize(&rng::normal(&mut r, &[300], 0.0, 1.0));
        let wide = AdderTreeBlock {
            adds_per_cycle: 512,
        }
        .project(&proj, &x);
        let narrow = AdderTreeBlock { adds_per_cycle: 64 }.project(&proj, &x);
        assert_eq!(wide.accumulators, narrow.accumulators);
        assert!(narrow.cycles > wide.cycles);
    }

    #[test]
    fn accumulators_stay_in_int16_range() {
        // worst case: d INT4 maxima summed — for d ≤ 4096 the sum fits
        // INT16-wide accumulators with headroom, which is what the
        // hardware provisions; check a big case stays within i16 bounds
        let mut r = seeded(4);
        let proj = TernaryProjection::sample(2048, 16, &mut r);
        let x = Int4Tensor::quantize(&Tensor::full(&[2048], 1.0)); // all 7s
        let hw = AdderTreeBlock::paper_default().project(&proj, &x);
        for &a in &hw.accumulators {
            assert!(a.abs() <= 7 * 2048);
            assert!(a >= i16::MIN as i32 * 2 && a <= i16::MAX as i32 * 2);
        }
    }
}
