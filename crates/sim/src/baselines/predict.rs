//! Predict model: two-phase output prediction then completion.
//!
//! Predict computes a low-cost partial dot product for *every* output to
//! predict its sign; predicted-positive outputs are then completed in
//! full. Balancing relies on summing workloads across output channels at
//! the same coordinate, which requires larger tiles (§IV-A) and still
//! leaves residual imbalance. Like the other coupled designs it uses a
//! single buffer level.

use super::{ideal_cycles, layer_perf, model_perf, single_level_energy};
use crate::config::ArchConfig;
use crate::energy::EnergyTable;
use crate::report::ModelPerf;
use crate::trace::ConvLayerTrace;

/// Fraction of each dot product spent on the prediction phase.
pub const PREDICTION_PREFIX: f64 = 0.25;

/// Residual latency imbalance after Predict's coordinate-sum balancing.
pub const PREDICT_IMBALANCE: f64 = 0.10;

fn run_predict_impl(
    design: &str,
    model: &str,
    traces: &[ConvLayerTrace],
    config: &ArchConfig,
    energy: &EnergyTable,
    with_input_skipping: bool,
) -> ModelPerf {
    let layers = traces
        .iter()
        .map(|t| {
            let outputs = t.outputs() as u64;
            let sensitive = t.sensitive_outputs() as u64;
            let density = if with_input_skipping {
                t.input_density
            } else {
                1.0
            };
            // Phase 1: prediction prefix for every output. Phase 2: the
            // full dot product again for predicted-effectual outputs
            // (prediction work is not reused).
            let predict_macs =
                (outputs as f64 * t.patch_len as f64 * PREDICTION_PREFIX * density) as u64;
            let complete_macs = (sensitive as f64 * t.patch_len as f64 * density).round() as u64;
            let executed = predict_macs + complete_macs;
            let cycles = (ideal_cycles(executed, config) as f64 * (1.0 + PREDICT_IMBALANCE)) as u64;
            let e = single_level_energy(executed, cycles, t, config, energy);
            layer_perf(t, cycles, executed, e, config)
        })
        .collect();
    model_perf(design, model, layers)
}

/// Runs a CNN on the Predict model.
pub fn run_predict(
    model: &str,
    traces: &[ConvLayerTrace],
    config: &ArchConfig,
    energy: &EnergyTable,
) -> ModelPerf {
    run_predict_impl("Predict", model, traces, config, energy, false)
}

/// Runs a CNN on the combined Predict+Cnvlutin model (output prediction
/// plus input-sparsity skipping).
pub fn run_predict_cnvlutin(
    model: &str,
    traces: &[ConvLayerTrace],
    config: &ArchConfig,
    energy: &EnergyTable,
) -> ModelPerf {
    run_predict_impl("Predict+Cnvlutin", model, traces, config, energy, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::snapea::run_snapea;
    use crate::baselines::tests::test_traces;

    #[test]
    fn predict_beats_snapea_on_latency() {
        // shallower prediction prefix + better balancing
        let cfg = ArchConfig::duet();
        let e = EnergyTable::default();
        let ts = test_traces();
        let p = run_predict("t", &ts, &cfg, &e);
        let s = run_snapea("t", &ts, &cfg, &e);
        assert!(p.total_latency_cycles < s.total_latency_cycles);
    }

    #[test]
    fn combined_design_is_fastest_baseline() {
        let cfg = ArchConfig::duet();
        let e = EnergyTable::default();
        let ts = test_traces();
        let p = run_predict("t", &ts, &cfg, &e);
        let pc = run_predict_cnvlutin("t", &ts, &cfg, &e);
        assert!(pc.total_latency_cycles < p.total_latency_cycles);
    }

    #[test]
    fn prediction_overhead_counted() {
        let cfg = ArchConfig::duet();
        let m = run_predict("t", &test_traces(), &cfg, &EnergyTable::default());
        for l in &m.layers {
            // must exceed pure sensitive-output work by the prediction
            // prefix over all outputs
            let pure = (l.dense_macs as f64
                * (l.executed_macs as f64 / l.dense_macs as f64 - PREDICTION_PREFIX))
                .max(0.0);
            assert!(l.executed_macs as f64 > pure);
        }
    }
}
