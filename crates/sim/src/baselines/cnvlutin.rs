//! Cnvlutin model: input-sparsity computation skipping.
//!
//! Cnvlutin skips MACs whose input activation is zero, using offset
//! encoding of non-zero inputs. Zero positions are irregular, so lanes
//! fed from different input slices finish at different times — an
//! imbalance the design cannot fully absorb (§V-E: "the workload
//! imbalance caused by irregular sparse activations as in Cnvlutin and
//! SnaPEA compromises the performance").

use super::{ideal_cycles, layer_perf, model_perf, single_level_energy};
use crate::config::ArchConfig;
use crate::energy::EnergyTable;
use crate::report::ModelPerf;
use crate::trace::ConvLayerTrace;

/// Fractional latency overhead from lane imbalance under irregular input
/// sparsity (lanes wait for the densest input slice).
pub const CNVLUTIN_IMBALANCE: f64 = 0.18;

/// Runs a CNN on the Cnvlutin model.
pub fn run_cnvlutin(
    model: &str,
    traces: &[ConvLayerTrace],
    config: &ArchConfig,
    energy: &EnergyTable,
) -> ModelPerf {
    let layers = traces
        .iter()
        .map(|t| {
            let executed = (t.dense_macs() as f64 * t.input_density).round() as u64;
            let cycles =
                (ideal_cycles(executed, config) as f64 * (1.0 + CNVLUTIN_IMBALANCE)) as u64;
            let e = single_level_energy(executed, cycles, t, config, energy);
            layer_perf(t, cycles, executed, e, config)
        })
        .collect();
    model_perf("Cnvlutin", model, layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::eyeriss::run_eyeriss;
    use crate::baselines::tests::test_traces;

    #[test]
    fn faster_than_eyeriss_on_compute() {
        let cfg = ArchConfig::duet();
        let e = EnergyTable::default();
        let ts = test_traces();
        let cn = run_cnvlutin("t", &ts, &cfg, &e);
        let ey = run_eyeriss("t", &ts, &cfg, &e);
        for (a, b) in cn.layers.iter().zip(&ey.layers) {
            assert!(a.executor_cycles < b.executor_cycles);
        }
    }

    #[test]
    fn energy_above_two_level_designs() {
        let cfg = ArchConfig::duet();
        let e = EnergyTable::default();
        let ts = test_traces();
        let cn = run_cnvlutin("t", &ts, &cfg, &e);
        let ey = run_eyeriss("t", &ts, &cfg, &e);
        // computation skipping does not rescue the single-level hierarchy
        assert!(cn.total_energy().on_chip_pj() > ey.total_energy().on_chip_pj() * 0.8);
    }

    #[test]
    fn imbalance_shows_in_utilization() {
        let cfg = ArchConfig::duet();
        let m = run_cnvlutin("t", &test_traces(), &cfg, &EnergyTable::default());
        let u = m.avg_mac_utilization();
        assert!(u < 0.9, "utilization {u} should reflect imbalance");
    }
}
