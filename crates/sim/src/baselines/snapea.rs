//! SnaPEA model: coupled output-sparsity early termination.
//!
//! SnaPEA sorts weights so negative contributions come last and stops a
//! dot product as soon as the partial sum can no longer turn positive.
//! The prediction is *part of* the execution (coupled): insensitive
//! outputs still burn a prefix of their MACs before terminating, and
//! because termination points are data-dependent, PEs finish at scattered
//! times — the asynchronous-PE overhead §IV-A discusses.

use super::{ideal_cycles, layer_perf, model_perf, single_level_energy};
use crate::config::ArchConfig;
use crate::energy::EnergyTable;
use crate::report::ModelPerf;
use crate::trace::ConvLayerTrace;

/// Fraction of a dot product executed before an insensitive output can be
/// terminated (SnaPEA's "speculative prefix").
pub const EARLY_TERMINATION_PREFIX: f64 = 0.45;

/// Latency overhead of data-dependent termination times across PEs.
pub const SNAPEA_IMBALANCE: f64 = 0.35;

/// Runs a CNN on the SnaPEA model.
pub fn run_snapea(
    model: &str,
    traces: &[ConvLayerTrace],
    config: &ArchConfig,
    energy: &EnergyTable,
) -> ModelPerf {
    let layers = traces
        .iter()
        .map(|t| {
            let sensitive = t.sensitive_outputs() as u64;
            let insensitive = (t.outputs() as u64) - sensitive;
            let executed = sensitive * t.patch_len as u64
                + (insensitive as f64 * t.patch_len as f64 * EARLY_TERMINATION_PREFIX) as u64;
            let cycles = (ideal_cycles(executed, config) as f64 * (1.0 + SNAPEA_IMBALANCE)) as u64;
            let e = single_level_energy(executed, cycles, t, config, energy);
            layer_perf(t, cycles, executed, e, config)
        })
        .collect();
    model_perf("SnaPEA", model, layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::eyeriss::run_eyeriss;
    use crate::baselines::tests::test_traces;

    #[test]
    fn early_termination_beats_dense() {
        let cfg = ArchConfig::duet();
        let e = EnergyTable::default();
        let ts = test_traces();
        let sn = run_snapea("t", &ts, &cfg, &e);
        let ey = run_eyeriss("t", &ts, &cfg, &e);
        assert!(sn.total_latency_cycles < ey.total_latency_cycles);
    }

    #[test]
    fn insensitive_outputs_still_cost_a_prefix() {
        let cfg = ArchConfig::duet();
        let m = run_snapea("t", &test_traces(), &cfg, &EnergyTable::default());
        for l in &m.layers {
            // strictly more work than "perfect" output skipping
            let perfect =
                (l.dense_macs as f64 * (l.executed_macs as f64 / l.dense_macs as f64)).round();
            assert!(l.executed_macs as f64 >= perfect * 0.99);
            assert!(l.executed_macs < l.dense_macs);
        }
    }

    #[test]
    fn worse_utilization_than_eyeriss() {
        let cfg = ArchConfig::duet();
        let e = EnergyTable::default();
        let ts = test_traces();
        let sn = run_snapea("t", &ts, &cfg, &e);
        let ey = run_eyeriss("t", &ts, &cfg, &e);
        assert!(sn.avg_mac_utilization() < ey.avg_mac_utilization());
    }
}
