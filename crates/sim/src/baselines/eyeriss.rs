//! Eyeriss model: dense row-stationary execution with zero-gating.
//!
//! "Eyeriss equals a dense baseline as it only supports power-gating to
//! save energy but \[not\] computation skipping to improve performance;
//! thus, it has the worst latency among others" (§V-E). Gated MACs (zero
//! input) still occupy their issue slot but consume no datapath energy.

use super::{ideal_cycles, layer_perf, model_perf, two_level_energy};
use crate::config::ArchConfig;
use crate::energy::EnergyTable;
use crate::report::ModelPerf;
use crate::trace::ConvLayerTrace;

/// Runs a CNN on the Eyeriss model.
pub fn run_eyeriss(
    model: &str,
    traces: &[ConvLayerTrace],
    config: &ArchConfig,
    energy: &EnergyTable,
) -> ModelPerf {
    let layers = traces
        .iter()
        .map(|t| {
            let dense = t.dense_macs();
            // Dense schedule is perfectly balanced.
            let cycles = ideal_cycles(dense, config);
            // Power gating: MAC datapath energy only for non-zero inputs;
            // RF traffic still happens for every issue slot.
            let charged = (dense as f64 * t.input_density).round() as u64;
            let e = two_level_energy(dense, charged, cycles, t, config, energy);
            layer_perf(t, cycles, dense, e, config)
        })
        .collect();
    model_perf("Eyeriss", model, layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::tests::test_traces;

    #[test]
    fn eyeriss_is_dense_latency() {
        let cfg = ArchConfig::duet();
        let m = run_eyeriss("t", &test_traces(), &cfg, &EnergyTable::default());
        for l in &m.layers {
            assert_eq!(l.executed_macs, l.dense_macs);
            assert!(l.mac_utilization > 0.95);
        }
    }

    #[test]
    fn gating_cuts_compute_energy_only() {
        let cfg = ArchConfig::duet();
        let e = EnergyTable::default();
        let m = run_eyeriss("t", &test_traces(), &cfg, &e);
        for (l, t) in m.layers.iter().zip(test_traces().iter()) {
            let full = l.dense_macs as f64 * e.mac_int16_pj;
            assert!(l.energy.executor_compute_pj < full);
            assert!((l.energy.executor_compute_pj / full - t.input_density).abs() < 0.02);
        }
    }
}
