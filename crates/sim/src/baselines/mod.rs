//! Behavioural models of the comparison accelerators (§V-B, §V-E).
//!
//! Each design is modeled inside the same simulator framework with the
//! mechanism its paper describes:
//!
//! * [`eyeriss`] — dense row-stationary execution with zero-gating (saves
//!   energy, not time) and a two-level on-chip hierarchy,
//! * [`cnvlutin`] — input-sparsity computation skipping,
//! * [`snapea`] — coupled output-sparsity *early termination*,
//! * [`predict`] — two-phase output prediction then completion,
//! * [`run_predict_cnvlutin`] — Predict's output skipping combined with
//!   Cnvlutin's input skipping.
//!
//! §V-E: "Cnvlutin, SnaPEA, and Predict use only one level of on-chip
//! buffer and have no local data reuse" — so their MAC operands are
//! charged at global-buffer cost rather than register-file cost, which is
//! exactly where their 1.8–2.2× energy gap versus DUET comes from.
//! All designs are scaled to the same MAC count and similar on-chip
//! memory, as the paper prescribes.

pub mod cnvlutin;
pub mod eyeriss;
pub mod predict;
pub mod snapea;

pub use cnvlutin::run_cnvlutin;
pub use eyeriss::run_eyeriss;
pub use predict::{run_predict, run_predict_cnvlutin};
pub use snapea::run_snapea;

use crate::config::ArchConfig;
use crate::energy::{EnergyBreakdown, EnergyTable};
use crate::trace::ConvLayerTrace;

/// Ideal (perfectly balanced) compute cycles for `macs` on the PE array.
pub(crate) fn ideal_cycles(macs: u64, config: &ArchConfig) -> u64 {
    macs.div_ceil(config.pe_count() as u64)
}

/// DRAM bytes of a CONV layer: ifmap + weights in, ofmap out, all INT16.
pub(crate) fn layer_dram_bytes(trace: &ConvLayerTrace) -> u64 {
    2 * (trace.input_elems + trace.weight_elems + trace.outputs()) as u64
}

/// Energy for a single-level-buffer design: MAC operands come from the
/// global buffer rather than a local register file. Wide GLB words and
/// operand broadcast across a PE row still amortize the accesses to about
/// one GLB access per MAC (vs ~1.5 *register-file* accesses per MAC in
/// the two-level designs) — calibrated so the single-level penalty lands
/// in the paper's 1.8–2.2× range rather than a naive worst case.
pub(crate) fn single_level_energy(
    executed_macs: u64,
    compute_cycles: u64,
    trace: &ConvLayerTrace,
    config: &ArchConfig,
    energy: &EnergyTable,
) -> EnergyBreakdown {
    let dram_bytes = layer_dram_bytes(trace);
    EnergyBreakdown {
        executor_compute_pj: executed_macs as f64 * energy.mac_int16_pj,
        executor_rf_pj: 0.0, // no local reuse level
        glb_pj: executed_macs as f64 * energy.glb_16b_pj
            + trace.outputs() as f64 * energy.glb_16b_pj,
        noc_pj: executed_macs as f64 * 0.25 * energy.noc_16b_pj,
        dram_pj: dram_bytes as f64 / 2.0 * energy.dram_16b_pj,
        speculator_pj: 0.0,
        control_pj: compute_cycles as f64 * config.pe_count() as f64 * energy.control_pj_per_cycle,
    }
}

/// Energy for a two-level-hierarchy design (Eyeriss-style local reuse):
/// MAC operands mostly hit the register file; the GLB is charged per
/// streamed word.
pub(crate) fn two_level_energy(
    executed_macs: u64,
    charged_macs: u64,
    compute_cycles: u64,
    trace: &ConvLayerTrace,
    config: &ArchConfig,
    energy: &EnergyTable,
) -> EnergyBreakdown {
    let glb_words = (trace.input_elems + trace.weight_elems + trace.outputs()) as u64;
    let dram_bytes = layer_dram_bytes(trace);
    EnergyBreakdown {
        executor_compute_pj: charged_macs as f64 * energy.mac_int16_pj,
        executor_rf_pj: executed_macs as f64 * 1.5 * energy.rf_16b_pj,
        glb_pj: glb_words as f64 * energy.glb_16b_pj,
        noc_pj: glb_words as f64 * energy.noc_16b_pj,
        dram_pj: dram_bytes as f64 / 2.0 * energy.dram_16b_pj,
        speculator_pj: 0.0,
        control_pj: compute_cycles as f64 * config.pe_count() as f64 * energy.control_pj_per_cycle,
    }
}

/// Builds a [`crate::report::LayerPerf`] from the common pieces.
pub(crate) fn layer_perf(
    trace: &ConvLayerTrace,
    compute_cycles: u64,
    executed_macs: u64,
    energy: EnergyBreakdown,
    config: &ArchConfig,
) -> crate::report::LayerPerf {
    let dram_cycles = layer_dram_bytes(trace).div_ceil(config.dram_bytes_per_cycle as u64);
    crate::report::LayerPerf {
        name: trace.name.clone(),
        executor_cycles: compute_cycles,
        speculator_cycles: 0,
        dram_cycles,
        latency_cycles: compute_cycles.max(dram_cycles),
        executed_macs,
        dense_macs: trace.dense_macs(),
        mac_utilization: if compute_cycles == 0 {
            0.0
        } else {
            executed_macs as f64 / (compute_cycles * config.pe_count() as u64) as f64
        },
        energy,
    }
}

/// Aggregates per-layer results into a [`crate::report::ModelPerf`].
pub(crate) fn model_perf(
    design: &str,
    model: &str,
    layers: Vec<crate::report::LayerPerf>,
) -> crate::report::ModelPerf {
    let total = layers.iter().map(|l| l.latency_cycles).sum();
    crate::report::ModelPerf {
        design: design.to_string(),
        model: model.to_string(),
        layers,
        total_latency_cycles: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::seeded;

    pub(crate) fn test_traces() -> Vec<ConvLayerTrace> {
        let mut r = seeded(33);
        (0..3)
            .map(|i| {
                ConvLayerTrace::synthetic(
                    format!("c{i}"),
                    64,
                    196,
                    288,
                    64 * 196,
                    0.45,
                    0.3,
                    0.55,
                    32,
                    &mut r,
                )
            })
            .collect()
    }

    #[test]
    fn single_level_pays_more_than_two_level() {
        let t = &test_traces()[0];
        let cfg = ArchConfig::duet();
        let e = EnergyTable::default();
        let macs = t.dense_macs();
        let cycles = ideal_cycles(macs, &cfg);
        let one = single_level_energy(macs, cycles, t, &cfg, &e);
        let two = two_level_energy(macs, macs, cycles, t, &cfg, &e);
        assert!(
            one.on_chip_pj() > two.on_chip_pj() * 1.5,
            "single {} vs two {}",
            one.on_chip_pj(),
            two.on_chip_pj()
        );
    }

    #[test]
    fn ideal_cycles_rounds_up() {
        let cfg = ArchConfig::duet(); // 256 PEs
        assert_eq!(ideal_cycles(256, &cfg), 1);
        assert_eq!(ideal_cycles(257, &cfg), 2);
    }
}
