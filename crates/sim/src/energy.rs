//! Energy model (§V-B): per-operation and per-access energy constants plus
//! the per-component breakdown used in Fig. 12(e)/(f).
//!
//! The constants follow the published Eyeriss/Horowitz hierarchy ratios:
//! accessing a 16-bit word costs roughly 1× (local PE register file),
//! 6× (global buffer), and 200× (DRAM) a 16-bit MAC. The paper's own
//! evaluation builds on the same ratios ("CACTI and Micron Power
//! Calculators"); we embed them as a constant table so every design is
//! charged identically.

use std::ops::{Add, AddAssign};

/// Per-operation / per-access energy constants in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyTable {
    /// One INT16 multiply-accumulate.
    pub mac_int16_pj: f64,
    /// One INT4 multiply-accumulate (Speculator systolic cell).
    pub mac_int4_pj: f64,
    /// One INT4-grade addition (Speculator adder tree).
    pub add_int4_pj: f64,
    /// One 16-bit local (PE register file) access.
    pub rf_16b_pj: f64,
    /// One 16-bit global-buffer access.
    pub glb_16b_pj: f64,
    /// One 16-bit DRAM access.
    pub dram_16b_pj: f64,
    /// One 16-bit word traversal of the NoC (multicast counted once per
    /// destination group).
    pub noc_16b_pj: f64,
    /// Control overhead per PE-cycle of active work.
    pub control_pj_per_cycle: f64,
}

impl EnergyTable {
    /// The default 45 nm-class table.
    pub fn default_45nm() -> Self {
        Self {
            mac_int16_pj: 1.0,
            mac_int4_pj: 0.07,
            add_int4_pj: 0.03,
            rf_16b_pj: 1.0,
            glb_16b_pj: 6.0,
            dram_16b_pj: 200.0,
            noc_16b_pj: 2.0,
            control_pj_per_cycle: 0.05,
        }
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        Self::default_45nm()
    }
}

/// Energy broken down by component, in picojoules. This is the shape of
/// the stacked bars in Fig. 12(e)/(f).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyBreakdown {
    /// Executor MAC (and PE adder) energy.
    pub executor_compute_pj: f64,
    /// Executor local-buffer (register file) energy.
    pub executor_rf_pj: f64,
    /// Global-buffer access energy.
    pub glb_pj: f64,
    /// NoC transport energy.
    pub noc_pj: f64,
    /// Off-chip DRAM energy.
    pub dram_pj: f64,
    /// Speculator energy (quantizer, adder trees, systolic array, MFU,
    /// reorder unit, QDR buffers).
    pub speculator_pj: f64,
    /// Control / clocking overhead.
    pub control_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy including DRAM (Fig. 12(e)).
    pub fn total_pj(&self) -> f64 {
        self.on_chip_pj() + self.dram_pj
    }

    /// On-chip energy only (Fig. 12(f)).
    pub fn on_chip_pj(&self) -> f64 {
        self.executor_compute_pj
            + self.executor_rf_pj
            + self.glb_pj
            + self.noc_pj
            + self.speculator_pj
            + self.control_pj
    }

    /// Speculator share of on-chip energy (the paper reports 3.5–6.3% for
    /// CONV layers and <1% for RNNs).
    pub fn speculator_fraction_on_chip(&self) -> f64 {
        if self.on_chip_pj() == 0.0 {
            return 0.0;
        }
        self.speculator_pj / self.on_chip_pj()
    }

    /// Scales every component (used when replicating a layer `n` times).
    pub fn scaled(&self, s: f64) -> Self {
        Self {
            executor_compute_pj: self.executor_compute_pj * s,
            executor_rf_pj: self.executor_rf_pj * s,
            glb_pj: self.glb_pj * s,
            noc_pj: self.noc_pj * s,
            dram_pj: self.dram_pj * s,
            speculator_pj: self.speculator_pj * s,
            control_pj: self.control_pj * s,
        }
    }
}

impl Add for EnergyBreakdown {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            executor_compute_pj: self.executor_compute_pj + rhs.executor_compute_pj,
            executor_rf_pj: self.executor_rf_pj + rhs.executor_rf_pj,
            glb_pj: self.glb_pj + rhs.glb_pj,
            noc_pj: self.noc_pj + rhs.noc_pj,
            dram_pj: self.dram_pj + rhs.dram_pj,
            speculator_pj: self.speculator_pj + rhs.speculator_pj,
            control_pj: self.control_pj + rhs.control_pj,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_ratios() {
        let t = EnergyTable::default_45nm();
        assert!(t.glb_16b_pj / t.rf_16b_pj >= 4.0);
        assert!(t.dram_16b_pj / t.glb_16b_pj >= 20.0);
        assert!(t.mac_int4_pj < t.mac_int16_pj / 10.0);
    }

    #[test]
    fn totals_and_fractions() {
        let b = EnergyBreakdown {
            executor_compute_pj: 10.0,
            executor_rf_pj: 20.0,
            glb_pj: 30.0,
            noc_pj: 5.0,
            dram_pj: 100.0,
            speculator_pj: 5.0,
            control_pj: 0.0,
        };
        assert!((b.on_chip_pj() - 70.0).abs() < 1e-9);
        assert!((b.total_pj() - 170.0).abs() < 1e-9);
        assert!((b.speculator_fraction_on_chip() - 5.0 / 70.0).abs() < 1e-12);
    }

    #[test]
    fn addition_and_scaling() {
        let b = EnergyBreakdown {
            executor_compute_pj: 1.0,
            dram_pj: 2.0,
            ..Default::default()
        };
        let s: EnergyBreakdown = vec![b, b, b].into_iter().sum();
        assert!((s.total_pj() - 9.0).abs() < 1e-9);
        assert!((b.scaled(4.0).dram_pj - 8.0).abs() < 1e-9);
    }
}
