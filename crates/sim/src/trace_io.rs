//! Compact binary serialization for workload traces.
//!
//! Traces recorded from real dual-module runs can be written to disk and
//! replayed later (e.g. to compare architecture variants on identical
//! switching maps). The format is a small custom codec built on
//! [`bytes`]: length-prefixed strings, little-endian integers, and
//! bit-packed switching maps — the same packing the GLB uses.

use crate::trace::{ConvLayerTrace, RnnLayerTrace};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes identifying a CONV trace blob.
const CONV_MAGIC: u32 = 0x44554543; // "DUEC"
/// Magic bytes identifying an RNN trace blob.
const RNN_MAGIC: u32 = 0x44554552; // "DUER"

/// Errors from decoding a trace blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeTraceError {
    /// The buffer is shorter than the header or payload requires.
    Truncated,
    /// The magic tag does not match the expected trace kind.
    BadMagic {
        /// The tag found in the buffer.
        found: u32,
    },
}

impl std::fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeTraceError::Truncated => write!(f, "trace blob truncated"),
            DecodeTraceError::BadMagic { found } => {
                write!(f, "bad trace magic 0x{found:08x}")
            }
        }
    }
}

impl std::error::Error for DecodeTraceError {}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String, DecodeTraceError> {
    if buf.remaining() < 4 {
        return Err(DecodeTraceError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DecodeTraceError::Truncated);
    }
    let raw = buf.copy_to_bytes(len);
    Ok(String::from_utf8_lossy(&raw).into_owned())
}

fn put_bitmap(buf: &mut BytesMut, flags: &[bool]) {
    buf.put_u64_le(flags.len() as u64);
    let mut byte = 0u8;
    for (i, &f) in flags.iter().enumerate() {
        if f {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            buf.put_u8(byte);
            byte = 0;
        }
    }
    if !flags.len().is_multiple_of(8) {
        buf.put_u8(byte);
    }
}

fn get_bitmap(buf: &mut Bytes) -> Result<Vec<bool>, DecodeTraceError> {
    if buf.remaining() < 8 {
        return Err(DecodeTraceError::Truncated);
    }
    let n = buf.get_u64_le() as usize;
    let bytes_needed = n.div_ceil(8);
    if buf.remaining() < bytes_needed {
        return Err(DecodeTraceError::Truncated);
    }
    let raw = buf.copy_to_bytes(bytes_needed);
    Ok((0..n).map(|i| raw[i / 8] >> (i % 8) & 1 == 1).collect())
}

/// Encodes a CONV trace to bytes.
pub fn encode_conv_trace(t: &ConvLayerTrace) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + t.omap.len() / 8);
    buf.put_u32_le(CONV_MAGIC);
    put_string(&mut buf, &t.name);
    buf.put_u64_le(t.out_channels as u64);
    buf.put_u64_le(t.positions as u64);
    buf.put_u64_le(t.patch_len as u64);
    buf.put_u64_le(t.input_elems as u64);
    buf.put_u64_le(t.weight_elems as u64);
    buf.put_f64_le(t.input_density);
    buf.put_u64_le(t.reduced_dim as u64);
    put_bitmap(&mut buf, &t.omap);
    buf.freeze()
}

/// Decodes a CONV trace.
///
/// # Errors
///
/// Returns [`DecodeTraceError`] for truncated input or a wrong magic tag.
pub fn decode_conv_trace(mut buf: Bytes) -> Result<ConvLayerTrace, DecodeTraceError> {
    if buf.remaining() < 4 {
        return Err(DecodeTraceError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != CONV_MAGIC {
        return Err(DecodeTraceError::BadMagic { found: magic });
    }
    let name = get_string(&mut buf)?;
    if buf.remaining() < 8 * 5 + 8 + 8 {
        return Err(DecodeTraceError::Truncated);
    }
    let out_channels = buf.get_u64_le() as usize;
    let positions = buf.get_u64_le() as usize;
    let patch_len = buf.get_u64_le() as usize;
    let input_elems = buf.get_u64_le() as usize;
    let weight_elems = buf.get_u64_le() as usize;
    let input_density = buf.get_f64_le();
    let reduced_dim = buf.get_u64_le() as usize;
    let omap = get_bitmap(&mut buf)?;
    Ok(ConvLayerTrace {
        name,
        out_channels,
        positions,
        patch_len,
        input_elems,
        weight_elems,
        omap,
        input_density,
        reduced_dim,
    })
}

/// Encodes an RNN trace to bytes.
pub fn encode_rnn_trace(t: &RnnLayerTrace) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + t.maps.len() / 8);
    buf.put_u32_le(RNN_MAGIC);
    put_string(&mut buf, &t.name);
    buf.put_u64_le(t.gates as u64);
    buf.put_u64_le(t.hidden as u64);
    buf.put_u64_le(t.input as u64);
    buf.put_u64_le(t.steps as u64);
    put_bitmap(&mut buf, &t.maps);
    buf.freeze()
}

/// Decodes an RNN trace.
///
/// # Errors
///
/// Returns [`DecodeTraceError`] for truncated input or a wrong magic tag.
pub fn decode_rnn_trace(mut buf: Bytes) -> Result<RnnLayerTrace, DecodeTraceError> {
    if buf.remaining() < 4 {
        return Err(DecodeTraceError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != RNN_MAGIC {
        return Err(DecodeTraceError::BadMagic { found: magic });
    }
    let name = get_string(&mut buf)?;
    if buf.remaining() < 8 * 4 {
        return Err(DecodeTraceError::Truncated);
    }
    let gates = buf.get_u64_le() as usize;
    let hidden = buf.get_u64_le() as usize;
    let input = buf.get_u64_le() as usize;
    let steps = buf.get_u64_le() as usize;
    let maps = get_bitmap(&mut buf)?;
    Ok(RnnLayerTrace {
        name,
        gates,
        hidden,
        input,
        steps,
        maps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::seeded;

    #[test]
    fn conv_roundtrip() {
        let t = ConvLayerTrace::synthetic(
            "conv3",
            64,
            169,
            576,
            32448,
            0.45,
            0.3,
            0.4,
            72,
            &mut seeded(1),
        );
        let blob = encode_conv_trace(&t);
        let back = decode_conv_trace(blob).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rnn_roundtrip() {
        let t = RnnLayerTrace::synthetic("lstm1", 4, 256, 256, 12, 0.46, &mut seeded(2));
        let blob = encode_rnn_trace(&t);
        let back = decode_rnn_trace(blob).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn wrong_magic_rejected() {
        let t = RnnLayerTrace::synthetic("x", 3, 8, 8, 2, 0.5, &mut seeded(3));
        let blob = encode_rnn_trace(&t);
        match decode_conv_trace(blob) {
            Err(DecodeTraceError::BadMagic { found }) => assert_eq!(found, 0x44554552),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let t = ConvLayerTrace::synthetic("c", 8, 9, 16, 64, 0.5, 0.2, 1.0, 8, &mut seeded(4));
        let blob = encode_conv_trace(&t);
        for cut in [0usize, 3, 10, blob.len() - 1] {
            let short = blob.slice(0..cut);
            assert!(
                decode_conv_trace(short).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn bitmap_sizes() {
        let t = ConvLayerTrace::synthetic("c", 3, 3, 4, 16, 0.5, 0.2, 1.0, 4, &mut seeded(5));
        let blob = encode_conv_trace(&t);
        // 9 map bits → 2 bytes of bitmap payload
        assert!(blob.len() < 128);
        let back = decode_conv_trace(blob).unwrap();
        assert_eq!(back.omap.len(), 9);
    }

    #[test]
    fn display_impls() {
        let e = DecodeTraceError::Truncated;
        assert!(e.to_string().contains("truncated"));
        let b = DecodeTraceError::BadMagic { found: 0xdead };
        assert!(b.to_string().contains("dead"));
    }
}
