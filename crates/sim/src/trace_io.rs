//! Compact binary serialization for workload traces.
//!
//! Traces recorded from real dual-module runs can be written to disk and
//! replayed later (e.g. to compare architecture variants on identical
//! switching maps). The format is a small custom codec over plain byte
//! slices: length-prefixed strings, little-endian integers, and
//! bit-packed switching maps — the same packing the GLB uses. Every blob
//! ends with a little-endian u64 FNV-1a checksum of the preceding bytes;
//! decoding verifies it *after* all structural checks, so corruption that
//! slips past the structural validators (e.g. a flipped bitmap bit or a
//! perturbed density field) is still rejected with
//! [`DecodeTraceError::ChecksumMismatch`].

use crate::trace::{ConvLayerTrace, RnnLayerTrace};
use duet_core::switching::SwitchingMap;

/// Magic bytes identifying a CONV trace blob.
const CONV_MAGIC: u32 = 0x44554543; // "DUEC"
/// Magic bytes identifying an RNN trace blob.
const RNN_MAGIC: u32 = 0x44554552; // "DUER"

/// Errors from decoding a trace blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeTraceError {
    /// The buffer is shorter than the header or payload requires.
    Truncated,
    /// The magic tag does not match the expected trace kind.
    BadMagic {
        /// The tag found in the buffer.
        found: u32,
    },
    /// A cross-field invariant is violated: the named field disagrees
    /// with the value implied by the geometry fields. Rejecting here keeps
    /// inconsistent blobs from panicking later inside the simulator
    /// (`sensitive_rows` / `run_conv_layer` index with the geometry, not
    /// the bitmap length).
    Inconsistent {
        /// The field whose value disagrees.
        field: &'static str,
        /// The value the geometry implies (u64::MAX when the geometry
        /// itself overflows).
        expected: u64,
        /// The value found in the blob.
        found: u64,
    },
    /// A string field holds invalid UTF-8.
    BadUtf8,
    /// The trailing FNV-1a checksum disagrees with the blob contents.
    /// Verified after all structural checks, so this catches corruption
    /// the structural validators cannot see (flipped bitmap bits,
    /// perturbed float fields, garbled names that remain valid UTF-8).
    ChecksumMismatch {
        /// The checksum of the bytes actually present.
        expected: u64,
        /// The checksum stored in the blob.
        found: u64,
    },
}

impl std::fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeTraceError::Truncated => write!(f, "trace blob truncated"),
            DecodeTraceError::BadMagic { found } => {
                write!(f, "bad trace magic 0x{found:08x}")
            }
            DecodeTraceError::Inconsistent {
                field,
                expected,
                found,
            } => write!(
                f,
                "inconsistent trace blob: {field} is {found}, geometry implies {expected}"
            ),
            DecodeTraceError::BadUtf8 => write!(f, "trace string is not valid UTF-8"),
            DecodeTraceError::ChecksumMismatch { expected, found } => write!(
                f,
                "trace checksum mismatch: blob stores 0x{found:016x}, contents hash to 0x{expected:016x}"
            ),
        }
    }
}

impl std::error::Error for DecodeTraceError {}

/// Little-endian cursor over a byte slice; every read is bounds-checked and
/// reports [`DecodeTraceError::Truncated`] on underrun.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeTraceError> {
        if self.buf.len() < n {
            return Err(DecodeTraceError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn get_u32_le(&mut self) -> Result<u32, DecodeTraceError> {
        let raw = self.take(4)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes")))
    }

    fn get_u64_le(&mut self) -> Result<u64, DecodeTraceError> {
        let raw = self.take(8)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
    }

    fn get_f64_le(&mut self) -> Result<f64, DecodeTraceError> {
        Ok(f64::from_bits(self.get_u64_le()?))
    }

    fn get_usize_le(&mut self) -> Result<usize, DecodeTraceError> {
        Ok(self.get_u64_le()? as usize)
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }
}

/// 64-bit FNV-1a over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends the trailing checksum to a finished blob body.
fn seal(mut body: Vec<u8>) -> Vec<u8> {
    let sum = fnv1a(&body);
    body.extend_from_slice(&sum.to_le_bytes());
    body
}

/// Splits a blob into its body and stored trailing checksum.
fn split_checksum(buf: &[u8]) -> Result<(&[u8], u64), DecodeTraceError> {
    if buf.len() < 8 {
        return Err(DecodeTraceError::Truncated);
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    Ok((body, u64::from_le_bytes(tail.try_into().expect("8 bytes"))))
}

/// Final decode gate: the body must be fully consumed and hash to the
/// stored checksum. Runs after all structural checks so structural errors
/// keep their specific variants.
fn finish_decode(r: &Reader<'_>, body: &[u8], stored: u64) -> Result<(), DecodeTraceError> {
    if r.remaining() != 0 {
        return Err(DecodeTraceError::Inconsistent {
            field: "trailing bytes",
            expected: 0,
            found: r.remaining() as u64,
        });
    }
    let expected = fnv1a(body);
    if expected != stored {
        return Err(DecodeTraceError::ChecksumMismatch {
            expected,
            found: stored,
        });
    }
    Ok(())
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn get_string(r: &mut Reader<'_>) -> Result<String, DecodeTraceError> {
    let len = r.get_u32_le()? as usize;
    let raw = r.take(len)?;
    String::from_utf8(raw.to_vec()).map_err(|_| DecodeTraceError::BadUtf8)
}

/// Checks that a decoded bitmap length equals the product of its geometry
/// fields (overflow in the product is itself inconsistent).
fn check_len(
    field: &'static str,
    found: usize,
    geometry: &[usize],
) -> Result<(), DecodeTraceError> {
    let expected = geometry
        .iter()
        .try_fold(1u64, |acc, &d| acc.checked_mul(d as u64));
    if expected != Some(found as u64) {
        return Err(DecodeTraceError::Inconsistent {
            field,
            expected: expected.unwrap_or(u64::MAX),
            found: found as u64,
        });
    }
    Ok(())
}

fn put_bitmap(buf: &mut Vec<u8>, map: &SwitchingMap) {
    // u64 bit-count prefix, then the map's canonical packed codec (bit i
    // in byte i/8 at position i%8) — byte-identical to the historical
    // bool-slice encoder.
    buf.extend_from_slice(&(map.len() as u64).to_le_bytes());
    buf.extend_from_slice(&map.packed_bytes());
}

fn get_bitmap(r: &mut Reader<'_>) -> Result<SwitchingMap, DecodeTraceError> {
    let n = r.get_u64_le()? as usize;
    let raw = r.take(n.div_ceil(8))?;
    Ok(SwitchingMap::from_packed(raw, n))
}

/// Encodes a CONV trace to bytes.
pub fn encode_conv_trace(t: &ConvLayerTrace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + t.omap.len() / 8);
    buf.extend_from_slice(&CONV_MAGIC.to_le_bytes());
    put_string(&mut buf, &t.name);
    buf.extend_from_slice(&(t.out_channels as u64).to_le_bytes());
    buf.extend_from_slice(&(t.positions as u64).to_le_bytes());
    buf.extend_from_slice(&(t.patch_len as u64).to_le_bytes());
    buf.extend_from_slice(&(t.input_elems as u64).to_le_bytes());
    buf.extend_from_slice(&(t.weight_elems as u64).to_le_bytes());
    buf.extend_from_slice(&t.input_density.to_bits().to_le_bytes());
    buf.extend_from_slice(&(t.reduced_dim as u64).to_le_bytes());
    put_bitmap(&mut buf, &t.omap);
    seal(buf)
}

/// Decodes a CONV trace.
///
/// # Errors
///
/// Returns [`DecodeTraceError`] for truncated input, a wrong magic tag, a
/// name that is not UTF-8, a bitmap/weight count inconsistent with the
/// layer geometry, trailing bytes, or a trailing-checksum mismatch.
pub fn decode_conv_trace(buf: &[u8]) -> Result<ConvLayerTrace, DecodeTraceError> {
    let (body, stored) = split_checksum(buf)?;
    let mut r = Reader::new(body);
    let magic = r.get_u32_le()?;
    if magic != CONV_MAGIC {
        return Err(DecodeTraceError::BadMagic { found: magic });
    }
    let name = get_string(&mut r)?;
    let out_channels = r.get_usize_le()?;
    let positions = r.get_usize_le()?;
    let patch_len = r.get_usize_le()?;
    let input_elems = r.get_usize_le()?;
    let weight_elems = r.get_usize_le()?;
    let input_density = r.get_f64_le()?;
    let reduced_dim = r.get_usize_le()?;
    let omap = get_bitmap(&mut r)?;
    check_len("omap length", omap.len(), &[out_channels, positions])?;
    check_len("weight_elems", weight_elems, &[out_channels, patch_len])?;
    finish_decode(&r, body, stored)?;
    Ok(ConvLayerTrace {
        name,
        out_channels,
        positions,
        patch_len,
        input_elems,
        weight_elems,
        omap,
        input_density,
        reduced_dim,
    })
}

/// Encodes an RNN trace to bytes.
pub fn encode_rnn_trace(t: &RnnLayerTrace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + t.maps.len() / 8);
    buf.extend_from_slice(&RNN_MAGIC.to_le_bytes());
    put_string(&mut buf, &t.name);
    buf.extend_from_slice(&(t.gates as u64).to_le_bytes());
    buf.extend_from_slice(&(t.hidden as u64).to_le_bytes());
    buf.extend_from_slice(&(t.input as u64).to_le_bytes());
    buf.extend_from_slice(&(t.steps as u64).to_le_bytes());
    put_bitmap(&mut buf, &t.maps);
    seal(buf)
}

/// Decodes an RNN trace.
///
/// # Errors
///
/// Returns [`DecodeTraceError`] for truncated input, a wrong magic tag, a
/// name that is not UTF-8, a switching-map length inconsistent with
/// `steps × gates × hidden`, trailing bytes, or a trailing-checksum
/// mismatch.
pub fn decode_rnn_trace(buf: &[u8]) -> Result<RnnLayerTrace, DecodeTraceError> {
    let (body, stored) = split_checksum(buf)?;
    let mut r = Reader::new(body);
    let magic = r.get_u32_le()?;
    if magic != RNN_MAGIC {
        return Err(DecodeTraceError::BadMagic { found: magic });
    }
    let name = get_string(&mut r)?;
    let gates = r.get_usize_le()?;
    let hidden = r.get_usize_le()?;
    let input = r.get_usize_le()?;
    let steps = r.get_usize_le()?;
    let maps = get_bitmap(&mut r)?;
    check_len("maps length", maps.len(), &[steps, gates, hidden])?;
    finish_decode(&r, body, stored)?;
    Ok(RnnLayerTrace {
        name,
        gates,
        hidden,
        input,
        steps,
        maps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::seeded;

    #[test]
    fn conv_roundtrip() {
        let t = ConvLayerTrace::synthetic(
            "conv3",
            64,
            169,
            576,
            32448,
            0.45,
            0.3,
            0.4,
            72,
            &mut seeded(1),
        );
        let blob = encode_conv_trace(&t);
        let back = decode_conv_trace(&blob).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rnn_roundtrip() {
        let t = RnnLayerTrace::synthetic("lstm1", 4, 256, 256, 12, 0.46, &mut seeded(2));
        let blob = encode_rnn_trace(&t);
        let back = decode_rnn_trace(&blob).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn wrong_magic_rejected() {
        let t = RnnLayerTrace::synthetic("x", 3, 8, 8, 2, 0.5, &mut seeded(3));
        let blob = encode_rnn_trace(&t);
        match decode_conv_trace(&blob) {
            Err(DecodeTraceError::BadMagic { found }) => assert_eq!(found, 0x44554552),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let t = ConvLayerTrace::synthetic("c", 8, 9, 16, 64, 0.5, 0.2, 1.0, 8, &mut seeded(4));
        let blob = encode_conv_trace(&t);
        for cut in [0usize, 3, 10, blob.len() - 1] {
            assert!(
                decode_conv_trace(&blob[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn bitmap_sizes() {
        let t = ConvLayerTrace::synthetic("c", 3, 3, 4, 16, 0.5, 0.2, 1.0, 4, &mut seeded(5));
        let blob = encode_conv_trace(&t);
        // 9 map bits → 2 bytes of bitmap payload
        assert!(blob.len() < 128);
        let back = decode_conv_trace(&blob).unwrap();
        assert_eq!(back.omap.len(), 9);
    }

    #[test]
    fn display_impls() {
        let e = DecodeTraceError::Truncated;
        assert!(e.to_string().contains("truncated"));
        let b = DecodeTraceError::BadMagic { found: 0xdead };
        assert!(b.to_string().contains("dead"));
        let i = DecodeTraceError::Inconsistent {
            field: "omap length",
            expected: 12,
            found: 9,
        };
        assert!(i.to_string().contains("omap length"));
        assert!(DecodeTraceError::BadUtf8.to_string().contains("UTF-8"));
    }

    /// Byte offset of the first geometry field: magic + name length prefix
    /// + name bytes.
    fn geometry_offset(name: &str) -> usize {
        4 + 4 + name.len()
    }

    #[test]
    fn conv_geometry_bitmap_mismatch_rejected() {
        // Regression: a blob whose out_channels disagrees with the bitmap
        // used to decode fine and panic later inside run_conv_layer.
        let t = ConvLayerTrace::synthetic("c", 8, 9, 16, 64, 0.5, 0.2, 1.0, 8, &mut seeded(6));
        let mut blob = encode_conv_trace(&t);
        let off = geometry_offset("c");
        blob[off..off + 8].copy_from_slice(&16u64.to_le_bytes()); // out_channels 8 → 16
        match decode_conv_trace(&blob) {
            Err(DecodeTraceError::Inconsistent { field, .. }) => {
                assert_eq!(field, "omap length");
            }
            other => panic!("expected Inconsistent, got {other:?}"),
        }
    }

    #[test]
    fn conv_geometry_overflow_rejected() {
        let t = ConvLayerTrace::synthetic("c", 8, 9, 16, 64, 0.5, 0.2, 1.0, 8, &mut seeded(6));
        let mut blob = encode_conv_trace(&t);
        let off = geometry_offset("c");
        blob[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_conv_trace(&blob),
            Err(DecodeTraceError::Inconsistent { .. })
        ));
    }

    #[test]
    fn rnn_geometry_map_mismatch_rejected() {
        // Regression: steps inflated past the recorded maps used to panic
        // in sensitive_rows with index out of bounds.
        let t = RnnLayerTrace::synthetic("l", 3, 8, 8, 2, 0.5, &mut seeded(7));
        let mut blob = encode_rnn_trace(&t);
        let steps_off = geometry_offset("l") + 3 * 8; // after gates/hidden/input
        blob[steps_off..steps_off + 8].copy_from_slice(&4u64.to_le_bytes()); // steps 2 → 4
        match decode_rnn_trace(&blob) {
            Err(DecodeTraceError::Inconsistent {
                field,
                expected,
                found,
            }) => {
                assert_eq!(field, "maps length");
                assert_eq!(expected, 4 * 3 * 8);
                assert_eq!(found, 2 * 3 * 8);
            }
            other => panic!("expected Inconsistent, got {other:?}"),
        }
    }

    #[test]
    fn flipped_bitmap_bit_fails_checksum() {
        // A single flipped map bit is structurally valid — only the
        // trailing checksum can catch it.
        let t = ConvLayerTrace::synthetic("c", 8, 9, 16, 64, 0.5, 0.2, 1.0, 8, &mut seeded(9));
        let mut blob = encode_conv_trace(&t);
        let bitmap_start = blob.len() - 8 - (8usize * 9).div_ceil(8);
        blob[bitmap_start] ^= 0x04;
        assert!(matches!(
            decode_conv_trace(&blob),
            Err(DecodeTraceError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_checksum_itself_is_rejected() {
        let t = RnnLayerTrace::synthetic("l", 3, 8, 8, 2, 0.5, &mut seeded(10));
        let mut blob = encode_rnn_trace(&t);
        let last = blob.len() - 1;
        blob[last] ^= 0x01;
        assert!(matches!(
            decode_rnn_trace(&blob),
            Err(DecodeTraceError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let t = RnnLayerTrace::synthetic("l", 3, 8, 8, 2, 0.5, &mut seeded(11));
        let mut blob = encode_rnn_trace(&t);
        // Splice junk between body and checksum: structurally the body now
        // has unread bytes.
        let at = blob.len() - 8;
        blob.splice(at..at, [0u8; 4]);
        assert!(matches!(
            decode_rnn_trace(&blob),
            Err(DecodeTraceError::Inconsistent {
                field: "trailing bytes",
                ..
            })
        ));
    }

    #[test]
    fn invalid_utf8_name_rejected() {
        // Regression: get_string silently mangled invalid UTF-8 via
        // from_utf8_lossy, so a corrupted name round-tripped differently.
        let t = ConvLayerTrace::synthetic("cv", 3, 3, 4, 16, 0.5, 0.2, 1.0, 4, &mut seeded(8));
        let mut blob = encode_conv_trace(&t);
        blob[8] = 0xff; // first name byte → invalid UTF-8
        assert_eq!(decode_conv_trace(&blob), Err(DecodeTraceError::BadUtf8));
    }
}
