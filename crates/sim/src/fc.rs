//! Memory-bound fully-connected (FC) layer execution.
//!
//! §VI: "our design can also save memory access of FC and RNN layers."
//! An FC layer at batch size 1 is a single GEMV whose weight matrix is
//! used exactly once — like an RNN gate without the recurrence, it is
//! DRAM-bound, and the switching map lets DUET skip fetching the weight
//! rows of insensitive outputs entirely.

use crate::config::ArchConfig;
use crate::energy::EnergyBreakdown;
use crate::energy::EnergyTable;
use crate::glb::GlbPlan;
use crate::report::LayerPerf;
use crate::speculator::speculate_rnn_gate;
use duet_core::switching::SwitchingMap;

/// Workload of one FC layer at batch size 1.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FcLayerTrace {
    /// Layer name.
    pub name: String,
    /// Input features `d`.
    pub input: usize,
    /// Output features `n`.
    pub output: usize,
    /// Sensitive flag per output row, bit-packed.
    pub omap: SwitchingMap,
    /// Reduced dimension of the approximate module.
    pub reduced_dim: usize,
}

impl FcLayerTrace {
    /// Builds a trace from explicit flags.
    ///
    /// # Panics
    ///
    /// Panics if `omap.len() != output`.
    pub fn new(
        name: impl Into<String>,
        input: usize,
        output: usize,
        omap: SwitchingMap,
        reduced_dim: usize,
    ) -> Self {
        assert_eq!(omap.len(), output, "omap length must equal output count");
        Self {
            name: name.into(),
            input,
            output,
            omap,
            reduced_dim,
        }
    }

    /// Synthesizes a trace with i.i.d. sensitivity.
    pub fn synthetic(
        name: impl Into<String>,
        input: usize,
        output: usize,
        sensitive_fraction: f64,
        reduced_dim: usize,
        rng: &mut duet_tensor::rng::Rng,
    ) -> Self {
        let omap: SwitchingMap = (0..output)
            .map(|_| rng.random::<f64>() < sensitive_fraction)
            .collect();
        Self::new(name, input, output, omap, reduced_dim)
    }

    /// Sensitive output rows.
    pub fn sensitive_rows(&self) -> usize {
        self.omap.sensitive_count()
    }

    /// Weight bytes per row at INT16.
    pub fn row_bytes(&self) -> u64 {
        self.input as u64 * 2
    }
}

/// Result of simulating one FC layer.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FcRunResult {
    /// Standard per-layer report.
    pub perf: LayerPerf,
    /// Weight bytes fetched from DRAM.
    pub weight_bytes_fetched: u64,
}

/// Simulates an FC layer; with `dual == true` only sensitive weight rows
/// are fetched and computed.
pub fn run_fc_layer(
    trace: &FcLayerTrace,
    config: &ArchConfig,
    energy: &EnergyTable,
    dual: bool,
) -> FcRunResult {
    let rows = if dual {
        trace.sensitive_rows() as u64
    } else {
        trace.output as u64
    };
    let row_macs = trace.input as u64;

    let plan = GlbPlan {
        weight_bytes: trace.output as u64 * trace.row_bytes(),
        input_bytes: trace.input as u64 * 2,
        output_bytes: trace.output as u64 * 2,
        speculator_bytes: 64 << 10,
    };
    // FC weights are used once per inference: even when they fit they
    // must be brought on-chip once.
    let fetch_bytes = rows * trace.row_bytes();
    let _ = plan;
    let dram_cycles = fetch_bytes.div_ceil(config.dram_bytes_per_cycle as u64);

    let row_batches = rows.div_ceil(config.pe_rows as u64);
    let compute_cycles = row_batches * row_macs.div_ceil(config.pe_cols as u64);

    let (spec_cycles, spec_energy) = if dual {
        let s = speculate_rnn_gate(trace.output, trace.input, trace.reduced_dim, config, energy);
        // FC speculation needs only the input-side student: halve the
        // RNN-gate estimate (which assumes two students).
        (s.cycles / 2, s.energy.scaled(0.5))
    } else {
        (0, EnergyBreakdown::default())
    };

    // No preceding gate to hide behind at batch 1: the speculation is
    // exposed, but it is tiny next to the weight streaming.
    let latency = dram_cycles.max(compute_cycles) + spec_cycles;

    let executed_macs = rows * row_macs;
    let energy_bd = EnergyBreakdown {
        executor_compute_pj: executed_macs as f64 * energy.mac_int16_pj,
        executor_rf_pj: executed_macs as f64 * energy.rf_16b_pj,
        glb_pj: (executed_macs as f64 / 16.0 + trace.input as f64) * energy.glb_16b_pj,
        noc_pj: fetch_bytes as f64 / 2.0 * energy.noc_16b_pj,
        dram_pj: fetch_bytes as f64 / 2.0 * energy.dram_16b_pj,
        speculator_pj: 0.0,
        control_pj: compute_cycles as f64
            * config.pe_count() as f64
            * energy.control_pj_per_cycle
            * 0.1,
    } + spec_energy;

    let perf = LayerPerf {
        name: trace.name.clone(),
        executor_cycles: compute_cycles,
        speculator_cycles: spec_cycles,
        dram_cycles,
        latency_cycles: latency,
        executed_macs,
        dense_macs: trace.output as u64 * row_macs,
        mac_utilization: if compute_cycles == 0 {
            0.0
        } else {
            executed_macs as f64 / (compute_cycles * config.pe_count() as u64) as f64
        },
        energy: energy_bd,
    };

    FcRunResult {
        perf,
        weight_bytes_fetched: fetch_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::seeded;

    fn trace(frac: f64) -> FcLayerTrace {
        FcLayerTrace::synthetic("fc6", 9216, 4096, frac, 256, &mut seeded(3))
    }

    #[test]
    fn fc_is_memory_bound() {
        let t = trace(0.5);
        let r = run_fc_layer(&t, &ArchConfig::duet(), &EnergyTable::default(), false);
        assert!(
            r.perf.dram_cycles > r.perf.executor_cycles,
            "dram {} vs compute {}",
            r.perf.dram_cycles,
            r.perf.executor_cycles
        );
    }

    #[test]
    fn dual_fetches_only_sensitive_rows() {
        let t = trace(0.4);
        let cfg = ArchConfig::duet();
        let e = EnergyTable::default();
        let base = run_fc_layer(&t, &cfg, &e, false);
        let dual = run_fc_layer(&t, &cfg, &e, true);
        let ratio = dual.weight_bytes_fetched as f64 / base.weight_bytes_fetched as f64;
        assert!((ratio - 0.4).abs() < 0.03, "fetch ratio {ratio}");
        assert!(dual.perf.latency_cycles < base.perf.latency_cycles);
        assert!(dual.perf.energy.dram_pj < base.perf.energy.dram_pj);
    }

    #[test]
    fn all_sensitive_equals_base_fetch() {
        let t = FcLayerTrace::new("fc", 128, 64, SwitchingMap::all_sensitive(64), 32);
        let cfg = ArchConfig::duet();
        let e = EnergyTable::default();
        let base = run_fc_layer(&t, &cfg, &e, false);
        let dual = run_fc_layer(&t, &cfg, &e, true);
        assert_eq!(base.weight_bytes_fetched, dual.weight_bytes_fetched);
    }

    #[test]
    #[should_panic(expected = "omap length")]
    fn bad_omap_length_panics() {
        FcLayerTrace::new("x", 4, 4, SwitchingMap::all_sensitive(3), 2);
    }
}
