//! Memory-bound RNN execution (§IV-B, Fig. 9).
//!
//! The dataflow is element-by-element, layer-by-layer, gate-by-gate.
//! Gate weight matrices exceed the GLB, so every step re-streams weights
//! from DRAM — unless the switching map says a row's output is
//! insensitive, in which case the row is *never fetched*. The Speculator
//! runs one gate ahead (gate-level dual-module pipeline); only the first
//! gate's speculation per step is exposed.
//!
//! Simulation is two-phase: time steps are mutually independent (the
//! gate-pipeline state `prev_gate_latency` resets at every step), so the
//! per-step trace walk fans out over [`duet_tensor::parallel::map_indexed`]
//! and the per-step partials are folded *in step order* on the calling
//! thread. Because each partial is computed by the same code regardless of
//! which worker runs it, and the fold order is fixed, results are bitwise
//! identical across thread counts.

use crate::config::ArchConfig;
use crate::energy::{EnergyBreakdown, EnergyTable};
use crate::glb::GlbPlan;
use crate::report::{LayerPerf, ModelPerf};
use crate::speculator::speculate_rnn_gate;
use crate::trace::RnnLayerTrace;
use duet_tensor::parallel;

/// Detailed latency split for an RNN run — the Fig. 12(d) data.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RnnLatencySplit {
    /// Cycles the DRAM channel is the bottleneck.
    pub memory_cycles: u64,
    /// Cycles on-chip compute is the bottleneck.
    pub compute_cycles: u64,
    /// Exposed speculation cycles.
    pub speculation_cycles: u64,
}

impl RnnLatencySplit {
    /// Total latency.
    pub fn total(&self) -> u64 {
        self.memory_cycles + self.compute_cycles + self.speculation_cycles
    }
}

/// Result of simulating one RNN layer trace.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RnnRunResult {
    /// Standard per-layer report.
    pub perf: LayerPerf,
    /// Memory/compute/speculation latency split.
    pub split: RnnLatencySplit,
    /// Total weight bytes fetched from DRAM.
    pub weight_bytes_fetched: u64,
}

/// Options for an RNN simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RnnOptions {
    /// Dual-module execution (switching maps gate compute and fetches).
    pub dual: bool,
    /// Gate-level dual-module pipelining (§IV-B): speculation for gate
    /// g+1 hides behind gate g's execution. Disabling it is the ablation
    /// where every gate's speculation sits on the critical path.
    pub gate_pipeline: bool,
}

impl RnnOptions {
    /// The BASE single-module design.
    pub fn base() -> Self {
        Self {
            dual: false,
            gate_pipeline: false,
        }
    }

    /// The full DUET design.
    pub fn duet() -> Self {
        Self {
            dual: true,
            gate_pipeline: true,
        }
    }

    /// Dual-module but with speculation serialized before each gate
    /// (the pipeline ablation).
    pub fn duet_unpipelined() -> Self {
        Self {
            dual: true,
            gate_pipeline: false,
        }
    }
}

/// Simulates one recurrent layer. With `dual == false` every row is
/// fetched and computed (the BASE design); with `dual == true` the
/// switching maps in the trace gate both compute and weight fetches.
/// Uses the full gate pipeline; see [`run_rnn_layer_with`] for the
/// ablation knobs.
pub fn run_rnn_layer(
    trace: &RnnLayerTrace,
    config: &ArchConfig,
    energy: &EnergyTable,
    dual: bool,
) -> RnnRunResult {
    run_rnn_layer_with(
        trace,
        config,
        energy,
        RnnOptions {
            dual,
            gate_pipeline: true,
        },
    )
}

/// Simulates one recurrent layer with explicit [`RnnOptions`], using the
/// process-wide thread count ([`parallel::num_threads`]).
pub fn run_rnn_layer_with(
    trace: &RnnLayerTrace,
    config: &ArchConfig,
    energy: &EnergyTable,
    options: RnnOptions,
) -> RnnRunResult {
    run_rnn_layer_with_threads(trace, config, energy, options, parallel::num_threads())
}

/// Per-step simulation partials, reduced in step order by the caller.
struct StepPartial {
    split: RnnLatencySplit,
    executed_macs: u64,
    weight_bytes_fetched: u64,
    energy: EnergyBreakdown,
    spec_cycles: u64,
    executor_cycles: u64,
    dram_cycles: u64,
}

/// Walks the gates of one time step; the only cross-step coupling is the
/// `step == 0` cold-fetch special case, decided from the step index alone.
fn simulate_rnn_step(
    step: usize,
    trace: &RnnLayerTrace,
    config: &ArchConfig,
    energy: &EnergyTable,
    options: RnnOptions,
    streamed: bool,
    k: usize,
) -> StepPartial {
    let dual = options.dual;
    let rows_per_gate = trace.hidden as u64;
    let row_macs = trace.row_macs();
    let row_bytes = trace.row_weight_bytes();

    let mut p = StepPartial {
        split: RnnLatencySplit::default(),
        executed_macs: 0,
        weight_bytes_fetched: 0,
        energy: EnergyBreakdown::default(),
        spec_cycles: 0,
        executor_cycles: 0,
        dram_cycles: 0,
    };

    let mut prev_gate_latency = 0u64;
    for gate in 0..trace.gates {
        let sensitive = if dual {
            trace.sensitive_rows(step, gate) as u64
        } else {
            rows_per_gate
        };

        // DRAM: fetch only sensitive rows (or everything when the
        // matrix would fit — it never does for real LSTM sizes).
        let fetch_bytes = if streamed {
            sensitive * row_bytes
        } else if step == 0 {
            rows_per_gate * row_bytes
        } else {
            0
        };
        p.weight_bytes_fetched += fetch_bytes;
        let dram_cycles = fetch_bytes.div_ceil(config.dram_bytes_per_cycle as u64);

        // Compute: each PE row takes one weight row; the row's dot
        // product spreads over the row's PEs.
        let row_batches = sensitive.div_ceil(config.pe_rows as u64);
        let cycles_per_batch = row_macs.div_ceil(config.pe_cols as u64);
        let compute_cycles = row_batches * cycles_per_batch;
        p.executed_macs += sensitive * row_macs;
        p.executor_cycles += compute_cycles;
        p.dram_cycles += dram_cycles;

        // Speculation for this gate (dual only): hidden behind the
        // previous gate's execution; the step's first gate is exposed.
        let (spec_cycles, spec_energy) = if dual {
            let s = speculate_rnn_gate(trace.hidden, trace.input, k, config, energy);
            (s.cycles, s.energy)
        } else {
            (0, EnergyBreakdown::default())
        };
        p.spec_cycles += spec_cycles;
        let exposed_spec = if options.gate_pipeline {
            spec_cycles.saturating_sub(prev_gate_latency)
        } else {
            spec_cycles
        };

        // Memory and compute overlap (double-buffered row streaming):
        // the slower one dominates the gate.
        let gate_latency = dram_cycles.max(compute_cycles) + exposed_spec;
        if dram_cycles >= compute_cycles {
            p.split.memory_cycles += dram_cycles;
        } else {
            p.split.compute_cycles += compute_cycles;
        }
        p.split.speculation_cycles += exposed_spec;
        prev_gate_latency = gate_latency;

        // Energy.
        p.energy += EnergyBreakdown {
            executor_compute_pj: (sensitive * row_macs) as f64 * energy.mac_int16_pj,
            executor_rf_pj: (sensitive * row_macs) as f64 * 1.0 * energy.rf_16b_pj,
            glb_pj: (sensitive * row_macs) as f64 / 16.0 * energy.glb_16b_pj
                + (trace.input + trace.hidden) as f64 * energy.glb_16b_pj,
            noc_pj: fetch_bytes as f64 / 2.0 * energy.noc_16b_pj,
            dram_pj: fetch_bytes as f64 / 2.0 * energy.dram_16b_pj,
            speculator_pj: 0.0,
            control_pj: compute_cycles as f64
                * config.pe_count() as f64
                * energy.control_pj_per_cycle
                * 0.1,
        } + spec_energy;
    }
    p
}

/// Simulates one recurrent layer with explicit [`RnnOptions`] on an
/// explicit thread count. The result is bitwise identical for any
/// `threads` value: per-step partials are computed independently and
/// folded in step order.
pub fn run_rnn_layer_with_threads(
    trace: &RnnLayerTrace,
    config: &ArchConfig,
    energy: &EnergyTable,
    options: RnnOptions,
    threads: usize,
) -> RnnRunResult {
    let _layer_span = duet_obs::span_lazy("sim.rnn.layer", || trace.name.clone());
    let rows_per_gate = trace.hidden as u64;
    let row_macs = trace.row_macs();
    let row_bytes = trace.row_weight_bytes();

    // Weight matrices never fit: h×(d+h) INT16 per gate.
    let plan = GlbPlan {
        weight_bytes: rows_per_gate * row_bytes,
        input_bytes: (trace.input + trace.hidden) as u64 * 2,
        output_bytes: trace.hidden as u64 * 2,
        speculator_bytes: GlbPlan::speculator_partition_bytes(config),
    };
    let streamed = !plan.fits(config);

    // Reduced dim for speculation: paper-style k = h/8 clamped.
    let k = (trace.hidden / 8).clamp(16, 256);

    // Phase 1 (parallel): independent per-step trace walks.
    let partials = parallel::map_indexed(trace.steps, threads, |step| {
        simulate_rnn_step(step, trace, config, energy, options, streamed, k)
    });

    // Phase 2 (serial): fold partials in step order so float accumulation
    // order — and therefore every bit of the result — is thread-count
    // independent.
    let mut split = RnnLatencySplit::default();
    let mut executed_macs = 0u64;
    let mut weight_bytes_fetched = 0u64;
    let mut energy_total = EnergyBreakdown::default();
    let mut spec_cycles_total = 0u64;
    let mut executor_cycles_total = 0u64;
    let mut dram_cycles_total = 0u64;
    for p in partials {
        split.memory_cycles += p.split.memory_cycles;
        split.compute_cycles += p.split.compute_cycles;
        split.speculation_cycles += p.split.speculation_cycles;
        executed_macs += p.executed_macs;
        weight_bytes_fetched += p.weight_bytes_fetched;
        energy_total += p.energy;
        spec_cycles_total += p.spec_cycles;
        executor_cycles_total += p.executor_cycles;
        dram_cycles_total += p.dram_cycles;
    }

    duet_obs::counter!("sim.rnn.steps_simulated").add(trace.steps as u64);
    duet_obs::counter!("sim.dram.bytes").add(weight_bytes_fetched);
    duet_obs::counter!("sim.spec.exposed_cycles").add(split.speculation_cycles);

    let latency = split.total();
    let dense_macs = (trace.steps * trace.gates) as u64 * rows_per_gate * row_macs;
    let perf = LayerPerf {
        name: trace.name.clone(),
        executor_cycles: executor_cycles_total,
        speculator_cycles: spec_cycles_total,
        dram_cycles: dram_cycles_total,
        latency_cycles: latency,
        executed_macs,
        dense_macs,
        mac_utilization: if executor_cycles_total == 0 {
            0.0
        } else {
            executed_macs as f64 / (executor_cycles_total * config.pe_count() as u64) as f64
        },
        energy: energy_total,
    };

    RnnRunResult {
        perf,
        split,
        weight_bytes_fetched,
    }
}

/// Runs a multi-layer RNN model (sequence of layer traces) and aggregates
/// into a [`ModelPerf`].
pub fn run_rnn(
    model: &str,
    traces: &[RnnLayerTrace],
    config: &ArchConfig,
    energy: &EnergyTable,
    dual: bool,
) -> ModelPerf {
    run_rnn_with_threads(model, traces, config, energy, dual, parallel::num_threads())
}

/// [`run_rnn`] on an explicit thread count (each layer fans its steps out
/// over that many threads; layers run in sequence). Bitwise identical
/// across thread counts.
pub fn run_rnn_with_threads(
    model: &str,
    traces: &[RnnLayerTrace],
    config: &ArchConfig,
    energy: &EnergyTable,
    dual: bool,
    threads: usize,
) -> ModelPerf {
    let options = RnnOptions {
        dual,
        gate_pipeline: true,
    };
    let mut layers = Vec::with_capacity(traces.len());
    let mut total = 0u64;
    for t in traces {
        let r = run_rnn_layer_with_threads(t, config, energy, options, threads);
        total += r.perf.latency_cycles;
        layers.push(r.perf);
    }
    ModelPerf {
        design: if dual { "DUET" } else { "BASE" }.to_string(),
        model: model.to_string(),
        layers,
        total_latency_cycles: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::seeded;

    fn trace(sensitive: f64) -> RnnLayerTrace {
        RnnLayerTrace::synthetic("lstm", 4, 1024, 1024, 20, sensitive, &mut seeded(7))
    }

    #[test]
    fn base_is_memory_bound() {
        let t = trace(0.5);
        let r = run_rnn_layer(&t, &ArchConfig::duet(), &EnergyTable::default(), false);
        assert!(
            r.split.memory_cycles > r.split.compute_cycles,
            "memory {} vs compute {}",
            r.split.memory_cycles,
            r.split.compute_cycles
        );
        assert_eq!(r.split.speculation_cycles, 0);
        assert_eq!(
            r.weight_bytes_fetched,
            20 * 4 * 1024 * (2048 * 2) // steps × gates × rows × row bytes
        );
    }

    #[test]
    fn dual_reduces_weight_fetches_proportionally() {
        let t = trace(0.45);
        let cfg = ArchConfig::duet();
        let et = EnergyTable::default();
        let base = run_rnn_layer(&t, &cfg, &et, false);
        let dual = run_rnn_layer(&t, &cfg, &et, true);
        let ratio = dual.weight_bytes_fetched as f64 / base.weight_bytes_fetched as f64;
        assert!((ratio - 0.45).abs() < 0.05, "fetch ratio {ratio}");
        assert!(dual.perf.latency_cycles < base.perf.latency_cycles);
    }

    #[test]
    fn fig12d_shape_memory_latency_halves() {
        // Paper: off-chip weight access latency 0.65 ms → 0.30 ms at
        // ~46% sensitivity.
        let t = trace(0.46);
        let cfg = ArchConfig::duet();
        let et = EnergyTable::default();
        let base = run_rnn_layer(&t, &cfg, &et, false);
        let dual = run_rnn_layer(&t, &cfg, &et, true);
        let ratio = dual.split.memory_cycles as f64 / base.split.memory_cycles as f64;
        assert!((0.35..0.6).contains(&ratio), "memory ratio {ratio}");
    }

    #[test]
    fn dual_energy_lower_dram_dominated() {
        let t = trace(0.45);
        let cfg = ArchConfig::duet();
        let et = EnergyTable::default();
        let base = run_rnn_layer(&t, &cfg, &et, false);
        let dual = run_rnn_layer(&t, &cfg, &et, true);
        assert!(dual.perf.energy.dram_pj < base.perf.energy.dram_pj * 0.6);
        assert!(dual.perf.energy.total_pj() < base.perf.energy.total_pj());
        // speculator share < 1% of on-chip for RNNs (paper §V-D)
        let frac = dual.perf.energy.speculator_fraction_on_chip();
        assert!(frac < 0.05, "speculator fraction {frac}");
    }

    #[test]
    fn multi_layer_model_aggregates() {
        let ts = vec![trace(0.5), trace(0.4)];
        let m = run_rnn(
            "lstm2",
            &ts,
            &ArchConfig::duet(),
            &EnergyTable::default(),
            true,
        );
        assert_eq!(m.layers.len(), 2);
        assert_eq!(
            m.total_latency_cycles,
            m.layers.iter().map(|l| l.latency_cycles).sum::<u64>()
        );
    }

    #[test]
    fn speculation_mostly_hidden_in_gate_pipeline() {
        let t = trace(0.45);
        let dual = run_rnn_layer(&t, &ArchConfig::duet(), &EnergyTable::default(), true);
        let spec_total = dual.perf.speculator_cycles;
        assert!(
            dual.split.speculation_cycles < spec_total / 2,
            "exposed {} of {}",
            dual.split.speculation_cycles,
            spec_total
        );
    }
}

#[cfg(test)]
mod pipeline_ablation_tests {
    use super::*;
    use duet_tensor::rng::seeded;

    #[test]
    fn unpipelined_speculation_is_slower() {
        let t = RnnLayerTrace::synthetic("l", 4, 1024, 1024, 10, 0.46, &mut seeded(8));
        let cfg = ArchConfig::duet();
        let e = EnergyTable::default();
        let piped = run_rnn_layer_with(&t, &cfg, &e, RnnOptions::duet());
        let serial = run_rnn_layer_with(&t, &cfg, &e, RnnOptions::duet_unpipelined());
        assert!(
            serial.perf.latency_cycles > piped.perf.latency_cycles,
            "serial {} vs piped {}",
            serial.perf.latency_cycles,
            piped.perf.latency_cycles
        );
        // same work, only scheduling differs
        assert_eq!(serial.perf.executed_macs, piped.perf.executed_macs);
        assert_eq!(serial.weight_bytes_fetched, piped.weight_bytes_fetched);
    }

    #[test]
    fn options_constructors() {
        assert!(!RnnOptions::base().dual);
        assert!(RnnOptions::duet().gate_pipeline);
        assert!(!RnnOptions::duet_unpipelined().gate_pipeline);
    }
}
