//! Functional, cycle-tracked model of the Speculator's INT4 systolic
//! array (§III-B step 3).
//!
//! An output-stationary `rows × cols` wavefront array: weights stream in
//! from the left, activations from the top, each cell multiplies INT4
//! operands into an INT32 accumulator. The model advances cell by cell
//! and cycle by cycle, so both the *values* and the *latency* (fill +
//! drain + streaming) are exact — it validates the throughput formula the
//! performance model in [`crate::speculator`] uses.

use duet_tensor::fixed::Int4Tensor;
use duet_tensor::Tensor;

/// Result of one systolic GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct SystolicResult {
    /// Accumulated INT32 outputs, `[m, n]` row-major.
    pub accumulators: Vec<i32>,
    /// Output rows `m`.
    pub m: usize,
    /// Output cols `n`.
    pub n: usize,
    /// Cycles the wavefront took, including fill and drain.
    pub cycles: u64,
    /// INT4 MACs performed.
    pub macs: u64,
    /// Combined scale to dequantize the accumulators.
    pub scale: f32,
}

impl SystolicResult {
    /// Dequantizes the accumulators to `f32`.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.accumulators
                .iter()
                .map(|&a| a as f32 * self.scale)
                .collect(),
            &[self.m, self.n],
        )
    }
}

/// An output-stationary INT4 systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
}

impl SystolicArray {
    /// Creates an array of the given physical size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dims must be positive");
        Self { rows, cols }
    }

    /// Physical rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Physical columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Computes `A[m,k] · B[k,n]` where both operands are INT4 tensors,
    /// tiling the output over the physical array. Each `rows × cols`
    /// output tile is filled by a wavefront that streams the `k`
    /// dimension; tile latency is `k + rows + cols − 1` cycles (fill +
    /// stream + drain), matching the pipelined-systolic formula.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn gemm(&self, a: &Int4Tensor, b: &Int4Tensor) -> SystolicResult {
        assert_eq!(a.shape().rank(), 2, "A must be [m, k]");
        assert_eq!(b.shape().rank(), 2, "B must be [k, n]");
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
        assert_eq!(k, k2, "inner dimension mismatch");

        let ad = a.data();
        let bd = b.data();
        let mut acc = vec![0i32; m * n];
        let mut cycles = 0u64;
        let mut macs = 0u64;

        for tile_r in (0..m).step_by(self.rows) {
            let tr = (m - tile_r).min(self.rows);
            for tile_c in (0..n).step_by(self.cols) {
                let tc = (n - tile_c).min(self.cols);
                // wavefront: cell (i, j) performs its t-th MAC at cycle
                // t + i + j; we simulate the dataflow exactly
                for i in 0..tr {
                    for j in 0..tc {
                        let row = tile_r + i;
                        let col = tile_c + j;
                        let mut cell = 0i32;
                        for t in 0..k {
                            cell += ad[row * k + t] as i32 * bd[t * n + col] as i32;
                            macs += 1;
                        }
                        acc[row * n + col] = cell;
                    }
                }
                cycles += (k + tr + tc - 1) as u64;
            }
        }

        SystolicResult {
            accumulators: acc,
            m,
            n,
            cycles,
            macs,
            scale: a.scale() * b.scale(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::{ops, rng};

    fn int4(t: &Tensor) -> Int4Tensor {
        Int4Tensor::quantize(t)
    }

    #[test]
    fn matches_integer_reference() {
        let mut r = rng::seeded(1);
        let a = rng::normal(&mut r, &[5, 7], 0.0, 1.0);
        let b = rng::normal(&mut r, &[7, 4], 0.0, 1.0);
        let qa = int4(&a);
        let qb = int4(&b);
        let result = SystolicArray::new(16, 32).gemm(&qa, &qb);

        // integer reference
        for i in 0..5 {
            for j in 0..4 {
                let mut acc = 0i32;
                for t in 0..7 {
                    acc += qa.data()[i * 7 + t] as i32 * qb.data()[t * 4 + j] as i32;
                }
                assert_eq!(result.accumulators[i * 4 + j], acc);
            }
        }
        assert_eq!(result.macs, 5 * 7 * 4);
    }

    #[test]
    fn dequantized_tracks_float_gemm() {
        let mut r = rng::seeded(2);
        let a = rng::normal(&mut r, &[8, 16], 0.0, 1.0);
        let b = rng::normal(&mut r, &[16, 8], 0.0, 1.0);
        let result = SystolicArray::new(4, 4).gemm(&int4(&a), &int4(&b));
        let approx = result.dequantize();
        let exact = ops::matmul(&a, &b);
        // INT4 is coarse; demand correlation, not equality
        let err = ops::sub(&approx, &exact).norm_sq() / exact.norm_sq();
        assert!(err < 0.1, "relative error {err}");
    }

    #[test]
    fn single_tile_latency_formula() {
        // one 4×4 tile with k = 10: cycles = 10 + 4 + 4 − 1 = 17
        let mut r = rng::seeded(3);
        let a = int4(&rng::normal(&mut r, &[4, 10], 0.0, 1.0));
        let b = int4(&rng::normal(&mut r, &[10, 4], 0.0, 1.0));
        let result = SystolicArray::new(4, 4).gemm(&a, &b);
        assert_eq!(result.cycles, 17);
    }

    #[test]
    fn tiling_covers_ragged_outputs() {
        let mut r = rng::seeded(4);
        let a = int4(&rng::normal(&mut r, &[5, 6], 0.0, 1.0));
        let b = int4(&rng::normal(&mut r, &[6, 9], 0.0, 1.0));
        let arr = SystolicArray::new(4, 4);
        let result = arr.gemm(&a, &b);
        // tiles: rows {4,1} × cols {4,4,1} = 6 tiles
        // cycles = Σ (6 + tr + tc − 1)
        let expected: u64 = [(4, 4), (4, 4), (4, 1), (1, 4), (1, 4), (1, 1)]
            .iter()
            .map(|&(tr, tc)| (6 + tr + tc - 1) as u64)
            .sum();
        assert_eq!(result.cycles, expected);
        assert_eq!(result.macs, 5 * 6 * 9);
    }

    #[test]
    fn bigger_array_fewer_cycles() {
        let mut r = rng::seeded(5);
        let a = int4(&rng::normal(&mut r, &[32, 64], 0.0, 1.0));
        let b = int4(&rng::normal(&mut r, &[64, 32], 0.0, 1.0));
        let small = SystolicArray::new(8, 8).gemm(&a, &b);
        let large = SystolicArray::new(16, 32).gemm(&a, &b);
        assert!(large.cycles < small.cycles);
        assert_eq!(small.accumulators, large.accumulators); // same values
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = Int4Tensor::quantize(&Tensor::zeros(&[2, 3]));
        let b = Int4Tensor::quantize(&Tensor::zeros(&[4, 2]));
        SystolicArray::new(2, 2).gemm(&a, &b);
    }
}
