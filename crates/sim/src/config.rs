//! Architecture configuration (§III, Fig. 4).

/// Feature toggles for the Executor's computation-skipping machinery —
/// the ablation axes of Fig. 12(a): OS, BOS, IOS, DUET.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExecutorFeatures {
    /// Skip outputs flagged insensitive by the switching map (OS).
    pub output_switching: bool,
    /// Reorder output channels with the Reorder Unit for balanced rows
    /// (the "B" in BOS).
    pub adaptive_mapping: bool,
    /// Skip MACs whose input activation is zero via the IMap tag bits
    /// (the "I" in IOS).
    pub input_skipping: bool,
}

impl ExecutorFeatures {
    /// Dense single-module baseline (BASE): nothing skipped.
    pub fn base() -> Self {
        Self {
            output_switching: false,
            adaptive_mapping: false,
            input_skipping: false,
        }
    }

    /// Output switching only (OS).
    pub fn os() -> Self {
        Self {
            output_switching: true,
            adaptive_mapping: false,
            input_skipping: false,
        }
    }

    /// Balanced output switching (BOS): OS + adaptive mapping.
    pub fn bos() -> Self {
        Self {
            output_switching: true,
            adaptive_mapping: true,
            input_skipping: false,
        }
    }

    /// Integrated input + output switching (IOS), unbalanced.
    pub fn ios() -> Self {
        Self {
            output_switching: true,
            adaptive_mapping: false,
            input_skipping: true,
        }
    }

    /// The full DUET design: IOS + adaptive mapping.
    pub fn duet() -> Self {
        Self {
            output_switching: true,
            adaptive_mapping: true,
            input_skipping: true,
        }
    }

    /// Short label used in reports ("BASE", "OS", "BOS", "IOS", "DUET").
    pub fn label(&self) -> &'static str {
        match (
            self.output_switching,
            self.adaptive_mapping,
            self.input_skipping,
        ) {
            (false, _, false) => "BASE",
            (false, _, true) => "IS",
            (true, false, false) => "OS",
            (true, true, false) => "BOS",
            (true, false, true) => "IOS",
            (true, true, true) => "DUET",
        }
    }
}

/// Speculator sizing (§III-B; swept in Fig. 13(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpeculatorConfig {
    /// Systolic array rows.
    pub systolic_rows: usize,
    /// Systolic array columns.
    pub systolic_cols: usize,
    /// Compute precision in bits (paper default 4; swept in Fig. 13(b)).
    pub precision_bits: u32,
}

impl SpeculatorConfig {
    /// The paper's chosen point: a 16×32 INT4 systolic array.
    pub fn paper_default() -> Self {
        Self {
            systolic_rows: 16,
            systolic_cols: 32,
            precision_bits: 4,
        }
    }

    /// MAC throughput per cycle.
    pub fn macs_per_cycle(&self) -> u64 {
        (self.systolic_rows * self.systolic_cols) as u64
    }
}

/// Top-level DUET architecture configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArchConfig {
    /// Executor PE array rows (one output channel / weight row per row).
    pub pe_rows: usize,
    /// Executor PE array columns.
    pub pe_cols: usize,
    /// Speculator sizing.
    pub speculator: SpeculatorConfig,
    /// Global buffer capacity in bytes (paper: 1 MiB).
    pub glb_bytes: usize,
    /// GLB bandwidth in bytes/cycle (paper: 512 B/cycle).
    pub glb_bytes_per_cycle: usize,
    /// Off-chip DRAM bandwidth in bytes/cycle.
    pub dram_bytes_per_cycle: usize,
    /// Clock frequency in GHz (for cycle → ms conversion).
    pub clock_ghz: f64,
    /// Executor skipping features.
    pub features: ExecutorFeatures,
}

impl ArchConfig {
    /// The paper's DUET configuration: 16×16 Executor, 16×32 INT4
    /// Speculator, 1 MiB GLB at 512 B/cycle, 1 GHz.
    pub fn duet() -> Self {
        Self {
            pe_rows: 16,
            pe_cols: 16,
            speculator: SpeculatorConfig::paper_default(),
            glb_bytes: 1 << 20,
            glb_bytes_per_cycle: 512,
            dram_bytes_per_cycle: 32,
            clock_ghz: 1.0,
            features: ExecutorFeatures::duet(),
        }
    }

    /// Single-module baseline: same Executor, no Speculator benefits.
    pub fn single_module() -> Self {
        Self {
            features: ExecutorFeatures::base(),
            ..Self::duet()
        }
    }

    /// Same architecture with different Executor features.
    pub fn with_features(self, features: ExecutorFeatures) -> Self {
        Self { features, ..self }
    }

    /// Same architecture with a different Speculator size.
    pub fn with_speculator(self, speculator: SpeculatorConfig) -> Self {
        Self { speculator, ..self }
    }

    /// Total Executor PE count.
    pub fn pe_count(&self) -> usize {
        self.pe_rows * self.pe_cols
    }

    /// Converts a cycle count to milliseconds at the configured clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9) * 1e3
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::duet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(ExecutorFeatures::base().label(), "BASE");
        assert_eq!(ExecutorFeatures::os().label(), "OS");
        assert_eq!(ExecutorFeatures::bos().label(), "BOS");
        assert_eq!(ExecutorFeatures::ios().label(), "IOS");
        assert_eq!(ExecutorFeatures::duet().label(), "DUET");
    }

    #[test]
    fn paper_defaults() {
        let c = ArchConfig::duet();
        assert_eq!(c.pe_count(), 256);
        assert_eq!(c.speculator.macs_per_cycle(), 512);
        assert_eq!(c.glb_bytes, 1048576);
    }

    #[test]
    fn cycle_conversion() {
        let c = ArchConfig::duet();
        assert!((c.cycles_to_ms(1_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn with_builders() {
        let c = ArchConfig::duet().with_features(ExecutorFeatures::os());
        assert_eq!(c.features.label(), "OS");
        let s = SpeculatorConfig {
            systolic_rows: 8,
            systolic_cols: 8,
            precision_bits: 4,
        };
        assert_eq!(
            ArchConfig::duet()
                .with_speculator(s)
                .speculator
                .macs_per_cycle(),
            64
        );
    }
}
