//! # duet-sim
//!
//! Cycle-level simulator of the DUET dual-module accelerator (§III–§IV of
//! the paper) and of the comparison designs used in its evaluation.
//!
//! The simulator is organized around the paper's block diagram (Fig. 4):
//!
//! * [`config`] — architecture knobs: 16×16 Executor PE array, 16×32 INT4
//!   Speculator systolic array, 1 MiB GLB at 512 B/cycle, and the
//!   BASE/OS/BOS/IOS/DUET feature ladder,
//! * [`executor`] — the Executor PE array with MAC-instruction-LUT
//!   skipping and step-level imbalance,
//! * [`speculator`] — the Speculator pipeline (quantizer → adder trees →
//!   systolic array → MFU → reorder unit),
//! * [`reorder`] — the bucketed adaptive-mapping Reorder Unit (§IV-A),
//! * [`cnn`] / [`rnn`] — the layer-pipelined CNN dataflow and the
//!   gate-pipelined memory-bound RNN dataflow (both two-phase: parallel
//!   simulate, serial compose),
//! * [`fc`] / [`transformer`] — the memory-bound FC GEMV and the dual
//!   transformer block (six speculated projections per position plus a
//!   dense softmax mixer), driven by real `DualBlockOutput` maps,
//! * [`sweep`] — the design-space-exploration driver fanning a
//!   (config × workload) grid out over `duet_tensor::parallel`,
//! * [`glb`] / [`dram`] / [`noc`] — memory-system components,
//! * [`energy`] / [`area`] — the CACTI-style constant tables behind the
//!   energy breakdowns and Table I,
//! * [`baselines`] — Eyeriss, Cnvlutin, SnaPEA, Predict(+Cnvlutin),
//! * [`trace`] — the workload descriptors that connect `duet-core`'s real
//!   switching maps (or calibrated synthetic ones) to the hardware model.
//!
//! # Example
//!
//! ```
//! use duet_sim::config::ArchConfig;
//! use duet_sim::energy::EnergyTable;
//! use duet_sim::trace::ConvLayerTrace;
//! use duet_sim::cnn::run_cnn;
//! use duet_tensor::rng;
//!
//! let mut r = rng::seeded(1);
//! let trace = ConvLayerTrace::synthetic(
//!     "conv1", 64, 196, 288, 12544, 0.45, 0.3, 0.55, 32, &mut r,
//! );
//! let duet = run_cnn("demo", &[trace.clone()], &ArchConfig::duet(), &EnergyTable::default());
//! let base = run_cnn("demo", &[trace], &ArchConfig::single_module(), &EnergyTable::default());
//! assert!(duet.speedup_over(&base) > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder_tree;
pub mod area;
pub mod baselines;
pub mod cnn;
pub mod config;
pub mod dram;
pub mod energy;
pub mod executor;
pub mod fault;
pub mod fc;
pub mod glb;
pub mod noc;
pub mod pe;
pub mod reorder;
pub mod report;
pub mod rnn;
pub mod speculator;
pub mod sweep;
pub mod systolic;
pub mod trace;
pub mod trace_io;
pub mod transformer;

pub use area::{AreaModel, AreaReport};
pub use config::{ArchConfig, ExecutorFeatures, SpeculatorConfig};
pub use energy::{EnergyBreakdown, EnergyTable};
pub use report::{LayerPerf, ModelPerf};
pub use sweep::{SweepCell, SweepGrid, SweepPoint, SweepWorkload};
pub use trace::{ConvLayerTrace, RnnLayerTrace};
