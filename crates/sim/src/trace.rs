//! Layer workload traces — the interface between the algorithm layer and
//! the cycle-level simulator.
//!
//! A trace captures exactly what the hardware sees: layer geometry plus
//! the dynamic switching/sparsity maps. Traces come from two sources:
//! real dual-module execution (`duet-core` outputs, for layers small
//! enough to run in software) and calibrated synthetic generators (for
//! AlexNet/ResNet-scale layers, with per-channel sensitivity drawn from a
//! heterogeneous distribution — the channel imbalance that motivates
//! adaptive mapping).

use duet_core::switching::SwitchingMap;
use duet_tensor::rng::Rng;

/// Workload of one CONV (or im2col-lowered FF) layer.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConvLayerTrace {
    /// Layer name (e.g. "conv3").
    pub name: String,
    /// Output channels `K`.
    pub out_channels: usize,
    /// Output spatial positions `oh · ow`.
    pub positions: usize,
    /// MACs per output element (`C·R·S`).
    pub patch_len: usize,
    /// Input elements (`C·H·W`), for buffer/DRAM accounting.
    pub input_elems: usize,
    /// Weight elements (`K·C·R·S`).
    pub weight_elems: usize,
    /// Sensitive flag per output element, channel-major
    /// (`out_channels × positions`), bit-packed.
    pub omap: SwitchingMap,
    /// Fraction of non-zero input activations (drives IMap skipping).
    pub input_density: f64,
    /// Reduced dimension `k` of this layer's approximate module.
    pub reduced_dim: usize,
}

impl ConvLayerTrace {
    /// Builds a trace from a real dual-module convolution output.
    #[allow(clippy::too_many_arguments)]
    pub fn from_dual_conv(
        name: impl Into<String>,
        out_channels: usize,
        positions: usize,
        patch_len: usize,
        input_elems: usize,
        omap: &SwitchingMap,
        input_density: f64,
        reduced_dim: usize,
    ) -> Self {
        assert_eq!(omap.len(), out_channels * positions, "omap length mismatch");
        Self {
            name: name.into(),
            out_channels,
            positions,
            patch_len,
            input_elems,
            weight_elems: out_channels * patch_len,
            omap: omap.clone(),
            input_density,
            reduced_dim,
        }
    }

    /// Synthesizes a trace with *heterogeneous per-channel sensitivity*:
    /// most channels draw their sensitive fraction around
    /// `mean_sensitive` with spread `spread`, while a ~10% "hot" minority
    /// is almost fully sensitive (0.85–0.98) — the heavy-tailed channel
    /// selectivity observed in trained CNNs. Elements are then flagged
    /// i.i.d. within each channel. The hot channels are what cap
    /// unbalanced output switching near the paper's 1.2× (Fig. 12(a)):
    /// a random group of PE rows almost always contains one.
    ///
    /// # Panics
    ///
    /// Panics if `mean_sensitive` is outside (0, 1).
    #[allow(clippy::too_many_arguments)]
    pub fn synthetic(
        name: impl Into<String>,
        out_channels: usize,
        positions: usize,
        patch_len: usize,
        input_elems: usize,
        mean_sensitive: f64,
        spread: f64,
        input_density: f64,
        reduced_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            mean_sensitive > 0.0 && mean_sensitive < 1.0,
            "mean_sensitive must be in (0,1)"
        );
        let mut omap = SwitchingMap::empty();
        for _ in 0..out_channels {
            let p = if rng.random::<f64>() < 0.10 {
                rng.random_range(0.85..0.98)
            } else {
                (mean_sensitive + (rng.random::<f64>() * 2.0 - 1.0) * spread).clamp(0.02, 0.80)
            };
            for _ in 0..positions {
                omap.push(rng.random::<f64>() < p);
            }
        }
        Self {
            name: name.into(),
            out_channels,
            positions,
            patch_len,
            input_elems,
            weight_elems: out_channels * patch_len,
            omap,
            input_density,
            reduced_dim,
        }
    }

    /// Whether output element `(channel, position)` is sensitive.
    pub fn is_sensitive(&self, channel: usize, position: usize) -> bool {
        self.omap.is_sensitive(channel * self.positions + position)
    }

    /// Sensitive output count per channel — the Reorder Unit's input.
    pub fn channel_workloads(&self) -> Vec<usize> {
        (0..self.out_channels)
            .map(|c| {
                self.omap
                    .sensitive_count_in(c * self.positions, (c + 1) * self.positions)
            })
            .collect()
    }

    /// Total output elements.
    pub fn outputs(&self) -> usize {
        self.out_channels * self.positions
    }

    /// Total sensitive outputs.
    pub fn sensitive_outputs(&self) -> usize {
        self.omap.sensitive_count()
    }

    /// Dense MAC count of the layer.
    pub fn dense_macs(&self) -> u64 {
        (self.outputs() * self.patch_len) as u64
    }

    /// Output sensitivity fraction.
    pub fn sensitive_fraction(&self) -> f64 {
        self.sensitive_outputs() as f64 / self.outputs() as f64
    }
}

/// Workload of one recurrent layer (all time steps, all gates).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RnnLayerTrace {
    /// Layer name (e.g. "lstm1").
    pub name: String,
    /// Gates per cell (4 for LSTM, 3 for GRU).
    pub gates: usize,
    /// Hidden size `h`.
    pub hidden: usize,
    /// Input size `d`.
    pub input: usize,
    /// Number of time steps simulated.
    pub steps: usize,
    /// Sensitive flag per (step, gate, neuron), flattened
    /// `steps × gates × hidden`, bit-packed.
    pub maps: SwitchingMap,
}

impl RnnLayerTrace {
    /// Synthesizes a trace with i.i.d. per-neuron sensitivity
    /// `sensitive_fraction`.
    ///
    /// # Panics
    ///
    /// Panics if `sensitive_fraction` is outside [0, 1].
    pub fn synthetic(
        name: impl Into<String>,
        gates: usize,
        hidden: usize,
        input: usize,
        steps: usize,
        sensitive_fraction: f64,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&sensitive_fraction),
            "sensitive_fraction must be in [0,1]"
        );
        let maps: SwitchingMap = (0..steps * gates * hidden)
            .map(|_| rng.random::<f64>() < sensitive_fraction)
            .collect();
        Self {
            name: name.into(),
            gates,
            hidden,
            input,
            steps,
            maps,
        }
    }

    /// Builds from per-step gate maps recorded by a real dual-module RNN.
    pub fn from_step_maps(
        name: impl Into<String>,
        input: usize,
        step_maps: &[Vec<SwitchingMap>],
    ) -> Self {
        assert!(!step_maps.is_empty(), "need at least one step");
        let gates = step_maps[0].len();
        let hidden = step_maps[0][0].len();
        let mut maps = SwitchingMap::empty();
        for step in step_maps {
            assert_eq!(step.len(), gates, "inconsistent gate count");
            for m in step {
                assert_eq!(m.len(), hidden, "inconsistent hidden size");
                maps.extend_from_map(m);
            }
        }
        Self {
            name: name.into(),
            gates,
            hidden,
            input,
            steps: step_maps.len(),
            maps,
        }
    }

    /// Sensitive rows of one (step, gate).
    pub fn sensitive_rows(&self, step: usize, gate: usize) -> usize {
        let base = (step * self.gates + gate) * self.hidden;
        self.maps.sensitive_count_in(base, base + self.hidden)
    }

    /// MACs per weight row (`d + h`: both matrices).
    pub fn row_macs(&self) -> u64 {
        (self.input + self.hidden) as u64
    }

    /// Weight bytes per row at 16-bit.
    pub fn row_weight_bytes(&self) -> u64 {
        self.row_macs() * 2
    }

    /// Total weight bytes of the layer (all gates, both matrices).
    pub fn total_weight_bytes(&self) -> u64 {
        (self.gates * self.hidden) as u64 * self.row_weight_bytes()
    }

    /// Overall sensitive fraction.
    pub fn sensitive_fraction(&self) -> f64 {
        self.maps.sensitive_count() as f64 / self.maps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::seeded;

    #[test]
    fn synthetic_conv_trace_statistics() {
        let mut r = seeded(1);
        let t = ConvLayerTrace::synthetic("c1", 64, 196, 576, 50176, 0.4, 0.2, 0.6, 32, &mut r);
        assert_eq!(t.outputs(), 64 * 196);
        let frac = t.sensitive_fraction();
        assert!((frac - 0.4).abs() < 0.08, "fraction {frac}");
        // heterogeneity: channel workloads should vary noticeably
        let w = t.channel_workloads();
        let min = *w.iter().min().unwrap();
        let max = *w.iter().max().unwrap();
        assert!(max > min + 10, "workloads too uniform: {min}..{max}");
    }

    #[test]
    fn channel_workloads_sum() {
        let mut r = seeded(2);
        let t = ConvLayerTrace::synthetic("c", 8, 10, 9, 100, 0.5, 0.3, 1.0, 4, &mut r);
        let sum: usize = t.channel_workloads().iter().sum();
        assert_eq!(sum, t.sensitive_outputs());
    }

    #[test]
    fn from_dual_conv_roundtrip() {
        let m = SwitchingMap::from_flags(vec![true, false, true, true, false, false]);
        let t = ConvLayerTrace::from_dual_conv("x", 2, 3, 5, 20, &m, 0.8, 4);
        assert!(t.is_sensitive(0, 0));
        assert!(!t.is_sensitive(0, 1));
        assert!(t.is_sensitive(1, 0));
        assert_eq!(t.sensitive_outputs(), 3);
        assert_eq!(t.dense_macs(), 30);
    }

    #[test]
    fn rnn_trace_counts() {
        let mut r = seeded(3);
        let t = RnnLayerTrace::synthetic("l", 4, 100, 100, 10, 0.3, &mut r);
        assert_eq!(t.maps.len(), 4000);
        assert!((t.sensitive_fraction() - 0.3).abs() < 0.05);
        assert_eq!(t.row_macs(), 200);
        assert_eq!(t.total_weight_bytes(), 400 * 400);
        let s = t.sensitive_rows(0, 0);
        assert!(s <= 100);
    }

    #[test]
    fn rnn_trace_from_step_maps() {
        let step = vec![
            SwitchingMap::from_flags(vec![true, false]),
            SwitchingMap::from_flags(vec![false, false]),
        ];
        let t = RnnLayerTrace::from_step_maps("g", 3, &[step.clone(), step]);
        assert_eq!(t.gates, 2);
        assert_eq!(t.hidden, 2);
        assert_eq!(t.steps, 2);
        assert_eq!(t.sensitive_rows(0, 0), 1);
        assert_eq!(t.sensitive_rows(1, 1), 0);
    }
}
