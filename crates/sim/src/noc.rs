//! Network-on-chip model (§III-A): Y-bus feeding 17 X-buses (16 Executor
//! rows + 1 Speculator) with `(row, col)` multicast IDs.
//!
//! The NoC's performance is bandwidth-provisioned to match the GLB
//! (512 B/cycle), so it never throttles; what matters is the *energy* of
//! word deliveries, which depends on how many X-buses a multicast
//! activates (unmatched buses are de-activated to save energy).

use crate::energy::EnergyTable;

/// One multicast delivery on the NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Multicast {
    /// 16-bit words delivered.
    pub words: u64,
    /// Destination X-buses activated (1..=17).
    pub dest_buses: usize,
}

impl Multicast {
    /// Creates a multicast of `words` to `dest_buses` buses.
    ///
    /// # Panics
    ///
    /// Panics if `dest_buses` is 0 or exceeds 17.
    pub fn new(words: u64, dest_buses: usize) -> Self {
        assert!(
            (1..=17).contains(&dest_buses),
            "DUET has 17 X-buses, got {dest_buses}"
        );
        Self { words, dest_buses }
    }

    /// Transport energy: the Y-bus hop plus one hop per activated X-bus.
    /// A unicast (1 bus) costs one noc unit per word; a full broadcast
    /// costs proportionally more but amortizes the shared Y-bus hop.
    pub fn energy_pj(&self, energy: &EnergyTable) -> f64 {
        let per_word = energy.noc_16b_pj * (0.5 + 0.5 * self.dest_buses as f64 / 17.0 * 4.0);
        self.words as f64 * per_word
    }
}

/// Aggregate NoC statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NocStats {
    /// Total words moved.
    pub words: u64,
    /// Total transport energy.
    pub energy_pj: f64,
}

impl NocStats {
    /// Records a multicast and accumulates its energy.
    pub fn deliver(&mut self, m: Multicast, energy: &EnergyTable) {
        self.words += m.words;
        self.energy_pj += m.energy_pj(energy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_costs_more_than_unicast() {
        let e = EnergyTable::default();
        let uni = Multicast::new(100, 1).energy_pj(&e);
        let broad = Multicast::new(100, 17).energy_pj(&e);
        assert!(broad > uni);
        // ...but less than 17 unicasts (shared Y-bus)
        assert!(broad < uni * 17.0);
    }

    #[test]
    fn stats_accumulate() {
        let e = EnergyTable::default();
        let mut s = NocStats::default();
        s.deliver(Multicast::new(10, 4), &e);
        s.deliver(Multicast::new(5, 1), &e);
        assert_eq!(s.words, 15);
        assert!(s.energy_pj > 0.0);
    }

    #[test]
    #[should_panic(expected = "17 X-buses")]
    fn too_many_buses_panics() {
        Multicast::new(1, 18);
    }
}
