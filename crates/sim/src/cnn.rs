//! Full-model CNN execution on DUET (§IV-A).
//!
//! Layer pipeline (Fig. 7): while the Executor computes layer *L*, the
//! Speculator consumes L's freshly produced output tiles to generate
//! layer *L+1*'s switching maps (and, under adaptive mapping, its channel
//! order). Only the very first layer's speculation is exposed.
//!
//! Simulation is two-phase: the expensive per-layer work (Reorder Unit,
//! Executor trace walk, Speculator model) has no cross-layer state, so it
//! fans out over [`duet_tensor::parallel::map_indexed`]; a cheap serial
//! composition pass then applies the layer-pipeline recurrence
//! (`exposed_spec = spec.saturating_sub(prev_exec_latency)`) over the
//! precomputed per-layer results in layer order. The composition is the
//! only place cross-layer state exists, so results are bitwise identical
//! across thread counts.

use crate::config::ArchConfig;
use crate::energy::{EnergyBreakdown, EnergyTable};
use crate::executor::{natural_order, run_conv_layer, ExecutorLayerResult};
use crate::reorder::ReorderUnit;
use crate::report::{LayerPerf, ModelPerf};
use crate::speculator::speculate_conv_layer;
use crate::trace::ConvLayerTrace;
use duet_tensor::parallel;

/// Phase-1 output for one layer: everything that does not depend on the
/// neighbouring layers.
struct LayerSim {
    exec: ExecutorLayerResult,
    dram_cycles: u64,
    exec_latency: u64,
    spec_cycles: u64,
    spec_energy: EnergyBreakdown,
}

fn simulate_layer(trace: &ConvLayerTrace, config: &ArchConfig, energy: &EnergyTable) -> LayerSim {
    let _layer_span = duet_obs::span_lazy("sim.cnn.layer", || trace.name.clone());
    // Channel order: Reorder Unit output under adaptive mapping.
    let order = if config.features.adaptive_mapping {
        ReorderUnit::new(config.pe_rows)
            .reorder(&trace.channel_workloads(), trace.outputs())
            .order
    } else {
        natural_order(trace)
    };

    let exec = run_conv_layer(trace, &order, config, energy);
    let dram_cycles = exec.dram_bytes.div_ceil(config.dram_bytes_per_cycle as u64);
    let exec_latency = exec.latency_cycles(dram_cycles);

    let (spec_cycles, spec_energy) = if config.features.output_switching {
        let s = speculate_conv_layer(trace, config, energy);
        (s.cycles, s.energy)
    } else {
        (0, Default::default())
    };

    LayerSim {
        exec,
        dram_cycles,
        exec_latency,
        spec_cycles,
        spec_energy,
    }
}

/// Runs a CNN (sequence of CONV-layer traces) through the configured
/// design and returns the per-layer and end-to-end results, using the
/// process-wide thread count ([`parallel::num_threads`]).
///
/// The Executor features in `config.features` select BASE / OS / BOS /
/// IOS / DUET behaviour; designs with `output_switching` off never touch
/// the Speculator.
pub fn run_cnn(
    model: &str,
    traces: &[ConvLayerTrace],
    config: &ArchConfig,
    energy: &EnergyTable,
) -> ModelPerf {
    run_cnn_with_threads(model, traces, config, energy, parallel::num_threads())
}

/// [`run_cnn`] on an explicit thread count. Bitwise identical across
/// thread counts: layers simulate independently in phase 1 and the serial
/// phase 2 walks them in layer order.
pub fn run_cnn_with_threads(
    model: &str,
    traces: &[ConvLayerTrace],
    config: &ArchConfig,
    energy: &EnergyTable,
    threads: usize,
) -> ModelPerf {
    // Phase 1 (parallel): per-layer reorder + execution + speculation.
    let sims = parallel::map_indexed(traces.len(), threads, |i| {
        simulate_layer(&traces[i], config, energy)
    });

    // Phase 2 (serial): apply the speculation-hiding recurrence — this
    // layer's speculation hides under the previous layer's execution; any
    // excess is exposed.
    let _compose_span = duet_obs::span("sim.cnn.compose");
    duet_obs::counter!("sim.cnn.layers_simulated").add(traces.len() as u64);
    let mut layers = Vec::with_capacity(traces.len());
    let mut total_latency = 0u64;
    let mut prev_exec_latency = 0u64;
    for (trace, sim) in traces.iter().zip(sims) {
        let exposed_spec = sim.spec_cycles.saturating_sub(prev_exec_latency);
        let layer_latency = sim.exec_latency + exposed_spec;
        total_latency += layer_latency;
        prev_exec_latency = sim.exec_latency;
        duet_obs::counter!("sim.dram.bytes").add(sim.exec.dram_bytes);
        duet_obs::counter!("sim.spec.exposed_cycles").add(exposed_spec);

        let mut e = sim.exec.energy;
        e += sim.spec_energy;
        layers.push(LayerPerf {
            name: trace.name.clone(),
            executor_cycles: sim.exec.compute_cycles,
            speculator_cycles: sim.spec_cycles,
            dram_cycles: sim.dram_cycles,
            latency_cycles: layer_latency,
            executed_macs: sim.exec.executed_macs,
            dense_macs: sim.exec.dense_macs,
            mac_utilization: sim.exec.mac_utilization(config),
            energy: e,
        });
    }

    ModelPerf {
        design: config.features.label().to_string(),
        model: model.to_string(),
        layers,
        total_latency_cycles: total_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutorFeatures;
    use duet_tensor::rng::seeded;

    fn traces() -> Vec<ConvLayerTrace> {
        let mut r = seeded(42);
        (0..4)
            .map(|i| {
                ConvLayerTrace::synthetic(
                    format!("conv{}", i + 1),
                    64,
                    196,
                    288,
                    64 * 196,
                    0.45,
                    0.3,
                    0.55,
                    32,
                    &mut r,
                )
            })
            .collect()
    }

    fn run(features: ExecutorFeatures) -> ModelPerf {
        let cfg = ArchConfig::duet().with_features(features);
        run_cnn("test", &traces(), &cfg, &EnergyTable::default())
    }

    #[test]
    fn fig12a_speedup_ordering_holds() {
        // BASE < OS < BOS and OS < IOS < DUET — the staircase of
        // Fig. 12(a).
        let base = run(ExecutorFeatures::base());
        let os = run(ExecutorFeatures::os());
        let bos = run(ExecutorFeatures::bos());
        let ios = run(ExecutorFeatures::ios());
        let duet = run(ExecutorFeatures::duet());

        let s = |p: &ModelPerf| base.total_latency_cycles as f64 / p.total_latency_cycles as f64;
        let (s_os, s_bos, s_ios, s_duet) = (s(&os), s(&bos), s(&ios), s(&duet));
        assert!(s_os > 1.05, "OS speedup {s_os}");
        assert!(s_bos > s_os, "BOS {s_bos} vs OS {s_os}");
        assert!(s_ios > s_os, "IOS {s_ios} vs OS {s_os}");
        assert!(s_duet > s_bos, "DUET {s_duet} vs BOS {s_bos}");
        assert!(s_duet > s_ios, "DUET {s_duet} vs IOS {s_ios}");
    }

    #[test]
    fn utilization_ordering_matches_fig12b() {
        let os = run(ExecutorFeatures::os());
        let bos = run(ExecutorFeatures::bos());
        let ios = run(ExecutorFeatures::ios());
        let duet = run(ExecutorFeatures::duet());
        // adaptive mapping raises utilization in both regimes
        assert!(bos.avg_mac_utilization() > os.avg_mac_utilization());
        assert!(duet.avg_mac_utilization() > ios.avg_mac_utilization());
        // input skipping lowers utilization (fewer MACs, similar stalls)
        assert!(ios.avg_mac_utilization() < os.avg_mac_utilization());
    }

    #[test]
    fn duet_saves_energy_over_base() {
        let base = run(ExecutorFeatures::base());
        let duet = run(ExecutorFeatures::duet());
        let eff = duet.energy_efficiency_over(&base);
        assert!(eff > 1.2, "energy efficiency {eff}");
    }

    #[test]
    fn speculator_energy_share_is_small() {
        let duet = run(ExecutorFeatures::duet());
        let frac = duet.total_energy().speculator_fraction_on_chip();
        assert!(frac > 0.005 && frac < 0.15, "speculator share {frac}");
    }

    #[test]
    fn speculation_mostly_hidden() {
        let duet = run(ExecutorFeatures::duet());
        let spec_total: u64 = duet.layers.iter().map(|l| l.speculator_cycles).sum();
        let exposed: u64 = duet.total_latency_cycles
            - duet
                .layers
                .iter()
                .map(|l| l.executor_cycles.max(l.dram_cycles).min(l.latency_cycles))
                .sum::<u64>();
        assert!(
            exposed < spec_total / 2,
            "exposed {exposed} vs total speculation {spec_total}"
        );
    }

    #[test]
    fn base_has_no_speculator() {
        let base = run(ExecutorFeatures::base());
        assert!(base.layers.iter().all(|l| l.speculator_cycles == 0));
        assert_eq!(base.total_energy().speculator_pj, 0.0);
    }
}
