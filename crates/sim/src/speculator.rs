//! Cycle-level model of the Speculator (§III-B, Fig. 5).
//!
//! The Speculator pipeline: Quantizer (INT16→INT4 truncation) → Alignment
//! Units + Adder Trees (ternary projection) → INT4 systolic array (QDR
//! GEMM) → MFU (activation + threshold compare) → switching maps (+
//! Reorder Unit for CNNs, Dequantizer for RNN approximate results).

use crate::config::{ArchConfig, SpeculatorConfig};
use crate::energy::{EnergyBreakdown, EnergyTable};
use crate::reorder::ReorderUnit;
use crate::trace::ConvLayerTrace;

/// Result of one Speculator pass over a layer.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpeculatorResult {
    /// Total Speculator cycles (pipelined stages, slowest stage dominates;
    /// includes the Reorder Unit when adaptive mapping is on).
    pub cycles: u64,
    /// INT4 MACs performed by the systolic array.
    pub macs: u64,
    /// Adder-tree additions performed for dimension reduction.
    pub adds: u64,
    /// Energy attributed to the Speculator.
    pub energy: EnergyBreakdown,
}

/// Per-cycle throughput of the dimension-reduction adder trees, in
/// additions (wide carry-save trees operating in pipeline).
const ADDER_TREE_ADDS_PER_CYCLE: u64 = 512;

/// MFU activations evaluated per cycle.
const MFU_OUTPUTS_PER_CYCLE: u64 = 16;

/// Simulates speculation for a CONV layer: producing approximate results
/// and the switching map for **this** trace (run while the previous layer
/// executes).
pub fn speculate_conv_layer(
    trace: &ConvLayerTrace,
    config: &ArchConfig,
    energy: &EnergyTable,
) -> SpeculatorResult {
    let spec = &config.speculator;
    let outputs = trace.outputs() as u64;

    // Quantizer: truncation is a wiring operation; throughput-matched.
    // Dimension reduction: each output position needs k·d/3 adds
    // (projection density 1/3).
    let adds =
        (trace.positions as u64) * (trace.reduced_dim as u64 * trace.patch_len as u64).div_ceil(3);
    let add_cycles = adds.div_ceil(ADDER_TREE_ADDS_PER_CYCLE);

    // Systolic array: K × positions outputs, k MACs each.
    let macs = outputs * trace.reduced_dim as u64;
    let mac_cycles =
        macs.div_ceil(spec.macs_per_cycle()) + (spec.systolic_rows + spec.systolic_cols) as u64; // fill/drain

    // MFU: activation + threshold per output.
    let mfu_cycles = outputs.div_ceil(MFU_OUTPUTS_PER_CYCLE);

    // Reorder Unit (only wired in when adaptive mapping is enabled).
    let reorder_cycles = if config.features.adaptive_mapping {
        ReorderUnit::new(config.pe_rows)
            .reorder(&trace.channel_workloads(), trace.outputs())
            .cycles
    } else {
        0
    };

    // The stages stream tile by tile (Fig. 7): the slowest stage
    // dominates, the others hide beneath it; reorder is a short
    // post-pass.
    let cycles = add_cycles.max(mac_cycles).max(mfu_cycles) + reorder_cycles;

    let energy_bd = speculator_energy(spec, macs, adds, outputs, trace, energy);

    SpeculatorResult {
        cycles,
        macs,
        adds,
        energy: energy_bd,
    }
}

/// Simulates speculation for one RNN gate: `hidden` outputs, each needing
/// `k_ih + k_hh` INT4 MACs, plus dimension reduction of the input and
/// hidden vectors.
pub fn speculate_rnn_gate(
    hidden: usize,
    input: usize,
    reduced_dim: usize,
    config: &ArchConfig,
    energy: &EnergyTable,
) -> SpeculatorResult {
    let spec = &config.speculator;
    let outputs = hidden as u64;
    let k = reduced_dim as u64;

    let adds = (k * input as u64).div_ceil(3) + (k * hidden as u64).div_ceil(3);
    let add_cycles = adds.div_ceil(ADDER_TREE_ADDS_PER_CYCLE);

    let macs = outputs * 2 * k; // input-side + hidden-side students
    let mac_cycles =
        macs.div_ceil(spec.macs_per_cycle()) + (spec.systolic_rows + spec.systolic_cols) as u64;

    let mfu_cycles = outputs.div_ceil(MFU_OUTPUTS_PER_CYCLE);
    // Dequantizer: RNN approximate results are written back (§III-B
    // step 4); same throughput as the MFU.
    let deq_cycles = outputs.div_ceil(MFU_OUTPUTS_PER_CYCLE);

    let cycles = add_cycles.max(mac_cycles).max(mfu_cycles) + deq_cycles;

    // Energy: QDR weights for both students + map/result writes.
    let qdr_weight_words = (outputs * 2 * k).div_ceil(4); // INT4 packed into 16b words
    let glb_words = qdr_weight_words + outputs.div_ceil(16) + outputs; // weights + map + results
    let energy_bd = EnergyBreakdown {
        speculator_pj: macs as f64 * energy.mac_int4_pj
            + adds as f64 * energy.add_int4_pj
            + glb_words as f64 * energy.glb_16b_pj * 0.25, // small QDR buffers
        glb_pj: glb_words as f64 * energy.glb_16b_pj,
        ..Default::default()
    };

    SpeculatorResult {
        cycles,
        macs,
        adds,
        energy: energy_bd,
    }
}

fn speculator_energy(
    _spec: &SpeculatorConfig,
    macs: u64,
    adds: u64,
    outputs: u64,
    trace: &ConvLayerTrace,
    energy: &EnergyTable,
) -> EnergyBreakdown {
    // QDR weights (INT4 packed 4-per-word) + input activations read, maps
    // written.
    let qdr_weight_words = ((trace.out_channels * trace.reduced_dim) as u64).div_ceil(4);
    let act_words = trace.positions as u64 * trace.patch_len as u64 / 4; // INT4 reads
    let map_words = outputs.div_ceil(16);
    let glb_words = qdr_weight_words + map_words;
    EnergyBreakdown {
        speculator_pj: macs as f64 * energy.mac_int4_pj
            + adds as f64 * energy.add_int4_pj
            + act_words as f64 * energy.rf_16b_pj * 0.25 // activation buffer (small)
            + outputs as f64 * 0.01, // MFU
        glb_pj: glb_words as f64 * energy.glb_16b_pj,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::seeded;

    fn trace() -> ConvLayerTrace {
        ConvLayerTrace::synthetic("t", 64, 196, 576, 25088, 0.45, 0.3, 0.6, 32, &mut seeded(5))
    }

    #[test]
    fn speculation_is_cheaper_than_execution() {
        let t = trace();
        let cfg = ArchConfig::duet();
        let et = EnergyTable::default();
        let spec = speculate_conv_layer(&t, &cfg, &et);
        let exec =
            crate::executor::run_conv_layer(&t, &crate::executor::natural_order(&t), &cfg, &et);
        assert!(
            spec.cycles < exec.compute_cycles,
            "speculator {} must hide under executor {}",
            spec.cycles,
            exec.compute_cycles
        );
        assert!(spec.energy.speculator_pj < exec.energy.executor_compute_pj);
    }

    #[test]
    fn smaller_systolic_array_is_slower() {
        let t = trace();
        let et = EnergyTable::default();
        let big = speculate_conv_layer(&t, &ArchConfig::duet(), &et);
        let mut small_cfg = ArchConfig::duet();
        small_cfg.speculator.systolic_rows = 8;
        small_cfg.speculator.systolic_cols = 8;
        let small = speculate_conv_layer(&t, &small_cfg, &et);
        assert!(small.cycles > big.cycles);
        assert_eq!(small.macs, big.macs); // same work, lower throughput
    }

    #[test]
    fn adaptive_mapping_adds_reorder_cycles() {
        let t = trace();
        let et = EnergyTable::default();
        let with = speculate_conv_layer(&t, &ArchConfig::duet(), &et);
        let without = speculate_conv_layer(
            &t,
            &ArchConfig::duet().with_features(crate::config::ExecutorFeatures::os()),
            &et,
        );
        assert!(with.cycles > without.cycles);
    }

    #[test]
    fn rnn_gate_speculation_counts() {
        let cfg = ArchConfig::duet();
        let et = EnergyTable::default();
        let r = speculate_rnn_gate(1024, 1024, 128, &cfg, &et);
        assert_eq!(r.macs, 1024 * 2 * 128);
        assert!(r.cycles > 0);
        assert!(r.energy.speculator_pj > 0.0);
    }

    #[test]
    fn rnn_gate_scales_with_reduced_dim() {
        let cfg = ArchConfig::duet();
        let et = EnergyTable::default();
        let small = speculate_rnn_gate(512, 512, 32, &cfg, &et);
        let large = speculate_rnn_gate(512, 512, 128, &cfg, &et);
        assert!(large.macs > small.macs);
        assert!(large.cycles >= small.cycles);
    }
}
