//! Functional model of one Executor PE (Fig. 6).
//!
//! A PE holds a **MAC Instruction LUT**: micro-instructions carrying the
//! input-activation (IA), weight (W), and output-activation (OA) indices
//! of each multiply-accumulate, plus a tag bit. "The µinst's indices only
//! need to be generated once at the beginning of layer configuration,
//! and remain unchanged and shared by all the PEs throughout the
//! execution of the whole layer. The dynamic switching maps will be used
//! to configure the tag bits" — instructions whose tag is cleared are
//! skipped for free.
//!
//! This module is the *functional* (value-computing) companion to the
//! performance model in [`crate::executor`]: it executes a tile
//! bit-for-bit and is tested against a dense reference, demonstrating
//! that tag-bit skipping is exact.

use duet_tensor::Tensor;

/// One MAC micro-instruction: relative indices into the PE's tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MacInstruction {
    /// Input-activation index within the input tile.
    pub ia: u16,
    /// Weight index within the filter tile.
    pub w: u16,
    /// Output-activation index within the output tile.
    pub oa: u16,
    /// Tag bit: execute when set, skip for free when cleared.
    pub tag: bool,
}

/// Tile geometry a PE is configured with: a 2-D sliding window over a
/// `[ih, iw]` input tile with an `[kh, kw]` filter producing a
/// `[1, ow]` output strip (the Fig. 6 example shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TileShape {
    /// Input tile height.
    pub ih: usize,
    /// Input tile width.
    pub iw: usize,
    /// Filter height.
    pub kh: usize,
    /// Filter width.
    pub kw: usize,
}

impl TileShape {
    /// Output strip width.
    pub fn ow(&self) -> usize {
        self.iw - self.kw + 1
    }

    /// Micro-instruction count for the full tile (`kh·kw` per output).
    pub fn instruction_count(&self) -> usize {
        self.ow() * self.kh * self.kw
    }
}

/// A PE's instruction store plus tag configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MacInstructionLut {
    shape: TileShape,
    instructions: Vec<MacInstruction>,
}

impl MacInstructionLut {
    /// Generates the static µinst sequence for a tile shape — done once
    /// per layer configuration, with every tag initially set.
    ///
    /// # Panics
    ///
    /// Panics if the filter does not fit in the tile.
    pub fn generate(shape: TileShape) -> Self {
        assert!(
            shape.ih >= shape.kh && shape.iw >= shape.kw,
            "filter larger than tile"
        );
        let mut instructions = Vec::with_capacity(shape.instruction_count());
        for ox in 0..shape.ow() {
            for ky in 0..shape.kh {
                for kx in 0..shape.kw {
                    instructions.push(MacInstruction {
                        ia: (ky * shape.iw + ox + kx) as u16,
                        w: (ky * shape.kw + kx) as u16,
                        oa: ox as u16,
                        tag: true,
                    });
                }
            }
        }
        Self {
            shape,
            instructions,
        }
    }

    /// The tile shape.
    pub fn shape(&self) -> &TileShape {
        &self.shape
    }

    /// The instruction sequence.
    pub fn instructions(&self) -> &[MacInstruction] {
        &self.instructions
    }

    /// Configures tag bits from the output map (OMap: which outputs the
    /// Executor must compute) and the input map (IMap: which inputs are
    /// non-zero). An instruction survives only if both its output is
    /// sensitive and its input is effectual — the "simple Boolean logic"
    /// of Fig. 6.
    ///
    /// # Panics
    ///
    /// Panics if the map lengths disagree with the tile shape.
    pub fn configure_tags(&mut self, omap: &[bool], imap: Option<&[bool]>) {
        assert_eq!(omap.len(), self.shape.ow(), "OMap length mismatch");
        if let Some(im) = imap {
            assert_eq!(
                im.len(),
                self.shape.ih * self.shape.iw,
                "IMap length mismatch"
            );
        }
        for inst in &mut self.instructions {
            let out_ok = omap[inst.oa as usize];
            let in_ok = imap.is_none_or(|im| im[inst.ia as usize]);
            inst.tag = out_ok && in_ok;
        }
    }

    /// Count of instructions that will execute (tag set).
    pub fn active_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.tag).count()
    }

    /// Executes the tile functionally: `psum[oa] += input[ia] * weight[w]`
    /// for every tagged instruction. Returns the output strip and the
    /// number of MACs executed.
    ///
    /// # Panics
    ///
    /// Panics if tensor sizes disagree with the tile shape.
    pub fn execute(&self, input: &Tensor, weights: &Tensor) -> (Tensor, usize) {
        assert_eq!(
            input.len(),
            self.shape.ih * self.shape.iw,
            "input tile size mismatch"
        );
        assert_eq!(
            weights.len(),
            self.shape.kh * self.shape.kw,
            "filter tile size mismatch"
        );
        let mut out = Tensor::zeros(&[self.shape.ow()]);
        let mut macs = 0usize;
        let id = input.data();
        let wd = weights.data();
        let od = out.data_mut();
        for inst in &self.instructions {
            if !inst.tag {
                continue;
            }
            od[inst.oa as usize] += id[inst.ia as usize] * wd[inst.w as usize];
            macs += 1;
        }
        (out, macs)
    }

    /// Dense reference: the same tile computed with every instruction.
    pub fn execute_dense(&self, input: &Tensor, weights: &Tensor) -> Tensor {
        let mut dense = self.clone();
        for inst in &mut dense.instructions {
            inst.tag = true;
        }
        dense.execute(input, weights).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::{self, seeded};

    /// The Fig. 6 example: 3×5 input tile, 3×3 filter, 1×3 output strip,
    /// 27 MAC instructions.
    fn fig6_shape() -> TileShape {
        TileShape {
            ih: 3,
            iw: 5,
            kh: 3,
            kw: 3,
        }
    }

    #[test]
    fn fig6_instruction_count() {
        let lut = MacInstructionLut::generate(fig6_shape());
        assert_eq!(lut.instructions().len(), 27);
        assert_eq!(lut.shape().ow(), 3);
        assert_eq!(lut.active_count(), 27);
    }

    #[test]
    fn fig6_omap_reduces_to_nine() {
        // "the OMap shows that only the first element in the 1×3×1 output
        // tile needs to be computed … leaving only nine necessary MAC
        // operations."
        let mut lut = MacInstructionLut::generate(fig6_shape());
        lut.configure_tags(&[true, false, false], None);
        assert_eq!(lut.active_count(), 9);
    }

    #[test]
    fn fig6_imap_reduces_further() {
        // "since the IMap shows that 2/3 of the input activations are
        // zero, we can further reduce six MAC operations" → 3 remain.
        let mut lut = MacInstructionLut::generate(fig6_shape());
        // output 0 reads input columns 0..3 of each row; zero out 2/3 of
        // the inputs used by it (6 of its 9 reads)
        let mut imap = vec![true; 15];
        for row in 0..3 {
            imap[row * 5] = false; // column 0
            imap[row * 5 + 1] = false; // column 1
        }
        lut.configure_tags(&[true, false, false], Some(&imap));
        assert_eq!(lut.active_count(), 3);
    }

    #[test]
    fn functional_execution_matches_windowed_reference() {
        let mut r = seeded(1);
        let shape = fig6_shape();
        let input = rng::normal(&mut r, &[15], 0.0, 1.0);
        let weights = rng::normal(&mut r, &[9], 0.0, 1.0);
        let lut = MacInstructionLut::generate(shape);
        let (out, macs) = lut.execute(&input, &weights);
        assert_eq!(macs, 27);
        for ox in 0..3 {
            let mut acc = 0.0f32;
            for ky in 0..3 {
                for kx in 0..3 {
                    acc += input.data()[ky * 5 + ox + kx] * weights.data()[ky * 3 + kx];
                }
            }
            assert!((out.data()[ox] - acc).abs() < 1e-4);
        }
    }

    #[test]
    fn tag_skipping_is_exact_for_zero_inputs() {
        // skipping instructions whose input is zero must not change the
        // computed outputs
        let mut r = seeded(2);
        let shape = fig6_shape();
        let mut input = rng::normal(&mut r, &[15], 0.0, 1.0);
        let imap: Vec<bool> = (0..15).map(|i| i % 3 != 0).collect();
        for (i, v) in input.data_mut().iter_mut().enumerate() {
            if !imap[i] {
                *v = 0.0;
            }
        }
        let weights = rng::normal(&mut r, &[9], 0.0, 1.0);

        let dense = MacInstructionLut::generate(shape)
            .execute(&input, &weights)
            .0;
        let mut skipping = MacInstructionLut::generate(shape);
        skipping.configure_tags(&[true, true, true], Some(&imap));
        let (sparse, macs) = skipping.execute(&input, &weights);
        assert!(macs < 27);
        for (a, b) in dense.data().iter().zip(sparse.data()) {
            assert!((a - b).abs() < 1e-6, "skipping changed a value");
        }
    }

    #[test]
    fn skipped_outputs_stay_zero() {
        let mut r = seeded(3);
        let shape = fig6_shape();
        let input = rng::normal(&mut r, &[15], 0.0, 1.0);
        let weights = rng::normal(&mut r, &[9], 0.0, 1.0);
        let mut lut = MacInstructionLut::generate(shape);
        lut.configure_tags(&[false, true, false], None);
        let (out, macs) = lut.execute(&input, &weights);
        assert_eq!(macs, 9);
        assert_eq!(out.data()[0], 0.0);
        assert_ne!(out.data()[1], 0.0);
        assert_eq!(out.data()[2], 0.0);
    }

    #[test]
    fn instructions_are_layer_static() {
        // regenerating the LUT for the same shape yields identical
        // indices — only tags change between tiles
        let a = MacInstructionLut::generate(fig6_shape());
        let mut b = MacInstructionLut::generate(fig6_shape());
        b.configure_tags(&[false, false, true], None);
        for (x, y) in a.instructions().iter().zip(b.instructions()) {
            assert_eq!((x.ia, x.w, x.oa), (y.ia, y.w, y.oa));
        }
    }

    #[test]
    #[should_panic(expected = "OMap length")]
    fn wrong_omap_length_panics() {
        let mut lut = MacInstructionLut::generate(fig6_shape());
        lut.configure_tags(&[true], None);
    }
}
