//! The Speculator's Reorder Unit (§IV-A, Fig. 8): hardware-efficient
//! adaptive mapping.
//!
//! One-bit adder trees sum each output channel's switching indices into a
//! per-channel workload estimate; comparing those sums against preset
//! interval thresholds scatters channel IDs into *buckets*. Draining the
//! buckets from heaviest to lightest yields the new channel computation
//! order, so channels grouped into the same Executor step have comparable
//! workloads.

/// Result of one adaptive-mapping pass.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReorderResult {
    /// Channel IDs in their new computation order.
    pub order: Vec<usize>,
    /// Cycles the Reorder Unit spent (adder trees + bucket writes).
    pub cycles: u64,
}

/// The Reorder Unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReorderUnit {
    /// Number of buckets (the paper sizes this to the PE-row count).
    pub buckets: usize,
    /// Switching-map bits the adder trees consume per cycle.
    pub bits_per_cycle: usize,
}

impl ReorderUnit {
    /// Creates a Reorder Unit with the given bucket count and a default
    /// adder-tree throughput of 256 map bits per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        Self {
            buckets,
            bits_per_cycle: 256,
        }
    }

    /// Reorders channels by bucketed workload (heaviest bucket first).
    ///
    /// Within a bucket, original channel order is preserved (matching the
    /// simple hardware FIFO buckets of Fig. 8). Outputs are still written
    /// back to the GLB in original order, so only the *computation*
    /// sequence changes.
    ///
    /// `map_bits` is the number of switching-map bits summed (for cycle
    /// accounting).
    pub fn reorder(&self, workloads: &[usize], map_bits: usize) -> ReorderResult {
        let n = workloads.len();
        if n == 0 {
            return ReorderResult {
                order: Vec::new(),
                cycles: 0,
            };
        }
        let max = workloads.iter().copied().max().unwrap_or(0);
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.buckets];
        for (ch, &w) in workloads.iter().enumerate() {
            // bucket 0 holds the heaviest channels; interval thresholds
            // partition [0, max] into `buckets` ranges
            let b = if max == 0 {
                self.buckets - 1
            } else {
                let level = (w * self.buckets / (max + 1)).min(self.buckets - 1);
                self.buckets - 1 - level
            };
            buckets[b].push(ch);
        }
        let order: Vec<usize> = buckets.into_iter().flatten().collect();
        // adder trees stream the map bits, bucket writes take one cycle
        // per channel
        let cycles = (map_bits as u64).div_ceil(self.bits_per_cycle as u64) + n as u64;
        ReorderResult { order, cycles }
    }
}

/// Imbalance cost of a channel order: the sum over steps (groups of
/// `rows` consecutive channels in the order) of the *maximum* workload in
/// the group — i.e. the row-level execution time, since a step waits for
/// its slowest row.
pub fn grouped_max_cost(workloads: &[usize], order: &[usize], rows: usize) -> u64 {
    assert!(rows > 0, "rows must be positive");
    order
        .chunks(rows)
        .map(|g| g.iter().map(|&c| workloads[c]).max().unwrap_or(0) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_fig7b() {
        // Workload sums 4, 1, 2, 4 for channels 0..4, two buckets (two PE
        // lines). Expected grouping: {0, 3} heavy, {1, 2} light.
        let unit = ReorderUnit::new(2);
        let r = unit.reorder(&[4, 1, 2, 4], 16);
        assert_eq!(r.order, vec![0, 3, 1, 2]);
    }

    #[test]
    fn reorder_reduces_grouped_max_cost() {
        let workloads = vec![9, 1, 8, 2, 7, 3, 6, 4];
        let natural: Vec<usize> = (0..8).collect();
        let unit = ReorderUnit::new(4);
        let r = unit.reorder(&workloads, 64);
        let before = grouped_max_cost(&workloads, &natural, 2);
        let after = grouped_max_cost(&workloads, &r.order, 2);
        assert!(after < before, "cost {before} -> {after}");
    }

    #[test]
    fn order_is_a_permutation() {
        let workloads = vec![3, 0, 5, 5, 2, 8, 1, 1, 9];
        let r = ReorderUnit::new(3).reorder(&workloads, 100);
        let mut sorted = r.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn all_zero_workloads() {
        let r = ReorderUnit::new(2).reorder(&[0, 0, 0], 12);
        assert_eq!(r.order.len(), 3);
    }

    #[test]
    fn cycles_scale_with_map_bits() {
        let unit = ReorderUnit::new(2);
        let small = unit.reorder(&[1, 2], 256).cycles;
        let large = unit.reorder(&[1, 2], 2560).cycles;
        assert!(large > small);
    }

    #[test]
    fn empty_input() {
        let r = ReorderUnit::new(2).reorder(&[], 0);
        assert!(r.order.is_empty());
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn optimal_for_sorted_pairs() {
        // With enough buckets the order approaches sorted-descending,
        // which is optimal for grouped-max.
        let workloads = vec![10, 1, 10, 1, 10, 1];
        let r = ReorderUnit::new(6).reorder(&workloads, 6);
        let cost = grouped_max_cost(&workloads, &r.order, 2);
        assert_eq!(cost, 10 + 10 + 1, "order {:?}", r.order);
    }
}
