//! Design-space-exploration sweep driver.
//!
//! The Fig. 12/13 sweeps call the cycle-level simulator thousands of
//! times over a (architecture point × workload) grid; each cell is an
//! independent simulation, so the grid fans out over
//! [`duet_tensor::parallel::map_indexed`]. Cells run the simulator
//! serially inside (thread budget 1) to avoid nested fan-out, and the
//! output vector is in row-major grid order (all workloads of point 0,
//! then point 1, …) regardless of the thread count — per-cell results are
//! thread-count invariant by the two-phase construction of
//! [`crate::cnn::run_cnn_with_threads`] /
//! [`crate::rnn::run_rnn_layer_with_threads`], and [`map_indexed`]
//! concatenates range results in index order.
//!
//! [`map_indexed`]: duet_tensor::parallel::map_indexed

use crate::cnn::run_cnn_with_threads;
use crate::config::ArchConfig;
use crate::energy::EnergyTable;
use crate::report::ModelPerf;
use crate::rnn::{run_rnn_layer_with_threads, RnnOptions};
use crate::trace::{ConvLayerTrace, RnnLayerTrace};
use duet_tensor::parallel;

/// One named trace set to simulate at every architecture point.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepWorkload {
    /// A CNN model: sequence of CONV-layer traces.
    Cnn {
        /// Model name carried into the [`ModelPerf`].
        name: String,
        /// Per-layer traces.
        traces: Vec<ConvLayerTrace>,
    },
    /// An RNN model: sequence of recurrent-layer traces plus run options.
    Rnn {
        /// Model name carried into the [`ModelPerf`].
        name: String,
        /// Per-layer traces.
        traces: Vec<RnnLayerTrace>,
        /// Dual-module / pipeline knobs.
        options: RnnOptions,
    },
}

impl SweepWorkload {
    /// The workload's model name.
    pub fn name(&self) -> &str {
        match self {
            SweepWorkload::Cnn { name, .. } => name,
            SweepWorkload::Rnn { name, .. } => name,
        }
    }
}

/// One named architecture point of the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Label identifying the point (e.g. `"16x32"` or `"duet"`).
    pub label: String,
    /// The architecture to simulate.
    pub config: ArchConfig,
}

impl SweepPoint {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, config: ArchConfig) -> Self {
        Self {
            label: label.into(),
            config,
        }
    }
}

/// Result of one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Label of the architecture point that produced this cell.
    pub point: String,
    /// Name of the workload that produced this cell.
    pub workload: String,
    /// The simulation result.
    pub perf: ModelPerf,
}

/// A (architecture point × workload) grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Architecture points (outer/slow grid axis).
    pub points: Vec<SweepPoint>,
    /// Workloads (inner/fast grid axis).
    pub workloads: Vec<SweepWorkload>,
}

impl SweepGrid {
    /// Builds a grid.
    pub fn new(points: Vec<SweepPoint>, workloads: Vec<SweepWorkload>) -> Self {
        Self { points, workloads }
    }

    /// Number of cells (`points × workloads`).
    pub fn cells(&self) -> usize {
        self.points.len() * self.workloads.len()
    }

    /// Runs the grid with the process-wide thread count
    /// ([`parallel::num_threads`]).
    pub fn run(&self, energy: &EnergyTable) -> Vec<SweepCell> {
        self.run_with_threads(energy, parallel::num_threads())
    }

    /// Runs the grid on an explicit thread count. Output is row-major
    /// (point-major, workload-minor) and bitwise identical across thread
    /// counts.
    pub fn run_with_threads(&self, energy: &EnergyTable, threads: usize) -> Vec<SweepCell> {
        let inner = self.workloads.len();
        parallel::map_indexed(self.cells(), threads, |idx| {
            let point = &self.points[idx / inner];
            let workload = &self.workloads[idx % inner];
            let _cell_span = duet_obs::span_lazy("sim.sweep.cell", || {
                format!("{}/{}", point.label, workload.name())
            });
            duet_obs::counter!("sim.sweep.cells").inc();
            // Serial simulation inside a cell: the sweep already owns the
            // thread budget, and nesting scoped fan-outs would
            // oversubscribe the machine without changing any result bits.
            let perf = match workload {
                SweepWorkload::Cnn { name, traces } => {
                    run_cnn_with_threads(name, traces, &point.config, energy, 1)
                }
                SweepWorkload::Rnn {
                    name,
                    traces,
                    options,
                } => run_rnn_model(name, traces, &point.config, energy, *options),
            };
            SweepCell {
                point: point.label.clone(),
                workload: workload.name().to_string(),
                perf,
            }
        })
    }

    /// The cell for (`point`, `workload`) in a [`SweepGrid::run`] result.
    pub fn cell<'a>(
        &self,
        cells: &'a [SweepCell],
        point: &str,
        workload: &str,
    ) -> Option<&'a SweepCell> {
        cells
            .iter()
            .find(|c| c.point == point && c.workload == workload)
    }
}

/// Runs a multi-layer RNN workload serially with explicit options (the
/// sweep-internal analogue of [`crate::rnn::run_rnn`], which hardcodes the
/// gate pipeline on).
fn run_rnn_model(
    model: &str,
    traces: &[RnnLayerTrace],
    config: &ArchConfig,
    energy: &EnergyTable,
    options: RnnOptions,
) -> ModelPerf {
    let mut layers = Vec::with_capacity(traces.len());
    let mut total = 0u64;
    for t in traces {
        let r = run_rnn_layer_with_threads(t, config, energy, options, 1);
        total += r.perf.latency_cycles;
        layers.push(r.perf);
    }
    ModelPerf {
        design: if options.dual { "DUET" } else { "BASE" }.to_string(),
        model: model.to_string(),
        layers,
        total_latency_cycles: total,
    }
}

/// Order-sensitive FNV-1a-style checksum of every cell's
/// `total_latency_cycles` — the quick equality witness the benches use to
/// assert that serial and parallel sweeps computed the same grid.
pub fn latency_checksum(cells: &[SweepCell]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for c in cells {
        h ^= c.perf.total_latency_cycles;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutorFeatures;
    use duet_tensor::rng::seeded;

    fn grid() -> SweepGrid {
        let mut r = seeded(99);
        let conv = (0..3)
            .map(|i| {
                ConvLayerTrace::synthetic(
                    format!("conv{i}"),
                    32,
                    49,
                    144,
                    32 * 49,
                    0.45,
                    0.3,
                    0.55,
                    16,
                    &mut r,
                )
            })
            .collect();
        let rnn = vec![RnnLayerTrace::synthetic(
            "lstm", 4, 128, 128, 6, 0.46, &mut r,
        )];
        SweepGrid::new(
            vec![
                SweepPoint::new("duet", ArchConfig::duet()),
                SweepPoint::new(
                    "base",
                    ArchConfig::duet().with_features(ExecutorFeatures::base()),
                ),
            ],
            vec![
                SweepWorkload::Cnn {
                    name: "cnn".into(),
                    traces: conv,
                },
                SweepWorkload::Rnn {
                    name: "lstm".into(),
                    traces: rnn,
                    options: RnnOptions::duet(),
                },
            ],
        )
    }

    #[test]
    fn grid_order_is_point_major() {
        let g = grid();
        let cells = g.run_with_threads(&EnergyTable::default(), 1);
        assert_eq!(cells.len(), 4);
        let labels: Vec<_> = cells
            .iter()
            .map(|c| (c.point.as_str(), c.workload.as_str()))
            .collect();
        assert_eq!(
            labels,
            [
                ("duet", "cnn"),
                ("duet", "lstm"),
                ("base", "cnn"),
                ("base", "lstm")
            ]
        );
    }

    #[test]
    fn thread_count_does_not_change_cells() {
        let g = grid();
        let e = EnergyTable::default();
        let serial = g.run_with_threads(&e, 1);
        for threads in [2usize, 4, 7] {
            let par = g.run_with_threads(&e, threads);
            assert_eq!(serial, par, "threads={threads}");
        }
        assert_eq!(
            latency_checksum(&serial),
            latency_checksum(&g.run_with_threads(&e, 4))
        );
    }

    #[test]
    fn cell_lookup() {
        let g = grid();
        let cells = g.run_with_threads(&EnergyTable::default(), 2);
        let c = g.cell(&cells, "base", "cnn").expect("cell exists");
        assert_eq!(c.perf.design, "BASE");
        assert!(g.cell(&cells, "nope", "cnn").is_none());
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let g = grid();
        let mut cells = g.run_with_threads(&EnergyTable::default(), 1);
        let a = latency_checksum(&cells);
        cells.swap(0, 2);
        assert_ne!(a, latency_checksum(&cells));
    }
}
