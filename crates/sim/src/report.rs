//! Simulation reports: per-layer and per-model performance/energy.

use crate::config::ArchConfig;
use crate::energy::EnergyBreakdown;

/// Performance and energy of one simulated layer.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayerPerf {
    /// Layer name.
    pub name: String,
    /// Executor compute cycles.
    pub executor_cycles: u64,
    /// Speculator cycles (0 when the design has none).
    pub speculator_cycles: u64,
    /// Cycles spent waiting on DRAM (serialized portion).
    pub dram_cycles: u64,
    /// Effective layer latency in cycles after pipeline overlap.
    pub latency_cycles: u64,
    /// MACs executed.
    pub executed_macs: u64,
    /// Dense-equivalent MACs.
    pub dense_macs: u64,
    /// MAC-array utilization (Fig. 12(b) metric).
    pub mac_utilization: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

/// Whole-model simulation result.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModelPerf {
    /// Design label ("DUET", "BASE", "Eyeriss", …).
    pub design: String,
    /// Model name ("AlexNet", "LSTM-PTB", …).
    pub model: String,
    /// Per-layer results.
    pub layers: Vec<LayerPerf>,
    /// End-to-end latency in cycles (includes pipeline fill).
    pub total_latency_cycles: u64,
}

impl ModelPerf {
    /// Total energy across layers.
    pub fn total_energy(&self) -> EnergyBreakdown {
        self.layers.iter().map(|l| l.energy).sum()
    }

    /// End-to-end latency in milliseconds.
    pub fn latency_ms(&self, config: &ArchConfig) -> f64 {
        config.cycles_to_ms(self.total_latency_cycles)
    }

    /// Speedup of this result relative to a baseline run of the same
    /// model.
    pub fn speedup_over(&self, baseline: &ModelPerf) -> f64 {
        baseline.total_latency_cycles as f64 / self.total_latency_cycles as f64
    }

    /// Energy-efficiency factor relative to a baseline (baseline energy /
    /// this energy; >1 means this design is more efficient).
    pub fn energy_efficiency_over(&self, baseline: &ModelPerf) -> f64 {
        baseline.total_energy().total_pj() / self.total_energy().total_pj()
    }

    /// Energy-delay product in pJ·cycles.
    pub fn edp(&self) -> f64 {
        self.total_energy().total_pj() * self.total_latency_cycles as f64
    }

    /// Average MAC utilization weighted by executor cycles.
    pub fn avg_mac_utilization(&self) -> f64 {
        let total: u64 = self.layers.iter().map(|l| l.executor_cycles).sum();
        if total == 0 {
            return 0.0;
        }
        self.layers
            .iter()
            .map(|l| l.mac_utilization * l.executor_cycles as f64)
            .sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf(lat: u64, e: f64) -> ModelPerf {
        ModelPerf {
            design: "X".into(),
            model: "m".into(),
            layers: vec![LayerPerf {
                name: "l".into(),
                executor_cycles: lat,
                speculator_cycles: 0,
                dram_cycles: 0,
                latency_cycles: lat,
                executed_macs: 10,
                dense_macs: 10,
                mac_utilization: 0.5,
                energy: EnergyBreakdown {
                    executor_compute_pj: e,
                    ..Default::default()
                },
            }],
            total_latency_cycles: lat,
        }
    }

    #[test]
    fn comparisons() {
        let fast = perf(100, 50.0);
        let slow = perf(250, 100.0);
        assert!((fast.speedup_over(&slow) - 2.5).abs() < 1e-9);
        assert!((fast.energy_efficiency_over(&slow) - 2.0).abs() < 1e-9);
        assert!(fast.edp() < slow.edp());
    }

    #[test]
    fn weighted_utilization() {
        let mut p = perf(100, 1.0);
        p.layers.push(LayerPerf {
            executor_cycles: 300,
            mac_utilization: 0.9,
            ..p.layers[0].clone()
        });
        let u = p.avg_mac_utilization();
        assert!((u - (0.5 * 100.0 + 0.9 * 300.0) / 400.0).abs() < 1e-9);
    }

    #[test]
    fn latency_ms_uses_clock() {
        let p = perf(2_000_000, 1.0);
        let cfg = ArchConfig::duet();
        assert!((p.latency_ms(&cfg) - 2.0).abs() < 1e-9);
    }
}
