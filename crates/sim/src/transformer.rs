//! Memory-bound dual transformer block execution.
//!
//! A decoder block at batch size 1 is, per position, six GEMVs — the
//! Q/K/V/output projections (`[m, m]`) and the FFN expand/contract pair
//! (`[f, m]` / `[m, f]`) — plus the softmax attention mixer. Like the
//! RNN gates in [`crate::rnn`], the projection weight matrices exceed
//! the GLB at paper scale and are re-streamed from DRAM every position;
//! the per-projection switching maps from
//! [`duet_core::dual_attention::DualTransformerBlock`] let DUET skip
//! fetching (and computing) the weight rows of insensitive outputs.
//!
//! The mixer has no weight matrix — its operands are the just-produced
//! Q/K/V activations, already on-chip — and no insensitive region (every
//! score feeds the softmax normalizer), so it always runs dense on the
//! executor and contributes compute cycles but no DRAM traffic.
//!
//! Speculation follows the gate-level pipeline of §IV-B: each
//! projection's INT4 speculation hides behind the previous stage's
//! execution, so only the first projection of each position exposes its
//! speculation latency.

use crate::config::ArchConfig;
use crate::energy::{EnergyBreakdown, EnergyTable};
use crate::report::LayerPerf;
use crate::rnn::RnnLatencySplit;
use crate::speculator::speculate_rnn_gate;
use duet_core::switching::SwitchingMap;
use duet_tensor::rng::Rng;

/// The six speculated projections of a dual transformer block, in
/// execution order.
const STAGES: usize = 6;

/// Workload of one dual transformer block over a sequence, at batch
/// size 1.
///
/// `maps` uses the exact layout produced by
/// [`duet_core::dual_attention::DualBlockOutput`]: `(q, k, v)` per
/// position, then `o` per position, then `(expand, contract)` per
/// position — `6 × seq_len` maps total.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransformerBlockTrace {
    /// Block name.
    pub name: String,
    /// Model width `m`.
    pub model: usize,
    /// FFN hidden width `f`.
    pub hidden: usize,
    /// Sequence length `T`.
    pub seq_len: usize,
    /// Reduced dimension of the per-projection INT4 speculators.
    pub reduced_dim: usize,
    /// Switching maps in [`duet_core::dual_attention::DualBlockOutput`]
    /// order.
    pub maps: Vec<SwitchingMap>,
}

/// Shape of one projection stage: `(output rows, macs per row)`.
type StageShape = (usize, usize);

impl TransformerBlockTrace {
    /// Builds a trace from explicit maps.
    ///
    /// # Panics
    ///
    /// Panics if `maps.len() != 6 * seq_len` or any map's length does
    /// not match its projection's output width.
    pub fn new(
        name: impl Into<String>,
        model: usize,
        hidden: usize,
        seq_len: usize,
        maps: Vec<SwitchingMap>,
        reduced_dim: usize,
    ) -> Self {
        assert_eq!(
            maps.len(),
            STAGES * seq_len,
            "map count must be 6 per position"
        );
        let trace = Self {
            name: name.into(),
            model,
            hidden,
            seq_len,
            reduced_dim,
            maps,
        };
        for t in 0..seq_len {
            for stage in 0..STAGES {
                let (rows, _) = trace.stage_shape(stage, t);
                assert_eq!(
                    trace.stage_map(stage, t).len(),
                    rows,
                    "map length must equal projection output width"
                );
            }
        }
        trace
    }

    /// Builds a trace directly from the maps of a real
    /// [`duet_core::dual_attention::DualBlockOutput`]; the sequence
    /// length is inferred from the map count.
    pub fn from_block_maps(
        name: impl Into<String>,
        model: usize,
        hidden: usize,
        maps: Vec<SwitchingMap>,
        reduced_dim: usize,
    ) -> Self {
        assert_eq!(maps.len() % STAGES, 0, "map count must be 6 per position");
        let seq_len = maps.len() / STAGES;
        Self::new(name, model, hidden, seq_len, maps, reduced_dim)
    }

    /// Synthesizes a trace with i.i.d. per-neuron sensitivity —
    /// `sensitive_attn` for the four attention projections,
    /// `sensitive_ffn` for the FFN pair.
    #[allow(clippy::too_many_arguments)]
    pub fn synthetic(
        name: impl Into<String>,
        model: usize,
        hidden: usize,
        seq_len: usize,
        sensitive_attn: f64,
        sensitive_ffn: f64,
        reduced_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        let draw = |n: usize, frac: f64, rng: &mut Rng| -> SwitchingMap {
            (0..n).map(|_| rng.random::<f64>() < frac).collect()
        };
        let mut maps = Vec::with_capacity(STAGES * seq_len);
        for _ in 0..seq_len {
            for _ in 0..3 {
                maps.push(draw(model, sensitive_attn, rng));
            }
        }
        for _ in 0..seq_len {
            maps.push(draw(model, sensitive_attn, rng));
        }
        for _ in 0..seq_len {
            maps.push(draw(hidden, sensitive_ffn, rng));
            maps.push(draw(model, sensitive_ffn, rng));
        }
        Self::new(name, model, hidden, seq_len, maps, reduced_dim)
    }

    /// `(rows, macs per row)` of projection stage `stage` (0..6, in
    /// execution order q, k, v, o, expand, contract).
    fn stage_shape(&self, stage: usize, _position: usize) -> StageShape {
        match stage {
            0..=3 => (self.model, self.model),
            4 => (self.hidden, self.model),
            5 => (self.model, self.hidden),
            _ => unreachable!("stage index out of range"),
        }
    }

    /// The switching map of projection stage `stage` at `position`.
    fn stage_map(&self, stage: usize, position: usize) -> &SwitchingMap {
        let t = self.seq_len;
        match stage {
            0..=2 => &self.maps[3 * position + stage],
            3 => &self.maps[3 * t + position],
            4 => &self.maps[4 * t + 2 * position],
            5 => &self.maps[4 * t + 2 * position + 1],
            _ => unreachable!("stage index out of range"),
        }
    }

    /// Dense MACs of the attention mixer at `position` (causal): the
    /// `position + 1` score dot products plus the context blend.
    fn mixer_macs(&self, position: usize) -> u64 {
        2 * (position as u64 + 1) * self.model as u64
    }

    /// Dense-equivalent MACs of the whole block pass, mixer included.
    pub fn dense_macs(&self) -> u64 {
        let m = self.model as u64;
        let f = self.hidden as u64;
        let proj = self.seq_len as u64 * (4 * m * m + 2 * f * m);
        let mixer: u64 = (0..self.seq_len).map(|t| self.mixer_macs(t)).sum();
        proj + mixer
    }
}

/// Result of simulating one dual transformer block.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransformerRunResult {
    /// Standard per-layer report.
    pub perf: LayerPerf,
    /// Memory/compute/speculation latency split.
    pub split: RnnLatencySplit,
    /// Total weight bytes fetched from DRAM.
    pub weight_bytes_fetched: u64,
}

/// Simulates one dual transformer block pass. With `dual == false`
/// every weight row is fetched and computed (the BASE design); with
/// `dual == true` the per-projection switching maps gate both compute
/// and weight fetches. The mixer is dense either way.
pub fn run_transformer_block(
    trace: &TransformerBlockTrace,
    config: &ArchConfig,
    energy: &EnergyTable,
    dual: bool,
) -> TransformerRunResult {
    let _span = duet_obs::span_lazy("sim.transformer.block", || trace.name.clone());

    let mut split = RnnLatencySplit::default();
    let mut executed_macs = 0u64;
    let mut weight_bytes_fetched = 0u64;
    let mut energy_bd = EnergyBreakdown::default();
    let mut spec_cycles_total = 0u64;
    let mut executor_cycles = 0u64;
    let mut dram_cycles_total = 0u64;

    for position in 0..trace.seq_len {
        // Pipeline state resets each position, like the RNN step walk.
        let mut prev_stage_latency = 0u64;
        for stage in 0..STAGES {
            let (rows, row_macs) = trace.stage_shape(stage, position);
            let sensitive = if dual {
                trace.stage_map(stage, position).sensitive_count() as u64
            } else {
                rows as u64
            };
            let row_macs = row_macs as u64;
            let row_bytes = row_macs * 2;

            let fetch_bytes = sensitive * row_bytes;
            weight_bytes_fetched += fetch_bytes;
            let dram_cycles = fetch_bytes.div_ceil(config.dram_bytes_per_cycle as u64);

            let row_batches = sensitive.div_ceil(config.pe_rows as u64);
            let compute_cycles = row_batches * row_macs.div_ceil(config.pe_cols as u64);
            executed_macs += sensitive * row_macs;
            executor_cycles += compute_cycles;
            dram_cycles_total += dram_cycles;

            // FC-style single-student speculation, hidden behind the
            // previous stage; the position's first stage is exposed.
            let (spec_cycles, spec_energy) = if dual {
                let s =
                    speculate_rnn_gate(rows, row_macs as usize, trace.reduced_dim, config, energy);
                (s.cycles / 2, s.energy.scaled(0.5))
            } else {
                (0, EnergyBreakdown::default())
            };
            spec_cycles_total += spec_cycles;
            let exposed_spec = spec_cycles.saturating_sub(prev_stage_latency);

            let mut stage_latency = dram_cycles.max(compute_cycles) + exposed_spec;
            if dram_cycles >= compute_cycles {
                split.memory_cycles += dram_cycles;
            } else {
                split.compute_cycles += compute_cycles;
            }
            split.speculation_cycles += exposed_spec;

            energy_bd += EnergyBreakdown {
                executor_compute_pj: (sensitive * row_macs) as f64 * energy.mac_int16_pj,
                executor_rf_pj: (sensitive * row_macs) as f64 * energy.rf_16b_pj,
                glb_pj: (sensitive * row_macs) as f64 / 16.0 * energy.glb_16b_pj
                    + (row_macs + rows as u64) as f64 * energy.glb_16b_pj,
                noc_pj: fetch_bytes as f64 / 2.0 * energy.noc_16b_pj,
                dram_pj: fetch_bytes as f64 / 2.0 * energy.dram_16b_pj,
                speculator_pj: 0.0,
                control_pj: compute_cycles as f64
                    * config.pe_count() as f64
                    * energy.control_pj_per_cycle
                    * 0.1,
            } + spec_energy;

            // The mixer runs between the V projection (stage 2) and the
            // output projection (stage 3): dense, weight-free compute on
            // the already-resident Q/K/V activations.
            if stage == 2 {
                let macs = trace.mixer_macs(position);
                let keys = position as u64 + 1;
                let score_cycles = keys.div_ceil(config.pe_rows as u64)
                    * (trace.model as u64).div_ceil(config.pe_cols as u64);
                let blend_cycles = (trace.model as u64).div_ceil(config.pe_rows as u64)
                    * keys.div_ceil(config.pe_cols as u64);
                let mixer_cycles = score_cycles + blend_cycles;
                executed_macs += macs;
                executor_cycles += mixer_cycles;
                split.compute_cycles += mixer_cycles;
                stage_latency += mixer_cycles;
                energy_bd += EnergyBreakdown {
                    executor_compute_pj: macs as f64 * energy.mac_int16_pj,
                    executor_rf_pj: macs as f64 * energy.rf_16b_pj,
                    glb_pj: macs as f64 / 16.0 * energy.glb_16b_pj,
                    noc_pj: 0.0,
                    dram_pj: 0.0,
                    speculator_pj: 0.0,
                    control_pj: mixer_cycles as f64
                        * config.pe_count() as f64
                        * energy.control_pj_per_cycle
                        * 0.1,
                };
            }

            prev_stage_latency = stage_latency;
        }
    }

    let latency = split.total();
    let perf = LayerPerf {
        name: trace.name.clone(),
        executor_cycles,
        speculator_cycles: spec_cycles_total,
        dram_cycles: dram_cycles_total,
        latency_cycles: latency,
        executed_macs,
        dense_macs: trace.dense_macs(),
        mac_utilization: if executor_cycles == 0 {
            0.0
        } else {
            executed_macs as f64 / (executor_cycles * config.pe_count() as u64) as f64
        },
        energy: energy_bd,
    };

    TransformerRunResult {
        perf,
        split,
        weight_bytes_fetched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::seeded;

    fn paper_trace(attn: f64, ffn: f64) -> TransformerBlockTrace {
        TransformerBlockTrace::synthetic("block0", 1024, 4096, 16, attn, ffn, 64, &mut seeded(11))
    }

    #[test]
    fn base_run_is_memory_bound_at_paper_scale() {
        let t = paper_trace(0.5, 0.5);
        let r = run_transformer_block(&t, &ArchConfig::duet(), &EnergyTable::default(), false);
        assert!(
            r.perf.dram_cycles > r.perf.executor_cycles,
            "dram {} vs compute {}",
            r.perf.dram_cycles,
            r.perf.executor_cycles
        );
        assert_eq!(r.perf.executed_macs, t.dense_macs());
        assert_eq!(r.perf.speculator_cycles, 0);
    }

    #[test]
    fn dual_fetches_only_sensitive_rows() {
        let t = paper_trace(0.35, 0.35);
        let cfg = ArchConfig::duet();
        let e = EnergyTable::default();
        let base = run_transformer_block(&t, &cfg, &e, false);
        let dual = run_transformer_block(&t, &cfg, &e, true);
        let ratio = dual.weight_bytes_fetched as f64 / base.weight_bytes_fetched as f64;
        assert!((ratio - 0.35).abs() < 0.02, "fetch ratio {ratio}");
        assert!(dual.perf.latency_cycles < base.perf.latency_cycles);
        assert!(dual.perf.energy.dram_pj < base.perf.energy.dram_pj);
        assert!(dual.perf.executed_macs < base.perf.executed_macs);
    }

    #[test]
    fn all_sensitive_matches_base_fetch_and_macs() {
        let maps: Vec<SwitchingMap> = {
            let mut v = Vec::new();
            for _ in 0..4 {
                v.push(SwitchingMap::all_sensitive(32));
            }
            // order: (q,k,v) interleaved ×1 position, o ×1, (expand, contract) ×1
            v.push(SwitchingMap::all_sensitive(64));
            v.push(SwitchingMap::all_sensitive(32));
            v
        };
        let t = TransformerBlockTrace::new("b", 32, 64, 1, maps, 8);
        let cfg = ArchConfig::duet();
        let e = EnergyTable::default();
        let base = run_transformer_block(&t, &cfg, &e, false);
        let dual = run_transformer_block(&t, &cfg, &e, true);
        assert_eq!(base.weight_bytes_fetched, dual.weight_bytes_fetched);
        assert_eq!(base.perf.executed_macs, dual.perf.executed_macs);
        // Speculation is pure overhead here.
        assert!(dual.perf.latency_cycles >= base.perf.latency_cycles);
    }

    #[test]
    fn all_insensitive_still_pays_the_dense_mixer() {
        let t = TransformerBlockTrace::synthetic("b", 64, 128, 8, 0.0, 0.0, 16, &mut seeded(5));
        let r = run_transformer_block(&t, &ArchConfig::duet(), &EnergyTable::default(), true);
        let mixer: u64 = (0..8).map(|p| t.mixer_macs(p)).sum();
        assert_eq!(r.perf.executed_macs, mixer);
        assert_eq!(r.weight_bytes_fetched, 0);
        assert!(r.perf.executor_cycles > 0);
    }

    #[test]
    fn real_block_maps_drive_the_simulator() {
        use duet_core::engine::MacMode;
        use duet_core::{
            DualAttention, DualFfn, DualProjection, DualTransformerBlock, TransformerThresholds,
        };
        use duet_tensor::rng::normal;

        let m = 8usize;
        let f = 16usize;
        let mut r = seeded(41);
        let mut proj = |n: usize, d: usize| {
            let w = normal(&mut r, &[n, d], 0.0, 0.3);
            let b = normal(&mut r, &[n], 0.0, 0.05);
            DualProjection::learn(&w, &b, MacMode::SkipZeroWeights, 4, 200, &mut r)
        };
        let block = DualTransformerBlock::new(
            DualAttention::new(proj(m, m), proj(m, m), proj(m, m), proj(m, m)),
            DualFfn::new(proj(f, m), proj(m, f)),
        );
        let xs = normal(&mut r, &[5, m], 0.0, 1.0);
        let out = block.forward(&xs, &TransformerThresholds::uniform(0.05));

        let trace = TransformerBlockTrace::from_block_maps("distilled", m, f, out.maps.clone(), 4);
        assert_eq!(trace.seq_len, 5);
        let cfg = ArchConfig::duet();
        let e = EnergyTable::default();
        let base = run_transformer_block(&trace, &cfg, &e, false);
        let dual = run_transformer_block(&trace, &cfg, &e, true);
        assert_eq!(base.perf.dense_macs, trace.dense_macs());
        assert!(dual.weight_bytes_fetched <= base.weight_bytes_fetched);
        let sensitive: usize = out.maps.iter().map(|m| m.sensitive_count()).sum();
        let total: usize = out.maps.iter().map(|m| m.len()).sum();
        if sensitive < total {
            assert!(dual.weight_bytes_fetched < base.weight_bytes_fetched);
        }
    }

    #[test]
    #[should_panic(expected = "map count")]
    fn bad_map_count_panics() {
        TransformerBlockTrace::new("x", 8, 16, 2, vec![SwitchingMap::all_sensitive(8)], 4);
    }

    #[test]
    #[should_panic(expected = "map length")]
    fn bad_map_length_panics() {
        let maps = vec![SwitchingMap::all_sensitive(7); 6];
        TransformerBlockTrace::new("x", 8, 16, 1, maps, 4);
    }
}
