//! Global-buffer capacity model (§III-A).
//!
//! The 1 MiB GLB holds inputs, weights, outputs, Speculator data and
//! switching maps. A layer whose working set exceeds the GLB must
//! re-stream data from DRAM; this model decides how often.

use crate::config::ArchConfig;

/// Working-set layout of one layer in the GLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GlbPlan {
    /// Bytes needed resident for weights.
    pub weight_bytes: u64,
    /// Bytes needed for input tiles.
    pub input_bytes: u64,
    /// Bytes needed for output tiles.
    pub output_bytes: u64,
    /// Bytes for switching maps + Speculator QDR data.
    pub speculator_bytes: u64,
}

impl GlbPlan {
    /// The GLB slice reserved for switching maps and Speculator QDR data:
    /// 1/16 of the configured capacity (64 KiB at the paper's 1 MiB GLB).
    /// Derived from the config so GLB sizing sweeps shrink or grow the
    /// partition along with the buffer instead of pinning it at the paper
    /// default.
    pub fn speculator_partition_bytes(config: &ArchConfig) -> u64 {
        config.glb_bytes as u64 / 16
    }

    /// Total working set.
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes + self.input_bytes + self.output_bytes + self.speculator_bytes
    }

    /// Whether the whole working set fits at once.
    pub fn fits(&self, config: &ArchConfig) -> bool {
        self.total_bytes() <= config.glb_bytes as u64
    }

    /// DRAM traffic multiplier for the *weights*: 1 when everything fits;
    /// when weights alone exceed the GLB budget left by activations, the
    /// weights cannot be kept resident and each reuse pass re-fetches
    /// them (the RNN situation: a 2 MiB gate matrix vs a 1 MiB GLB).
    pub fn weight_refetch_factor(&self, config: &ArchConfig, reuse_passes: u64) -> u64 {
        if self.fits(config) {
            1
        } else {
            reuse_passes.max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_layer_fits() {
        let p = GlbPlan {
            weight_bytes: 300_000,
            input_bytes: 200_000,
            output_bytes: 200_000,
            speculator_bytes: 50_000,
        };
        assert!(p.fits(&ArchConfig::duet()));
        assert_eq!(p.weight_refetch_factor(&ArchConfig::duet(), 10), 1);
    }

    #[test]
    fn rnn_gate_matrix_does_not_fit() {
        // 1024×2048 INT16 weights = 4 MiB
        let p = GlbPlan {
            weight_bytes: 4 << 20,
            input_bytes: 4096,
            output_bytes: 4096,
            speculator_bytes: 64 << 10,
        };
        assert!(!p.fits(&ArchConfig::duet()));
        assert_eq!(p.weight_refetch_factor(&ArchConfig::duet(), 20), 20);
    }

    #[test]
    fn speculator_partition_scales_with_glb() {
        // Regression: the RNN fit decision used a hardcoded 64 KiB, so GLB
        // sizing sweeps never moved the speculator partition.
        let duet = ArchConfig::duet();
        assert_eq!(GlbPlan::speculator_partition_bytes(&duet), 64 << 10);
        let mut big = duet;
        big.glb_bytes = 4 << 20;
        assert_eq!(GlbPlan::speculator_partition_bytes(&big), 256 << 10);
    }

    #[test]
    fn totals() {
        let p = GlbPlan {
            weight_bytes: 1,
            input_bytes: 2,
            output_bytes: 3,
            speculator_bytes: 4,
        };
        assert_eq!(p.total_bytes(), 10);
    }
}
