//! Activation-sensitivity calibration (Fig. 2).
//!
//! Fig. 2 of the paper measures, per model, how many activations land in
//! the insensitive regions of their non-linearity. This module encodes
//! those measurements as per-layer calibration constants used when
//! synthesizing traces for layers too large to run in software, and
//! provides the measurement function used on layers we *do* run.

use crate::models::{ConvShape, ModelZoo, RnnShape};
use duet_nn::Activation;
use duet_sim::trace::{ConvLayerTrace, RnnLayerTrace};
use duet_tensor::rng::Rng;
use duet_tensor::Tensor;

/// Per-layer sensitivity calibration for trace synthesis.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SparsityCalibration {
    /// Mean fraction of *sensitive* outputs (Executor workload).
    pub mean_sensitive: f64,
    /// Channel-to-channel spread of the sensitive fraction (drives the
    /// imbalance adaptive mapping targets).
    pub channel_spread: f64,
    /// Density of the layer's *input* activations (1 − previous layer's
    /// post-ReLU sparsity).
    pub input_density: f64,
}

impl SparsityCalibration {
    /// Calibration for CONV layer `index` (0-based) of an `n_layers`-deep
    /// CNN. ReLU output sparsity grows with depth in trained CNNs
    /// (Fig. 2): the sensitive fraction falls from ≈55% to ≈30%, and the
    /// first layer's input (the image) is dense.
    pub fn cnn_layer(index: usize, n_layers: usize) -> Self {
        let depth = if n_layers <= 1 {
            0.0
        } else {
            index as f64 / (n_layers - 1) as f64
        };
        let mean_sensitive = 0.50 - 0.22 * depth;
        let input_density = if index == 0 {
            1.0
        } else {
            // previous layer's *corrected* OMap density: its sensitive
            // fraction minus the post-ReLU correction (§III-C), which
            // pushes CNN input density toward the 0.3–0.45 the paper's
            // IOS numbers imply
            (0.40 - 0.15 * (index - 1) as f64 / (n_layers - 1).max(1) as f64).clamp(0.2, 1.0)
        };
        Self {
            mean_sensitive,
            channel_spread: 0.30,
            input_density,
        }
    }

    /// Calibration for RNN gates: trained LSTM/GRU gates saturate heavily
    /// (Fig. 2), leaving ≈46% of outputs sensitive — the ratio behind the
    /// paper's 0.65 ms → 0.30 ms DRAM-latency reduction.
    pub fn rnn_layer() -> Self {
        Self {
            mean_sensitive: 0.46,
            channel_spread: 0.10,
            input_density: 1.0,
        }
    }
}

/// Measures the fraction of pre-activations in the insensitive region of
/// an activation at threshold θ — the Fig. 2 quantity, on real data.
pub fn insensitive_fraction(pre_activations: &Tensor, act: Activation, theta: f32) -> f64 {
    let n = pre_activations.len();
    if n == 0 {
        return 0.0;
    }
    pre_activations
        .data()
        .iter()
        .filter(|&&y| act.is_insensitive(y, theta))
        .count() as f64
        / n as f64
}

/// Synthesizes the calibrated trace for one CONV layer of a model.
pub fn conv_trace(shape: &ConvShape, calib: &SparsityCalibration, rng: &mut Rng) -> ConvLayerTrace {
    ConvLayerTrace::synthetic(
        shape.name.clone(),
        shape.out_channels,
        shape.positions(),
        shape.patch_len(),
        shape.input_elems(),
        calib.mean_sensitive,
        calib.channel_spread,
        calib.input_density,
        shape.reduced_dim(),
        rng,
    )
}

/// Synthesizes calibrated traces for every CONV layer of a CNN benchmark.
pub fn cnn_traces(model: ModelZoo, rng: &mut Rng) -> Vec<ConvLayerTrace> {
    let layers = model.conv_layers();
    let n = layers.len();
    layers
        .iter()
        .enumerate()
        .map(|(i, l)| conv_trace(l, &SparsityCalibration::cnn_layer(i, n), rng))
        .collect()
}

/// Synthesizes the calibrated trace for one RNN layer.
pub fn rnn_trace(shape: &RnnShape, rng: &mut Rng) -> RnnLayerTrace {
    let calib = SparsityCalibration::rnn_layer();
    RnnLayerTrace::synthetic(
        shape.name.clone(),
        shape.gates,
        shape.hidden,
        shape.input,
        shape.steps,
        calib.mean_sensitive,
        rng,
    )
}

/// Synthesizes calibrated traces for every layer of an RNN benchmark.
pub fn rnn_traces(model: ModelZoo, rng: &mut Rng) -> Vec<RnnLayerTrace> {
    model
        .rnn_layers()
        .iter()
        .map(|l| rnn_trace(l, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::{self, seeded};

    #[test]
    fn cnn_calibration_deepens() {
        let first = SparsityCalibration::cnn_layer(0, 10);
        let last = SparsityCalibration::cnn_layer(9, 10);
        assert!(first.mean_sensitive > last.mean_sensitive);
        assert_eq!(first.input_density, 1.0);
        assert!(last.input_density < 1.0);
    }

    #[test]
    fn insensitive_fraction_of_gaussian_relu() {
        // standard normal, θ = 0: about half the mass is negative
        let mut r = seeded(1);
        let y = rng::normal(&mut r, &[20000], 0.0, 1.0);
        let f = insensitive_fraction(&y, Activation::Relu, 0.0);
        assert!((f - 0.5).abs() < 0.02, "fraction {f}");
    }

    #[test]
    fn insensitive_fraction_of_saturating_tanh() {
        let mut r = seeded(2);
        let y = rng::normal(&mut r, &[20000], 0.0, 4.0);
        // |y| > 2 covers most of a σ=4 Gaussian
        let f = insensitive_fraction(&y, Activation::Tanh, 2.0);
        assert!(f > 0.5, "fraction {f}");
    }

    #[test]
    fn traces_for_all_models() {
        let mut r = seeded(3);
        for m in ModelZoo::cnns() {
            let ts = cnn_traces(m, &mut r);
            assert_eq!(ts.len(), m.conv_layers().len());
            for t in &ts {
                let f = t.sensitive_fraction();
                assert!(f > 0.1 && f < 0.9, "{} fraction {f}", t.name);
            }
        }
        for m in ModelZoo::rnns() {
            let ts = rnn_traces(m, &mut r);
            assert_eq!(ts.len(), m.rnn_layers().len());
            for t in &ts {
                let f = t.sensitive_fraction();
                assert!((f - 0.46).abs() < 0.05, "{} fraction {f}", t.name);
            }
        }
    }
}
