//! A tiny decoder-only transformer language model, trained end-to-end,
//! and its dual-module form.
//!
//! This is the attention-workload counterpart of [`crate::trainer`]'s
//! recurrent language models: one causal single-head transformer block
//! (attention + residual + GELU FFN + residual) between an embedding
//! and an output head, trained on the Markov text source with
//! next-token cross-entropy and hand-written backprop.
//!
//! The dual form ([`DualTransformerLm`]) distills an INT4 speculator
//! for each of the block's six projections from *recorded* calibration
//! activations (each projection sees its own input distribution — block
//! inputs for Q/K/V, attention contexts for the output projection, FFN
//! inputs and hidden activations for expand/contract) and composes them
//! into a [`DualTransformerBlock`]. Embedding, positional table and the
//! logits head stay dense.

use crate::checkpoint::{CheckpointError, TrainCheckpoint};
use crate::datasets::MarkovText;
use duet_core::engine::MacMode;
use duet_core::{
    DualAttention, DualFfn, DualProjection, DualTransformerBlock, SavingsReport,
    TransformerThresholds,
};
use duet_nn::attention::{attend, attend_backward, AttentionCache};
use duet_nn::layer::{outer_accumulate, Param};
use duet_nn::{loss, Activation, Optimizer};
use duet_tensor::rng::Rng;
use duet_tensor::{ops, Tensor};

/// A decoder-only transformer LM: embedding + learned positions, one
/// causal single-head block, dense logits head.
#[derive(Debug, Clone)]
pub struct TransformerLm {
    /// Token embedding `[m, vocab]` (one-hot input ⇒ column select).
    pub embed: Param,
    /// Learned positional table `[ctx, m]`.
    pub pos: Param,
    /// Query projection `[m, m]` / bias `[m]`.
    pub wq: Param,
    /// Query bias.
    pub bq: Param,
    /// Key projection `[m, m]`.
    pub wk: Param,
    /// Key bias.
    pub bk: Param,
    /// Value projection `[m, m]`.
    pub wv: Param,
    /// Value bias.
    pub bv: Param,
    /// Attention output projection `[m, m]`.
    pub wo: Param,
    /// Attention output bias.
    pub bo: Param,
    /// FFN expand `[f, m]`.
    pub w1: Param,
    /// FFN expand bias `[f]`.
    pub b1: Param,
    /// FFN contract `[m, f]`.
    pub w2: Param,
    /// FFN contract bias `[m]`.
    pub b2: Param,
    /// Output head `[vocab, m]`.
    pub w_out: Param,
    /// Output head bias `[vocab]`.
    pub b_out: Param,
    vocab: usize,
    model: usize,
    hidden: usize,
    ctx: usize,
}

/// Everything the backward pass (or activation recording) needs from a
/// dense block forward over one window.
struct BlockTrace {
    xs: Tensor, // [L, m] block inputs (embed + pos)
    caches: Vec<AttentionCache>,
    ctx: Tensor,   // [L, m] attention mixer outputs
    a: Tensor,     // [L, m] post-attention residual
    h_pre: Tensor, // [L, f]
    h: Tensor,     // [L, f] gelu(h_pre)
    y: Tensor,     // [L, m] block outputs
}

fn row(t: &Tensor, i: usize, w: usize) -> Tensor {
    Tensor::from_vec(t.data()[i * w..(i + 1) * w].to_vec(), &[w])
}

impl TransformerLm {
    /// Creates an untrained model. `ctx` is the maximum window length.
    pub fn new(vocab: usize, model: usize, hidden: usize, ctx: usize, r: &mut Rng) -> Self {
        let lecun = duet_nn::init::lecun_uniform;
        Self {
            embed: Param::new(lecun(r, &[model, vocab], vocab)),
            pos: Param::new(lecun(r, &[ctx, model], model)),
            wq: Param::new(lecun(r, &[model, model], model)),
            bq: Param::new(Tensor::zeros(&[model])),
            wk: Param::new(lecun(r, &[model, model], model)),
            bk: Param::new(Tensor::zeros(&[model])),
            wv: Param::new(lecun(r, &[model, model], model)),
            bv: Param::new(Tensor::zeros(&[model])),
            wo: Param::new(lecun(r, &[model, model], model)),
            bo: Param::new(Tensor::zeros(&[model])),
            w1: Param::new(lecun(r, &[hidden, model], model)),
            b1: Param::new(Tensor::zeros(&[hidden])),
            w2: Param::new(lecun(r, &[model, hidden], hidden)),
            b2: Param::new(Tensor::zeros(&[model])),
            w_out: Param::new(lecun(r, &[vocab, model], model)),
            b_out: Param::new(Tensor::zeros(&[vocab])),
            vocab,
            model,
            hidden,
            ctx,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Model dimension `m`.
    pub fn model_dim(&self) -> usize {
        self.model
    }

    /// FFN hidden dimension `f`.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Maximum window length.
    pub fn context(&self) -> usize {
        self.ctx
    }

    fn embed_token(&self, token: usize, position: usize) -> Tensor {
        let m = self.model;
        Tensor::from_vec(
            (0..m)
                .map(|i| {
                    self.embed.value.data()[i * self.vocab + token]
                        + self.pos.value.data()[position * m + i]
                })
                .collect(),
            &[m],
        )
    }

    /// Dense block forward over one window of input tokens (length ≤
    /// `ctx`), caching every intermediate.
    fn block_forward(&self, tokens_in: &[usize]) -> BlockTrace {
        let (l, m, f) = (tokens_in.len(), self.model, self.hidden);
        assert!(l <= self.ctx, "window longer than context");
        let mut xs = Tensor::zeros(&[l, m]);
        let mut q = Tensor::zeros(&[l, m]);
        let mut k = Tensor::zeros(&[l, m]);
        let mut v = Tensor::zeros(&[l, m]);
        for (t, &tok) in tokens_in.iter().enumerate() {
            let x_t = self.embed_token(tok, t);
            q.row_mut(t)
                .copy_from_slice(ops::affine(&self.wq.value, &x_t, &self.bq.value).data());
            k.row_mut(t)
                .copy_from_slice(ops::affine(&self.wk.value, &x_t, &self.bk.value).data());
            v.row_mut(t)
                .copy_from_slice(ops::affine(&self.wv.value, &x_t, &self.bv.value).data());
            xs.row_mut(t).copy_from_slice(x_t.data());
        }
        let mut caches = Vec::with_capacity(l);
        let mut ctx = Tensor::zeros(&[l, m]);
        let mut a = Tensor::zeros(&[l, m]);
        for t in 0..l {
            let q_t = row(&q, t, m);
            let keys = Tensor::from_vec(k.data()[..(t + 1) * m].to_vec(), &[t + 1, m]);
            let values = Tensor::from_vec(v.data()[..(t + 1) * m].to_vec(), &[t + 1, m]);
            let (c_t, cache) = attend(&q_t, &keys, &values);
            let attn = ops::affine(&self.wo.value, &c_t, &self.bo.value);
            for (i, (av, &xv)) in attn.data().iter().zip(xs.row(t)).enumerate() {
                a.row_mut(t)[i] = av + xv;
            }
            ctx.row_mut(t).copy_from_slice(c_t.data());
            caches.push(cache);
        }
        let mut h_pre = Tensor::zeros(&[l, f]);
        let mut h = Tensor::zeros(&[l, f]);
        let mut y = Tensor::zeros(&[l, m]);
        for t in 0..l {
            let a_t = row(&a, t, m);
            let hp = ops::affine(&self.w1.value, &a_t, &self.b1.value);
            let hh = Activation::Gelu.apply(&hp);
            let ffn = ops::affine(&self.w2.value, &hh, &self.b2.value);
            for (i, (fv, &av)) in ffn.data().iter().zip(a_t.data()).enumerate() {
                y.row_mut(t)[i] = fv + av;
            }
            h_pre.row_mut(t).copy_from_slice(hp.data());
            h.row_mut(t).copy_from_slice(hh.data());
        }
        BlockTrace {
            xs,
            caches,
            ctx,
            a,
            h_pre,
            h,
            y,
        }
    }

    /// One teacher-forced training step over a token window (predict
    /// next); returns the mean loss (nats/token).
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len() < 2` or the window exceeds the context.
    pub fn train_step(&mut self, tokens: &[usize], opt: &mut Optimizer) -> f32 {
        assert!(tokens.len() >= 2, "need at least two tokens");
        let steps = tokens.len() - 1;
        let (m, f) = (self.model, self.hidden);
        let trace = self.block_forward(&tokens[..steps]);

        self.zero_grads();
        let mut total_loss = 0.0f32;
        let mut dx = Tensor::zeros(&[steps, m]);
        let mut dk_all = Tensor::zeros(&[steps, m]);
        let mut dv_all = Tensor::zeros(&[steps, m]);
        for t in 0..steps {
            let y_t = row(&trace.y, t, m);
            let logits = ops::affine(&self.w_out.value, &y_t, &self.b_out.value);
            let (l, dlogits_row) =
                loss::cross_entropy(&logits.reshaped(&[1, self.vocab]), &[tokens[t + 1]]);
            total_loss += l;
            let dlogits = dlogits_row.reshaped(&[self.vocab]);

            // head backward
            outer_accumulate(&mut self.w_out.grad, &dlogits, &y_t);
            ops::axpy(1.0, &dlogits, &mut self.b_out.grad);
            let dy = ops::gemv(&self.w_out.value.transposed(), &dlogits);

            // FFN backward: y = a + W2·gelu(W1·a + b1) + b2
            let h_t = row(&trace.h, t, f);
            let a_t = row(&trace.a, t, m);
            outer_accumulate(&mut self.w2.grad, &dy, &h_t);
            ops::axpy(1.0, &dy, &mut self.b2.grad);
            let dh = ops::gemv(&self.w2.value.transposed(), &dy);
            let dh_pre = ops::hadamard(&dh, &Activation::Gelu.derivative(&row(&trace.h_pre, t, f)));
            outer_accumulate(&mut self.w1.grad, &dh_pre, &a_t);
            ops::axpy(1.0, &dh_pre, &mut self.b1.grad);
            let mut da = ops::gemv(&self.w1.value.transposed(), &dh_pre);
            ops::axpy(1.0, &dy, &mut da); // residual 2

            // attention output backward: a = x + Wo·ctx + bo
            let ctx_t = row(&trace.ctx, t, m);
            outer_accumulate(&mut self.wo.grad, &da, &ctx_t);
            ops::axpy(1.0, &da, &mut self.bo.grad);
            let dctx = ops::gemv(&self.wo.value.transposed(), &da);

            // softmax mixer backward
            let g = attend_backward(&trace.caches[t], &dctx);
            let x_t = row(&trace.xs, t, m);
            outer_accumulate(&mut self.wq.grad, &g.d_query, &x_t);
            ops::axpy(1.0, &g.d_query, &mut self.bq.grad);
            let dxq = ops::gemv(&self.wq.value.transposed(), &g.d_query);
            for (i, &gv) in dxq.data().iter().enumerate() {
                dx.row_mut(t)[i] += gv;
            }
            // keys/values of every position ≤ t accumulate across queries
            for s in 0..=t {
                for i in 0..m {
                    dk_all.row_mut(s)[i] += g.d_keys.data()[s * m + i];
                    dv_all.row_mut(s)[i] += g.d_values.data()[s * m + i];
                }
            }
            // residual 1 into x
            for (i, &gv) in da.data().iter().enumerate() {
                dx.row_mut(t)[i] += gv;
            }
        }

        // K/V projection backward + embedding/positional gradients
        for (s, &token) in tokens[..steps].iter().enumerate() {
            let x_s = row(&trace.xs, s, m);
            let dk_s = row(&dk_all, s, m);
            outer_accumulate(&mut self.wk.grad, &dk_s, &x_s);
            ops::axpy(1.0, &dk_s, &mut self.bk.grad);
            let dxk = ops::gemv(&self.wk.value.transposed(), &dk_s);
            let dv_s = row(&dv_all, s, m);
            outer_accumulate(&mut self.wv.grad, &dv_s, &x_s);
            ops::axpy(1.0, &dv_s, &mut self.bv.grad);
            let dxv = ops::gemv(&self.wv.value.transposed(), &dv_s);
            for i in 0..m {
                let g = dx.row(s)[i] + dxk.data()[i] + dxv.data()[i];
                self.embed.grad.data_mut()[i * self.vocab + token] += g;
                self.pos.grad.data_mut()[s * m + i] += g;
            }
        }

        opt.tick();
        self.visit_params(&mut |p| opt.step(p));
        total_loss / steps as f32
    }

    /// Mean negative log-likelihood (nats/token) over a token sequence,
    /// evaluated in consecutive non-overlapping windows of `ctx` steps.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len() < 2`.
    pub fn nll(&self, tokens: &[usize]) -> f32 {
        assert!(tokens.len() >= 2, "need at least two tokens");
        let steps = tokens.len() - 1;
        let mut total = 0.0f32;
        let mut start = 0usize;
        while start < steps {
            let end = (start + self.ctx).min(steps);
            let trace = self.block_forward(&tokens[start..end]);
            for t in 0..(end - start) {
                let y_t = row(&trace.y, t, self.model);
                let logits = ops::affine(&self.w_out.value, &y_t, &self.b_out.value);
                let (l, _) = loss::cross_entropy(
                    &logits.reshaped(&[1, self.vocab]),
                    &[tokens[start + t + 1]],
                );
                total += l;
            }
            start = end;
        }
        total / steps as f32
    }

    /// Perplexity over a token sequence.
    pub fn perplexity(&self, tokens: &[usize]) -> f32 {
        loss::perplexity(self.nll(tokens))
    }

    /// Greedy next-token accuracy over a sequence, block-windowed like
    /// [`TransformerLm::nll`].
    pub fn next_token_accuracy(&self, tokens: &[usize]) -> f64 {
        assert!(tokens.len() >= 2, "need at least two tokens");
        let steps = tokens.len() - 1;
        let mut correct = 0usize;
        let mut start = 0usize;
        while start < steps {
            let end = (start + self.ctx).min(steps);
            let trace = self.block_forward(&tokens[start..end]);
            for t in 0..(end - start) {
                let y_t = row(&trace.y, t, self.model);
                let logits = ops::affine(&self.w_out.value, &y_t, &self.b_out.value);
                if ops::argmax(&logits) == tokens[start + t + 1] {
                    correct += 1;
                }
            }
            start = end;
        }
        correct as f64 / steps as f64
    }

    /// Visits all trainable parameters in a fixed order (checkpoint
    /// layout).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.embed);
        f(&mut self.pos);
        f(&mut self.wq);
        f(&mut self.bq);
        f(&mut self.wk);
        f(&mut self.bk);
        f(&mut self.wv);
        f(&mut self.bv);
        f(&mut self.wo);
        f(&mut self.bo);
        f(&mut self.w1);
        f(&mut self.b1);
        f(&mut self.w2);
        f(&mut self.b2);
        f(&mut self.w_out);
        f(&mut self.b_out);
    }

    /// Zeroes all gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

/// Trains a [`TransformerLm`] on a Markov source with full-context
/// windows (one window per Adam step).
pub fn train_transformer(
    source: &MarkovText,
    model: usize,
    hidden: usize,
    ctx: usize,
    windows: usize,
    r: &mut Rng,
) -> TransformerLm {
    let mut lm = TransformerLm::new(source.vocab, model, hidden, ctx, r);
    let mut opt = Optimizer::adam(0.005);
    for window in 0..windows {
        let _window_span = duet_obs::span_lazy("workloads.train.window", || {
            format!("transformer/win{window}")
        });
        let seq = source.sample(ctx + 1, r);
        lm.train_step(&seq, &mut opt);
    }
    lm
}

/// Crash-safe variant of [`train_transformer`]: checkpoints to `path`
/// every `every` completed windows and, if `path` already holds a
/// checkpoint, resumes from it instead of starting over.
///
/// Resume is **bitwise** exact, exactly as for
/// [`crate::trainer::train_mlp_with_checkpoints`]: the snapshot carries
/// the parameters, Adam moments and step counter, and the RNG state;
/// this trainer has no loop-private state beyond the RNG (windows are
/// sampled fresh each iteration), so `extra` stays empty.
///
/// # Errors
///
/// [`CheckpointError`] if an existing checkpoint cannot be read, does
/// not fit this model, or a snapshot cannot be written.
///
/// # Panics
///
/// Panics if `every == 0`.
#[allow(clippy::too_many_arguments)]
pub fn train_transformer_with_checkpoints(
    source: &MarkovText,
    model: usize,
    hidden: usize,
    ctx: usize,
    windows: usize,
    r: &mut Rng,
    path: &std::path::Path,
    every: usize,
) -> Result<TransformerLm, CheckpointError> {
    assert!(every >= 1, "checkpoint interval must be at least 1 window");
    let mut lm = TransformerLm::new(source.vocab, model, hidden, ctx, r);
    let mut opt = Optimizer::adam(0.005);
    let mut start = 0usize;
    if path.exists() {
        let ck = TrainCheckpoint::load(path)?;
        ck.restore(|f| lm.visit_params(f))?;
        if !ck.extra.is_empty() {
            return Err(CheckpointError::Mismatch {
                what: "loop state length",
                expected: 0,
                found: ck.extra.len() as u64,
            });
        }
        opt = ck.optimizer.clone();
        *r = Rng::from_state(ck.rng_state);
        start = ck.epoch as usize;
        duet_obs::counter!("workloads.checkpoint.resumes").inc();
    }
    for window in start..windows {
        let _window_span = duet_obs::span_lazy("workloads.train.window", || {
            format!("transformer/win{window}")
        });
        let seq = source.sample(ctx + 1, r);
        lm.train_step(&seq, &mut opt);
        if (window + 1) % every == 0 {
            let ck = TrainCheckpoint::capture(
                (window + 1) as u64,
                opt.clone(),
                r.state(),
                vec![],
                |f| lm.visit_params(f),
            );
            ck.save(path)?;
            duet_obs::counter!("workloads.checkpoint.saves").inc();
        }
    }
    Ok(lm)
}

/// A dual-module transformer LM: the block's six projections speculate,
/// embedding/positions/head stay dense.
#[derive(Debug, Clone)]
pub struct DualTransformerLm {
    lm: TransformerLm,
    block: DualTransformerBlock,
}

impl DualTransformerLm {
    /// Distills per-projection INT4 speculators from a trained LM using
    /// recorded calibration activations: `calib_windows` windows are
    /// sampled from `source` and run dense, and each projection learns
    /// from the inputs it actually sees (block inputs for Q/K/V,
    /// attention contexts for the output projection, post-residual
    /// activations for the FFN expand, GELU outputs for the contract).
    /// `reduced_ratio` sets each speculator's reduced dimension as a
    /// fraction of its input dimension.
    pub fn from_lm(
        lm: &TransformerLm,
        source: &MarkovText,
        reduced_ratio: f64,
        calib_windows: usize,
        r: &mut Rng,
    ) -> Self {
        let (m, f, ctx) = (lm.model_dim(), lm.hidden_dim(), lm.context());
        let mut xs_rows: Vec<f32> = Vec::new();
        let mut ctx_rows: Vec<f32> = Vec::new();
        let mut a_rows: Vec<f32> = Vec::new();
        let mut h_rows: Vec<f32> = Vec::new();
        let mut count = 0usize;
        for _ in 0..calib_windows {
            let seq = source.sample(ctx + 1, r);
            let trace = lm.block_forward(&seq[..seq.len() - 1]);
            xs_rows.extend_from_slice(trace.xs.data());
            ctx_rows.extend_from_slice(trace.ctx.data());
            a_rows.extend_from_slice(trace.a.data());
            h_rows.extend_from_slice(trace.h.data());
            count += seq.len() - 1;
        }
        let xs_acts = Tensor::from_vec(xs_rows, &[count, m]);
        let ctx_acts = Tensor::from_vec(ctx_rows, &[count, m]);
        let a_acts = Tensor::from_vec(a_rows, &[count, m]);
        let h_acts = Tensor::from_vec(h_rows, &[count, f]);

        let k_m = ((m as f64 * reduced_ratio) as usize).clamp(4, m);
        let k_f = ((f as f64 * reduced_ratio) as usize).clamp(4, f);
        let mode = MacMode::SkipZeroWeights;
        let learn = |w: &Param, b: &Param, k: usize, acts: &Tensor, r: &mut Rng| {
            DualProjection::learn_from_activations(&w.value, &b.value, mode, k, acts, r)
        };
        let attn = DualAttention::new(
            learn(&lm.wq, &lm.bq, k_m, &xs_acts, r),
            learn(&lm.wk, &lm.bk, k_m, &xs_acts, r),
            learn(&lm.wv, &lm.bv, k_m, &xs_acts, r),
            learn(&lm.wo, &lm.bo, k_m, &ctx_acts, r),
        );
        let ffn = DualFfn::new(
            learn(&lm.w1, &lm.b1, k_m, &a_acts, r),
            learn(&lm.w2, &lm.b2, k_f, &h_acts, r),
        );
        Self {
            lm: lm.clone(),
            block: DualTransformerBlock::new(attn, ffn),
        }
    }

    /// The dual block (switching maps, costs, guard-hook access).
    pub fn block(&self) -> &DualTransformerBlock {
        &self.block
    }

    fn window_inputs(&self, tokens_in: &[usize]) -> Tensor {
        let m = self.lm.model_dim();
        let mut xs = Tensor::zeros(&[tokens_in.len(), m]);
        for (t, &tok) in tokens_in.iter().enumerate() {
            xs.row_mut(t)
                .copy_from_slice(self.lm.embed_token(tok, t).data());
        }
        xs
    }

    /// Per-position logits over a sequence through the dual block,
    /// block-windowed like [`TransformerLm::nll`], with aggregate
    /// savings. Speculator weight fetches are amortized across the
    /// window's positions (the QDR weights stay buffer-resident).
    pub fn forward_logits(
        &self,
        tokens: &[usize],
        thresholds: &TransformerThresholds,
    ) -> (Vec<Tensor>, SavingsReport) {
        assert!(tokens.len() >= 2, "need at least two tokens");
        let steps = tokens.len() - 1;
        let (m, ctx) = (self.lm.model_dim(), self.lm.context());
        let mut logits = Vec::with_capacity(steps);
        let mut report = SavingsReport::new();
        let mut start = 0usize;
        while start < steps {
            let end = (start + ctx).min(steps);
            let xs = self.window_inputs(&tokens[start..end]);
            let out = self.block.forward(&xs, thresholds);
            let mut rep = out.report;
            rep.speculator_weight_bytes /= (end - start) as u64;
            report += rep;
            for t in 0..(end - start) {
                let y_t = row(&out.output, t, m);
                logits.push(ops::affine(
                    &self.lm.w_out.value,
                    &y_t,
                    &self.lm.b_out.value,
                ));
            }
            start = end;
        }
        (logits, report)
    }

    /// The dense reference for [`DualTransformerLm::forward_logits`],
    /// through the block's bitwise reference path — equal to the dual
    /// path at `TransformerThresholds::never_switch()`.
    pub fn reference_logits(&self, tokens: &[usize]) -> Vec<Tensor> {
        assert!(tokens.len() >= 2, "need at least two tokens");
        let steps = tokens.len() - 1;
        let (m, ctx) = (self.lm.model_dim(), self.lm.context());
        let mut logits = Vec::with_capacity(steps);
        let mut start = 0usize;
        while start < steps {
            let end = (start + ctx).min(steps);
            let xs = self.window_inputs(&tokens[start..end]);
            let out = self.block.forward_dense(&xs);
            for t in 0..(end - start) {
                let y_t = row(&out, t, m);
                logits.push(ops::affine(
                    &self.lm.w_out.value,
                    &y_t,
                    &self.lm.b_out.value,
                ));
            }
            start = end;
        }
        logits
    }

    /// Greedy next-token accuracy and aggregate savings at the given
    /// thresholds.
    pub fn next_token_accuracy(
        &self,
        tokens: &[usize],
        thresholds: &TransformerThresholds,
    ) -> (f64, SavingsReport) {
        let (logits, report) = self.forward_logits(tokens, thresholds);
        let correct = logits
            .iter()
            .enumerate()
            .filter(|(t, l)| ops::argmax(l) == tokens[t + 1])
            .count();
        (correct as f64 / logits.len() as f64, report)
    }

    /// Mean NLL (nats/token) and savings at the given thresholds.
    pub fn nll(
        &self,
        tokens: &[usize],
        thresholds: &TransformerThresholds,
    ) -> (f32, SavingsReport) {
        let (logits, report) = self.forward_logits(tokens, thresholds);
        let vocab = self.lm.vocab();
        let total: f32 = logits
            .iter()
            .enumerate()
            .map(|(t, l)| loss::cross_entropy(&l.reshaped(&[1, vocab]), &[tokens[t + 1]]).0)
            .sum();
        (total / logits.len() as f32, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use duet_tensor::rng::seeded;

    #[test]
    fn training_reduces_loss() {
        let mut r = seeded(1);
        let source = datasets::MarkovText::new(8, 2, &mut r);
        let mut lm = TransformerLm::new(8, 16, 24, 8, &mut r);
        let mut opt = Optimizer::adam(0.01);
        let first = lm.train_step(&source.sample(9, &mut r), &mut opt);
        for _ in 0..60 {
            lm.train_step(&source.sample(9, &mut r), &mut opt);
        }
        let last = lm.train_step(&source.sample(9, &mut r), &mut opt);
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn gradient_check_full_model() {
        // Finite differences through the whole block: embedding, all six
        // projections, positions and head.
        let mut r = seeded(2);
        let source = datasets::MarkovText::new(6, 1, &mut r);
        let mut lm = TransformerLm::new(6, 8, 12, 4, &mut r);
        let tokens = source.sample(5, &mut r);

        // capture analytic grads with a zero-lr step (no weight motion)
        let mut opt = Optimizer::sgd(0.0);
        lm.train_step(&tokens, &mut opt);
        let steps = (tokens.len() - 1) as f32;

        let eps = 1e-2f32;
        let loss_of = |lm: &TransformerLm| lm.nll(&tokens);
        let mut checked = 0;
        let mut grads: Vec<(Tensor, Tensor)> = Vec::new();
        lm.visit_params(&mut |p| grads.push((p.value.clone(), p.grad.clone())));
        // probe a few entries of every parameter
        let mut failures = Vec::new();
        for (param_idx, (value, grad)) in grads.iter().enumerate() {
            let probes = [0usize, value.len() / 2, value.len() - 1];
            for &idx in &probes {
                let mut plus = lm.clone();
                let mut minus = lm.clone();
                let bump = |model: &mut TransformerLm, delta: f32| {
                    let mut i = 0usize;
                    model.visit_params(&mut |p| {
                        if i == param_idx {
                            p.value.data_mut()[idx] += delta;
                        }
                        i += 1;
                    });
                };
                bump(&mut plus, eps);
                bump(&mut minus, -eps);
                let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
                let analytic = grad.data()[idx] / steps;
                if (fd - analytic).abs() > 3e-2_f32.max(0.2 * fd.abs()) {
                    failures.push((param_idx, idx, fd, analytic));
                }
                checked += 1;
            }
        }
        assert!(checked > 40);
        assert!(failures.is_empty(), "gradient mismatches: {failures:?}");
    }

    #[test]
    fn trained_lm_beats_uniform() {
        let mut r = seeded(3);
        let source = datasets::MarkovText::new(10, 2, &mut r);
        let lm = train_transformer(&source, 16, 32, 8, 250, &mut r);
        let test = source.sample(200, &mut r);
        let ppl = lm.perplexity(&test);
        assert!(ppl < 10.0 * 0.8, "perplexity {ppl} vs uniform 10");
        let acc = lm.next_token_accuracy(&test);
        assert!(acc > 0.15, "accuracy {acc} vs chance 0.1");
    }

    #[test]
    fn dual_never_switch_is_bitwise_reference() {
        let mut r = seeded(4);
        let source = datasets::MarkovText::new(8, 2, &mut r);
        let lm = train_transformer(&source, 16, 24, 6, 60, &mut r);
        let dual = DualTransformerLm::from_lm(&lm, &source, 0.5, 6, &mut r);
        let test = source.sample(40, &mut r);
        let (dual_logits, rep) = dual.forward_logits(&test, &TransformerThresholds::never_switch());
        let dense_logits = dual.reference_logits(&test);
        assert_eq!(dual_logits.len(), dense_logits.len());
        for (a, b) in dual_logits.iter().zip(&dense_logits) {
            assert_eq!(a.data(), b.data(), "θ=−∞ logits diverged from dense");
        }
        assert_eq!(rep.approximate_fraction(), 0.0);
    }

    #[test]
    fn dual_switching_saves_with_bounded_accuracy_loss() {
        let mut r = seeded(5);
        let source = datasets::MarkovText::new(10, 2, &mut r);
        let lm = train_transformer(&source, 16, 32, 8, 250, &mut r);
        let dual = DualTransformerLm::from_lm(&lm, &source, 0.5, 10, &mut r);
        let test = source.sample(240, &mut r);
        let (dense_acc, _) =
            dual.next_token_accuracy(&test, &TransformerThresholds::never_switch());
        let th = TransformerThresholds {
            theta_attn: 0.05,
            theta_gelu: -1.0,
            theta_ffn_out: 0.05,
        };
        let (acc, rep) = dual.next_token_accuracy(&test, &th);
        assert!(
            rep.approximate_fraction() > 0.02,
            "no switching happened: {}",
            rep.approximate_fraction()
        );
        assert!(
            rep.flops_reduction() > 1.0,
            "no effective saving: {}",
            rep.flops_reduction()
        );
        assert!(
            acc >= dense_acc - 0.05,
            "accuracy {acc} vs dense {dense_acc}"
        );
    }

    fn param_bits(lm: &mut TransformerLm) -> Vec<u32> {
        let mut out = Vec::new();
        lm.visit_params(&mut |p| out.extend(p.value.data().iter().map(|v| v.to_bits())));
        out
    }

    #[test]
    fn checkpointed_run_without_checkpoint_matches_plain_training_bitwise() {
        let dir = std::env::temp_dir().join("duet_ckpt_test_transformer_plain");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("transformer.ckpt");
        std::fs::remove_file(&path).ok();

        let source = datasets::MarkovText::new(8, 2, &mut seeded(30));
        let mut plain = train_transformer(&source, 12, 16, 6, 8, &mut seeded(31));
        let mut ckpt =
            train_transformer_with_checkpoints(&source, 12, 16, 6, 8, &mut seeded(31), &path, 3)
                .expect("checkpointed run");
        assert_eq!(param_bits(&mut plain), param_bits(&mut ckpt));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_and_resume_reproduces_uninterrupted_weights_bitwise() {
        let dir = std::env::temp_dir().join("duet_ckpt_test_transformer_resume");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("transformer.ckpt");
        std::fs::remove_file(&path).ok();

        let source = datasets::MarkovText::new(8, 2, &mut seeded(32));
        let mut full = train_transformer(&source, 12, 16, 6, 10, &mut seeded(33));

        // "Crash" after 4 windows: the run ends with a checkpoint on disk.
        train_transformer_with_checkpoints(&source, 12, 16, 6, 4, &mut seeded(33), &path, 1)
            .expect("interrupted run");
        // Relaunch with identical arguments; it must resume at window 4.
        let mut resumed =
            train_transformer_with_checkpoints(&source, 12, 16, 6, 10, &mut seeded(33), &path, 1)
                .expect("resumed run");

        assert_eq!(
            param_bits(&mut full),
            param_bits(&mut resumed),
            "resume must be bitwise identical to the uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
