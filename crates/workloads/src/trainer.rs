//! Real training of the small models behind the quality experiments.
//!
//! The paper reports accuracy/perplexity degradation on trained networks;
//! we train real (small) networks on the synthetic datasets so the
//! dual-module pipeline is measured end-to-end on genuinely learned
//! weights, not random ones.

use crate::checkpoint::{CheckpointError, TrainCheckpoint};
use crate::datasets::{Classification, MarkovText};
use duet_nn::layer::Param;
use duet_nn::lstm::LstmState;
use duet_nn::{
    loss, Activation, Conv2d, GruCell, Linear, LstmCell, MaxPool2d, Optimizer, Sequential,
};
use duet_tensor::im2col::ConvGeometry;
use duet_tensor::rng::Rng;
use duet_tensor::{ops, Tensor};

/// Trains a one-hidden-layer ReLU MLP classifier; returns the trained
/// network.
pub fn train_mlp(data: &Classification, hidden: usize, epochs: usize, r: &mut Rng) -> Sequential {
    let d = data.inputs.shape().dim(1);
    let mut net = Sequential::new();
    net.push_linear(Linear::new(d, hidden, r));
    net.push_activation(Activation::Relu);
    net.push_linear(Linear::new(hidden, data.classes, r));

    let mut opt = Optimizer::adam(0.01);
    let n = data.len();
    let batch = 32.min(n);
    let mut order: Vec<usize> = (0..n).collect();
    for epoch in 0..epochs {
        let _epoch_span =
            duet_obs::span_lazy("workloads.train.epoch", || format!("mlp/epoch{epoch}"));
        r.shuffle(&mut order);
        for chunk in order.chunks(batch) {
            let mut x = Tensor::zeros(&[chunk.len(), d]);
            let mut y = Vec::with_capacity(chunk.len());
            for (bi, &i) in chunk.iter().enumerate() {
                x.data_mut()[bi * d..(bi + 1) * d]
                    .copy_from_slice(&data.inputs.data()[i * d..(i + 1) * d]);
                y.push(data.labels[i]);
            }
            net.train_step(&x, &y, &mut opt);
        }
    }
    net
}

/// Crash-safe variant of [`train_mlp`]: checkpoints to `path` every
/// `every` completed epochs and, if `path` already holds a checkpoint,
/// resumes from it instead of starting over.
///
/// Resume is **bitwise** exact: the checkpoint carries the parameters,
/// the Adam moments and step counter, the RNG state, and the current
/// sample-order permutation (epochs shuffle it in place, so it is loop
/// state), and the epoch loop below is the same code as [`train_mlp`].
/// Killing a run at any epoch boundary and re-invoking with the same
/// arguments therefore reproduces the uninterrupted run's final weights
/// exactly.
///
/// # Errors
///
/// [`CheckpointError`] if an existing checkpoint cannot be read, does not
/// fit this model, or a snapshot cannot be written.
///
/// # Panics
///
/// Panics if `every == 0`.
pub fn train_mlp_with_checkpoints(
    data: &Classification,
    hidden: usize,
    epochs: usize,
    r: &mut Rng,
    path: &std::path::Path,
    every: usize,
) -> Result<Sequential, CheckpointError> {
    assert!(every >= 1, "checkpoint interval must be at least 1 epoch");
    let d = data.inputs.shape().dim(1);
    let mut net = Sequential::new();
    net.push_linear(Linear::new(d, hidden, r));
    net.push_activation(Activation::Relu);
    net.push_linear(Linear::new(hidden, data.classes, r));

    let mut opt = Optimizer::adam(0.01);
    let n = data.len();
    let batch = 32.min(n);
    let mut order: Vec<usize> = (0..n).collect();
    let mut start = 0usize;
    if path.exists() {
        let ck = TrainCheckpoint::load(path)?;
        ck.restore(|f| net.visit_params(f))?;
        if ck.extra.len() != n {
            return Err(CheckpointError::Mismatch {
                what: "sample-order length",
                expected: n as u64,
                found: ck.extra.len() as u64,
            });
        }
        order = ck.extra.iter().map(|&v| v as usize).collect();
        opt = ck.optimizer.clone();
        *r = Rng::from_state(ck.rng_state);
        start = ck.epoch as usize;
        duet_obs::counter!("workloads.checkpoint.resumes").inc();
    }
    for epoch in start..epochs {
        let _epoch_span =
            duet_obs::span_lazy("workloads.train.epoch", || format!("mlp/epoch{epoch}"));
        r.shuffle(&mut order);
        for chunk in order.chunks(batch) {
            let mut x = Tensor::zeros(&[chunk.len(), d]);
            let mut y = Vec::with_capacity(chunk.len());
            for (bi, &i) in chunk.iter().enumerate() {
                x.data_mut()[bi * d..(bi + 1) * d]
                    .copy_from_slice(&data.inputs.data()[i * d..(i + 1) * d]);
                y.push(data.labels[i]);
            }
            net.train_step(&x, &y, &mut opt);
        }
        if (epoch + 1) % every == 0 {
            let ck = TrainCheckpoint::capture(
                (epoch + 1) as u64,
                opt.clone(),
                r.state(),
                order.iter().map(|&v| v as u64).collect(),
                |f| net.visit_params(f),
            );
            ck.save(path)?;
            duet_obs::counter!("workloads.checkpoint.saves").inc();
        }
    }
    Ok(net)
}

/// Trains a tiny CNN (conv → ReLU → pool → flatten → linear) on image
/// data shaped `[n, 1, s, s]`.
pub fn train_cnn(data: &Classification, channels: usize, epochs: usize, r: &mut Rng) -> Sequential {
    let dims = data.inputs.shape().dims().to_vec();
    assert_eq!(dims.len(), 4, "image data must be [n, c, h, w]");
    let (c, s) = (dims[1], dims[2]);
    let geom = ConvGeometry {
        in_channels: c,
        in_h: s,
        in_w: s,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
    };
    let mut net = Sequential::new();
    net.push_conv(Conv2d::new(geom, channels, r));
    net.push_activation(Activation::Relu);
    net.push_pool(MaxPool2d::new(2));
    net.push_flatten();
    net.push_linear(Linear::new(channels * (s / 2) * (s / 2), data.classes, r));

    let mut opt = Optimizer::adam(0.01);
    let n = data.len();
    let img = c * s * s;
    let batch = 16.min(n);
    let mut order: Vec<usize> = (0..n).collect();
    for epoch in 0..epochs {
        let _epoch_span =
            duet_obs::span_lazy("workloads.train.epoch", || format!("cnn/epoch{epoch}"));
        r.shuffle(&mut order);
        for chunk in order.chunks(batch) {
            let mut x = Tensor::zeros(&[chunk.len(), c, s, s]);
            let mut y = Vec::with_capacity(chunk.len());
            for (bi, &i) in chunk.iter().enumerate() {
                x.data_mut()[bi * img..(bi + 1) * img]
                    .copy_from_slice(&data.inputs.data()[i * img..(i + 1) * img]);
                y.push(data.labels[i]);
            }
            net.train_step(&x, &y, &mut opt);
        }
    }
    net
}

/// Evaluates a classifier on a dataset, batching internally.
pub fn evaluate_classifier(net: &mut Sequential, data: &Classification) -> f64 {
    net.evaluate(&data.inputs, &data.labels)
}

/// Which recurrent cell a [`CharLm`] uses.
#[derive(Debug, Clone)]
pub enum LmCell {
    /// LSTM-based language model.
    Lstm(LstmCell),
    /// GRU-based language model.
    Gru(GruCell),
}

/// A character/token-level recurrent language model:
/// embedding → LSTM/GRU → output projection.
#[derive(Debug, Clone)]
pub struct CharLm {
    /// Embedding matrix `[emb, vocab]` (one-hot input ⇒ column select).
    pub embed: Param,
    /// The recurrent cell.
    pub cell: LmCell,
    /// Output projection `[vocab, hidden]`.
    pub w_out: Param,
    /// Output bias `[vocab]`.
    pub b_out: Param,
    vocab: usize,
    emb: usize,
    hidden: usize,
}

impl CharLm {
    /// Creates an untrained LM.
    pub fn new(vocab: usize, emb: usize, hidden: usize, lstm: bool, r: &mut Rng) -> Self {
        let cell = if lstm {
            LmCell::Lstm(LstmCell::new(emb, hidden, r))
        } else {
            LmCell::Gru(GruCell::new(emb, hidden, r))
        };
        Self {
            embed: Param::new(duet_nn::init::lecun_uniform(r, &[emb, vocab], vocab)),
            cell,
            w_out: Param::new(duet_nn::init::lecun_uniform(r, &[vocab, hidden], hidden)),
            b_out: Param::new(Tensor::zeros(&[vocab])),
            vocab,
            emb,
            hidden,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// The LSTM cell, if this LM uses one.
    pub fn lstm_cell(&self) -> Option<&LstmCell> {
        match &self.cell {
            LmCell::Lstm(c) => Some(c),
            LmCell::Gru(_) => None,
        }
    }

    /// The GRU cell, if this LM uses one.
    pub fn gru_cell(&self) -> Option<&GruCell> {
        match &self.cell {
            LmCell::Gru(c) => Some(c),
            LmCell::Lstm(_) => None,
        }
    }

    fn embed_token(&self, token: usize) -> Tensor {
        Tensor::from_vec(
            (0..self.emb)
                .map(|i| self.embed.value.data()[i * self.vocab + token])
                .collect(),
            &[self.emb],
        )
    }

    fn logits(&self, h: &Tensor) -> Tensor {
        ops::affine(&self.w_out.value, h, &self.b_out.value)
    }

    /// One truncated-BPTT training step over `tokens` (predict-next);
    /// returns the mean loss (nats/token).
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len() < 2`.
    pub fn train_step(&mut self, tokens: &[usize], opt: &mut Optimizer) -> f32 {
        assert!(tokens.len() >= 2, "need at least two tokens");
        let steps = tokens.len() - 1;
        let xs: Vec<Tensor> = tokens[..steps]
            .iter()
            .map(|&t| self.embed_token(t))
            .collect();

        // forward
        enum Caches {
            Lstm(Vec<duet_nn::lstm::LstmStepCache>),
            Gru(Vec<duet_nn::gru::GruStepCache>),
        }
        let (hs, caches): (Vec<Tensor>, Caches) = match &self.cell {
            LmCell::Lstm(c) => {
                let (states, caches) = c.forward_sequence(&xs);
                (
                    states.into_iter().map(|s| s.h).collect(),
                    Caches::Lstm(caches),
                )
            }
            LmCell::Gru(c) => {
                let (hs, caches) = c.forward_sequence(&xs);
                (hs, Caches::Gru(caches))
            }
        };

        // output layer + loss + dh per step
        let mut total_loss = 0.0f32;
        let mut dhs = Vec::with_capacity(steps);
        self.zero_grads();
        for (t, h) in hs.iter().enumerate() {
            let target = tokens[t + 1];
            let logits = self.logits(h);
            let (l, dlogits_row) =
                loss::cross_entropy(&logits.reshaped(&[1, self.vocab]), &[target]);
            total_loss += l;
            let dlogits = dlogits_row.reshaped(&[self.vocab]);
            // dW_out += dlogits ⊗ h ; db_out += dlogits ; dh = W_outᵀ d
            for i in 0..self.vocab {
                let dv = dlogits.data()[i];
                if dv != 0.0 {
                    let row =
                        &mut self.w_out.grad.data_mut()[i * self.hidden..(i + 1) * self.hidden];
                    for (g, &hv) in row.iter_mut().zip(h.data()) {
                        *g += dv * hv;
                    }
                }
                self.b_out.grad.data_mut()[i] += dv;
            }
            dhs.push(ops::gemv(&self.w_out.value.transposed(), &dlogits));
        }

        // BPTT
        let dxs = match (&mut self.cell, &caches) {
            (LmCell::Lstm(c), Caches::Lstm(cc)) => c.backward_sequence(cc, &dhs),
            (LmCell::Gru(c), Caches::Gru(cc)) => c.backward_sequence(cc, &dhs),
            _ => unreachable!("cell/cache variant mismatch"),
        };

        // embedding gradient: dW_embed[:, token_t] += dx_t
        for (t, dx) in dxs.iter().enumerate() {
            let token = tokens[t];
            for i in 0..self.emb {
                self.embed.grad.data_mut()[i * self.vocab + token] += dx.data()[i];
            }
        }

        // update
        opt.tick();
        self.visit_params(&mut |p| opt.step(p));
        total_loss / steps as f32
    }

    /// Mean negative log-likelihood (nats/token) over a token sequence.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len() < 2`.
    pub fn nll(&self, tokens: &[usize]) -> f32 {
        assert!(tokens.len() >= 2, "need at least two tokens");
        let steps = tokens.len() - 1;
        let mut total = 0.0f32;
        let mut lstm_state = LstmState::zeros(self.hidden);
        let mut gru_h = Tensor::zeros(&[self.hidden]);
        for t in 0..steps {
            let x = self.embed_token(tokens[t]);
            let h = match &self.cell {
                LmCell::Lstm(c) => {
                    let (s, _) = c.step(&x, &lstm_state);
                    lstm_state = s;
                    lstm_state.h.clone()
                }
                LmCell::Gru(c) => {
                    let (h, _) = c.step(&x, &gru_h);
                    gru_h = h.clone();
                    h
                }
            };
            let logits = self.logits(&h);
            let (l, _) = loss::cross_entropy(&logits.reshaped(&[1, self.vocab]), &[tokens[t + 1]]);
            total += l;
        }
        total / steps as f32
    }

    /// Perplexity over a token sequence.
    pub fn perplexity(&self, tokens: &[usize]) -> f32 {
        loss::perplexity(self.nll(tokens))
    }

    /// Visits all trainable parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.embed);
        match &mut self.cell {
            LmCell::Lstm(c) => c.visit_params(f),
            LmCell::Gru(c) => c.visit_params(f),
        }
        f(&mut self.w_out);
        f(&mut self.b_out);
    }

    /// Zeroes all gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

/// Trains a [`CharLm`] on a Markov source with truncated BPTT windows.
pub fn train_char_lm(
    source: &MarkovText,
    lstm: bool,
    emb: usize,
    hidden: usize,
    windows: usize,
    window_len: usize,
    r: &mut Rng,
) -> CharLm {
    let mut lm = CharLm::new(source.vocab, emb, hidden, lstm, r);
    let mut opt = Optimizer::adam(0.005);
    for window in 0..windows {
        let _window_span =
            duet_obs::span_lazy("workloads.train.window", || format!("char_lm/win{window}"));
        let seq = source.sample(window_len, r);
        lm.train_step(&seq, &mut opt);
    }
    lm
}

/// Trains a two-conv CNN (conv → ReLU → conv → ReLU → pool → flatten →
/// linear) on image data shaped `[n, 1, s, s]` — the smallest network
/// that exercises the §III-C OMap→IMap chain on trained weights.
pub fn train_deep_cnn(
    data: &Classification,
    channels: usize,
    epochs: usize,
    r: &mut Rng,
) -> Sequential {
    let dims = data.inputs.shape().dims().to_vec();
    assert_eq!(dims.len(), 4, "image data must be [n, c, h, w]");
    let (c, s) = (dims[1], dims[2]);
    let g1 = ConvGeometry {
        in_channels: c,
        in_h: s,
        in_w: s,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
    };
    let g2 = ConvGeometry {
        in_channels: channels,
        in_h: s,
        in_w: s,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
    };
    let mut net = Sequential::new();
    net.push_conv(Conv2d::new(g1, channels, r));
    net.push_activation(Activation::Relu);
    net.push_conv(Conv2d::new(g2, channels, r));
    net.push_activation(Activation::Relu);
    net.push_pool(MaxPool2d::new(2));
    net.push_flatten();
    net.push_linear(Linear::new(channels * (s / 2) * (s / 2), data.classes, r));

    let mut opt = Optimizer::adam(0.01);
    let n = data.len();
    let img = c * s * s;
    let batch = 16.min(n);
    let mut order: Vec<usize> = (0..n).collect();
    for epoch in 0..epochs {
        let _epoch_span =
            duet_obs::span_lazy("workloads.train.epoch", || format!("deep_cnn/epoch{epoch}"));
        r.shuffle(&mut order);
        for chunk in order.chunks(batch) {
            let mut x = Tensor::zeros(&[chunk.len(), c, s, s]);
            let mut y = Vec::with_capacity(chunk.len());
            for (bi, &i) in chunk.iter().enumerate() {
                x.data_mut()[bi * img..(bi + 1) * img]
                    .copy_from_slice(&data.inputs.data()[i * img..(i + 1) * img]);
                y.push(data.labels[i]);
            }
            net.train_step(&x, &y, &mut opt);
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use duet_tensor::rng::seeded;

    #[test]
    fn mlp_learns_clusters() {
        let mut r = seeded(1);
        let train = datasets::gaussian_clusters(4, 16, 256, 5.0, &mut r);
        let test = datasets::gaussian_clusters(4, 16, 128, 5.0, &mut seeded(1));
        let mut net = train_mlp(&train, 32, 30, &mut r);
        let acc = evaluate_classifier(&mut net, &test);
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn cnn_learns_shapes() {
        let mut r = seeded(2);
        let train = datasets::shape_images(240, 9, 0.05, &mut r);
        let test = datasets::shape_images(90, 9, 0.05, &mut r);
        let mut net = train_cnn(&train, 8, 12, &mut r);
        let acc = evaluate_classifier(&mut net, &test);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn lstm_lm_beats_uniform() {
        let mut r = seeded(3);
        let source = datasets::MarkovText::new(16, 3, &mut r);
        let lm = train_char_lm(&source, true, 16, 32, 200, 30, &mut r);
        let test = source.sample(300, &mut r);
        let ppl = lm.perplexity(&test);
        let uniform = 16.0;
        assert!(ppl < uniform * 0.6, "perplexity {ppl} vs uniform {uniform}");
        // and should approach the source entropy floor within a factor
        let floor = source.entropy_nats().exp() as f32;
        assert!(ppl < floor * 3.0, "perplexity {ppl} vs floor {floor}");
    }

    #[test]
    fn gru_lm_trains_too() {
        let mut r = seeded(4);
        let source = datasets::MarkovText::new(12, 2, &mut r);
        let lm = train_char_lm(&source, false, 12, 24, 50, 20, &mut r);
        let test = source.sample(200, &mut r);
        assert!(lm.perplexity(&test) < 12.0 * 0.7);
    }

    fn param_bits(net: &mut Sequential) -> Vec<u32> {
        let mut out = Vec::new();
        net.visit_params(&mut |p| out.extend(p.value.data().iter().map(|v| v.to_bits())));
        out
    }

    #[test]
    fn checkpointed_run_without_checkpoint_matches_plain_training_bitwise() {
        let dir = std::env::temp_dir().join("duet_ckpt_test_plain");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("mlp.ckpt");
        std::fs::remove_file(&path).ok();

        let train = datasets::gaussian_clusters(4, 16, 96, 5.0, &mut seeded(20));
        let mut plain = train_mlp(&train, 16, 6, &mut seeded(21));
        let mut ckpt = train_mlp_with_checkpoints(&train, 16, 6, &mut seeded(21), &path, 2)
            .expect("checkpointed run");
        assert_eq!(param_bits(&mut plain), param_bits(&mut ckpt));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_and_resume_reproduces_uninterrupted_weights_bitwise() {
        let dir = std::env::temp_dir().join("duet_ckpt_test_resume");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("mlp.ckpt");
        std::fs::remove_file(&path).ok();

        let train = datasets::gaussian_clusters(4, 16, 96, 5.0, &mut seeded(22));
        let mut full = train_mlp(&train, 16, 8, &mut seeded(23));

        // "Crash" after 3 epochs: the run ends with a checkpoint on disk.
        train_mlp_with_checkpoints(&train, 16, 3, &mut seeded(23), &path, 1)
            .expect("interrupted run");
        // Relaunch with identical arguments; it must resume at epoch 3.
        let mut resumed = train_mlp_with_checkpoints(&train, 16, 8, &mut seeded(23), &path, 1)
            .expect("resumed run");

        assert_eq!(
            param_bits(&mut full),
            param_bits(&mut resumed),
            "resume must be bitwise identical to the uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_checkpoint_surfaces_typed_error() {
        use crate::checkpoint::CheckpointError;
        let dir = std::env::temp_dir().join("duet_ckpt_test_corrupt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("mlp.ckpt");
        std::fs::remove_file(&path).ok();

        let train = datasets::gaussian_clusters(3, 8, 48, 5.0, &mut seeded(24));
        train_mlp_with_checkpoints(&train, 8, 2, &mut seeded(25), &path, 1).expect("seed run");

        let mut bytes = std::fs::read(&path).expect("read checkpoint");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, bytes).expect("rewrite");

        let err = train_mlp_with_checkpoints(&train, 8, 4, &mut seeded(25), &path, 1)
            .expect_err("corrupt checkpoint must not be accepted");
        assert!(
            !matches!(err, CheckpointError::Io(_)),
            "corruption must surface as a decode error, got {err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn training_reduces_loss() {
        let mut r = seeded(5);
        let source = datasets::MarkovText::new(10, 2, &mut r);
        let mut lm = CharLm::new(10, 8, 16, true, &mut r);
        let mut opt = Optimizer::adam(0.01);
        let first = lm.train_step(&source.sample(30, &mut r), &mut opt);
        for _ in 0..40 {
            lm.train_step(&source.sample(30, &mut r), &mut opt);
        }
        let last = lm.train_step(&source.sample(30, &mut r), &mut opt);
        assert!(last < first, "{first} -> {last}");
    }
}
