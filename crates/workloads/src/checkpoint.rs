//! Crash-safe training checkpoints.
//!
//! A [`TrainCheckpoint`] captures everything a training loop needs to
//! resume *bitwise* where it left off: parameter values, optimizer moment
//! buffers and step counter, the RNG state, the epoch index, and any
//! loop-private state (e.g. the shuffled sample order, which is permuted
//! in place across epochs). Restoring a checkpoint and finishing the run
//! reproduces the uninterrupted run's final weights exactly.
//!
//! The wire format is a small versioned binary codec: a magic tag and
//! version word, then two sections (meta, params) each followed by a
//! 64-bit FNV-1a checksum of its bytes. Decoding bounds-checks every
//! read — a claimed tensor size is validated against the bytes actually
//! present before any allocation — and verifies each section checksum, so
//! corrupting any byte of a checkpoint file yields a typed
//! [`CheckpointError`], never a panic or a silently wrong model.
//! Saving writes to a temporary file in the same directory and renames it
//! over the target, so a crash mid-write never destroys the previous
//! checkpoint.

use duet_nn::layer::Param;
use duet_nn::Optimizer;
use duet_tensor::Tensor;
use std::path::Path;

/// Magic bytes identifying a checkpoint blob ("DUCK": DUet ChecKpoint).
const MAGIC: u32 = u32::from_le_bytes(*b"DUCK");
/// Current wire-format version.
const VERSION: u32 = 1;
/// Sanity cap on tensor rank (the codecs in this repo never exceed 4).
const MAX_RANK: u32 = 8;

/// Errors from loading or storing a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem error (kind and message, stringified to stay `Clone`).
    Io(String),
    /// The blob does not start with the checkpoint magic.
    BadMagic {
        /// The tag found.
        found: u32,
    },
    /// The blob's format version is not supported by this build.
    Version {
        /// The version found.
        found: u32,
    },
    /// The blob is shorter than its structure requires (also covers
    /// length fields that claim more bytes than are present — nothing is
    /// allocated on their say-so).
    Truncated,
    /// A section checksum mismatch or structural impossibility: the named
    /// section's bytes do not hash to the stored checksum, or a field
    /// holds a value no writer produces.
    Corrupt {
        /// The section or field that failed validation.
        section: &'static str,
    },
    /// The checkpoint is well-formed but does not fit the model being
    /// restored (wrong parameter count or tensor shape).
    Mismatch {
        /// What disagreed.
        what: &'static str,
        /// The value the model implies.
        expected: u64,
        /// The value the checkpoint holds.
        found: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::BadMagic { found } => {
                write!(f, "bad checkpoint magic 0x{found:08x}")
            }
            CheckpointError::Version { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (this build reads {VERSION})"
                )
            }
            CheckpointError::Truncated => write!(f, "checkpoint blob truncated"),
            CheckpointError::Corrupt { section } => {
                write!(f, "checkpoint corrupt in section `{section}`")
            }
            CheckpointError::Mismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "checkpoint does not fit model: {what} is {found}, model implies {expected}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Per-parameter state: the value and both optimizer moment buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamState {
    /// Parameter values.
    pub value: Tensor,
    /// First-moment buffer (momentum / Adam m).
    pub moment1: Tensor,
    /// Second-moment buffer (Adam v).
    pub moment2: Tensor,
}

/// A complete training snapshot at an epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Number of epochs fully completed.
    pub epoch: u64,
    /// Optimizer, including Adam's step counter.
    pub optimizer: Optimizer,
    /// RNG state at the snapshot point ([`duet_tensor::rng::Rng::state`]).
    pub rng_state: [u64; 4],
    /// Loop-private state the trainer needs on resume (e.g. the current
    /// sample-order permutation, which epochs mutate in place).
    pub extra: Vec<u64>,
    /// All trainable parameters in visit order.
    pub params: Vec<ParamState>,
}

impl TrainCheckpoint {
    /// Snapshots a model's parameters through its `visit_params` hook.
    pub fn capture<V>(
        epoch: u64,
        optimizer: Optimizer,
        rng_state: [u64; 4],
        extra: Vec<u64>,
        visit: V,
    ) -> Self
    where
        V: FnOnce(&mut dyn FnMut(&mut Param)),
    {
        let mut params = Vec::new();
        visit(&mut |p: &mut Param| {
            params.push(ParamState {
                value: p.value.clone(),
                moment1: p.moment1.clone(),
                moment2: p.moment2.clone(),
            });
        });
        Self {
            epoch,
            optimizer,
            rng_state,
            extra,
            params,
        }
    }

    /// Writes parameter state back into a model through its `visit_params`
    /// hook. Gradients are zeroed.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] if the parameter count or any tensor
    /// shape disagrees with the model.
    pub fn restore<V>(&self, visit: V) -> Result<(), CheckpointError>
    where
        V: FnOnce(&mut dyn FnMut(&mut Param)),
    {
        let mut i = 0usize;
        let mut err = None;
        visit(&mut |p: &mut Param| {
            if err.is_some() {
                return;
            }
            match self.params.get(i) {
                None => {
                    err = Some(CheckpointError::Mismatch {
                        what: "parameter count",
                        expected: i as u64 + 1,
                        found: self.params.len() as u64,
                    });
                }
                Some(ps) => {
                    if ps.value.shape() != p.value.shape() {
                        err = Some(CheckpointError::Mismatch {
                            what: "parameter shape",
                            expected: p.value.len() as u64,
                            found: ps.value.len() as u64,
                        });
                    } else {
                        p.value = ps.value.clone();
                        p.moment1 = ps.moment1.clone();
                        p.moment2 = ps.moment2.clone();
                        p.zero_grad();
                    }
                }
            }
            i += 1;
        });
        if let Some(e) = err {
            return Err(e);
        }
        if i != self.params.len() {
            return Err(CheckpointError::Mismatch {
                what: "parameter count",
                expected: i as u64,
                found: self.params.len() as u64,
            });
        }
        Ok(())
    }

    /// Serializes the checkpoint to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&VERSION.to_le_bytes());

        // --- meta section ---
        let meta_start = buf.len();
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        for w in self.rng_state {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        put_optimizer(&mut buf, &self.optimizer);
        buf.extend_from_slice(&(self.extra.len() as u64).to_le_bytes());
        for &v in &self.extra {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let meta_sum = fnv1a(&buf[meta_start..]);
        buf.extend_from_slice(&meta_sum.to_le_bytes());

        // --- params section ---
        let params_start = buf.len();
        buf.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for p in &self.params {
            put_tensor(&mut buf, &p.value);
            put_tensor(&mut buf, &p.moment1);
            put_tensor(&mut buf, &p.moment2);
        }
        let params_sum = fnv1a(&buf[params_start..]);
        buf.extend_from_slice(&params_sum.to_le_bytes());
        buf
    }

    /// Deserializes a checkpoint from bytes.
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`] variant except `Io`: every read is
    /// bounds-checked and each section is checksum-verified, so arbitrary
    /// corruption is rejected with a typed error, never a panic.
    pub fn decode(buf: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::new(buf);
        let magic = r.get_u32()?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic { found: magic });
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(CheckpointError::Version { found: version });
        }

        // --- meta section ---
        let meta_start = r.pos;
        let epoch = r.get_u64()?;
        let mut rng_state = [0u64; 4];
        for w in &mut rng_state {
            *w = r.get_u64()?;
        }
        let optimizer = get_optimizer(&mut r)?;
        let extra_len = r.get_u64()? as usize;
        // An extra entry costs 8 bytes; reject counts the blob cannot hold
        // before allocating.
        if extra_len > r.remaining() / 8 {
            return Err(CheckpointError::Truncated);
        }
        let mut extra = Vec::with_capacity(extra_len);
        for _ in 0..extra_len {
            extra.push(r.get_u64()?);
        }
        let meta_sum = fnv1a(&buf[meta_start..r.pos]);
        if r.get_u64()? != meta_sum {
            return Err(CheckpointError::Corrupt { section: "meta" });
        }

        // --- params section ---
        let params_start = r.pos;
        let count = r.get_u64()? as usize;
        // A parameter is at least three minimal tensors (rank word each).
        if count > r.remaining() / 12 {
            return Err(CheckpointError::Truncated);
        }
        let mut params = Vec::with_capacity(count);
        for _ in 0..count {
            let value = get_tensor(&mut r)?;
            let moment1 = get_tensor(&mut r)?;
            let moment2 = get_tensor(&mut r)?;
            if moment1.shape() != value.shape() || moment2.shape() != value.shape() {
                return Err(CheckpointError::Corrupt { section: "params" });
            }
            params.push(ParamState {
                value,
                moment1,
                moment2,
            });
        }
        let params_sum = fnv1a(&buf[params_start..r.pos]);
        if r.get_u64()? != params_sum {
            return Err(CheckpointError::Corrupt { section: "params" });
        }
        if r.remaining() != 0 {
            return Err(CheckpointError::Corrupt {
                section: "trailing bytes",
            });
        }
        Ok(Self {
            epoch,
            optimizer,
            rng_state,
            extra,
            params,
        })
    }

    /// Atomically writes the checkpoint to `path`: the bytes go to a
    /// sibling temporary file first, which is then renamed over the
    /// target, so a crash mid-write leaves any previous checkpoint intact.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let io = |e: std::io::Error| CheckpointError::Io(e.to_string());
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.encode()).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Reads and decodes a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure, otherwise any decode
    /// error from [`TrainCheckpoint::decode`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Self::decode(&bytes)
    }
}

/// 64-bit FNV-1a over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bounds-checked little-endian cursor.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn get_f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_bits(self.get_u32()?))
    }
}

fn put_tensor(buf: &mut Vec<u8>, t: &Tensor) {
    let dims = t.shape().dims();
    buf.extend_from_slice(&(dims.len() as u32).to_le_bytes());
    for &d in dims {
        buf.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in t.data() {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn get_tensor(r: &mut Reader<'_>) -> Result<Tensor, CheckpointError> {
    let rank = r.get_u32()?;
    if rank == 0 || rank > MAX_RANK {
        return Err(CheckpointError::Corrupt { section: "params" });
    }
    let mut dims = Vec::with_capacity(rank as usize);
    let mut count = 1u64;
    for _ in 0..rank {
        let d = r.get_u64()?;
        count = count
            .checked_mul(d)
            .ok_or(CheckpointError::Corrupt { section: "params" })?;
        dims.push(d as usize);
    }
    // Each element costs 4 bytes; validate against the bytes actually
    // present before allocating anything of this size.
    if count > (r.remaining() / 4) as u64 {
        return Err(CheckpointError::Truncated);
    }
    let raw = r.take(count as usize * 4)?;
    let data: Vec<f32> = raw
        .chunks_exact(4)
        .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
        .collect();
    Ok(Tensor::from_vec(data, &dims))
}

const OPT_SGD: u8 = 0;
const OPT_MOMENTUM: u8 = 1;
const OPT_ADAM: u8 = 2;

fn put_optimizer(buf: &mut Vec<u8>, opt: &Optimizer) {
    match *opt {
        Optimizer::Sgd { lr } => {
            buf.push(OPT_SGD);
            buf.extend_from_slice(&lr.to_bits().to_le_bytes());
        }
        Optimizer::Momentum { lr, momentum } => {
            buf.push(OPT_MOMENTUM);
            buf.extend_from_slice(&lr.to_bits().to_le_bytes());
            buf.extend_from_slice(&momentum.to_bits().to_le_bytes());
        }
        Optimizer::Adam {
            lr,
            beta1,
            beta2,
            eps,
            t,
        } => {
            buf.push(OPT_ADAM);
            buf.extend_from_slice(&lr.to_bits().to_le_bytes());
            buf.extend_from_slice(&beta1.to_bits().to_le_bytes());
            buf.extend_from_slice(&beta2.to_bits().to_le_bytes());
            buf.extend_from_slice(&eps.to_bits().to_le_bytes());
            buf.extend_from_slice(&t.to_le_bytes());
        }
    }
}

fn get_optimizer(r: &mut Reader<'_>) -> Result<Optimizer, CheckpointError> {
    match r.get_u8()? {
        OPT_SGD => Ok(Optimizer::Sgd { lr: r.get_f32()? }),
        OPT_MOMENTUM => Ok(Optimizer::Momentum {
            lr: r.get_f32()?,
            momentum: r.get_f32()?,
        }),
        OPT_ADAM => Ok(Optimizer::Adam {
            lr: r.get_f32()?,
            beta1: r.get_f32()?,
            beta2: r.get_f32()?,
            eps: r.get_f32()?,
            t: r.get_u64()?,
        }),
        _ => Err(CheckpointError::Corrupt { section: "meta" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::seeded;

    fn sample_checkpoint() -> TrainCheckpoint {
        let mut r = seeded(7);
        let mut t = |dims: &[usize]| duet_tensor::rng::normal(&mut r, dims, 0.0, 0.3);
        TrainCheckpoint {
            epoch: 5,
            optimizer: Optimizer::Adam {
                lr: 0.01,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                t: 40,
            },
            rng_state: [1, 2, 3, u64::MAX],
            extra: vec![4, 0, 2, 1, 3],
            params: vec![
                ParamState {
                    value: t(&[8, 4]),
                    moment1: t(&[8, 4]),
                    moment2: t(&[8, 4]),
                },
                ParamState {
                    value: t(&[8]),
                    moment1: t(&[8]),
                    moment2: t(&[8]),
                },
            ],
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let ck = sample_checkpoint();
        let back = TrainCheckpoint::decode(&ck.encode()).expect("decode");
        assert_eq!(ck, back);
    }

    #[test]
    fn all_optimizer_variants_round_trip() {
        for opt in [
            Optimizer::sgd(0.1),
            Optimizer::momentum(0.05),
            Optimizer::adam(0.001),
        ] {
            let mut ck = sample_checkpoint();
            ck.optimizer = opt.clone();
            let back = TrainCheckpoint::decode(&ck.encode()).expect("decode");
            assert_eq!(back.optimizer, opt);
        }
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let blob = sample_checkpoint().encode();
        let mut rng = seeded(11);
        for i in 0..blob.len() {
            let mut mutants = vec![blob[i] ^ 0x01, blob[i] ^ 0x80, blob[i] ^ 0xff];
            let random = rng.next_u64() as u8;
            if random != blob[i] {
                mutants.push(random);
            }
            for v in mutants {
                let mut m = blob.clone();
                m[i] = v;
                let out = TrainCheckpoint::decode(&m);
                assert!(
                    out.is_err(),
                    "byte {i} set to 0x{v:02x} decoded successfully"
                );
            }
        }
        assert!(TrainCheckpoint::decode(&blob).is_ok());
    }

    #[test]
    fn truncation_at_every_length_is_rejected() {
        let blob = sample_checkpoint().encode();
        for cut in 0..blob.len() {
            assert!(
                TrainCheckpoint::decode(&blob[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut blob = sample_checkpoint().encode();
        blob.push(0);
        assert!(matches!(
            TrainCheckpoint::decode(&blob),
            Err(CheckpointError::Corrupt { .. }) | Err(CheckpointError::Truncated)
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let blob = sample_checkpoint().encode();
        let mut bad_magic = blob.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            TrainCheckpoint::decode(&bad_magic),
            Err(CheckpointError::BadMagic { .. })
        ));
        let mut bad_version = blob;
        bad_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            TrainCheckpoint::decode(&bad_version),
            Err(CheckpointError::Version { found: 99 })
        ));
    }

    #[test]
    fn huge_claimed_tensor_is_rejected_without_allocation() {
        // Splice a tensor whose dims claim ~2^60 elements; the decoder
        // must reject against the actual byte count, not allocate.
        let ck = sample_checkpoint();
        let mut blob = ck.encode();
        // The first tensor's rank word sits right after the params count.
        // Walk: magic 4 + version 4; meta: 8 + 32 + (1 + 20 + 8) opt-adam
        // + 8 extra-count + 5*8 extra + 8 checksum; then 8 params count.
        let meta_len = 8 + 32 + (1 + 16 + 8) + 8 + 5 * 8 + 8;
        let dims_off = 8 + meta_len + 8 + 4; // + params count + rank word
        blob[dims_off..dims_off + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(TrainCheckpoint::decode(&blob).is_err());
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let ck = sample_checkpoint();
        let mut wrong = Param::new(Tensor::zeros(&[3, 3]));
        let err = ck.restore(|f| f(&mut wrong)).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
    }

    #[test]
    fn restore_rejects_count_mismatch() {
        let ck = sample_checkpoint();
        let mut only = Param::new(Tensor::zeros(&[8, 4]));
        let err = ck.restore(|f| f(&mut only)).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::Mismatch {
                what: "parameter count",
                ..
            }
        ));
    }

    #[test]
    fn save_is_atomic_and_load_round_trips() {
        let dir = std::env::temp_dir().join("duet_ckpt_test_atomic");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("mlp.ckpt");
        let ck = sample_checkpoint();
        ck.save(&path).expect("save");
        // No temporary file left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp file left behind");
        let back = TrainCheckpoint::load(&path).expect("load");
        assert_eq!(ck, back);
        // Overwriting is also atomic: save again with new content.
        let mut ck2 = ck.clone();
        ck2.epoch = 9;
        ck2.save(&path).expect("resave");
        assert_eq!(TrainCheckpoint::load(&path).expect("reload").epoch, 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = TrainCheckpoint::load(Path::new("/nonexistent/duet.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn display_impls() {
        assert!(CheckpointError::Truncated.to_string().contains("truncated"));
        assert!(CheckpointError::BadMagic { found: 0xbeef }
            .to_string()
            .contains("beef"));
        assert!(CheckpointError::Version { found: 3 }
            .to_string()
            .contains('3'));
        assert!(CheckpointError::Corrupt { section: "meta" }
            .to_string()
            .contains("meta"));
        assert!(CheckpointError::Io("gone".into())
            .to_string()
            .contains("gone"));
        assert!(CheckpointError::Mismatch {
            what: "parameter shape",
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("shape"));
    }
}
