//! # duet-workloads
//!
//! The benchmark model zoo and data substrate for the DUET reproduction:
//!
//! * [`models`] — layer-shape-faithful configs for AlexNet, VGG16,
//!   ResNet18, ResNet50 and the PTB-style LSTM/GRU and GNMT-style
//!   recurrent stacks the paper evaluates (§V-A),
//! * [`sparsity`] — per-layer activation-sensitivity calibration following
//!   the paper's Fig. 2 measurements,
//! * [`datasets`] — synthetic stand-ins for ImageNet/PTB/WMT16: Gaussian
//!   cluster classification, procedurally rendered shape images, and a
//!   Markov-chain text source (see DESIGN.md for the substitution
//!   rationale),
//! * [`trainer`] — real end-to-end training of small classifiers and
//!   language models whose layers become dual-module teachers,
//! * [`dualize`] — converting trained networks into dual-module form and
//!   measuring true accuracy/perplexity vs. savings (the Fig. 10 data),
//! * [`transformer`] — a tiny decoder-only transformer LM trained
//!   end-to-end and distilled per-projection into a dual transformer
//!   block (speculated Q/K/V/output and FFN projections, dense softmax).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod datasets;
pub mod dualize;
pub mod models;
pub mod seq2seq;
pub mod sparsity;
pub mod trainer;
pub mod transformer;

pub use models::{ConvShape, ModelZoo, RnnShape};
pub use sparsity::SparsityCalibration;
