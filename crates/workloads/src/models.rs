//! The benchmark model zoo (§V-A): layer-shape-faithful definitions of
//! the paper's CNN and RNN benchmarks.

use duet_tensor::im2col::ConvGeometry;

/// Shape of one CONV layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConvShape {
    /// Layer name.
    pub name: String,
    /// Input channels.
    pub in_channels: usize,
    /// Input spatial size (square).
    pub in_size: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel size (square).
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub padding: usize,
}

impl ConvShape {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        in_size: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self {
            name: name.into(),
            in_channels,
            in_size,
            out_channels,
            kernel,
            stride,
            padding,
        }
    }

    /// The corresponding tensor-level geometry.
    pub fn geometry(&self) -> ConvGeometry {
        ConvGeometry {
            in_channels: self.in_channels,
            in_h: self.in_size,
            in_w: self.in_size,
            kernel_h: self.kernel,
            kernel_w: self.kernel,
            stride: self.stride,
            padding: self.padding,
        }
    }

    /// Output spatial size (square).
    pub fn out_size(&self) -> usize {
        self.geometry().out_h()
    }

    /// Output positions `oh·ow`.
    pub fn positions(&self) -> usize {
        let s = self.out_size();
        s * s
    }

    /// Patch length `C·R·S` (MACs per output element).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Input element count `C·H·W`.
    pub fn input_elems(&self) -> usize {
        self.in_channels * self.in_size * self.in_size
    }

    /// Dense MACs of the layer.
    pub fn dense_macs(&self) -> u64 {
        (self.out_channels * self.positions() * self.patch_len()) as u64
    }

    /// Reduced dimension `k` for the approximate module: an eighth of the
    /// patch length, clamped to [16, 256] (the paper's Speculator is sized
    /// for this regime).
    pub fn reduced_dim(&self) -> usize {
        (self.patch_len() / 8).clamp(16, 256).min(self.patch_len())
    }
}

/// Shape of one recurrent layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RnnShape {
    /// Layer name.
    pub name: String,
    /// Gates (4 = LSTM, 3 = GRU).
    pub gates: usize,
    /// Input size.
    pub input: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Sequence length simulated.
    pub steps: usize,
}

impl RnnShape {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        gates: usize,
        input: usize,
        hidden: usize,
        steps: usize,
    ) -> Self {
        Self {
            name: name.into(),
            gates,
            input,
            hidden,
            steps,
        }
    }

    /// Total weight bytes at INT16 (both matrices, all gates).
    pub fn weight_bytes(&self) -> u64 {
        (self.gates * self.hidden * (self.input + self.hidden) * 2) as u64
    }
}

/// The paper's benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ModelZoo {
    /// AlexNet on ImageNet-shaped inputs.
    AlexNet,
    /// VGG16 (used in the Fig. 12(b) utilization study).
    Vgg16,
    /// ResNet18.
    ResNet18,
    /// ResNet50.
    ResNet50,
    /// Two-layer LSTM language model (PTB-style).
    LstmPtb,
    /// Two-layer GRU language model (PTB-style).
    GruPtb,
    /// GNMT-style stacked LSTM encoder–decoder (WMT16-style).
    Gnmt,
}

impl ModelZoo {
    /// All CNN benchmarks.
    pub fn cnns() -> Vec<ModelZoo> {
        vec![
            ModelZoo::AlexNet,
            ModelZoo::Vgg16,
            ModelZoo::ResNet18,
            ModelZoo::ResNet50,
        ]
    }

    /// All RNN benchmarks.
    pub fn rnns() -> Vec<ModelZoo> {
        vec![ModelZoo::LstmPtb, ModelZoo::GruPtb, ModelZoo::Gnmt]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelZoo::AlexNet => "AlexNet",
            ModelZoo::Vgg16 => "VGG16",
            ModelZoo::ResNet18 => "ResNet18",
            ModelZoo::ResNet50 => "ResNet50",
            ModelZoo::LstmPtb => "LSTM-PTB",
            ModelZoo::GruPtb => "GRU-PTB",
            ModelZoo::Gnmt => "GNMT",
        }
    }

    /// CONV layers of a CNN benchmark (empty for RNNs).
    pub fn conv_layers(&self) -> Vec<ConvShape> {
        match self {
            ModelZoo::AlexNet => alexnet(),
            ModelZoo::Vgg16 => vgg16(),
            ModelZoo::ResNet18 => resnet18(),
            ModelZoo::ResNet50 => resnet50(),
            _ => Vec::new(),
        }
    }

    /// Recurrent layers of an RNN benchmark (empty for CNNs).
    pub fn rnn_layers(&self) -> Vec<RnnShape> {
        match self {
            ModelZoo::LstmPtb => vec![
                RnnShape::new("lstm1", 4, 1024, 1024, 35),
                RnnShape::new("lstm2", 4, 1024, 1024, 35),
            ],
            ModelZoo::GruPtb => vec![
                RnnShape::new("gru1", 3, 1024, 1024, 35),
                RnnShape::new("gru2", 3, 1024, 1024, 35),
            ],
            ModelZoo::Gnmt => (0..8)
                .map(|i| RnnShape::new(format!("enc{}", i + 1), 4, 1024, 1024, 30))
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// AlexNet CONV layers (torchvision shapes).
pub fn alexnet() -> Vec<ConvShape> {
    vec![
        ConvShape::new("conv1", 3, 224, 64, 11, 4, 2),
        ConvShape::new("conv2", 64, 27, 192, 5, 1, 2),
        ConvShape::new("conv3", 192, 13, 384, 3, 1, 1),
        ConvShape::new("conv4", 384, 13, 256, 3, 1, 1),
        ConvShape::new("conv5", 256, 13, 256, 3, 1, 1),
    ]
}

/// VGG16 CONV layers.
pub fn vgg16() -> Vec<ConvShape> {
    let cfg: [(usize, usize, usize); 13] = [
        (3, 224, 64),
        (64, 224, 64),
        (64, 112, 128),
        (128, 112, 128),
        (128, 56, 256),
        (256, 56, 256),
        (256, 56, 256),
        (256, 28, 512),
        (512, 28, 512),
        (512, 28, 512),
        (512, 14, 512),
        (512, 14, 512),
        (512, 14, 512),
    ];
    cfg.iter()
        .enumerate()
        .map(|(i, &(c, s, k))| ConvShape::new(format!("conv{}", i + 1), c, s, k, 3, 1, 1))
        .collect()
}

/// ResNet18 CONV layers (stem + basic blocks + downsample projections).
pub fn resnet18() -> Vec<ConvShape> {
    let mut layers = vec![ConvShape::new("conv1", 3, 224, 64, 7, 2, 3)];
    let stages: [(usize, usize, usize); 4] = [(64, 56, 2), (128, 28, 2), (256, 14, 2), (512, 7, 2)];
    let mut in_c = 64;
    for (si, &(c, size, blocks)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let stride = if si > 0 && b == 0 { 2 } else { 1 };
            let in_size = if stride == 2 { size * 2 } else { size };
            layers.push(ConvShape::new(
                format!("l{}b{}c1", si + 1, b + 1),
                in_c,
                in_size,
                c,
                3,
                stride,
                1,
            ));
            layers.push(ConvShape::new(
                format!("l{}b{}c2", si + 1, b + 1),
                c,
                size,
                c,
                3,
                1,
                1,
            ));
            if b == 0 && in_c != c {
                layers.push(ConvShape::new(
                    format!("l{}down", si + 1),
                    in_c,
                    in_size,
                    c,
                    1,
                    stride,
                    0,
                ));
            }
            in_c = c;
        }
    }
    layers
}

/// ResNet50 CONV layers (stem + bottleneck blocks).
pub fn resnet50() -> Vec<ConvShape> {
    let mut layers = vec![ConvShape::new("conv1", 3, 224, 64, 7, 2, 3)];
    let stages: [(usize, usize, usize, usize); 4] = [
        (64, 256, 56, 3),
        (128, 512, 28, 4),
        (256, 1024, 14, 6),
        (512, 2048, 7, 3),
    ];
    let mut in_c = 64;
    for (si, &(mid, out, size, blocks)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let stride = if si > 0 && b == 0 { 2 } else { 1 };
            let in_size = if stride == 2 { size * 2 } else { size };
            let tag = format!("l{}b{}", si + 1, b + 1);
            layers.push(ConvShape::new(
                format!("{tag}c1"),
                in_c,
                in_size,
                mid,
                1,
                1,
                0,
            ));
            layers.push(ConvShape::new(
                format!("{tag}c2"),
                mid,
                in_size,
                mid,
                3,
                stride,
                1,
            ));
            layers.push(ConvShape::new(format!("{tag}c3"), mid, size, out, 1, 1, 0));
            if b == 0 {
                layers.push(ConvShape::new(
                    format!("l{}down", si + 1),
                    in_c,
                    in_size,
                    out,
                    1,
                    stride,
                    0,
                ));
            }
            in_c = out;
        }
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_shapes_match_reference() {
        let a = alexnet();
        assert_eq!(a.len(), 5);
        assert_eq!(a[0].out_size(), 55); // (224+4-11)/4+1
        assert_eq!(a[1].out_size(), 27);
        assert_eq!(a[2].out_size(), 13);
        // published MAC counts: conv1 ≈ 105.4M, conv2 ≈ 223.9M
        assert_eq!(a[0].dense_macs(), 55 * 55 * 64 * 363);
        assert!((a[1].dense_macs() as f64 - 223.9e6).abs() / 223.9e6 < 0.02);
    }

    #[test]
    fn vgg16_has_13_convs_and_big_macs() {
        let v = vgg16();
        assert_eq!(v.len(), 13);
        let total: u64 = v.iter().map(|l| l.dense_macs()).sum();
        // VGG16 conv MACs ≈ 15.3 GMACs
        assert!((total as f64 - 15.3e9).abs() / 15.3e9 < 0.05, "{total}");
    }

    #[test]
    fn resnet18_macs_close_to_published() {
        let r = resnet18();
        let total: u64 = r.iter().map(|l| l.dense_macs()).sum();
        // ResNet18 ≈ 1.8 GMACs
        assert!((total as f64 - 1.8e9).abs() / 1.8e9 < 0.1, "{total}");
    }

    #[test]
    fn resnet50_macs_close_to_published() {
        let r = resnet50();
        let total: u64 = r.iter().map(|l| l.dense_macs()).sum();
        // ResNet50 ≈ 4.1 GMACs
        assert!((total as f64 - 4.1e9).abs() / 4.1e9 < 0.1, "{total}");
    }

    #[test]
    fn resnet_channel_chains_are_consistent() {
        for model in [resnet18(), resnet50()] {
            for w in model.windows(2) {
                // output spatial size of layer i must be ≥ the next
                // layer's input size (pooling/stride only shrinks)
                assert!(w[0].out_size() >= 1);
            }
            for l in &model {
                assert!(l.out_size() >= 1, "degenerate layer {}", l.name);
            }
        }
    }

    #[test]
    fn rnn_weight_sizes_exceed_glb() {
        // the §IV-B premise: a gate matrix alone is 2 MiB
        let lstm = ModelZoo::LstmPtb.rnn_layers();
        assert_eq!(lstm.len(), 2);
        let per_gate = 1024 * 2048 * 2;
        assert!(per_gate > 1 << 20);
        assert_eq!(lstm[0].weight_bytes(), 4 * per_gate as u64);
    }

    #[test]
    fn zoo_enumeration() {
        assert_eq!(ModelZoo::cnns().len(), 4);
        assert_eq!(ModelZoo::rnns().len(), 3);
        for m in ModelZoo::cnns() {
            assert!(!m.conv_layers().is_empty());
            assert!(m.rnn_layers().is_empty());
        }
        for m in ModelZoo::rnns() {
            assert!(m.conv_layers().is_empty());
            assert!(!m.rnn_layers().is_empty());
        }
    }

    #[test]
    fn reduced_dims_bounded() {
        for m in ModelZoo::cnns() {
            for l in m.conv_layers() {
                let k = l.reduced_dim();
                assert!(k >= 16 || k == l.patch_len());
                assert!(k <= 256);
                assert!(k <= l.patch_len());
            }
        }
    }
}
