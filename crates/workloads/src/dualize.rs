//! Converting trained networks into dual-module form and measuring the
//! true quality-vs-savings trade-off (the data behind Fig. 10).

use crate::datasets::Classification;
use crate::trainer::CharLm;
use duet_core::dual_rnn::{DualGruCell, DualLstmCell, RnnThresholds};
use duet_core::{DualConvLayer, DualModuleLayer, SavingsReport, SwitchingPolicy};
use duet_nn::lstm::LstmState;
use duet_nn::{loss, Activation, Sequential};
use duet_tensor::im2col::{im2col, ConvGeometry};
use duet_tensor::rng::Rng;
use duet_tensor::{ops, Tensor};

/// A dual-module MLP: hidden ReLU layers run dual-module, the final
/// logits layer stays dense (no non-linearity to exploit).
#[derive(Debug, Clone)]
pub struct DualMlp {
    hidden: Vec<DualModuleLayer>,
    final_w: Tensor,
    final_b: Tensor,
}

impl DualMlp {
    /// Builds from a trained `linear → ReLU → … → linear` [`Sequential`],
    /// distilling each hidden layer's approximate module from calibration
    /// data.
    ///
    /// # Panics
    ///
    /// Panics if the network has no linear layers.
    pub fn from_sequential(
        net: &Sequential,
        calibration: &Classification,
        reduced_ratio: f64,
        r: &mut Rng,
    ) -> Self {
        let linears = net.linear_layers();
        let Some((last, hidden_layers)) = linears.split_last() else {
            panic!("network has no linear layers");
        };

        // Collect calibration activations layer by layer.
        let n = calibration.len().min(256);
        let d0 = calibration.inputs.shape().dim(1);
        let mut acts = Tensor::from_vec(calibration.inputs.data()[..n * d0].to_vec(), &[n, d0]);
        let mut hidden = Vec::with_capacity(hidden_layers.len());
        for l in hidden_layers {
            let k = ((l.in_features() as f64 * reduced_ratio) as usize).clamp(8, l.in_features());
            let dual = DualModuleLayer::learn_from_activations(
                l.weight(),
                l.bias(),
                Activation::Relu,
                k,
                &acts,
                r,
            );
            // propagate calibration data through the dense layer + ReLU
            let mut next = Tensor::zeros(&[n, l.out_features()]);
            for i in 0..n {
                let x = Tensor::from_vec(acts.row(i).to_vec(), &[l.in_features()]);
                let y = Activation::Relu.apply(&ops::affine(l.weight(), &x, l.bias()));
                next.row_mut(i).copy_from_slice(y.data());
            }
            acts = next;
            hidden.push(dual);
        }
        Self {
            hidden,
            final_w: last.weight().clone(),
            final_b: last.bias().clone(),
        }
    }

    /// The dualized hidden layers.
    pub fn hidden_layers(&self) -> &[DualModuleLayer] {
        &self.hidden
    }

    /// Mutable access to the dualized hidden layers — lets fault-injection
    /// harnesses corrupt or replace speculator state in place.
    pub fn hidden_layers_mut(&mut self) -> &mut [DualModuleLayer] {
        &mut self.hidden
    }

    /// Forward pass for one input vector at threshold θ.
    pub fn forward(&self, x: &Tensor, theta: f32) -> (Tensor, SavingsReport) {
        let mut cur = x.clone();
        let mut report = SavingsReport::new();
        for layer in &self.hidden {
            let out = layer.forward(&cur, &SwitchingPolicy::relu(theta));
            report += out.report;
            cur = out.output;
        }
        let logits = ops::affine(&self.final_w, &cur, &self.final_b);
        (logits, report)
    }

    /// Accuracy and aggregate savings over a dataset at threshold θ.
    pub fn evaluate(&self, data: &Classification, theta: f32) -> (f64, SavingsReport) {
        let d = data.inputs.shape().dim(1);
        let mut correct = 0usize;
        let mut report = SavingsReport::new();
        for i in 0..data.len() {
            let x = Tensor::from_vec(data.inputs.row(i).to_vec(), &[d]);
            let (logits, rep) = self.forward(&x, theta);
            report += rep;
            if ops::argmax(&logits) == data.labels[i] {
                correct += 1;
            }
        }
        (correct as f64 / data.len() as f64, report)
    }
}

/// A dual-module CNN classifier: the conv layer runs dual-module, pooling
/// and the classifier head stay dense.
#[derive(Debug, Clone)]
pub struct DualCnn {
    conv: DualConvLayer,
    geom: ConvGeometry,
    pool: usize,
    head_w: Tensor,
    head_b: Tensor,
}

impl DualCnn {
    /// Builds from a trained `conv → ReLU → pool → flatten → linear`
    /// [`Sequential`], distilling the conv's approximate module from real
    /// im2col patches of the calibration images.
    ///
    /// # Panics
    ///
    /// Panics if the network shape is not conv + linear.
    pub fn from_sequential(
        net: &Sequential,
        calibration: &Classification,
        reduced_ratio: f64,
        r: &mut Rng,
    ) -> Self {
        let convs = net.conv_layers();
        let linears = net.linear_layers();
        assert_eq!(convs.len(), 1, "expected exactly one conv layer");
        assert_eq!(linears.len(), 1, "expected exactly one linear head");
        let conv = convs[0];
        let geom = *conv.geometry();
        let kk = conv.out_channels();

        // Gather real patch columns as calibration activations.
        let dims = calibration.inputs.shape().dims().to_vec();
        let (c, s) = (dims[1], dims[2]);
        let img = c * s * s;
        let n_img = calibration.len().min(8);
        let mut patches: Vec<f32> = Vec::new();
        let mut count = 0usize;
        for i in 0..n_img {
            let sample = Tensor::from_vec(
                calibration.inputs.data()[i * img..(i + 1) * img].to_vec(),
                &[c, s, s],
            );
            let cols = im2col(&sample, &geom); // [patch, positions]
            let positions = cols.shape().dim(1);
            for p in (0..positions).step_by(3) {
                for row in 0..geom.patch_len() {
                    patches.push(cols.at(&[row, p]));
                }
                count += 1;
            }
        }
        let acts = Tensor::from_vec(patches, &[count, geom.patch_len()]);

        let k = ((geom.patch_len() as f64 * reduced_ratio) as usize).clamp(4, geom.patch_len());
        let fmat = conv.weight_matrix().clone();
        let approx = duet_core::distill::distill_linear_from_activations(
            &fmat,
            conv.bias(),
            duet_core::ApproxConfig::paper_default(k),
            &acts,
            r,
        );
        let filters = fmat.reshaped(&[kk, geom.in_channels, geom.kernel_h, geom.kernel_w]);
        let dual = DualConvLayer::new(geom, &filters, conv.bias().clone(), approx);

        Self {
            conv: dual,
            geom,
            pool: 2,
            head_w: linears[0].weight().clone(),
            head_b: linears[0].bias().clone(),
        }
    }

    /// Forward pass for one `[C, H, W]` image at threshold θ.
    pub fn forward(&self, image: &Tensor, theta: f32) -> (Tensor, SavingsReport) {
        let out = self
            .conv
            .forward(image, &SwitchingPolicy::relu(theta), None);
        // max pool
        let (kk, oh, ow) = (
            out.output.shape().dim(0),
            out.output.shape().dim(1),
            out.output.shape().dim(2),
        );
        let (ph, pw) = (oh / self.pool, ow / self.pool);
        let mut pooled = Tensor::zeros(&[kk * ph * pw]);
        for ch in 0..kk {
            for y in 0..ph {
                for x in 0..pw {
                    let mut best = f32::NEG_INFINITY;
                    for dy in 0..self.pool {
                        for dx in 0..self.pool {
                            best = best.max(out.output.at(&[
                                ch,
                                y * self.pool + dy,
                                x * self.pool + dx,
                            ]));
                        }
                    }
                    pooled.data_mut()[(ch * ph + y) * pw + x] = best;
                }
            }
        }
        let logits = ops::affine(&self.head_w, &pooled, &self.head_b);
        (logits, out.report)
    }

    /// Accuracy and savings over a dataset at threshold θ.
    pub fn evaluate(&self, data: &Classification, theta: f32) -> (f64, SavingsReport) {
        let dims = data.inputs.shape().dims().to_vec();
        let img: usize = dims[1..].iter().product();
        let mut correct = 0usize;
        let mut report = SavingsReport::new();
        for i in 0..data.len() {
            let x = Tensor::from_vec(
                data.inputs.data()[i * img..(i + 1) * img].to_vec(),
                &[dims[1], dims[2], dims[3]],
            );
            let (logits, rep) = self.forward(&x, theta);
            report += rep;
            if ops::argmax(&logits) == data.labels[i] {
                correct += 1;
            }
        }
        (correct as f64 / data.len() as f64, report)
    }

    /// The conv geometry (useful for trace building).
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geom
    }

    /// The dual-module conv layer (for direct access to switching maps
    /// and the approximate module).
    pub fn conv_layer(&self) -> &DualConvLayer {
        &self.conv
    }
}

/// Which dual recurrent cell a [`DualCharLm`] wraps.
#[derive(Debug, Clone)]
pub enum DualLmCell {
    /// Dual-module LSTM.
    Lstm(DualLstmCell),
    /// Dual-module GRU.
    Gru(DualGruCell),
}

/// A dual-module language model: the recurrent cell runs dual-module,
/// embedding and output projection stay dense.
#[derive(Debug, Clone)]
pub struct DualCharLm {
    lm: CharLm,
    cell: DualLmCell,
}

impl DualCharLm {
    /// Distills dual-module cells from a trained [`CharLm`].
    pub fn from_char_lm(lm: &CharLm, reduced_dim: usize, samples: usize, r: &mut Rng) -> Self {
        let cell = if let Some(c) = lm.lstm_cell() {
            DualLmCell::Lstm(DualLstmCell::learn(c, reduced_dim, samples, r))
        } else {
            DualLmCell::Gru(DualGruCell::learn(
                lm.gru_cell().expect("lm must hold lstm or gru"),
                reduced_dim,
                samples,
                r,
            ))
        };
        Self {
            lm: lm.clone(),
            cell,
        }
    }

    /// Mean NLL (nats/token) and savings over a token sequence at the
    /// given per-gate thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len() < 2`.
    pub fn nll(&self, tokens: &[usize], thresholds: &RnnThresholds) -> (f32, SavingsReport) {
        assert!(tokens.len() >= 2, "need at least two tokens");
        let steps = tokens.len() - 1;
        let steps_u64 = steps as u64;
        let hidden = self.lm.hidden();
        let vocab = self.lm.vocab();
        let mut state = LstmState::zeros(hidden);
        let mut gru_h = Tensor::zeros(&[hidden]);
        let mut total = 0.0f32;
        let mut report = SavingsReport::new();
        for t in 0..steps {
            let x = self.embed_token(tokens[t]);
            let h = match &self.cell {
                DualLmCell::Lstm(c) => {
                    let out = c.step(&x, &state, thresholds);
                    report += out.report;
                    state = LstmState {
                        h: out.h.clone(),
                        c: out.c,
                    };
                    out.h
                }
                DualLmCell::Gru(c) => {
                    let out = c.step(&x, &gru_h, thresholds);
                    report += out.report;
                    gru_h = out.h.clone();
                    out.h
                }
            };
            let logits = ops::affine(&self.lm.w_out.value, &h, &self.lm.b_out.value);
            let (l, _) = loss::cross_entropy(&logits.reshaped(&[1, vocab]), &[tokens[t + 1]]);
            total += l;
        }
        // The Speculator's QDR weights stay resident in its weight buffer
        // across time steps (§III-B pre-step); the per-step reports each
        // counted a fresh load, so amortize them back to a single fetch.
        report.speculator_weight_bytes /= steps_u64;
        (total / steps as f32, report)
    }

    /// Perplexity and savings at the given thresholds.
    pub fn perplexity(&self, tokens: &[usize], thresholds: &RnnThresholds) -> (f32, SavingsReport) {
        let (nll, rep) = self.nll(tokens, thresholds);
        (loss::perplexity(nll), rep)
    }

    /// Records per-step gate maps for trace building.
    pub fn record_gate_maps(
        &self,
        tokens: &[usize],
        thresholds: &RnnThresholds,
    ) -> Vec<Vec<duet_core::SwitchingMap>> {
        let hidden = self.lm.hidden();
        let mut state = LstmState::zeros(hidden);
        let mut gru_h = Tensor::zeros(&[hidden]);
        let mut all = Vec::new();
        for &tok in &tokens[..tokens.len().saturating_sub(1)] {
            let x = self.embed_token(tok);
            match &self.cell {
                DualLmCell::Lstm(c) => {
                    let out = c.step(&x, &state, thresholds);
                    state = LstmState {
                        h: out.h.clone(),
                        c: out.c,
                    };
                    all.push(out.gate_maps);
                }
                DualLmCell::Gru(c) => {
                    let out = c.step(&x, &gru_h, thresholds);
                    gru_h = out.h.clone();
                    all.push(out.gate_maps);
                }
            }
        }
        all
    }

    fn embed_token(&self, token: usize) -> Tensor {
        let vocab = self.lm.vocab();
        let emb = self.lm.embed.value.shape().dim(0);
        Tensor::from_vec(
            (0..emb)
                .map(|i| self.lm.embed.value.data()[i * vocab + token])
                .collect(),
            &[emb],
        )
    }
}

/// Generates calibration inputs by sampling rows of a dataset with
/// replacement (a quick bootstrap for distillation).
pub fn bootstrap_rows(data: &Classification, n: usize, r: &mut Rng) -> Tensor {
    let d = data.inputs.shape().dim(1);
    let mut out = Tensor::zeros(&[n, d]);
    for i in 0..n {
        let j = r.random_range(0..data.len());
        out.row_mut(i).copy_from_slice(data.inputs.row(j));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::trainer;
    use duet_tensor::rng::seeded;

    #[test]
    fn dual_mlp_matches_dense_at_never_switch() {
        let mut r = seeded(1);
        let data = datasets::gaussian_clusters(3, 12, 200, 5.0, &mut r);
        let mut net = trainer::train_mlp(&data, 24, 25, &mut r);
        let dense_acc = trainer::evaluate_classifier(&mut net, &data);

        let dual = DualMlp::from_sequential(&net, &data, 0.5, &mut r);
        // θ = −∞ keeps every ReLU output sensitive → identical accuracy
        let (acc, rep) = dual.evaluate(&data, f32::NEG_INFINITY);
        assert!((acc - dense_acc).abs() < 1e-9, "{acc} vs {dense_acc}");
        assert_eq!(rep.approximate_fraction(), 0.0);
    }

    #[test]
    fn dual_mlp_saves_flops_with_small_accuracy_loss() {
        let mut r = seeded(2);
        let data = datasets::gaussian_clusters(3, 12, 300, 5.0, &mut r);
        let mut net = trainer::train_mlp(&data, 32, 30, &mut r);
        let dense_acc = trainer::evaluate_classifier(&mut net, &data);

        let dual = DualMlp::from_sequential(&net, &data, 0.5, &mut r);
        let (acc, rep) = dual.evaluate(&data, 0.0);
        assert!(
            rep.flops_reduction() > 1.2,
            "reduction {}",
            rep.flops_reduction()
        );
        assert!(
            acc >= dense_acc - 0.05,
            "accuracy {acc} vs dense {dense_acc}"
        );
    }

    #[test]
    fn dual_mlp_quality_degrades_monotonically_in_theta() {
        let mut r = seeded(3);
        let data = datasets::gaussian_clusters(4, 10, 200, 4.0, &mut r);
        let net = trainer::train_mlp(&data, 24, 25, &mut r);
        let dual = DualMlp::from_sequential(&net, &data, 0.5, &mut r);

        let (_, rep_low) = dual.evaluate(&data, -10.0);
        let (_, rep_high) = dual.evaluate(&data, 10.0);
        assert!(rep_high.approximate_fraction() > rep_low.approximate_fraction());
        assert!(rep_high.flops_reduction() > rep_low.flops_reduction());
    }

    #[test]
    fn dual_cnn_roundtrip() {
        let mut r = seeded(4);
        let data = datasets::shape_images(120, 9, 0.05, &mut r);
        let mut net = trainer::train_cnn(&data, 6, 10, &mut r);
        let dense_acc = trainer::evaluate_classifier(&mut net, &data);
        let dual = DualCnn::from_sequential(&net, &data, 0.5, &mut r);
        let (acc_exact, _) = dual.evaluate(&data, f32::NEG_INFINITY);
        assert!(
            (acc_exact - dense_acc).abs() < 0.02,
            "{acc_exact} vs {dense_acc}"
        );
        let (acc, rep) = dual.evaluate(&data, 0.0);
        assert!(rep.mac_skip_fraction() > 0.1);
        assert!(acc >= dense_acc - 0.1, "{acc} vs {dense_acc}");
    }

    #[test]
    fn dual_lm_tracks_dense_perplexity_when_conservative() {
        let mut r = seeded(5);
        let source = datasets::MarkovText::new(12, 3, &mut r);
        let lm = trainer::train_char_lm(&source, true, 12, 24, 50, 20, &mut r);
        let test = source.sample(150, &mut r);
        let dense_ppl = lm.perplexity(&test);

        let dual = DualCharLm::from_char_lm(&lm, 16, 300, &mut r);
        let (ppl, rep) = dual.perplexity(&test, &RnnThresholds::never_switch());
        assert!(
            (ppl - dense_ppl).abs() < dense_ppl * 0.02,
            "{ppl} vs {dense_ppl}"
        );
        assert_eq!(rep.approximate_fraction(), 0.0);
    }

    #[test]
    fn dual_lm_saves_weight_accesses_with_bounded_ppl_loss() {
        let mut r = seeded(6);
        let source = datasets::MarkovText::new(12, 3, &mut r);
        let lm = trainer::train_char_lm(&source, true, 12, 32, 150, 25, &mut r);
        let test = source.sample(150, &mut r);
        let dense_ppl = lm.perplexity(&test);

        let dual = DualCharLm::from_char_lm(&lm, 24, 400, &mut r);
        let th = RnnThresholds {
            theta_sigmoid: 2.0,
            theta_tanh: 1.5,
        };
        let (ppl, rep) = dual.perplexity(&test, &th);
        assert!(rep.approximate_fraction() > 0.02, "no switching happened");
        assert!(ppl < dense_ppl * 1.5, "ppl {ppl} vs dense {dense_ppl}");
    }

    #[test]
    fn recorded_gate_maps_have_right_shape() {
        let mut r = seeded(7);
        let source = datasets::MarkovText::new(10, 2, &mut r);
        let lm = trainer::train_char_lm(&source, false, 10, 16, 30, 15, &mut r);
        let dual = DualCharLm::from_char_lm(&lm, 12, 200, &mut r);
        let tokens = source.sample(10, &mut r);
        let maps = dual.record_gate_maps(&tokens, &RnnThresholds::never_switch());
        assert_eq!(maps.len(), 9);
        assert_eq!(maps[0].len(), 3); // GRU gates
        assert_eq!(maps[0][0].len(), 16);
    }
}
