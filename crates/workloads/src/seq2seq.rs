//! A GNMT-class sequence-to-sequence substrate: LSTM encoder, LSTM
//! decoder with dot-product attention, trained on a synthetic
//! "translation" task (sequence reversal — the classic diagnostic that
//! genuinely requires attention/memory).
//!
//! The paper evaluates DUET on GNMT / WMT16 machine translation; this is
//! the faithful small-scale stand-in (DESIGN.md §2): the same
//! architecture class, a measurable quality metric (token accuracy), and
//! dual-module processing applied to both recurrent cells.

use crate::checkpoint::{CheckpointError, TrainCheckpoint};
use duet_core::dual_rnn::{DualLstmCell, RnnThresholds};
use duet_core::SavingsReport;
use duet_nn::attention::{attend, attend_backward_self};
use duet_nn::layer::Param;
use duet_nn::loss;
use duet_nn::lstm::LstmState;
use duet_nn::{LstmCell, Optimizer};
use duet_tensor::rng::Rng;
use duet_tensor::{ops, Tensor};

/// The beginning-of-sequence token (index 0).
pub const BOS: usize = 0;

/// A synthetic translation task: target = reverse(source). Source tokens
/// are drawn from `1..vocab` (0 is reserved for BOS).
#[derive(Debug, Clone, Copy)]
pub struct ReversalTask {
    /// Vocabulary size (including BOS).
    pub vocab: usize,
    /// Sequence length.
    pub len: usize,
}

impl ReversalTask {
    /// Samples a (source, target) pair.
    pub fn sample(&self, r: &mut Rng) -> (Vec<usize>, Vec<usize>) {
        let src: Vec<usize> = (0..self.len)
            .map(|_| r.random_range(1..self.vocab))
            .collect();
        let mut tgt = src.clone();
        tgt.reverse();
        (src, tgt)
    }
}

/// LSTM encoder–decoder with dot-product attention.
#[derive(Debug, Clone)]
pub struct Seq2Seq {
    embed_src: Param, // [emb, vocab]
    embed_tgt: Param, // [emb, vocab]
    encoder: LstmCell,
    decoder: LstmCell,
    w_combine: Param, // [h, 2h]
    b_combine: Param, // [h]
    w_out: Param,     // [vocab, h]
    b_out: Param,     // [vocab]
    vocab: usize,
    emb: usize,
    hidden: usize,
}

impl Seq2Seq {
    /// Creates an untrained model.
    pub fn new(vocab: usize, emb: usize, hidden: usize, r: &mut Rng) -> Self {
        Self {
            embed_src: Param::new(duet_nn::init::lecun_uniform(r, &[emb, vocab], vocab)),
            embed_tgt: Param::new(duet_nn::init::lecun_uniform(r, &[emb, vocab], vocab)),
            encoder: LstmCell::new(emb, hidden, r),
            decoder: LstmCell::new(emb, hidden, r),
            w_combine: Param::new(duet_nn::init::lecun_uniform(
                r,
                &[hidden, 2 * hidden],
                2 * hidden,
            )),
            b_combine: Param::new(Tensor::zeros(&[hidden])),
            w_out: Param::new(duet_nn::init::lecun_uniform(r, &[vocab, hidden], hidden)),
            b_out: Param::new(Tensor::zeros(&[vocab])),
            vocab,
            emb,
            hidden,
        }
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// The encoder cell (teacher for dual-module distillation).
    pub fn encoder(&self) -> &LstmCell {
        &self.encoder
    }

    /// The decoder cell.
    pub fn decoder(&self) -> &LstmCell {
        &self.decoder
    }

    fn embed(&self, table: &Param, token: usize) -> Tensor {
        Tensor::from_vec(
            (0..self.emb)
                .map(|i| table.value.data()[i * self.vocab + token])
                .collect(),
            &[self.emb],
        )
    }

    fn output_head(&self, h_dec: &Tensor, ctx: &Tensor) -> (Tensor, Tensor, Tensor) {
        let mut cat = Tensor::zeros(&[2 * self.hidden]);
        cat.data_mut()[..self.hidden].copy_from_slice(h_dec.data());
        cat.data_mut()[self.hidden..].copy_from_slice(ctx.data());
        let pre = ops::affine(&self.w_combine.value, &cat, &self.b_combine.value);
        let comb = pre.map(|v| v.tanh());
        let logits = ops::affine(&self.w_out.value, &comb, &self.b_out.value);
        (logits, comb, cat)
    }

    /// One teacher-forced training step on a (source, target) pair;
    /// returns the mean token loss.
    ///
    /// # Panics
    ///
    /// Panics if source or target is empty.
    pub fn train_step(&mut self, src: &[usize], tgt: &[usize], opt: &mut Optimizer) -> f32 {
        assert!(!src.is_empty() && !tgt.is_empty(), "empty sequence");
        let h = self.hidden;
        let steps = tgt.len();

        // --- encoder forward ---
        let xs_src: Vec<Tensor> = src
            .iter()
            .map(|&t| self.embed(&self.embed_src, t))
            .collect();
        let (enc_states, enc_caches) = self.encoder.forward_sequence(&xs_src);
        let mut enc_hs = Tensor::zeros(&[src.len(), h]);
        for (t, s) in enc_states.iter().enumerate() {
            enc_hs.row_mut(t).copy_from_slice(s.h.data());
        }

        // --- decoder forward (teacher forcing) ---
        let dec_inputs: Vec<usize> = std::iter::once(BOS)
            .chain(tgt[..steps - 1].iter().copied())
            .collect();
        let xs_tgt: Vec<Tensor> = dec_inputs
            .iter()
            .map(|&t| self.embed(&self.embed_tgt, t))
            .collect();
        let (dec_states, dec_caches) = self.decoder.forward_sequence(&xs_tgt);

        // --- attention + head, accumulating grads ---
        self.zero_grads();
        let mut total_loss = 0.0f32;
        let mut dh_dec = vec![Tensor::zeros(&[h]); steps];
        let mut d_enc = Tensor::zeros(&[src.len(), h]);
        for t in 0..steps {
            let h_dec = &dec_states[t].h;
            let (ctx, cache) = attend(h_dec, &enc_hs, &enc_hs);
            let (logits, comb, cat) = self.output_head(h_dec, &ctx);
            let (l, dlogits_row) =
                loss::cross_entropy(&logits.reshaped(&[1, self.vocab]), &[tgt[t]]);
            total_loss += l;
            let dlogits = dlogits_row.reshaped(&[self.vocab]);

            // head backward
            duet_nn::layer::outer_accumulate(&mut self.w_out.grad, &dlogits, &comb);
            ops::axpy(1.0, &dlogits, &mut self.b_out.grad);
            let dcomb = ops::gemv(&self.w_out.value.transposed(), &dlogits);
            let dpre = ops::hadamard(&dcomb, &comb.map(|v| 1.0 - v * v));
            duet_nn::layer::outer_accumulate(&mut self.w_combine.grad, &dpre, &cat);
            ops::axpy(1.0, &dpre, &mut self.b_combine.grad);
            let dcat = ops::gemv(&self.w_combine.value.transposed(), &dpre);
            let dh_part = Tensor::from_vec(dcat.data()[..h].to_vec(), &[h]);
            let dctx = Tensor::from_vec(dcat.data()[h..].to_vec(), &[h]);

            // attention backward
            let (dq, denc_t) = attend_backward_self(&cache, &dctx);
            ops::axpy(1.0, &dh_part, &mut dh_dec[t]);
            ops::axpy(1.0, &dq, &mut dh_dec[t]);
            ops::axpy(1.0, &denc_t, &mut d_enc);
        }

        // --- BPTT through decoder and encoder ---
        let dxs_dec = self.decoder.backward_sequence(&dec_caches, &dh_dec);
        for (t, dx) in dxs_dec.iter().enumerate() {
            let token = dec_inputs[t];
            for i in 0..self.emb {
                self.embed_tgt.grad.data_mut()[i * self.vocab + token] += dx.data()[i];
            }
        }
        let denc_rows: Vec<Tensor> = (0..src.len())
            .map(|t| Tensor::from_vec(d_enc.row(t).to_vec(), &[h]))
            .collect();
        let dxs_enc = self.encoder.backward_sequence(&enc_caches, &denc_rows);
        for (t, dx) in dxs_enc.iter().enumerate() {
            let token = src[t];
            for i in 0..self.emb {
                self.embed_src.grad.data_mut()[i * self.vocab + token] += dx.data()[i];
            }
        }

        opt.tick();
        self.visit_params(&mut |p| opt.step(p));
        total_loss / steps as f32
    }

    /// Greedy decoding: returns the predicted target sequence.
    pub fn translate(&self, src: &[usize], max_len: usize) -> Vec<usize> {
        let xs_src: Vec<Tensor> = src
            .iter()
            .map(|&t| self.embed(&self.embed_src, t))
            .collect();
        let (enc_states, _) = self.encoder.forward_sequence(&xs_src);
        let h = self.hidden;
        let mut enc_hs = Tensor::zeros(&[src.len(), h]);
        for (t, s) in enc_states.iter().enumerate() {
            enc_hs.row_mut(t).copy_from_slice(s.h.data());
        }

        let mut out = Vec::with_capacity(max_len);
        let mut state = LstmState::zeros(h);
        let mut prev = BOS;
        for _ in 0..max_len {
            let x = self.embed(&self.embed_tgt, prev);
            let (next, _) = self.decoder.step(&x, &state);
            state = next;
            let (ctx, _) = attend(&state.h, &enc_hs, &enc_hs);
            let (logits, _, _) = self.output_head(&state.h, &ctx);
            let tok = ops::argmax(&logits);
            out.push(tok);
            prev = tok;
        }
        out
    }

    /// Token accuracy of greedy decoding over sampled task instances.
    pub fn token_accuracy(&self, task: &ReversalTask, samples: usize, r: &mut Rng) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for _ in 0..samples {
            let (src, tgt) = task.sample(r);
            let pred = self.translate(&src, tgt.len());
            for (p, t) in pred.iter().zip(&tgt) {
                if p == t {
                    correct += 1;
                }
                total += 1;
            }
        }
        correct as f64 / total as f64
    }

    /// Visits every trainable parameter.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.embed_src);
        f(&mut self.embed_tgt);
        self.encoder.visit_params(f);
        self.decoder.visit_params(f);
        f(&mut self.w_combine);
        f(&mut self.b_combine);
        f(&mut self.w_out);
        f(&mut self.b_out);
    }

    /// Zeroes all gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

/// Trains a [`Seq2Seq`] on the reversal task.
pub fn train_seq2seq(
    task: &ReversalTask,
    emb: usize,
    hidden: usize,
    iterations: usize,
    r: &mut Rng,
) -> Seq2Seq {
    let mut model = Seq2Seq::new(task.vocab, emb, hidden, r);
    let mut opt = Optimizer::adam(0.005);
    for _ in 0..iterations {
        let (src, tgt) = task.sample(r);
        model.train_step(&src, &tgt, &mut opt);
    }
    model
}

/// Crash-safe variant of [`train_seq2seq`]: checkpoints to `path` every
/// `every` completed iterations and, if `path` already holds a
/// checkpoint, resumes from it instead of starting over.
///
/// Resume is **bitwise** exact, exactly as for
/// [`crate::trainer::train_mlp_with_checkpoints`]: the snapshot carries
/// the parameters, Adam moments and step counter, and the RNG state;
/// this trainer has no loop-private state beyond the RNG (task pairs
/// are sampled fresh each iteration), so `extra` stays empty.
///
/// # Errors
///
/// [`CheckpointError`] if an existing checkpoint cannot be read, does
/// not fit this model, or a snapshot cannot be written.
///
/// # Panics
///
/// Panics if `every == 0`.
pub fn train_seq2seq_with_checkpoints(
    task: &ReversalTask,
    emb: usize,
    hidden: usize,
    iterations: usize,
    r: &mut Rng,
    path: &std::path::Path,
    every: usize,
) -> Result<Seq2Seq, CheckpointError> {
    assert!(
        every >= 1,
        "checkpoint interval must be at least 1 iteration"
    );
    let mut model = Seq2Seq::new(task.vocab, emb, hidden, r);
    let mut opt = Optimizer::adam(0.005);
    let mut start = 0usize;
    if path.exists() {
        let ck = TrainCheckpoint::load(path)?;
        ck.restore(|f| model.visit_params(f))?;
        if !ck.extra.is_empty() {
            return Err(CheckpointError::Mismatch {
                what: "loop state length",
                expected: 0,
                found: ck.extra.len() as u64,
            });
        }
        opt = ck.optimizer.clone();
        *r = Rng::from_state(ck.rng_state);
        start = ck.epoch as usize;
        duet_obs::counter!("workloads.checkpoint.resumes").inc();
    }
    for iteration in start..iterations {
        let _iter_span = duet_obs::span_lazy("workloads.train.window", || {
            format!("seq2seq/it{iteration}")
        });
        let (src, tgt) = task.sample(r);
        model.train_step(&src, &tgt, &mut opt);
        if (iteration + 1) % every == 0 {
            let ck = TrainCheckpoint::capture(
                (iteration + 1) as u64,
                opt.clone(),
                r.state(),
                vec![],
                |f| model.visit_params(f),
            );
            ck.save(path)?;
            duet_obs::counter!("workloads.checkpoint.saves").inc();
        }
    }
    Ok(model)
}

/// A dual-module seq2seq: both recurrent cells distilled, attention and
/// output head dense.
#[derive(Debug, Clone)]
pub struct DualSeq2Seq {
    model: Seq2Seq,
    dual_encoder: DualLstmCell,
    dual_decoder: DualLstmCell,
}

impl DualSeq2Seq {
    /// Distills dual cells from a trained model.
    pub fn from_model(model: &Seq2Seq, reduced_dim: usize, samples: usize, r: &mut Rng) -> Self {
        Self {
            model: model.clone(),
            dual_encoder: DualLstmCell::learn(&model.encoder, reduced_dim, samples, r),
            dual_decoder: DualLstmCell::learn(&model.decoder, reduced_dim, samples, r),
        }
    }

    /// Greedy decoding through the dual cells; returns the prediction and
    /// aggregate savings.
    pub fn translate(
        &self,
        src: &[usize],
        max_len: usize,
        thresholds: &RnnThresholds,
    ) -> (Vec<usize>, SavingsReport) {
        let m = &self.model;
        let h = m.hidden;
        let mut report = SavingsReport::new();

        let mut enc_hs = Tensor::zeros(&[src.len(), h]);
        let mut state = LstmState::zeros(h);
        for (t, &tok) in src.iter().enumerate() {
            let x = m.embed(&m.embed_src, tok);
            let out = self.dual_encoder.step(&x, &state, thresholds);
            report += out.report;
            state = LstmState {
                h: out.h.clone(),
                c: out.c,
            };
            enc_hs.row_mut(t).copy_from_slice(out.h.data());
        }

        let mut out_tokens = Vec::with_capacity(max_len);
        let mut dstate = LstmState::zeros(h);
        let mut prev = BOS;
        for _ in 0..max_len {
            let x = m.embed(&m.embed_tgt, prev);
            let sout = self.dual_decoder.step(&x, &dstate, thresholds);
            report += sout.report;
            dstate = LstmState {
                h: sout.h.clone(),
                c: sout.c,
            };
            let (ctx, _) = attend(&dstate.h, &enc_hs, &enc_hs);
            let (logits, _, _) = m.output_head(&dstate.h, &ctx);
            let tok = ops::argmax(&logits);
            out_tokens.push(tok);
            prev = tok;
        }
        // QDR weights are buffer-resident across steps: amortize
        report.speculator_weight_bytes /= (src.len() + max_len).max(1) as u64;
        (out_tokens, report)
    }

    /// Token accuracy and savings over sampled task instances.
    pub fn token_accuracy(
        &self,
        task: &ReversalTask,
        samples: usize,
        thresholds: &RnnThresholds,
        r: &mut Rng,
    ) -> (f64, SavingsReport) {
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut report = SavingsReport::new();
        for _ in 0..samples {
            let (src, tgt) = task.sample(r);
            let (pred, rep) = self.translate(&src, tgt.len(), thresholds);
            report += rep;
            for (p, t) in pred.iter().zip(&tgt) {
                if p == t {
                    correct += 1;
                }
                total += 1;
            }
        }
        (correct as f64 / total as f64, report)
    }
}

/// BLEU-like n-gram precision proxy (unigram + bigram geometric mean) —
/// the quality axis the paper uses for GNMT, approximated for short
/// synthetic sequences.
pub fn bleu2(pred: &[usize], reference: &[usize]) -> f64 {
    if pred.is_empty() || reference.is_empty() {
        return 0.0;
    }
    let unigram = {
        let hit = pred.iter().filter(|t| reference.contains(t)).count();
        hit as f64 / pred.len() as f64
    };
    if pred.len() < 2 || reference.len() < 2 {
        return unigram;
    }
    let ref_bigrams: Vec<(usize, usize)> = reference.windows(2).map(|w| (w[0], w[1])).collect();
    let hit2 = pred
        .windows(2)
        .filter(|w| ref_bigrams.contains(&(w[0], w[1])))
        .count();
    let bigram = hit2 as f64 / (pred.len() - 1) as f64;
    (unigram * bigram).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::seeded;

    #[test]
    fn untrained_model_is_near_chance() {
        let mut r = seeded(1);
        let task = ReversalTask { vocab: 10, len: 4 };
        let model = Seq2Seq::new(10, 12, 16, &mut r);
        let acc = model.token_accuracy(&task, 20, &mut r);
        assert!(acc < 0.45, "untrained accuracy {acc}");
    }

    #[test]
    fn training_reduces_loss() {
        let mut r = seeded(2);
        let task = ReversalTask { vocab: 8, len: 4 };
        let mut model = Seq2Seq::new(8, 12, 20, &mut r);
        let mut opt = Optimizer::adam(0.01);
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..300 {
            let (src, tgt) = task.sample(&mut r);
            let l = model.train_step(&src, &tgt, &mut opt);
            if i == 0 {
                first = l;
            }
            last = l;
        }
        assert!(last < first * 0.9, "{first} -> {last}");
    }

    #[test]
    fn learns_reversal_above_chance() {
        let mut r = seeded(3);
        let task = ReversalTask { vocab: 8, len: 4 };
        let model = train_seq2seq(&task, 16, 32, 2500, &mut r);
        let acc = model.token_accuracy(&task, 30, &mut r);
        // chance ≈ 1/7 ≈ 0.14; 2 500 Adam steps reach ~0.86, 4 000 reach 1.0
        assert!(acc > 0.7, "trained accuracy {acc}");
    }

    #[test]
    fn dual_never_switch_matches_dense_translation() {
        let mut r = seeded(4);
        let task = ReversalTask { vocab: 8, len: 4 };
        let model = train_seq2seq(&task, 12, 20, 150, &mut r);
        let dual = DualSeq2Seq::from_model(&model, 16, 300, &mut r);
        for _ in 0..5 {
            let (src, tgt) = task.sample(&mut r);
            let dense = model.translate(&src, tgt.len());
            let (pred, rep) = dual.translate(&src, tgt.len(), &RnnThresholds::never_switch());
            assert_eq!(dense, pred, "conservative dual decode diverged");
            assert_eq!(rep.approximate_fraction(), 0.0);
        }
    }

    #[test]
    fn dual_switching_saves_with_bounded_quality_loss() {
        let mut r = seeded(5);
        let task = ReversalTask { vocab: 8, len: 4 };
        let model = train_seq2seq(&task, 16, 32, 1200, &mut r);
        let dense_acc = model.token_accuracy(&task, 30, &mut seeded(50));
        let dual = DualSeq2Seq::from_model(&model, 24, 400, &mut r);
        // Autoregressive decoding compounds errors, so translation
        // tolerates less approximation than language modeling — exactly
        // the tighter GNMT trade-off visible in the paper's Fig. 10.
        // Conservative thresholds keep quality while still skipping rows.
        let th = RnnThresholds {
            theta_sigmoid: 4.0,
            theta_tanh: 3.0,
        };
        let (acc, rep) = dual.token_accuracy(&task, 30, &th, &mut seeded(50));
        assert!(
            acc > dense_acc - 0.15,
            "dual accuracy {acc} vs dense {dense_acc}"
        );
        assert!(
            rep.approximate_fraction() > 0.05,
            "no switching happened: {}",
            rep.approximate_fraction()
        );
        assert!(
            rep.weight_access_reduction() > 1.0,
            "no fetch saving: {}",
            rep.weight_access_reduction()
        );
    }

    fn param_bits(model: &mut Seq2Seq) -> Vec<u32> {
        let mut out = Vec::new();
        model.visit_params(&mut |p| out.extend(p.value.data().iter().map(|v| v.to_bits())));
        out
    }

    #[test]
    fn checkpointed_run_without_checkpoint_matches_plain_training_bitwise() {
        let dir = std::env::temp_dir().join("duet_ckpt_test_seq2seq_plain");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("seq2seq.ckpt");
        std::fs::remove_file(&path).ok();

        let task = ReversalTask { vocab: 6, len: 3 };
        let mut plain = train_seq2seq(&task, 8, 12, 6, &mut seeded(40));
        let mut ckpt = train_seq2seq_with_checkpoints(&task, 8, 12, 6, &mut seeded(40), &path, 2)
            .expect("checkpointed run");
        assert_eq!(param_bits(&mut plain), param_bits(&mut ckpt));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_and_resume_reproduces_uninterrupted_weights_bitwise() {
        let dir = std::env::temp_dir().join("duet_ckpt_test_seq2seq_resume");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("seq2seq.ckpt");
        std::fs::remove_file(&path).ok();

        let task = ReversalTask { vocab: 6, len: 3 };
        let mut full = train_seq2seq(&task, 8, 12, 9, &mut seeded(41));

        // "Crash" after 4 iterations: a checkpoint remains on disk.
        train_seq2seq_with_checkpoints(&task, 8, 12, 4, &mut seeded(41), &path, 1)
            .expect("interrupted run");
        // Relaunch with identical arguments; it must resume at iteration 4.
        let mut resumed =
            train_seq2seq_with_checkpoints(&task, 8, 12, 9, &mut seeded(41), &path, 1)
                .expect("resumed run");

        assert_eq!(
            param_bits(&mut full),
            param_bits(&mut resumed),
            "resume must be bitwise identical to the uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bleu2_properties() {
        let a = [1usize, 2, 3, 4];
        assert!((bleu2(&a, &a) - 1.0).abs() < 1e-9);
        assert_eq!(bleu2(&a, &[9, 9, 9, 9]), 0.0);
        let half = bleu2(&[1, 2, 9, 9], &a);
        assert!(half > 0.0 && half < 1.0);
    }
}
