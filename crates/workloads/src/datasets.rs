//! Synthetic datasets standing in for ImageNet / PTB / WMT16.
//!
//! See DESIGN.md §2: the dual-module algorithm's behaviour depends on
//! pre-activation distributions and layer shapes, not on the semantic
//! content of the data, so procedurally generated tasks with measurable
//! accuracy/perplexity exercise the full pipeline end-to-end.

use duet_tensor::rng::Rng;
use duet_tensor::{rng, Tensor};

/// A labelled classification dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Inputs, one row per sample (`[n, d]` for vectors,
    /// `[n, c, h, w]` for images).
    pub inputs: Tensor,
    /// Integer class labels, one per sample.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Classification {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Splits into `(train, test)` at sample index `at`. Both halves keep
    /// the same underlying distribution — use this rather than generating
    /// two datasets, which would draw *different* cluster centers.
    ///
    /// # Panics
    ///
    /// Panics if `at` is 0 or ≥ the sample count.
    pub fn split_at(&self, at: usize) -> (Classification, Classification) {
        assert!(at > 0 && at < self.len(), "split index out of range");
        let dims = self.inputs.shape().dims().to_vec();
        let sample: usize = dims[1..].iter().product();
        let mk = |range: std::ops::Range<usize>| {
            let mut d = vec![range.end - range.start];
            d.extend_from_slice(&dims[1..]);
            Classification {
                inputs: Tensor::from_vec(
                    self.inputs.data()[range.start * sample..range.end * sample].to_vec(),
                    &d,
                ),
                labels: self.labels[range].to_vec(),
                classes: self.classes,
            }
        };
        (mk(0..at), mk(at..self.len()))
    }
}

/// Gaussian-cluster classification: `classes` isotropic clusters in `d`
/// dimensions with centers of norm `separation`.
///
/// # Panics
///
/// Panics if `classes == 0`, `d == 0`, or `samples == 0`.
pub fn gaussian_clusters(
    classes: usize,
    d: usize,
    samples: usize,
    separation: f32,
    r: &mut Rng,
) -> Classification {
    assert!(classes > 0 && d > 0 && samples > 0, "degenerate dataset");
    let centers: Vec<Tensor> = (0..classes)
        .map(|_| {
            let c = rng::normal(r, &[d], 0.0, 1.0);
            let norm = c.norm_sq().sqrt().max(1e-6);
            c.map(|v| v / norm * separation)
        })
        .collect();
    let mut inputs = Tensor::zeros(&[samples, d]);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        let cls = r.random_range(0..classes);
        let noise = rng::normal(r, &[d], 0.0, 1.0);
        for j in 0..d {
            inputs.data_mut()[i * d + j] = centers[cls].data()[j] + noise.data()[j];
        }
        labels.push(cls);
    }
    Classification {
        inputs,
        labels,
        classes,
    }
}

/// Procedurally rendered shape images (`[n, 1, size, size]`), three
/// classes: horizontal bar, vertical bar, centered cross — plus pixel
/// noise. A stand-in for image classification that a small CNN can
/// genuinely learn.
///
/// # Panics
///
/// Panics if `size < 5` or `samples == 0`.
pub fn shape_images(samples: usize, size: usize, noise: f32, r: &mut Rng) -> Classification {
    assert!(size >= 5, "images must be at least 5x5");
    assert!(samples > 0, "need at least one sample");
    let mut inputs = Tensor::zeros(&[samples, 1, size, size]);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        let cls = r.random_range(0..3usize);
        let base = i * size * size;
        let row = r.random_range(1..size - 1);
        let col = r.random_range(1..size - 1);
        let img = &mut inputs.data_mut()[base..base + size * size];
        match cls {
            0 => {
                for x in 0..size {
                    img[row * size + x] = 1.0;
                }
            }
            1 => {
                for y in 0..size {
                    img[y * size + col] = 1.0;
                }
            }
            _ => {
                for x in 0..size {
                    img[row * size + x] = 1.0;
                }
                for y in 0..size {
                    img[y * size + col] = 1.0;
                }
            }
        }
        for p in img.iter_mut() {
            *p += noise * (r.random::<f32>() * 2.0 - 1.0);
        }
        labels.push(cls);
    }
    Classification {
        inputs,
        labels,
        classes: 3,
    }
}

/// A first-order Markov text source with a banded transition structure —
/// a tunable-entropy stand-in for the PTB corpus.
#[derive(Debug, Clone)]
pub struct MarkovText {
    /// Vocabulary size.
    pub vocab: usize,
    transitions: Vec<f32>, // [vocab, vocab] row-stochastic
}

impl MarkovText {
    /// Builds a source whose rows concentrate probability on a band of
    /// `band` successors; smaller bands mean lower entropy (easier to
    /// model).
    ///
    /// # Panics
    ///
    /// Panics if `vocab == 0` or `band == 0`.
    pub fn new(vocab: usize, band: usize, r: &mut Rng) -> Self {
        assert!(vocab > 0 && band > 0, "degenerate Markov source");
        let band = band.min(vocab);
        let mut transitions = vec![0.0f32; vocab * vocab];
        for i in 0..vocab {
            let mut total = 0.0;
            for b in 0..band {
                let j = (i * 7 + b * 3 + 1) % vocab;
                let w = 1.0 + r.random::<f32>();
                transitions[i * vocab + j] += w;
                total += w;
            }
            for j in 0..vocab {
                transitions[i * vocab + j] /= total;
            }
        }
        Self { vocab, transitions }
    }

    /// Transition probability row for token `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.transitions[i * self.vocab..(i + 1) * self.vocab]
    }

    /// Samples a token sequence of length `len` starting from token 0.
    pub fn sample(&self, len: usize, r: &mut Rng) -> Vec<usize> {
        let mut seq = Vec::with_capacity(len);
        let mut cur = 0usize;
        for _ in 0..len {
            cur = rng::weighted_index(r, self.row(cur));
            seq.push(cur);
        }
        seq
    }

    /// The source's true per-token entropy in nats (the perplexity floor
    /// a perfect model would reach, under the stationary distribution
    /// approximated by uniform state weights).
    pub fn entropy_nats(&self) -> f64 {
        let mut h = 0.0f64;
        for i in 0..self.vocab {
            for &p in self.row(i) {
                if p > 0.0 {
                    h -= (p as f64) * (p as f64).ln();
                }
            }
        }
        h / self.vocab as f64
    }

    /// One-hot encoding of a token.
    pub fn one_hot(&self, token: usize) -> Tensor {
        let mut t = Tensor::zeros(&[self.vocab]);
        t.data_mut()[token] = 1.0;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_tensor::rng::seeded;

    #[test]
    fn clusters_are_separable_at_high_separation() {
        let mut r = seeded(1);
        let data = gaussian_clusters(3, 8, 300, 8.0, &mut r);
        assert_eq!(data.len(), 300);
        let d = 8;
        let dist = |i: usize, j: usize| -> f32 {
            (0..d)
                .map(|k| {
                    let diff = data.inputs.data()[i * d + k] - data.inputs.data()[j * d + k];
                    diff * diff
                })
                .sum()
        };
        let (mut intra, mut nintra) = (0.0f32, 0usize);
        let (mut inter, mut ninter) = (0.0f32, 0usize);
        for i in 0..60 {
            for j in (i + 1)..60 {
                if data.labels[i] == data.labels[j] {
                    intra += dist(i, j);
                    nintra += 1;
                } else {
                    inter += dist(i, j);
                    ninter += 1;
                }
            }
        }
        let intra_mean = intra / nintra.max(1) as f32;
        let inter_mean = inter / ninter.max(1) as f32;
        assert!(
            inter_mean > intra_mean * 2.0,
            "inter {inter_mean} vs intra {intra_mean}"
        );
    }

    #[test]
    fn shape_images_have_structure() {
        let mut r = seeded(2);
        let data = shape_images(50, 9, 0.05, &mut r);
        assert_eq!(data.inputs.shape().dims(), &[50, 1, 9, 9]);
        assert_eq!(data.classes, 3);
        // crosses have more lit pixels than bars
        let lit = |i: usize| {
            data.inputs.data()[i * 81..(i + 1) * 81]
                .iter()
                .filter(|&&v| v > 0.5)
                .count()
        };
        let mut bar_max = 0;
        let mut cross_min = usize::MAX;
        for i in 0..50 {
            match data.labels[i] {
                2 => cross_min = cross_min.min(lit(i)),
                _ => bar_max = bar_max.max(lit(i)),
            }
        }
        assert!(cross_min > 9, "cross pixels {cross_min}");
        assert!(bar_max <= 10, "bar pixels {bar_max}");
    }

    #[test]
    fn markov_rows_are_stochastic() {
        let mut r = seeded(3);
        let m = MarkovText::new(16, 3, &mut r);
        for i in 0..16 {
            let s: f32 = m.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        let seq = m.sample(100, &mut r);
        assert_eq!(seq.len(), 100);
        assert!(seq.iter().all(|&t| t < 16));
    }

    #[test]
    fn narrower_band_means_lower_entropy() {
        let mut r = seeded(4);
        let tight = MarkovText::new(32, 2, &mut r);
        let loose = MarkovText::new(32, 16, &mut r);
        assert!(tight.entropy_nats() < loose.entropy_nats());
    }

    #[test]
    fn one_hot_encoding() {
        let mut r = seeded(5);
        let m = MarkovText::new(8, 2, &mut r);
        let t = m.one_hot(3);
        assert_eq!(t.len(), 8);
        assert_eq!(t.data()[3], 1.0);
        assert_eq!(t.sum(), 1.0);
    }
}
