//! Summary statistics used by the evaluation harness.

use crate::tensor::Tensor;

/// Basic running statistics over a scalar stream.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    count: usize,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance; 0 when empty.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.count as f64 - m * m).max(0.0)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation; +∞ when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation; −∞ when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// A fixed-width histogram over `[lo, hi)` with out-of-range clamping,
/// used to characterize pre-activation distributions (Fig. 2).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    lo: f32,
    hi: f32,
    bins: Vec<usize>,
    total: usize,
}

impl Histogram {
    /// Creates a histogram with `nbins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `nbins == 0` or `lo >= hi`.
    pub fn new(lo: f32, hi: f32, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            total: 0,
        }
    }

    /// Adds one observation; out-of-range values clamp into the end bins.
    pub fn push(&mut self, x: f32) {
        let n = self.bins.len();
        let t = ((x - self.lo) / (self.hi - self.lo) * n as f32).floor();
        let idx = (t.max(0.0) as usize).min(n - 1);
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Adds every element of a tensor.
    pub fn push_tensor(&mut self, t: &Tensor) {
        for &x in t.data() {
            self.push(x);
        }
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Total observation count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Fraction of observations strictly below `x` (approximated by whole
    /// bins; `x` is rounded down to the containing bin edge).
    pub fn fraction_below(&self, x: f32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.bins.len();
        let t = ((x - self.lo) / (self.hi - self.lo) * n as f32).floor();
        let cutoff = (t.max(0.0) as usize).min(n);
        let below: usize = self.bins[..cutoff].iter().sum();
        below as f64 / self.total as f64
    }

    /// Bin centers, for plotting.
    pub fn centers(&self) -> Vec<f32> {
        let n = self.bins.len() as f32;
        let w = (self.hi - self.lo) / n;
        (0..self.bins.len())
            .map(|i| self.lo + w * (i as f32 + 0.5))
            .collect()
    }
}

/// Geometric mean of a slice of positive values (the paper's "average
/// speedup" convention for ratios). Returns 0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean requires positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-9);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for &x in &[0.1, 0.3, 0.3, 0.9, -5.0, 5.0] {
            h.push(x);
        }
        assert_eq!(h.bins(), &[2, 2, 0, 2]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_fraction_below() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f32 + 0.5);
        }
        assert!((h.fraction_below(5.0) - 0.5).abs() < 1e-9);
        assert_eq!(h.fraction_below(0.0), 0.0);
        assert_eq!(h.fraction_below(10.0), 1.0);
    }

    #[test]
    fn histogram_centers() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.centers(), vec![0.25, 0.75]);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        let g = geometric_mean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }
}
