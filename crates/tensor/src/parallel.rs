//! Lightweight scoped data-parallelism on `std::thread`.
//!
//! The workspace must build offline, so there is no rayon; instead the hot
//! kernels partition their iteration space into contiguous ranges and fan
//! out over [`std::thread::scope`]. Worker threads are borrowed for the
//! duration of one parallel region — no global pool state, no unsafe, no
//! channels — which keeps the model auditable and deterministic: the range
//! partitioning depends only on the item count and thread count, never on
//! scheduling order.
//!
//! The degree of parallelism is [`num_threads`]: the `DUET_NUM_THREADS`
//! environment variable when set (read once per process), otherwise
//! [`std::thread::available_parallelism`]. Kernels additionally fall back
//! to serial execution below a work threshold, so tiny tensors never pay
//! thread spawn overhead.

use std::ops::Range;
use std::sync::OnceLock;
use std::thread;

/// The process-wide degree of parallelism.
///
/// Resolution order: `DUET_NUM_THREADS` (if set to a positive integer),
/// then [`std::thread::available_parallelism`], then 1. The value is read
/// once and cached for the life of the process; kernels that need an
/// explicit override take a thread count parameter instead (e.g.
/// [`crate::ops::matmul_with_threads`]).
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("DUET_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Records one multi-threaded region (`workers` = ranges in the
/// partition, of which `workers - 1` are spawned threads; the first range
/// runs on the caller). Serial degradations are deliberately not counted,
/// so `tensor.parallel.regions` measures actual fan-outs.
#[inline]
fn note_fan_out(workers: usize) {
    duet_obs::counter!("tensor.parallel.regions").inc();
    duet_obs::counter!("tensor.parallel.workers_spawned").add(workers as u64 - 1);
}

/// Splits `0..n` into at most `parts` contiguous, balanced, non-empty
/// ranges (fewer when `n < parts`).
pub fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Runs `f` over a partition of `0..n` on up to `threads` scoped threads.
///
/// With `threads <= 1` (or nothing to split) this degrades to a plain call
/// `f(0..n)` with zero overhead, which is also the serial fallback path
/// used by kernels under their size thresholds. The first range runs on
/// the calling thread so a 1-extra-thread region spawns only one worker.
pub fn for_each_range<F>(n: usize, threads: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let ranges = split_ranges(n, threads);
    if ranges.len() == 1 {
        f(0..n);
        return;
    }
    note_fan_out(ranges.len());
    thread::scope(|scope| {
        for r in &ranges[1..] {
            let r = r.clone();
            let f = &f;
            scope.spawn(move || f(r));
        }
        f(ranges[0].clone());
    });
}

/// Computes `f(0)..f(n-1)` on up to `threads` scoped threads and returns
/// the results in index order.
///
/// Like [`for_each_range`], this is exactly a serial `map` when
/// `threads <= 1`. Results are concatenated range by range, so the output
/// order is independent of the thread count.
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let ranges = split_ranges(n, threads);
    if ranges.len() == 1 {
        return (0..n).map(f).collect();
    }
    note_fan_out(ranges.len());
    let mut out = Vec::with_capacity(n);
    thread::scope(|scope| {
        let handles: Vec<_> = ranges[1..]
            .iter()
            .map(|r| {
                let r = r.clone();
                let f = &f;
                scope.spawn(move || r.map(f).collect::<Vec<T>>())
            })
            .collect();
        out.extend(ranges[0].clone().map(&f));
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// Partitions `rows` into contiguous ranges, hands each range its disjoint
/// `&mut` window of `data` (`row_len` elements per row), and runs `f` on up
/// to `threads` scoped threads.
///
/// This is the write-side primitive behind the parallel kernels: output
/// tensors are split row-wise so workers never alias. With `threads <= 1`
/// it degrades to `f(0..rows, data)`.
///
/// # Panics
///
/// Panics if `data.len() != rows * row_len`.
pub fn for_each_row_chunk<T, F>(data: &mut [T], rows: usize, row_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    assert_eq!(
        data.len(),
        rows * row_len,
        "for_each_row_chunk: data length must be rows * row_len"
    );
    if rows == 0 {
        return;
    }
    let ranges = split_ranges(rows, threads);
    if ranges.len() == 1 {
        f(0..rows, data);
        return;
    }
    note_fan_out(ranges.len());
    thread::scope(|scope| {
        let mut rest = data;
        let mut iter = ranges.into_iter();
        let first = iter.next().expect("at least one range");
        let (first_chunk, tail) = rest.split_at_mut(first.len() * row_len);
        rest = tail;
        for r in iter {
            let (chunk, tail) = rest.split_at_mut(r.len() * row_len);
            rest = tail;
            let f = &f;
            scope.spawn(move || f(r, chunk));
        }
        f(first, first_chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn split_is_balanced_and_covers() {
        for n in [0usize, 1, 2, 7, 16, 100] {
            for parts in [1usize, 2, 3, 4, 9] {
                let ranges = split_ranges(n, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} parts={parts}");
                if n > 0 {
                    assert_eq!(ranges[0].start, 0);
                    assert_eq!(ranges.last().unwrap().end, n);
                    let lens: Vec<_> = ranges.iter().map(|r| r.len()).collect();
                    let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                    assert!(max - min <= 1, "unbalanced: {lens:?}");
                }
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
                }
            }
        }
    }

    #[test]
    fn for_each_range_visits_everything_once() {
        for threads in [1usize, 2, 4, 7] {
            let visited: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
            for_each_range(103, threads, |r| {
                for i in r {
                    visited[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(visited.iter().all(|v| v.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn map_indexed_preserves_order() {
        for threads in [1usize, 2, 3, 8] {
            let out = map_indexed(57, threads, |i| i * i);
            assert_eq!(out, (0..57).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_items_is_a_noop() {
        for_each_range(0, 4, |_| panic!("must not be called"));
        assert!(map_indexed(0, 4, |i| i).is_empty());
        for_each_row_chunk(&mut [] as &mut [usize], 0, 3, 4, |_, _| {
            panic!("must not be called")
        });
    }

    #[test]
    fn row_chunks_are_disjoint_and_aligned() {
        for threads in [1usize, 2, 3, 5] {
            let mut data = vec![0usize; 11 * 3];
            for_each_row_chunk(&mut data, 11, 3, threads, |range, chunk| {
                assert_eq!(chunk.len(), range.len() * 3);
                for (local, row) in range.clone().enumerate() {
                    for e in 0..3 {
                        chunk[local * 3 + e] = row * 10 + e;
                    }
                }
            });
            for row in 0..11 {
                for e in 0..3 {
                    assert_eq!(data[row * 3 + e], row * 10 + e);
                }
            }
        }
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
