//! Contiguous row-major `f32` tensors.

use crate::shape::Shape;
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// This is the numeric workhorse of the workspace: the trainable network
/// library, the dual-module algorithm, and the workload generators all
/// operate on `Tensor`s. The representation is deliberately simple — a
/// `Vec<f32>` plus a [`Shape`] — so kernels stay easy to audit against the
/// paper's equations.
///
/// # Example
///
/// ```
/// use duet_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Self { data, shape }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a tensor by evaluating `f` at each linear offset.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(&mut f).collect();
        Self { data, shape }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (a zero-sized dimension, e.g.
    /// an empty `[0, d]` batch).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a reshaped copy sharing the same data order.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshaped(&self, dims: &[usize]) -> Tensor {
        Tensor {
            data: self.data.clone(),
            shape: self.shape.reshape(dims),
        }
    }

    /// Reshapes in place (metadata only).
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape_inplace(&mut self, dims: &[usize]) {
        self.shape = self.shape.reshape(dims);
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise binary combination with another tensor of the same
    /// shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip_map shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// Transposes a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose requires a 2-D tensor");
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Returns row `i` of a 2-D tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if not 2-D or `i` out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.shape.rank(), 2, "row() requires a 2-D tensor");
        let c = self.shape.dim(1);
        assert!(i < self.shape.dim(0), "row {i} out of bounds");
        &self.data[i * c..(i + 1) * c]
    }

    /// Mutable row `i` of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if not 2-D or `i` out of bounds.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert_eq!(self.shape.rank(), 2, "row_mut() requires a 2-D tensor");
        let c = self.shape.dim(1);
        assert!(i < self.shape.dim(0), "row {i} out of bounds");
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Maximum absolute value (0 for an all-zero tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Fraction of elements equal to zero.
    pub fn sparsity(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|&&x| x == 0.0).count() as f32 / self.len() as f32
    }
}

impl Default for Tensor {
    /// A single-element zero tensor.
    fn default() -> Self {
        Tensor::zeros(&[1])
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} {{", self.shape)?;
        let n = self.data.len().min(8);
        for (i, v) in self.data[..n].iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, " {v:.4}")?;
        }
        if self.data.len() > n {
            write!(f, ", …")?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn eye_is_identity() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.at(&[i, j]), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transposed().transposed();
        assert_eq!(t, tt);
    }

    #[test]
    fn transpose_maps_indices() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tr = t.transposed();
        assert_eq!(tr.shape().dims(), &[3, 2]);
        assert_eq!(tr.at(&[2, 1]), t.at(&[1, 2]));
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let b = a.map(|x| x * 2.0);
        assert_eq!(b.data(), &[2.0, -4.0]);
        let c = a.zip_map(&b, |x, y| x + y);
        assert_eq!(c.data(), &[3.0, -6.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -3.0, 0.0, 2.0], &[4]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max_abs(), 3.0);
        assert_eq!(t.norm_sq(), 14.0);
        assert!((t.sparsity() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn set_then_get() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 0], 7.5);
        assert_eq!(t.at(&[1, 0]), 7.5);
        assert_eq!(t.at(&[0, 1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_mismatch_panics() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_map_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        a.zip_map(&b, |x, _| x);
    }

    #[test]
    fn reshape_keeps_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).reshaped(&[4]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.shape().rank(), 1);
    }

    #[test]
    fn from_fn_uses_linear_offsets() {
        let t = Tensor::from_fn(&[2, 2], |i| i as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }
}
