//! Quantization helpers shared by the algorithm and simulator layers.
//!
//! The heavy lifting lives on [`Fixed16Tensor`] and
//! [`Int4Tensor`]; this module adds the error metrics and
//! fake-quantization ("quantize-dequantize") utilities the evaluation
//! harness uses to study precision trade-offs (Fig. 13(b)).

use crate::fixed::{Fixed16Tensor, Int4Tensor};
use crate::tensor::Tensor;

/// Quantizes to INT16-with-scale and immediately dequantizes, returning the
/// value the Executor datapath would actually see.
pub fn fake_quantize_int16(t: &Tensor) -> Tensor {
    Fixed16Tensor::quantize(t).dequantize()
}

/// Quantizes to the Speculator's INT4 (via the hardware 16→4 truncation
/// path) and dequantizes.
pub fn fake_quantize_int4_truncated(t: &Tensor) -> Tensor {
    Fixed16Tensor::quantize(t).truncate_to_int4().dequantize()
}

/// Quantizes to a `bits`-wide integer grid (round-to-nearest) and
/// dequantizes. Used in the Fig. 13(b) precision sweep.
///
/// # Panics
///
/// Panics if `bits` is outside [2, 8].
pub fn fake_quantize_bits(t: &Tensor, bits: u32) -> Tensor {
    Int4Tensor::quantize_with_bits(t, bits).dequantize()
}

/// Signal-to-quantization-noise ratio in dB between a reference and its
/// quantized reconstruction. Higher is better; `f32::INFINITY` when the
/// reconstruction is exact.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn sqnr_db(reference: &Tensor, reconstructed: &Tensor) -> f32 {
    assert_eq!(
        reference.shape(),
        reconstructed.shape(),
        "sqnr shape mismatch"
    );
    let signal = reference.norm_sq();
    let noise = crate::ops::sub(reference, reconstructed).norm_sq();
    if noise == 0.0 {
        f32::INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

/// Maximum absolute quantization error.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn max_error(reference: &Tensor, reconstructed: &Tensor) -> f32 {
    crate::ops::sub(reference, reconstructed).max_abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Tensor {
        Tensor::from_fn(&[n], |i| (i as f32 / n as f32) * 2.0 - 1.0)
    }

    #[test]
    fn int16_sqnr_much_higher_than_int4() {
        let t = ramp(256);
        let s16 = sqnr_db(&t, &fake_quantize_int16(&t));
        let s4 = sqnr_db(&t, &fake_quantize_int4_truncated(&t));
        assert!(s16 > 80.0, "int16 sqnr {s16}");
        assert!(s4 < 40.0, "int4 sqnr {s4}");
        assert!(s16 > s4 + 40.0);
    }

    #[test]
    fn sqnr_monotone_in_bits() {
        let t = ramp(512);
        let mut prev = f32::NEG_INFINITY;
        for bits in 2..=8 {
            let s = sqnr_db(&t, &fake_quantize_bits(&t, bits));
            assert!(s >= prev, "sqnr not monotone at {bits} bits: {s} < {prev}");
            prev = s;
        }
    }

    #[test]
    fn exact_reconstruction_is_infinite_sqnr() {
        let t = ramp(8);
        assert_eq!(sqnr_db(&t, &t), f32::INFINITY);
    }

    #[test]
    fn max_error_bounded_by_step() {
        let t = ramp(100);
        let e = max_error(&t, &fake_quantize_bits(&t, 4));
        // half a step of round-to-nearest at qmax=7: step = 1/7
        assert!(e <= 0.5 / 7.0 + 1e-4, "error {e}");
    }
}
