//! Fixed-point tensor types mirroring the DUET datapaths.
//!
//! §III-B: "We use 16-bit fixed-point data in the Executor's
//! high-dimensional execution, where the fixed-point data are essentially
//! INT16 with a scale in FP32." The Speculator computes in INT4 obtained by
//! truncating the 12 LSBs of the INT16 representation and multiplying the
//! scale by 2¹².

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Number of LSBs dropped by the 16-bit → 4-bit truncation.
pub const TRUNC_BITS: u32 = 12;
/// Scale multiplier implied by the truncation (2¹² = 4096).
pub const TRUNC_SCALE: f32 = 4096.0;
/// Largest magnitude representable in INT4 (two's complement [-8, 7]).
pub const INT4_MAX: i8 = 7;
/// Smallest value representable in INT4.
pub const INT4_MIN: i8 = -8;

/// An INT16 tensor with a single FP32 scale — the Executor's number format.
///
/// Real value of element *i* is `data[i] as f32 * scale`.
///
/// # Example
///
/// ```
/// use duet_tensor::{Tensor, Fixed16Tensor};
///
/// let t = Tensor::from_vec(vec![1.0, -0.5, 0.25], &[3]);
/// let q = Fixed16Tensor::quantize(&t);
/// let back = q.dequantize();
/// for (a, b) in t.data().iter().zip(back.data()) {
///     assert!((a - b).abs() < 1e-3);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fixed16Tensor {
    data: Vec<i16>,
    scale: f32,
    shape: Shape,
}

impl Fixed16Tensor {
    /// Quantizes an `f32` tensor symmetrically so the maximum magnitude maps
    /// to `i16::MAX`.
    ///
    /// An all-zero tensor gets scale 1.0.
    pub fn quantize(t: &Tensor) -> Self {
        let max_abs = t.max_abs();
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / i16::MAX as f32
        };
        let data = t
            .data()
            .iter()
            .map(|&x| (x / scale).round().clamp(i16::MIN as f32, i16::MAX as f32) as i16)
            .collect();
        Self {
            data,
            scale,
            shape: t.shape().clone(),
        }
    }

    /// Constructs from raw INT16 data and a scale.
    ///
    /// # Panics
    ///
    /// Panics if the data length does not match the shape.
    pub fn from_raw(data: Vec<i16>, scale: f32, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(data.len(), shape.len(), "raw data length mismatch");
        Self { data, scale, shape }
    }

    /// The INT16 payload.
    pub fn data(&self) -> &[i16] {
        &self.data
    }

    /// The FP32 scale shared by all elements.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts back to `f32`.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.data.iter().map(|&x| x as f32 * self.scale).collect(),
            self.shape.dims(),
        )
    }

    /// The hardware truncation of §III-B step 1: drop the 12 LSBs, keep the
    /// four MSBs, and grow the scale by 2¹². This is the Speculator's
    /// Quantizer block.
    pub fn truncate_to_int4(&self) -> Int4Tensor {
        let data = self
            .data
            .iter()
            .map(|&x| (x >> TRUNC_BITS) as i8) // arithmetic shift keeps sign
            .collect();
        Int4Tensor {
            data,
            scale: self.scale * TRUNC_SCALE,
            shape: self.shape.clone(),
            bits: 4,
        }
    }

    /// Bytes occupied by the payload (2 per element), used by the memory
    /// access accounting in the simulator.
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * 2
    }
}

/// A narrow-integer tensor with a single FP32 scale — the Speculator's
/// number format. The default width is INT4 (one nibble per `i8`, values
/// in [-8, 7]); [`Int4Tensor::quantize_with_bits`] widens it up to INT8
/// for the Fig. 13(b) precision sweep. Every element is kept inside the
/// symmetric two's-complement range of `bits`, and
/// [`Int4Tensor::payload_bytes`] accounts storage at the actual width
/// (two nibbles per byte at ≤4 bits, one byte per element above).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Int4Tensor {
    data: Vec<i8>,
    scale: f32,
    shape: Shape,
    bits: u32,
}

impl Int4Tensor {
    /// Quantizes an `f32` tensor symmetrically so the maximum magnitude maps
    /// to 7 (INT4 max).
    pub fn quantize(t: &Tensor) -> Self {
        let max_abs = t.max_abs();
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / INT4_MAX as f32
        };
        let data = t
            .data()
            .iter()
            .map(|&x| (x / scale).round().clamp(INT4_MIN as f32, INT4_MAX as f32) as i8)
            .collect();
        Self {
            data,
            scale,
            shape: t.shape().clone(),
            bits: 4,
        }
    }

    /// Quantizes to an arbitrary bit width `bits` ∈ [2, 8] (used by the
    /// Fig. 13(b) precision sweep). The value range is the symmetric
    /// two's-complement range of that width, and the width is recorded on
    /// the tensor so [`Int4Tensor::payload_bytes`] stays honest.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside [2, 8].
    pub fn quantize_with_bits(t: &Tensor, bits: u32) -> Self {
        assert!(
            (2..=8).contains(&bits),
            "bits must be in [2, 8], got {bits}"
        );
        let qmax = (1i32 << (bits - 1)) - 1;
        let qmin = -(1i32 << (bits - 1));
        let max_abs = t.max_abs();
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / qmax as f32
        };
        let data = t
            .data()
            .iter()
            .map(|&x| (x / scale).round().clamp(qmin as f32, qmax as f32) as i8)
            .collect();
        Self {
            data,
            scale,
            shape: t.shape().clone(),
            bits,
        }
    }

    /// Constructs a 4-bit tensor from raw nibbles and a scale.
    ///
    /// # Panics
    ///
    /// Panics if the length mismatches the shape or any value is outside
    /// [-8, 7]. Data produced at a wider precision (e.g. by
    /// [`Int4Tensor::quantize_with_bits`] with `bits > 4`) must go through
    /// [`Int4Tensor::from_raw_with_bits`] instead — the range check is the
    /// same one every constructor enforces for its width.
    pub fn from_raw(data: Vec<i8>, scale: f32, dims: &[usize]) -> Self {
        Self::from_raw_with_bits(data, scale, dims, 4)
    }

    /// Constructs from raw values at an explicit width `bits` ∈ [2, 8].
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside [2, 8], the length mismatches the
    /// shape, or any value is outside the symmetric two's-complement range
    /// of `bits`.
    pub fn from_raw_with_bits(data: Vec<i8>, scale: f32, dims: &[usize], bits: u32) -> Self {
        assert!(
            (2..=8).contains(&bits),
            "bits must be in [2, 8], got {bits}"
        );
        let shape = Shape::new(dims);
        assert_eq!(data.len(), shape.len(), "raw data length mismatch");
        let qmax = ((1i32 << (bits - 1)) - 1) as i8;
        let qmin = (-(1i32 << (bits - 1))) as i8;
        assert!(
            data.iter().all(|&x| (qmin..=qmax).contains(&x)),
            "int{bits} value out of [{qmin},{qmax}] range"
        );
        Self {
            data,
            scale,
            shape,
            bits,
        }
    }

    /// The nibble payload.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// The FP32 scale shared by all elements.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The bit width of the stored values (4 unless constructed by a
    /// `*_with_bits` method).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts back to `f32` — the Speculator's Dequantizer block.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.data.iter().map(|&x| x as f32 * self.scale).collect(),
            self.shape.dims(),
        )
    }

    /// Bytes occupied by the packed payload at the tensor's bit width (two
    /// nibbles per byte rounded up at ≤4 bits, one byte per element at 5–8
    /// bits), used by the memory access accounting.
    pub fn payload_bytes(&self) -> usize {
        if self.bits <= 4 {
            self.data.len().div_ceil(2)
        } else {
            self.data.len()
        }
    }

    /// Integer inner product with another INT4 tensor; result carries the
    /// product of scales. This is exactly what one systolic-array cell chain
    /// computes.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, other: &Int4Tensor) -> (i32, f32) {
        assert_eq!(self.len(), other.len(), "int4 dot length mismatch");
        let acc: i32 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a as i32 * b as i32)
            .sum();
        (acc, self.scale * other.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed16_roundtrip_error_bounded() {
        let t = Tensor::from_vec(vec![0.9, -0.45, 0.001, -1.0, 0.333], &[5]);
        let q = Fixed16Tensor::quantize(&t);
        let back = q.dequantize();
        for (a, b) in t.data().iter().zip(back.data()) {
            // one LSB of error at scale ≈ 1/32767
            assert!((a - b).abs() <= q.scale() * 1.01, "{a} vs {b}");
        }
    }

    #[test]
    fn fixed16_zero_tensor() {
        let q = Fixed16Tensor::quantize(&Tensor::zeros(&[4]));
        assert_eq!(q.scale(), 1.0);
        assert!(q.dequantize().data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn truncation_keeps_msbs_and_grows_scale() {
        let q = Fixed16Tensor::from_raw(vec![0x7000, -0x7000, 0x0FFF, -0x1000], 0.001, &[4]);
        let t4 = q.truncate_to_int4();
        assert_eq!(t4.data(), &[7, -7, 0, -1]);
        assert!((t4.scale() - 0.001 * TRUNC_SCALE).abs() < 1e-9);
    }

    #[test]
    fn truncation_preserves_value_approximately() {
        let t = Tensor::from_vec(vec![1.0, 0.5, -0.75, 0.1, -1.0], &[5]);
        let q16 = Fixed16Tensor::quantize(&t);
        let q4 = q16.truncate_to_int4();
        let back = q4.dequantize();
        // INT4 resolution at max-abs 1.0: one step ≈ 1/7 ≈ 0.143 but
        // truncation (floor) error can reach one full step.
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= 0.2, "{a} vs {b}");
        }
    }

    #[test]
    fn int4_quantize_range() {
        let t = Tensor::from_vec(vec![3.5, -3.5, 0.0, 1.75], &[4]);
        let q = Int4Tensor::quantize(&t);
        assert_eq!(q.data(), &[7, -7, 0, 4]);
    }

    #[test]
    fn int4_dot_matches_float() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![2.0, 2.0, -1.0], &[3]);
        let qa = Int4Tensor::quantize(&a);
        let qb = Int4Tensor::quantize(&b);
        let (acc, s) = qa.dot(&qb);
        let approx = acc as f32 * s;
        let exact = crate::ops::dot(&a, &b);
        assert!((approx - exact).abs() < 0.8, "{approx} vs {exact}");
    }

    #[test]
    fn quantize_with_bits_ranges() {
        let t = Tensor::from_vec(vec![1.0, -1.0, 0.5], &[3]);
        let q2 = Int4Tensor::quantize_with_bits(&t, 2);
        assert_eq!(q2.data(), &[1, -1, 1]); // qmax = 1
        assert_eq!(q2.bits(), 2);
        let q8 = Int4Tensor::quantize_with_bits(&t, 8);
        assert_eq!(q8.data()[0], 127); // qmax = 127 fits i8 exactly
        assert_eq!(q8.bits(), 8);
    }

    #[test]
    fn payload_bytes_is_width_aware() {
        // Regression: quantize_with_bits(8) used to report nibble-packed
        // bytes, undercounting the Fig. 13(b) memory traffic by 2x.
        let t = Tensor::from_vec(vec![1.0, -1.0, 0.5, 0.25, -0.125], &[5]);
        for bits in [2u32, 3, 4] {
            assert_eq!(Int4Tensor::quantize_with_bits(&t, bits).payload_bytes(), 3);
        }
        for bits in [5u32, 6, 8] {
            assert_eq!(Int4Tensor::quantize_with_bits(&t, bits).payload_bytes(), 5);
        }
    }

    #[test]
    fn from_raw_with_bits_roundtrips_wide_data() {
        // Regression: data produced at 8 bits has a constructor that
        // accepts it; the 4-bit from_raw consistently rejects it.
        let t = Tensor::from_vec(vec![1.0, -1.0, 0.5], &[3]);
        let q8 = Int4Tensor::quantize_with_bits(&t, 8);
        let back = Int4Tensor::from_raw_with_bits(q8.data().to_vec(), q8.scale(), &[3], 8);
        assert_eq!(back, q8);
        assert_eq!(back.payload_bytes(), 3);
    }

    #[test]
    #[should_panic(expected = "out of [-8,7]")]
    fn from_raw_rejects_wide_data_consistently() {
        let t = Tensor::from_vec(vec![1.0, -1.0, 0.5], &[3]);
        let q8 = Int4Tensor::quantize_with_bits(&t, 8);
        Int4Tensor::from_raw(q8.data().to_vec(), q8.scale(), &[3]);
    }

    #[test]
    #[should_panic(expected = "out of [-2,1]")]
    fn from_raw_with_bits_enforces_narrow_range() {
        Int4Tensor::from_raw_with_bits(vec![2], 1.0, &[1], 2);
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn quantize_with_bits_out_of_range_panics() {
        Int4Tensor::quantize_with_bits(&Tensor::zeros(&[1]), 9);
    }

    #[test]
    fn payload_bytes() {
        let q16 = Fixed16Tensor::quantize(&Tensor::zeros(&[5]));
        assert_eq!(q16.payload_bytes(), 10);
        let q4 = Int4Tensor::quantize(&Tensor::zeros(&[5]));
        assert_eq!(q4.payload_bytes(), 3);
    }

    #[test]
    #[should_panic(expected = "out of [-8,7]")]
    fn int4_from_raw_range_check() {
        Int4Tensor::from_raw(vec![9], 1.0, &[1]);
    }
}
