//! # duet-tensor
//!
//! Dense tensor and fixed-point arithmetic substrate for the DUET
//! dual-module accelerator reproduction.
//!
//! The crate provides:
//!
//! * [`Shape`] — row-major shapes with stride computation,
//! * [`Tensor`] — a contiguous `f32` tensor with the linear-algebra kernels
//!   the rest of the workspace needs ([`ops::matmul`], [`ops::gemv`], …),
//! * [`im2col`](im2col::im2col) — the convolution-to-GEMM lowering the paper
//!   uses to apply dual-module processing to CONV layers (§II-B),
//! * fixed-point types [`Fixed16Tensor`] and [`Int4Tensor`] mirroring the
//!   Executor's INT16-with-FP32-scale datapath and the Speculator's INT4
//!   datapath (§III-B),
//! * truncation quantization (16-bit → 4-bit keeps the four MSBs and scales
//!   by 2¹², §III-B step 1),
//! * [`parallel`] — the scoped `std::thread` data-parallelism layer behind
//!   the blocked GEMM/GEMV kernels (`DUET_NUM_THREADS` overrides the
//!   thread count),
//! * seeded in-tree RNG helpers ([`rng`]) and summary statistics used
//!   throughout the evaluation harness.
//!
//! # Example
//!
//! ```
//! use duet_tensor::{Tensor, ops};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = ops::matmul(&a, &b);
//! assert_eq!(c.data(), a.data());
//! ```

// The crate is `unsafe`-free except for the feature-gated SIMD
// intrinsics in [`simd`]; with the `simd` feature off the historical
// `forbid` still holds, with it on the lint is `deny` so only `simd.rs`
// (which carries a module-level `allow` and per-call SAFETY notes) may
// opt in.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod fixed;
pub mod im2col;
pub mod ops;
pub mod parallel;
pub mod quantize;
pub mod rng;
pub mod shape;
#[cfg(feature = "simd")]
pub mod simd;
pub mod stats;
pub mod tensor;

pub use fixed::{Fixed16Tensor, Int4Tensor};
pub use shape::Shape;
pub use tensor::Tensor;
