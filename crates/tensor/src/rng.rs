//! Seeded random number helpers.
//!
//! Everything in the workspace that needs randomness (weight init, ternary
//! projection matrices, synthetic workloads) threads a seeded
//! [`SmallRng`] through so every experiment is
//! reproducible bit-for-bit.

use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Fills a new tensor with uniform values in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(rng: &mut SmallRng, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "uniform range must be non-empty");
    Tensor::from_fn(dims, |_| rng.random_range(lo..hi))
}

/// Samples one standard-normal value via the Box–Muller transform.
pub fn normal_sample(rng: &mut SmallRng) -> f32 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f32 = 1.0 - rng.random::<f32>();
    let u2: f32 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Fills a new tensor with N(mean, std²) samples.
///
/// # Panics
///
/// Panics if `std` is negative.
pub fn normal(rng: &mut SmallRng, dims: &[usize], mean: f32, std: f32) -> Tensor {
    assert!(std >= 0.0, "standard deviation must be non-negative");
    Tensor::from_fn(dims, |_| mean + std * normal_sample(rng))
}

/// Returns `true` with probability `p`.
///
/// # Panics
///
/// Panics if `p` is outside [0, 1].
pub fn bernoulli(rng: &mut SmallRng, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
    rng.random_bool(p)
}

/// Samples an index from an unnormalized non-negative weight slice.
///
/// # Panics
///
/// Panics if weights are empty, contain a negative value, or sum to zero.
pub fn weighted_index(rng: &mut SmallRng, weights: &[f32]) -> usize {
    assert!(!weights.is_empty(), "weighted_index needs weights");
    assert!(
        weights.iter().all(|&w| w >= 0.0),
        "weights must be non-negative"
    );
    let total: f32 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");
    let mut u = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a = uniform(&mut seeded(7), &[32], -1.0, 1.0);
        let b = uniform(&mut seeded(7), &[32], -1.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform(&mut seeded(1), &[32], -1.0, 1.0);
        let b = uniform(&mut seeded(2), &[32], -1.0, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded(42);
        let t = normal(&mut rng, &[20000], 2.0, 3.0);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = seeded(3);
        let t = uniform(&mut rng, &[1000], -0.5, 0.5);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = seeded(9);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[weighted_index(&mut rng, &[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2, "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn uniform_bad_range_panics() {
        uniform(&mut seeded(0), &[1], 1.0, 1.0);
    }
}
