//! Seeded random number generation, fully in-tree.
//!
//! Everything in the workspace that needs randomness (weight init, ternary
//! projection matrices, synthetic workloads) threads a seeded [`Rng`]
//! through so every experiment is reproducible bit-for-bit. The generator
//! is xoshiro256++ (Blackman & Vigna) seeded through SplitMix64 — no
//! external crates, so the workspace builds with no registry access.
//!
//! The sampling surface deliberately mirrors the `rand` crate's method
//! names (`random`, `random_range`, `random_bool`) so kernels and
//! workloads read idiomatically.

use crate::tensor::Tensor;

/// A seeded xoshiro256++ pseudo-random generator.
///
/// Streams are deterministic functions of the seed and are stable across
/// platforms and thread counts: parallel kernels never consume randomness,
/// and every sampling helper advances the state a fixed number of steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

impl Rng {
    /// Creates a generator whose state is expanded from `seed` with
    /// SplitMix64, the recommended seeding procedure for xoshiro.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Snapshots the full generator state so it can be persisted (e.g. in
    /// a training checkpoint) and later restored with
    /// [`from_state`](Self::from_state).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`state`](Self::state) snapshot. The
    /// restored generator produces the exact output stream the original
    /// would have from that point.
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// The next raw 32-bit output (upper half of [`next_u64`](Self::next_u64)).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a value of a primitive type; `f32`/`f64` are uniform in
    /// `[0, 1)`, integers cover their full range, `bool` is a fair coin.
    pub fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range, e.g. `0..n` or `0.0..1.0`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside [0, 1].
    pub fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.random::<f64>() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

/// Types samplable from the generator's "standard" distribution.
pub trait Standard {
    /// Draws one value.
    fn sample(rng: &mut Rng) -> Self;
}

impl Standard for f32 {
    fn sample(rng: &mut Rng) -> Self {
        // 24 high bits → uniform multiples of 2⁻²⁴ in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample(rng: &mut Rng) -> Self {
        // 53 high bits → uniform multiples of 2⁻⁵³ in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample(rng: &mut Rng) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample(rng: &mut Rng) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample(rng: &mut Rng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Half-open ranges samplable with [`Rng::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_in(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_in(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "random_range needs a non-empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // non-uniformity without rejection is < 2⁻³² for the spans
                // used in this workspace.
                let hi = ((rng.next_u64() >> 32) * span) >> 32;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_in(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "random_range needs a non-empty range");
                let u: $t = rng.random();
                let v = self.start + (self.end - self.start) * u;
                // Guard the pathological rounding case v == end.
                if v < self.end { v } else { <$t>::next_down(self.end) }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Fills a new tensor with uniform values in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(rng: &mut Rng, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "uniform range must be non-empty");
    Tensor::from_fn(dims, |_| rng.random_range(lo..hi))
}

/// Samples one standard-normal value via the Box–Muller transform.
pub fn normal_sample(rng: &mut Rng) -> f32 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f32 = 1.0 - rng.random::<f32>();
    let u2: f32 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Fills a new tensor with N(mean, std²) samples.
///
/// # Panics
///
/// Panics if `std` is negative.
pub fn normal(rng: &mut Rng, dims: &[usize], mean: f32, std: f32) -> Tensor {
    assert!(std >= 0.0, "standard deviation must be non-negative");
    Tensor::from_fn(dims, |_| mean + std * normal_sample(rng))
}

/// Returns `true` with probability `p`.
///
/// # Panics
///
/// Panics if `p` is outside [0, 1].
pub fn bernoulli(rng: &mut Rng, p: f64) -> bool {
    rng.random_bool(p)
}

/// Samples an index from an unnormalized non-negative weight slice.
///
/// # Panics
///
/// Panics if weights are empty, contain a negative value, or sum to zero.
pub fn weighted_index(rng: &mut Rng, weights: &[f32]) -> usize {
    assert!(!weights.is_empty(), "weighted_index needs weights");
    assert!(
        weights.iter().all(|&w| w >= 0.0),
        "weights must be non-negative"
    );
    let total: f32 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");
    let mut u = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a = uniform(&mut seeded(7), &[32], -1.0, 1.0);
        let b = uniform(&mut seeded(7), &[32], -1.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform(&mut seeded(1), &[32], -1.0, 1.0);
        let b = uniform(&mut seeded(2), &[32], -1.0, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded(42);
        let t = normal(&mut rng, &[20000], 2.0, 3.0);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = seeded(3);
        let t = uniform(&mut rng, &[1000], -0.5, 0.5);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn integer_range_covers_and_stays_inside() {
        let mut rng = seeded(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.random_range(2usize..9);
            assert!((2..9).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = seeded(13);
        let heads = (0..10000).filter(|_| rng.random::<bool>()).count();
        assert!((4500..5500).contains(&heads), "{heads}");
        let p_heads = (0..10000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2200..2800).contains(&p_heads), "{p_heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = seeded(17);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = seeded(9);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[weighted_index(&mut rng, &[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2, "{counts:?}");
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = seeded(23);
        for _ in 0..17 {
            a.next_u64();
        }
        let snap = a.state();
        let mut b = Rng::from_state(snap);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn uniform_bad_range_panics() {
        uniform(&mut seeded(0), &[1], 1.0, 1.0);
    }
}
