//! Feature-gated SIMD micro-kernels for the GEMM/GEMV hot loops.
//!
//! Compiled only under the `simd` cargo feature; dispatched at runtime so
//! the binary stays portable:
//!
//! * on `x86_64`, [`cpu_supported`] probes AVX2 + FMA with
//!   `is_x86_feature_detected!` and the kernels use 256-bit FMA
//!   intrinsics over [`MR_SIMD`]-row stripes,
//! * on `aarch64`, NEON (always present on the targets we build) with
//!   128-bit `vfmaq_f32`,
//! * anywhere else the safe scalar fallbacks run, so enabling the
//!   feature never changes behaviour on unsupported hardware.
//!
//! # Numerical contract
//!
//! The default scalar kernels in [`crate::ops`] are the *bitwise-stable*
//! path: their accumulation order is pinned by tests and by the committed
//! bench exhibits. The SIMD kernels fuse multiply-add (single rounding)
//! and accumulate in vector-lane order, so their results differ from the
//! scalar path by a few ULPs; `tests/simd_equivalence.rs` pins that gap.
//! Anything that must stay bitwise reproducible (committed `results/`
//! artifacts, the simulator's checksummed runs) is generated with the
//! default feature set.
//!
//! # Runtime override
//!
//! `DUET_SIMD=0` disables the SIMD path even when compiled in and
//! supported — [`enabled`] re-reads the variable on every call, so a
//! benchmark can compare scalar and SIMD kernels within one process.
// SIMD intrinsics are the one place the workspace needs `unsafe`; every
// call site carries a SAFETY note and the module is feature-gated.
#![allow(unsafe_code)]

/// Rows per stripe of the SIMD GEMM kernel. Wider than the scalar
/// [`crate::ops::MR`] because the FMA inner loop retires the B row much
/// faster, so more A rows can share one pass over B before the stripe's
/// C segments overflow L1.
pub const MR_SIMD: usize = 16;

/// Whether this CPU can run the vector kernels (AVX2+FMA on `x86_64`,
/// NEON on `aarch64`). Detection is cached by the standard library, so
/// this is cheap to call.
pub fn cpu_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(target_arch = "aarch64")]
    {
        std::arch::is_aarch64_feature_detected!("neon")
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// Whether the SIMD path should be taken right now: the CPU supports it
/// and `DUET_SIMD` is not set to `0`. The environment variable is read
/// fresh on every call (callers hoist this out of their row loops), so
/// `sparse_bench` can time scalar and SIMD kernels in one process.
pub fn enabled() -> bool {
    cpu_supported() && !matches!(std::env::var("DUET_SIMD").as_deref(), Ok("0"))
}

/// Vectorized dot product. Falls back to a scalar loop on CPUs without
/// the required features, so it is always safe to call; results may
/// differ from [`crate::ops::dot`]'s scalar order by a few ULPs.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: AVX2 + FMA presence was just verified at runtime.
        return unsafe { x86::dot_avx2(&a[..n], &b[..n]) };
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: NEON presence was just verified at runtime.
        return unsafe { arm::dot_neon(&a[..n], &b[..n]) };
    }
    dot_scalar(&a[..n], &b[..n])
}

/// Vectorized version of the blocked GEMM worker `ops::gemm_rows`: same
/// row/column blocking and per-element zero skip, but [`MR_SIMD`]-row
/// stripes and an FMA inner axpy. Falls back to a scalar loop on CPUs
/// without the required features.
pub fn gemm_rows(
    ad: &[f32],
    bd: &[f32],
    chunk: &mut [f32],
    row0: usize,
    rows_len: usize,
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: AVX2 + FMA presence was just verified at runtime.
        unsafe { x86::gemm_rows_avx2(ad, bd, chunk, row0, rows_len, k, n) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: NEON presence was just verified at runtime.
        unsafe { arm::gemm_rows_neon(ad, bd, chunk, row0, rows_len, k, n) };
        return;
    }
    gemm_rows_scalar(ad, bd, chunk, row0, rows_len, k, n);
}

fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

fn gemm_rows_scalar(
    ad: &[f32],
    bd: &[f32],
    chunk: &mut [f32],
    row0: usize,
    rows_len: usize,
    k: usize,
    n: usize,
) {
    gemm_stripes(ad, bd, chunk, row0, rows_len, k, n, |av, brow, crow| {
        for (cv, &bv) in crow.iter_mut().zip(brow) {
            *cv += av * bv;
        }
    });
}

/// Shared stripe/panel walk of the SIMD GEMM: identical blocking logic
/// for every backend, only the innermost axpy differs.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_stripes(
    ad: &[f32],
    bd: &[f32],
    chunk: &mut [f32],
    row0: usize,
    rows_len: usize,
    k: usize,
    n: usize,
    mut axpy: impl FnMut(f32, &[f32], &mut [f32]),
) {
    let nc = crate::ops::NC;
    let mut i = 0;
    while i < rows_len {
        let mr = MR_SIMD.min(rows_len - i);
        let arows = &ad[(row0 + i) * k..(row0 + i + mr) * k];
        let crows = &mut chunk[i * n..(i + mr) * n];
        let mut j0 = 0;
        while j0 < n {
            let w = nc.min(n - j0);
            for kk in 0..k {
                let brow = &bd[kk * n + j0..kk * n + j0 + w];
                for r in 0..mr {
                    let av = arows[r * k + kk];
                    if av == 0.0 {
                        continue;
                    }
                    axpy(av, brow, &mut crows[r * n + j0..r * n + j0 + w]);
                }
            }
            j0 += w;
        }
        i += mr;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_castps256_ps128, _mm256_extractf128_ps, _mm256_fmadd_ps,
        _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps, _mm_add_ps,
        _mm_add_ss, _mm_cvtss_f32, _mm_movehl_ps, _mm_shuffle_ps,
    };

    /// # Safety
    ///
    /// The CPU must support AVX2 and FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 32 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 8)),
                _mm256_loadu_ps(bp.add(i + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 16)),
                _mm256_loadu_ps(bp.add(i + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 24)),
                _mm256_loadu_ps(bp.add(i + 24)),
                acc3,
            );
            i += 32;
        }
        while i + 8 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
            i += 8;
        }
        let sum = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        let quad = _mm_add_ps(_mm256_castps256_ps128(sum), _mm256_extractf128_ps::<1>(sum));
        let pair = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
        let one = _mm_add_ss(pair, _mm_shuffle_ps::<0b01>(pair, pair));
        let mut total = _mm_cvtss_f32(one);
        while i < n {
            total += a[i] * b[i];
            i += 1;
        }
        total
    }

    /// # Safety
    ///
    /// The CPU must support AVX2 and FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gemm_rows_avx2(
        ad: &[f32],
        bd: &[f32],
        chunk: &mut [f32],
        row0: usize,
        rows_len: usize,
        k: usize,
        n: usize,
    ) {
        // The closure inherits this function's target features, so the
        // intrinsics inline and vectorize.
        super::gemm_stripes(ad, bd, chunk, row0, rows_len, k, n, |av, brow, crow| {
            let w = crow.len();
            let va = _mm256_set1_ps(av);
            let (bp, cp) = (brow.as_ptr(), crow.as_mut_ptr());
            let mut j = 0;
            while j + 8 <= w {
                // SAFETY: `j + 8 <= w` bounds the unaligned loads/store
                // within both slices.
                unsafe {
                    let fused =
                        _mm256_fmadd_ps(va, _mm256_loadu_ps(bp.add(j)), _mm256_loadu_ps(cp.add(j)));
                    _mm256_storeu_ps(cp.add(j), fused);
                }
                j += 8;
            }
            while j < w {
                crow[j] += av * brow[j];
                j += 1;
            }
        });
    }
}

#[cfg(target_arch = "aarch64")]
mod arm {
    use std::arch::aarch64::{vaddvq_f32, vdupq_n_f32, vfmaq_f32, vld1q_f32, vst1q_f32};

    /// # Safety
    ///
    /// The CPU must support NEON.
    #[target_feature(enable = "neon")]
    pub unsafe fn dot_neon(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut i = 0;
        while i + 8 <= n {
            acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
            acc1 = vfmaq_f32(acc1, vld1q_f32(ap.add(i + 4)), vld1q_f32(bp.add(i + 4)));
            i += 8;
        }
        while i + 4 <= n {
            acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
            i += 4;
        }
        let mut total = vaddvq_f32(acc0) + vaddvq_f32(acc1);
        while i < n {
            total += a[i] * b[i];
            i += 1;
        }
        total
    }

    /// # Safety
    ///
    /// The CPU must support NEON.
    #[target_feature(enable = "neon")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gemm_rows_neon(
        ad: &[f32],
        bd: &[f32],
        chunk: &mut [f32],
        row0: usize,
        rows_len: usize,
        k: usize,
        n: usize,
    ) {
        // The closure inherits this function's target features, so the
        // intrinsics inline and vectorize.
        super::gemm_stripes(ad, bd, chunk, row0, rows_len, k, n, |av, brow, crow| {
            let w = crow.len();
            let va = vdupq_n_f32(av);
            let (bp, cp) = (brow.as_ptr(), crow.as_mut_ptr());
            let mut j = 0;
            while j + 4 <= w {
                // SAFETY: `j + 4 <= w` bounds the loads/store within both
                // slices.
                unsafe {
                    vst1q_f32(
                        cp.add(j),
                        vfmaq_f32(vld1q_f32(cp.add(j)), va, vld1q_f32(bp.add(j))),
                    );
                }
                j += 4;
            }
            while j < w {
                crow[j] += av * brow[j];
                j += 1;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_fallbacks_match_ops_kernels() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32 * 0.11).cos()).collect();
        let want: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        assert_eq!(dot_scalar(&a, &b), want);
    }

    #[test]
    fn enabled_honours_env_override() {
        // Can't mutate the environment safely in tests; just pin the
        // relation between the two predicates.
        if !cpu_supported() {
            assert!(!enabled());
        }
    }
}
