//! Linear-algebra kernels: GEMM, GEMV, element-wise helpers.
//!
//! These are the "accurate module" kernels — a feed-forward layer in the
//! paper is `y = Wx + b` computed by [`gemv`]; CONV layers lower to
//! [`matmul`] through [`crate::im2col`].
//!
//! # Kernel architecture
//!
//! [`matmul`] is a row-striped, cache-blocked GEMM parallelized over row
//! ranges of the output via [`crate::parallel`]:
//!
//! * each worker owns a contiguous row range of C and processes it in
//!   stripes of [`MR`] rows: every B row loaded from L2/L3 is reused
//!   against `MR` A elements while it is hot in L1, cutting B traffic
//!   `MR`-fold versus the naive i-k-j loop (the naive kernel re-streams
//!   all of B for every single output row, which makes it bandwidth-bound
//!   for large matrices),
//! * wide outputs are additionally blocked into [`NC`]-column panels so a
//!   stripe's C rows stay L1-resident across the `k` sweep,
//! * the inner loop is a full-width contiguous `c[j] += a·b[j]` update —
//!   the same shape the naive kernel auto-vectorizes well — and each
//!   `c[i][j]` accumulates over `k` in the same fixed order for every
//!   stripe/panel/thread configuration, so results are bitwise identical
//!   to [`matmul_naive`] and across thread counts,
//! * the zero-skip fast path of the naive kernel is preserved per A
//!   element (`a[i,k] == 0` contributes nothing and is skipped), which is
//!   what makes switching-map-masked Executor rows and ReLU-sparse
//!   activations cheap,
//! * tiny products fall back to [`matmul_naive`], and parallelism only
//!   engages above [`PAR_MIN_FLOPS`] work.
//!
//! An earlier iteration of this kernel packed B into zero-padded 8-column
//! panels with an explicit 4×8 register tile; on wide cores it measured
//! *slower* than the naive loop because the narrow inner loop could not
//! keep the vector units fed. The stripe design above keeps the naive
//! kernel's proven inner loop and attacks only its memory traffic.
//!
//! # SIMD dispatch
//!
//! Under the `simd` cargo feature, [`matmul`]'s stripe worker and the
//! [`gemv`]/[`affine`]/[`dot`] row dots dispatch to the explicit vector
//! kernels in `crate::simd` when the CPU supports them at runtime
//! (AVX2+FMA on x86_64, NEON on aarch64) and `DUET_SIMD` is not `0`.
//! The scalar kernels here remain the default *bitwise-stable* path —
//! the SIMD kernels fuse multiply-adds, so they agree with the scalar
//! order only to a few ULPs (pinned by `tests/simd_equivalence.rs`), and
//! everything checksummed (committed bench artifacts, simulator runs) is
//! produced with the default feature set.
//!
//! [`matmul_naive`] is the original three-loop kernel, kept as the
//! reference implementation the blocked/parallel paths are tested against
//! (they must agree within `1e-4`).

use crate::parallel;
use crate::tensor::Tensor;

/// Rows per stripe of the blocked GEMM kernel: how many A rows share one
/// pass over B.
pub const MR: usize = 8;

/// Column-block width: a stripe's `MR` C-row segments (`MR · NC · 4`
/// bytes) stay L1-resident across the full `k` sweep.
pub const NC: usize = 1024;

/// Minimum `m·k·n` multiply count before the striped kernel takes over
/// from [`matmul_naive`]; below this the blocking bookkeeping costs more
/// than it saves.
pub const BLOCKED_MIN_FLOPS: usize = 32 * 32 * 32;

/// Minimum multiply count (`m·k·n` for GEMM, `n·d` for GEMV) before a
/// kernel fans out over threads; below this it runs serially regardless of
/// [`parallel::num_threads`].
pub const PAR_MIN_FLOPS: usize = 64 * 64 * 64;

/// Whether the `crate::simd` micro-kernels take over the hot loops for
/// this call: compiled in, supported by the CPU, and not disabled via
/// `DUET_SIMD=0`. Callers hoist this out of their row loops (the env
/// check is re-read per kernel call, not per row). Public so tests that
/// pin absolute float-derived checksums — captured on the scalar,
/// bitwise-stable kernel order — can detect the (ULP-different) SIMD
/// path and fall back to structural assertions.
#[inline]
pub fn simd_active() -> bool {
    #[cfg(feature = "simd")]
    return crate::simd::enabled();
    #[cfg(not(feature = "simd"))]
    false
}

/// Row-dot dispatch: the SIMD dot when `use_simd`, otherwise the scalar
/// bitwise-stable [`dot_slices`].
#[inline]
fn dot_dispatch(use_simd: bool, a: &[f32], b: &[f32]) -> f32 {
    #[cfg(feature = "simd")]
    if use_simd {
        return crate::simd::dot(a, b);
    }
    let _ = use_simd;
    dot_slices(a, b)
}

/// GEMM worker dispatch: the SIMD stripe kernel when `use_simd`,
/// otherwise the scalar bitwise-stable [`gemm_rows`].
#[inline]
#[allow(clippy::too_many_arguments)]
fn gemm_rows_dispatch(
    use_simd: bool,
    ad: &[f32],
    bd: &[f32],
    chunk: &mut [f32],
    row0: usize,
    rows_len: usize,
    k: usize,
    n: usize,
) {
    #[cfg(feature = "simd")]
    if use_simd {
        crate::simd::gemm_rows(ad, bd, chunk, row0, rows_len, k, n);
        return;
    }
    let _ = use_simd;
    gemm_rows(ad, bd, chunk, row0, rows_len, k, n);
}

fn assert_matmul_shapes(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be 2-D");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be 2-D");
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(
        k,
        k2,
        "matmul inner dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    (m, k, n)
}

/// Matrix multiplication `C = A · B` for 2-D tensors.
///
/// Row-striped, cache-blocked, and parallelized over output rows (see the
/// module docs); thread count comes from [`parallel::num_threads`]. Agrees
/// with [`matmul_naive`] within `1e-4` and is deterministic across thread
/// counts.
///
/// # Panics
///
/// Panics if the tensors are not 2-D or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use duet_tensor::{Tensor, ops::matmul};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]);
/// assert_eq!(matmul(&a, &b).data(), &[2.0, 1.0, 4.0, 3.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_with_threads(a, b, parallel::num_threads())
}

/// [`matmul`] with an explicit thread-count cap (1 forces serial).
///
/// # Panics
///
/// Panics if the tensors are not 2-D or the inner dimensions disagree.
pub fn matmul_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    let (m, k, n) = assert_matmul_shapes(a, b);
    let flops = m * k * n;
    duet_obs::counter!("tensor.gemm.calls").inc();
    duet_obs::counter!("tensor.gemm.flops").add(2 * flops as u64);
    if flops < BLOCKED_MIN_FLOPS {
        duet_obs::counter!("tensor.gemm.serial_fallback").inc();
        return matmul_naive(a, b);
    }
    let threads = if flops >= PAR_MIN_FLOPS {
        threads.clamp(1, m)
    } else {
        1
    };
    duet_obs::gauge!("tensor.gemm.max_threads").set_max(threads as i64);

    let _call = duet_obs::span("tensor.gemm");
    let use_simd = simd_active();
    if use_simd {
        duet_obs::counter!("tensor.gemm.simd").inc();
    }
    let mut c = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    parallel::for_each_row_chunk(c.data_mut(), m, n, threads, |rows, chunk| {
        // One stripe span per worker chunk: the histogram of these
        // durations exposes load imbalance (max vs. p50), and in a trace
        // the stripes render as parallel slices on per-thread tracks.
        let _stripe = duet_obs::span("tensor.gemm.stripe");
        gemm_rows_dispatch(use_simd, ad, bd, chunk, rows.start, rows.len(), k, n);
    });
    c
}

/// The original three-loop i-k-j kernel with the per-element zero-skip
/// fast path, kept as the testing reference for the blocked/parallel
/// kernels (and used by them for small products).
///
/// # Panics
///
/// Panics if the tensors are not 2-D or the inner dimensions disagree.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = assert_matmul_shapes(a, b);
    let mut c = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let cd = c.data_mut();
    for i in 0..m {
        for kk in 0..k {
            let aik = ad[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            let crow = &mut cd[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
    c
}

/// Computes `rows_len` C rows starting at global row `row0` into `chunk`
/// (the disjoint `[rows_len × n]` window of C owned by this worker).
///
/// Rows are processed in stripes of [`MR`] and columns in blocks of
/// [`NC`]; within one (stripe, block) pair the `k` sweep reuses each B row
/// segment [`MR`] times from L1 while the stripe's C segments also stay
/// L1-resident. The inner update skips zero A elements exactly like
/// [`matmul_naive`] and accumulates in the same order, so the result is
/// bitwise identical to the naive reference.
fn gemm_rows(
    ad: &[f32],
    bd: &[f32],
    chunk: &mut [f32],
    row0: usize,
    rows_len: usize,
    k: usize,
    n: usize,
) {
    let mut i = 0;
    while i < rows_len {
        let mr = MR.min(rows_len - i);
        let arows = &ad[(row0 + i) * k..(row0 + i + mr) * k];
        let crows = &mut chunk[i * n..(i + mr) * n];
        let mut j0 = 0;
        while j0 < n {
            let w = NC.min(n - j0);
            for kk in 0..k {
                let brow = &bd[kk * n + j0..kk * n + j0 + w];
                for r in 0..mr {
                    let av = arows[r * k + kk];
                    if av == 0.0 {
                        continue;
                    }
                    let crow = &mut crows[r * n + j0..r * n + j0 + w];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
            j0 += w;
        }
        i += mr;
    }
}

/// Matrix–vector product `y = W · x`, parallelized over output rows above
/// [`PAR_MIN_FLOPS`] work (each row is an independent dot product, so the
/// result is bitwise identical for every thread count).
///
/// # Panics
///
/// Panics if `w` is not 2-D, `x` is not 1-D, or dimensions disagree.
pub fn gemv(w: &Tensor, x: &Tensor) -> Tensor {
    gemv_with_threads(w, x, parallel::num_threads())
}

/// [`gemv`] with an explicit thread-count cap (1 forces serial).
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn gemv_with_threads(w: &Tensor, x: &Tensor, threads: usize) -> Tensor {
    assert_eq!(w.shape().rank(), 2, "gemv matrix must be 2-D");
    assert_eq!(x.shape().rank(), 1, "gemv vector must be 1-D");
    let (n, d) = (w.shape().dim(0), w.shape().dim(1));
    assert_eq!(
        d,
        x.len(),
        "gemv dimension mismatch: {} vs {}",
        w.shape(),
        x.shape()
    );
    let threads = if n * d >= PAR_MIN_FLOPS {
        threads.clamp(1, n)
    } else {
        1
    };
    duet_obs::counter!("tensor.gemv.calls").inc();
    duet_obs::counter!("tensor.gemv.flops").add(2 * (n * d) as u64);
    if threads == 1 {
        duet_obs::counter!("tensor.gemv.serial_fallback").inc();
    }
    let use_simd = simd_active();
    let mut y = Tensor::zeros(&[n]);
    let wd = w.data();
    let xd = x.data();
    parallel::for_each_row_chunk(y.data_mut(), n, 1, threads, |rows, chunk| {
        for (local, i) in rows.enumerate() {
            chunk[local] = dot_dispatch(use_simd, &wd[i * d..(i + 1) * d], xd);
        }
    });
    y
}

#[inline]
fn dot_slices(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Affine transform `y = W · x + b`, the accurate module of an FF layer.
/// The bias add is fused into the row loop and parallelized like [`gemv`].
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn affine(w: &Tensor, x: &Tensor, b: &Tensor) -> Tensor {
    affine_with_threads(w, x, b, parallel::num_threads())
}

/// [`affine`] with an explicit thread-count cap (1 forces serial).
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn affine_with_threads(w: &Tensor, x: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    assert_eq!(w.shape().rank(), 2, "affine matrix must be 2-D");
    assert_eq!(x.shape().rank(), 1, "affine vector must be 1-D");
    let (n, d) = (w.shape().dim(0), w.shape().dim(1));
    assert_eq!(
        d,
        x.len(),
        "affine dimension mismatch: {} vs {}",
        w.shape(),
        x.shape()
    );
    assert_eq!(
        n,
        b.len(),
        "bias length {} does not match output length {}",
        b.len(),
        n
    );
    let threads = if n * d >= PAR_MIN_FLOPS {
        threads.clamp(1, n)
    } else {
        1
    };
    duet_obs::counter!("tensor.affine.calls").inc();
    duet_obs::counter!("tensor.affine.flops").add((2 * n * d + n) as u64);
    let use_simd = simd_active();
    let mut y = Tensor::zeros(&[n]);
    let wd = w.data();
    let xd = x.data();
    let bd = b.data();
    parallel::for_each_row_chunk(y.data_mut(), n, 1, threads, |rows, chunk| {
        for (local, i) in rows.enumerate() {
            chunk[local] = dot_dispatch(use_simd, &wd[i * d..(i + 1) * d], xd) + bd[i];
        }
    });
    y
}

/// Element-wise addition.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip_map(b, |x, y| x + y)
}

/// Element-wise subtraction `a - b`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip_map(b, |x, y| x - y)
}

/// Element-wise (Hadamard) product — the `⊙` of Eq. (2).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn hadamard(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip_map(b, |x, y| x * y)
}

/// Scales a tensor by a constant.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// `y += alpha * x`, in place.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(alpha: f32, x: &Tensor, y: &mut Tensor) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yv, xv) in y.data_mut().iter_mut().zip(x.data()) {
        *yv += alpha * xv;
    }
}

/// Dot product of two 1-D tensors.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    dot_dispatch(simd_active(), a.data(), b.data())
}

/// Mean squared error between two tensors of the same shape.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse(a: &Tensor, b: &Tensor) -> f32 {
    sub(a, b).norm_sq() / a.len() as f32
}

/// Argmax over a 1-D tensor; ties resolve to the lowest index.
///
/// # Panics
///
/// Panics if the tensor is empty.
pub fn argmax(a: &Tensor) -> usize {
    assert!(!a.is_empty(), "argmax of empty tensor");
    let mut best = 0;
    let mut best_v = a.data()[0];
    for (i, &v) in a.data().iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d)
    }

    #[test]
    fn matmul_identity() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let c = matmul(&a, &Tensor::eye(3));
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let b = t(vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], &[2, 4]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape().dims(), &[3, 4]);
        assert_eq!(&c.data()[0..4], &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(&c.data()[8..12], &[8.0, 10.0, 12.0, 14.0]);
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_matches_naive_above_threshold() {
        let mut r = rng::seeded(100);
        for (m, k, n) in [(33, 40, 37), (64, 64, 64), (61, 128, 5), (4, 100, 90)] {
            let a = rng::normal(&mut r, &[m, k], 0.0, 1.0);
            let b = rng::normal(&mut r, &[k, n], 0.0, 1.0);
            assert_close(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-4);
        }
    }

    #[test]
    fn blocked_preserves_zero_skip_semantics() {
        // A sparse A (masked Executor rows + ReLU-sparse activations) must
        // produce the same result through the skip path as densely.
        let mut r = rng::seeded(101);
        let mut a = rng::normal(&mut r, &[40, 48], 0.0, 1.0);
        for v in a.data_mut().iter_mut() {
            if *v < 0.6 {
                *v = 0.0; // ~70% zeros, plus whole rows below
            }
        }
        for j in 0..48 {
            a.data_mut()[5 * 48 + j] = 0.0;
            a.data_mut()[17 * 48 + j] = 0.0;
        }
        let b = rng::normal(&mut r, &[48, 36], 0.0, 1.0);
        let c = matmul(&a, &b);
        assert_close(&c, &matmul_naive(&a, &b), 1e-4);
        assert!(c.row(5).iter().all(|&v| v == 0.0));
        assert!(c.row(17).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matmul_deterministic_across_thread_counts() {
        let mut r = rng::seeded(102);
        let a = rng::normal(&mut r, &[96, 80], 0.0, 1.0);
        let b = rng::normal(&mut r, &[80, 72], 0.0, 1.0);
        let c1 = matmul_with_threads(&a, &b, 1);
        for threads in [2, 3, 4, 8] {
            let ct = matmul_with_threads(&a, &b, threads);
            assert_eq!(c1, ct, "threads={threads} must be bitwise identical");
        }
    }

    #[test]
    fn gemv_matches_matmul() {
        let w = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let x = t(vec![1.0, 0.5, -1.0], &[3]);
        let y = gemv(&w, &x);
        let xm = x.reshaped(&[3, 1]);
        let ym = matmul(&w, &xm);
        assert_eq!(y.data(), ym.data());
    }

    #[test]
    fn gemv_parallel_is_bitwise_serial() {
        let mut r = rng::seeded(103);
        let w = rng::normal(&mut r, &[300, 1000], 0.0, 1.0);
        let x = rng::normal(&mut r, &[1000], 0.0, 1.0);
        let y1 = gemv_with_threads(&w, &x, 1);
        for threads in [2, 4, 7] {
            assert_eq!(y1, gemv_with_threads(&w, &x, threads));
        }
    }

    #[test]
    fn affine_adds_bias() {
        let w = Tensor::eye(2);
        let x = t(vec![3.0, 4.0], &[2]);
        let b = t(vec![1.0, -1.0], &[2]);
        assert_eq!(affine(&w, &x, &b).data(), &[4.0, 3.0]);
    }

    #[test]
    fn affine_parallel_matches_serial_composition() {
        let mut r = rng::seeded(104);
        let w = rng::normal(&mut r, &[280, 1024], 0.0, 0.5);
        let x = rng::normal(&mut r, &[1024], 0.0, 1.0);
        let b = rng::normal(&mut r, &[280], 0.0, 1.0);
        let fused = affine_with_threads(&w, &x, &b, 4);
        let mut reference = gemv_with_threads(&w, &x, 1);
        axpy(1.0, &b, &mut reference);
        assert_close(&fused, &reference, 1e-5);
    }

    #[test]
    fn hadamard_and_switching_mix() {
        // Eq. (2): y = y ⊙ m + y' ⊙ (1-m)
        let y = t(vec![10.0, 20.0, 30.0], &[3]);
        let yp = t(vec![1.0, 2.0, 3.0], &[3]);
        let m = t(vec![1.0, 0.0, 1.0], &[3]);
        let ones = Tensor::full(&[3], 1.0);
        let mixed = add(&hadamard(&y, &m), &hadamard(&yp, &sub(&ones, &m)));
        assert_eq!(mixed.data(), &[10.0, 2.0, 30.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let x = t(vec![1.0, 2.0], &[2]);
        let mut y = t(vec![10.0, 10.0], &[2]);
        axpy(0.5, &x, &mut y);
        assert_eq!(y.data(), &[10.5, 11.0]);
    }

    #[test]
    fn dot_and_mse() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let b = t(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(dot(&a, &b), 32.0);
        assert!((mse(&a, &b) - 9.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_tie() {
        let a = t(vec![0.5, 2.0, 2.0, 1.0], &[4]);
        assert_eq!(argmax(&a), 1);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 3]));
    }
}
