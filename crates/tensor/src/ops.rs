//! Linear-algebra kernels: GEMM, GEMV, element-wise helpers.
//!
//! These are the "accurate module" kernels — a feed-forward layer in the
//! paper is `y = Wx + b` computed by [`gemv`]; CONV layers lower to
//! [`matmul`] through [`crate::im2col`].

use crate::tensor::Tensor;

/// Matrix multiplication `C = A · B` for 2-D tensors.
///
/// Uses a cache-friendly i-k-j loop ordering.
///
/// # Panics
///
/// Panics if the tensors are not 2-D or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use duet_tensor::{Tensor, ops::matmul};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]);
/// assert_eq!(matmul(&a, &b).data(), &[2.0, 1.0, 4.0, 3.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be 2-D");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be 2-D");
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(
        k,
        k2,
        "matmul inner dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut c = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let cd = c.data_mut();
    for i in 0..m {
        for kk in 0..k {
            let aik = ad[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            let crow = &mut cd[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
    c
}

/// Matrix–vector product `y = W · x`.
///
/// # Panics
///
/// Panics if `w` is not 2-D, `x` is not 1-D, or dimensions disagree.
pub fn gemv(w: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(w.shape().rank(), 2, "gemv matrix must be 2-D");
    assert_eq!(x.shape().rank(), 1, "gemv vector must be 1-D");
    let (n, d) = (w.shape().dim(0), w.shape().dim(1));
    assert_eq!(
        d,
        x.len(),
        "gemv dimension mismatch: {} vs {}",
        w.shape(),
        x.shape()
    );
    let mut y = Tensor::zeros(&[n]);
    let wd = w.data();
    let xd = x.data();
    let yd = y.data_mut();
    for i in 0..n {
        let row = &wd[i * d..(i + 1) * d];
        let mut acc = 0.0f32;
        for (wv, xv) in row.iter().zip(xd) {
            acc += wv * xv;
        }
        yd[i] = acc;
    }
    y
}

/// Affine transform `y = W · x + b`, the accurate module of an FF layer.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn affine(w: &Tensor, x: &Tensor, b: &Tensor) -> Tensor {
    let mut y = gemv(w, x);
    assert_eq!(
        y.len(),
        b.len(),
        "bias length {} does not match output length {}",
        b.len(),
        y.len()
    );
    for (yv, bv) in y.data_mut().iter_mut().zip(b.data()) {
        *yv += bv;
    }
    y
}

/// Element-wise addition.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip_map(b, |x, y| x + y)
}

/// Element-wise subtraction `a - b`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip_map(b, |x, y| x - y)
}

/// Element-wise (Hadamard) product — the `⊙` of Eq. (2).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn hadamard(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip_map(b, |x, y| x * y)
}

/// Scales a tensor by a constant.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// `y += alpha * x`, in place.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(alpha: f32, x: &Tensor, y: &mut Tensor) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yv, xv) in y.data_mut().iter_mut().zip(x.data()) {
        *yv += alpha * xv;
    }
}

/// Dot product of two 1-D tensors.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.data().iter().zip(b.data()).map(|(&x, &y)| x * y).sum()
}

/// Mean squared error between two tensors of the same shape.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse(a: &Tensor, b: &Tensor) -> f32 {
    sub(a, b).norm_sq() / a.len() as f32
}

/// Argmax over a 1-D tensor; ties resolve to the lowest index.
///
/// # Panics
///
/// Panics if the tensor is empty.
pub fn argmax(a: &Tensor) -> usize {
    assert!(!a.is_empty(), "argmax of empty tensor");
    let mut best = 0;
    let mut best_v = a.data()[0];
    for (i, &v) in a.data().iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d)
    }

    #[test]
    fn matmul_identity() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let c = matmul(&a, &Tensor::eye(3));
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let b = t(vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], &[2, 4]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape().dims(), &[3, 4]);
        assert_eq!(&c.data()[0..4], &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(&c.data()[8..12], &[8.0, 10.0, 12.0, 14.0]);
    }

    #[test]
    fn gemv_matches_matmul() {
        let w = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let x = t(vec![1.0, 0.5, -1.0], &[3]);
        let y = gemv(&w, &x);
        let xm = x.reshaped(&[3, 1]);
        let ym = matmul(&w, &xm);
        assert_eq!(y.data(), ym.data());
    }

    #[test]
    fn affine_adds_bias() {
        let w = Tensor::eye(2);
        let x = t(vec![3.0, 4.0], &[2]);
        let b = t(vec![1.0, -1.0], &[2]);
        assert_eq!(affine(&w, &x, &b).data(), &[4.0, 3.0]);
    }

    #[test]
    fn hadamard_and_switching_mix() {
        // Eq. (2): y = y ⊙ m + y' ⊙ (1-m)
        let y = t(vec![10.0, 20.0, 30.0], &[3]);
        let yp = t(vec![1.0, 2.0, 3.0], &[3]);
        let m = t(vec![1.0, 0.0, 1.0], &[3]);
        let ones = Tensor::full(&[3], 1.0);
        let mixed = add(&hadamard(&y, &m), &hadamard(&yp, &sub(&ones, &m)));
        assert_eq!(mixed.data(), &[10.0, 2.0, 30.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let x = t(vec![1.0, 2.0], &[2]);
        let mut y = t(vec![10.0, 10.0], &[2]);
        axpy(0.5, &x, &mut y);
        assert_eq!(y.data(), &[10.5, 11.0]);
    }

    #[test]
    fn dot_and_mse() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let b = t(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(dot(&a, &b), 32.0);
        assert!((mse(&a, &b) - 9.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_tie() {
        let a = t(vec![0.5, 2.0, 2.0, 1.0], &[4]);
        assert_eq!(argmax(&a), 1);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 3]));
    }
}
