//! Row-major tensor shapes and stride computation.

use std::fmt;

/// A row-major tensor shape.
///
/// Shapes are immutable after construction; the element count and strides
/// are derived on demand.
///
/// # Example
///
/// ```
/// use duet_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension slice.
    ///
    /// Zero-sized dimensions are allowed: a `[0, d]` shape is the empty
    /// batch a serving-layer micro-batcher can legitimately flush, holding
    /// zero elements. Rank zero is not.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        Self {
            dims: dims.to_vec(),
        }
    }

    /// The dimensions of the shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape holds zero elements (some dimension is zero,
    /// e.g. an empty `[0, d]` batch).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Flattens a multi-dimensional index into a linear offset.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} != shape rank {}",
            index.len(),
            self.dims.len()
        );
        let strides = self.strides();
        let mut off = 0;
        for (i, (&ix, &d)) in index.iter().zip(&self.dims).enumerate() {
            assert!(ix < d, "index {ix} out of bounds for dim {i} of size {d}");
            off += ix * strides[i];
        }
        off
    }

    /// Returns a new shape with the same element count, reshaped to `dims`.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Shape {
        let next = Shape::new(dims);
        assert_eq!(
            self.len(),
            next.len(),
            "cannot reshape {self} ({} elems) to {next} ({} elems)",
            self.len(),
            next.len()
        );
        next
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(&[3, 5]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..3 {
            for j in 0..5 {
                let off = s.offset(&[i, j]);
                assert!(off < s.len());
                assert!(seen.insert(off), "duplicate offset {off}");
            }
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn scalar_like_1d() {
        let s = Shape::new(&[1]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.offset(&[0]), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn zero_sized_dims_are_empty() {
        // An empty batch ([0, d]) is representable: zero elements, rank 2.
        let s = Shape::new(&[0, 3]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.rank(), 2);
        assert_eq!(s.dim(0), 0);
        assert_eq!(s.to_string(), "[0x3]");
        // but rank zero is still rejected
        assert!(std::panic::catch_unwind(|| Shape::new(&[])).is_err());
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_mismatch_panics() {
        Shape::new(&[2, 3]).reshape(&[7]);
    }

    #[test]
    fn reshape_preserves_len() {
        let s = Shape::new(&[4, 6]).reshape(&[2, 12]);
        assert_eq!(s.dims(), &[2, 12]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
    }
}
