//! Convolution-to-GEMM lowering.
//!
//! §II-B of the paper: "We can apply dual-module algorithm to CNN by first
//! doing the im2col transformation on input tensor. Then, the input and
//! output become matrices rather than vectors, but the overall algorithm is
//! the same as FF layers."
//!
//! Layout conventions: feature maps are `[C, H, W]` (channel-major), filter
//! banks are `[K, C, R, S]`. The im2col patch matrix is
//! `[C·R·S, out_h·out_w]`, so a convolution is
//! `out[K, oh·ow] = filters[K, C·R·S] · patches[C·R·S, oh·ow]`.

use crate::tensor::Tensor;

/// Spatial geometry of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConvGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Filter height.
    pub kernel_h: usize,
    /// Filter width.
    pub kernel_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvGeometry {
    /// Output height after convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_h(&self) -> usize {
        let padded = self.in_h + 2 * self.padding;
        assert!(
            padded >= self.kernel_h,
            "kernel height {} exceeds padded input height {}",
            self.kernel_h,
            padded
        );
        (padded - self.kernel_h) / self.stride + 1
    }

    /// Output width after convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_w(&self) -> usize {
        let padded = self.in_w + 2 * self.padding;
        assert!(
            padded >= self.kernel_w,
            "kernel width {} exceeds padded input width {}",
            self.kernel_w,
            padded
        );
        (padded - self.kernel_w) / self.stride + 1
    }

    /// Rows of the patch matrix: `C·R·S`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }

    /// Columns of the patch matrix: number of output positions.
    pub fn out_positions(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

/// Lowers a `[C, H, W]` input into a `[C·R·S, out_h·out_w]` patch matrix.
///
/// Out-of-range (padding) positions contribute zeros.
///
/// # Panics
///
/// Panics if `input` does not have shape `[C, H, W]` matching `geom`.
pub fn im2col(input: &Tensor, geom: &ConvGeometry) -> Tensor {
    assert_eq!(input.shape().rank(), 3, "im2col input must be [C,H,W]");
    assert_eq!(input.shape().dim(0), geom.in_channels, "channel mismatch");
    assert_eq!(input.shape().dim(1), geom.in_h, "height mismatch");
    assert_eq!(input.shape().dim(2), geom.in_w, "width mismatch");

    let (oh, ow) = (geom.out_h(), geom.out_w());
    let cols = oh * ow;
    let rows = geom.patch_len();
    let mut out = Tensor::zeros(&[rows, cols]);
    let id = input.data();
    let od = out.data_mut();

    for c in 0..geom.in_channels {
        for kh in 0..geom.kernel_h {
            for kw in 0..geom.kernel_w {
                let row = (c * geom.kernel_h + kh) * geom.kernel_w + kw;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + kh) as isize - geom.padding as isize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kw) as isize - geom.padding as isize;
                        let col = oy * ow + ox;
                        if iy >= 0
                            && (iy as usize) < geom.in_h
                            && ix >= 0
                            && (ix as usize) < geom.in_w
                        {
                            od[row * cols + col] =
                                id[(c * geom.in_h + iy as usize) * geom.in_w + ix as usize];
                        }
                    }
                }
            }
        }
    }
    out
}

/// The adjoint of [`im2col`]: scatters a patch-matrix gradient back onto a
/// `[C, H, W]` input-gradient tensor (needed for conv backprop).
///
/// # Panics
///
/// Panics if `cols` does not have shape `[C·R·S, out_h·out_w]`.
pub fn col2im(cols: &Tensor, geom: &ConvGeometry) -> Tensor {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    assert_eq!(
        cols.shape().dims(),
        &[geom.patch_len(), oh * ow],
        "col2im shape mismatch"
    );
    let mut out = Tensor::zeros(&[geom.in_channels, geom.in_h, geom.in_w]);
    let cd = cols.data();
    let od = out.data_mut();
    let ncols = oh * ow;

    for c in 0..geom.in_channels {
        for kh in 0..geom.kernel_h {
            for kw in 0..geom.kernel_w {
                let row = (c * geom.kernel_h + kh) * geom.kernel_w + kw;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + kh) as isize - geom.padding as isize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kw) as isize - geom.padding as isize;
                        if iy >= 0
                            && (iy as usize) < geom.in_h
                            && ix >= 0
                            && (ix as usize) < geom.in_w
                        {
                            od[(c * geom.in_h + iy as usize) * geom.in_w + ix as usize] +=
                                cd[row * ncols + oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
    out
}

/// Direct (naive) convolution used as a reference to validate the
/// im2col + GEMM path. Filters are `[K, C, R, S]`, output is `[K, oh, ow]`.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn conv2d_direct(input: &Tensor, filters: &Tensor, geom: &ConvGeometry) -> Tensor {
    assert_eq!(filters.shape().rank(), 4, "filters must be [K,C,R,S]");
    let k = filters.shape().dim(0);
    assert_eq!(filters.shape().dim(1), geom.in_channels);
    assert_eq!(filters.shape().dim(2), geom.kernel_h);
    assert_eq!(filters.shape().dim(3), geom.kernel_w);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let mut out = Tensor::zeros(&[k, oh, ow]);
    for f in 0..k {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0;
                for c in 0..geom.in_channels {
                    for kh in 0..geom.kernel_h {
                        for kw in 0..geom.kernel_w {
                            let iy = (oy * geom.stride + kh) as isize - geom.padding as isize;
                            let ix = (ox * geom.stride + kw) as isize - geom.padding as isize;
                            if iy >= 0
                                && (iy as usize) < geom.in_h
                                && ix >= 0
                                && (ix as usize) < geom.in_w
                            {
                                acc += input.at(&[c, iy as usize, ix as usize])
                                    * filters.at(&[f, c, kh, kw]);
                            }
                        }
                    }
                }
                out.set(&[f, oy, ox], acc);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul;

    fn geom_3x3() -> ConvGeometry {
        ConvGeometry {
            in_channels: 2,
            in_h: 5,
            in_w: 5,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 0,
        }
    }

    #[test]
    fn geometry_math() {
        let g = geom_3x3();
        assert_eq!(g.out_h(), 3);
        assert_eq!(g.out_w(), 3);
        assert_eq!(g.patch_len(), 18);
        assert_eq!(g.out_positions(), 9);
    }

    #[test]
    fn geometry_with_padding_and_stride() {
        let g = ConvGeometry {
            in_channels: 3,
            in_h: 224,
            in_w: 224,
            kernel_h: 11,
            kernel_w: 11,
            stride: 4,
            padding: 2,
        };
        // AlexNet conv1: (224 + 4 - 11)/4 + 1 = 55
        assert_eq!(g.out_h(), 55);
        assert_eq!(g.out_w(), 55);
    }

    #[test]
    fn im2col_gemm_matches_direct_conv() {
        let g = geom_3x3();
        let input = Tensor::from_fn(&[2, 5, 5], |i| (i as f32 * 0.37).sin());
        let filters = Tensor::from_fn(&[4, 2, 3, 3], |i| (i as f32 * 0.11).cos());

        let direct = conv2d_direct(&input, &filters, &g);

        let cols = im2col(&input, &g);
        let fmat = filters.reshaped(&[4, g.patch_len()]);
        let gemm_out = matmul(&fmat, &cols);

        for (a, b) in direct.data().iter().zip(gemm_out.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn im2col_gemm_matches_direct_conv_padded_strided() {
        let g = ConvGeometry {
            in_channels: 3,
            in_h: 7,
            in_w: 6,
            kernel_h: 3,
            kernel_w: 3,
            stride: 2,
            padding: 1,
        };
        let input = Tensor::from_fn(&[3, 7, 6], |i| ((i * 7 % 13) as f32) - 6.0);
        let filters = Tensor::from_fn(&[5, 3, 3, 3], |i| ((i * 3 % 11) as f32) * 0.1 - 0.5);

        let direct = conv2d_direct(&input, &filters, &g);
        let cols = im2col(&input, &g);
        let gemm_out = matmul(&filters.reshaped(&[5, g.patch_len()]), &cols);

        assert_eq!(direct.len(), gemm_out.len());
        for (a, b) in direct.data().iter().zip(gemm_out.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining
        // property of the adjoint, which backprop relies on.
        let g = ConvGeometry {
            in_channels: 2,
            in_h: 4,
            in_w: 4,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        };
        let x = Tensor::from_fn(&[2, 4, 4], |i| (i as f32 * 0.7).sin());
        let y = Tensor::from_fn(&[g.patch_len(), g.out_positions()], |i| {
            (i as f32 * 0.3).cos()
        });
        let lhs = crate::ops::dot(
            &im2col(&x, &g).reshaped(&[g.patch_len() * g.out_positions()]),
            &y.reshaped(&[g.patch_len() * g.out_positions()]),
        );
        let rhs = crate::ops::dot(
            &x.reshaped(&[x.len()]),
            &col2im(&y, &g).reshaped(&[x.len()]),
        );
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn padding_region_is_zero() {
        let g = ConvGeometry {
            in_channels: 1,
            in_h: 2,
            in_w: 2,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        };
        let input = Tensor::full(&[1, 2, 2], 1.0);
        let cols = im2col(&input, &g);
        // top-left output position: kernel position (0,0) maps to padded
        // coordinate (-1,-1) which must be zero.
        assert_eq!(cols.at(&[0, 0]), 0.0);
    }
}
