//! Pins the `simd` feature's numerical contract: the vector kernels may
//! reorder/fuse multiply-adds, so they are not bitwise-equal to the
//! scalar reference — but they must stay within a small max-ULP envelope
//! of it (with an absolute floor for catastrophic-cancellation outputs
//! near zero), and the scalar path must remain bitwise reachable at
//! runtime via `DUET_SIMD=0`.
//!
//! Every test auto-skips (passes trivially) when the CPU lacks the
//! vector features, so `--features simd` is safe to run anywhere.
#![cfg(feature = "simd")]

use duet_tensor::ops::{self, matmul_naive, matmul_with_threads};
use duet_tensor::rng::{self, seeded};
use duet_tensor::simd;

/// Max acceptable ULP distance between the FMA-fused vector kernels and
/// the scalar accumulation order, away from zero.
const MAX_ULPS: u32 = 64;

/// Absolute difference floor: when two accumulation orders of a long
/// N(0,1) reduction cancel down to a near-zero output, the ULP metric
/// degenerates (the rounding noise is relative to the *intermediate*
/// sums, not the tiny result), so differences under the workspace's
/// standard kernel tolerance (cf. `blocked_matches_naive_above_threshold`)
/// are accepted outright. The ULP envelope still binds every
/// well-conditioned output.
const ABS_FLOOR: f32 = 1e-4;

fn ulp_distance(a: f32, b: f32) -> u32 {
    // Map the float line onto a monotone integer line (negative floats
    // reflected), then distance is a subtraction.
    fn key(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        i64::from(if bits < 0 {
            i32::MIN.wrapping_sub(bits)
        } else {
            bits
        })
    }
    (key(a) - key(b)).unsigned_abs().min(u64::from(u32::MAX)) as u32
}

fn assert_ulp_close(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        assert!(g.is_finite() && w.is_finite(), "{what}[{i}]: {g} vs {w}");
        if (g - w).abs() <= ABS_FLOOR {
            continue;
        }
        let ulps = ulp_distance(g, w);
        assert!(
            ulps <= MAX_ULPS,
            "{what}[{i}]: {g} vs {w} differ by {ulps} ULPs"
        );
    }
}

#[test]
fn simd_dot_within_ulp_envelope_of_scalar() {
    if !simd::cpu_supported() {
        eprintln!("skipping: CPU lacks AVX2/NEON");
        return;
    }
    let mut r = seeded(900);
    for len in [1, 3, 7, 8, 9, 31, 32, 33, 100, 257, 1024, 1031] {
        let a = rng::normal(&mut r, &[len], 0.0, 1.0);
        let b = rng::normal(&mut r, &[len], 0.0, 1.0);
        let scalar: f32 = a.data().iter().zip(b.data()).map(|(&x, &y)| x * y).sum();
        let vector = simd::dot(a.data(), b.data());
        assert_ulp_close(&[vector], &[scalar], &format!("dot len {len}"));
    }
}

#[test]
fn simd_matmul_within_ulp_envelope_of_naive() {
    if !simd::cpu_supported() {
        eprintln!("skipping: CPU lacks AVX2/NEON");
        return;
    }
    let mut r = seeded(901);
    for (m, k, n) in [(33, 40, 37), (64, 64, 64), (61, 128, 5), (17, 300, 129)] {
        let a = rng::normal(&mut r, &[m, k], 0.0, 1.0);
        let b = rng::normal(&mut r, &[k, n], 0.0, 1.0);
        let naive = matmul_naive(&a, &b);
        let vector = matmul_with_threads(&a, &b, 1);
        assert_ulp_close(vector.data(), naive.data(), &format!("matmul {m}x{k}x{n}"));
    }
}

#[test]
fn simd_matmul_preserves_zero_skip_rows() {
    if !simd::cpu_supported() {
        eprintln!("skipping: CPU lacks AVX2/NEON");
        return;
    }
    let mut r = seeded(902);
    let mut a = rng::normal(&mut r, &[40, 48], 0.0, 1.0);
    for j in 0..48 {
        a.data_mut()[5 * 48 + j] = 0.0;
        a.data_mut()[17 * 48 + j] = 0.0;
    }
    let b = rng::normal(&mut r, &[48, 36], 0.0, 1.0);
    let c = matmul_with_threads(&a, &b, 1);
    assert!(c.row(5).iter().all(|&v| v == 0.0), "zero row must survive");
    assert!(c.row(17).iter().all(|&v| v == 0.0), "zero row must survive");
    assert_ulp_close(c.data(), matmul_naive(&a, &b).data(), "zero-skip");
}

#[test]
fn simd_gemv_and_affine_within_ulp_envelope() {
    if !simd::cpu_supported() {
        eprintln!("skipping: CPU lacks AVX2/NEON");
        return;
    }
    let mut r = seeded(903);
    let w = rng::normal(&mut r, &[300, 1000], 0.0, 1.0);
    let x = rng::normal(&mut r, &[1000], 0.0, 1.0);
    let b = rng::normal(&mut r, &[300], 0.0, 1.0);
    let scalar_rows: Vec<f32> = (0..300)
        .map(|i| {
            w.data()[i * 1000..(i + 1) * 1000]
                .iter()
                .zip(x.data())
                .map(|(&p, &q)| p * q)
                .sum()
        })
        .collect();
    let y = ops::gemv_with_threads(&w, &x, 1);
    assert_ulp_close(y.data(), &scalar_rows, "gemv");
    let ya = ops::affine_with_threads(&w, &x, &b, 1);
    let with_bias: Vec<f32> = scalar_rows
        .iter()
        .zip(b.data())
        .map(|(&r0, &bv)| r0 + bv)
        .collect();
    assert_ulp_close(ya.data(), &with_bias, "affine");
}

#[test]
fn simd_kernels_deterministic_across_thread_counts() {
    if !simd::cpu_supported() {
        eprintln!("skipping: CPU lacks AVX2/NEON");
        return;
    }
    // Per-row accumulation order is fixed regardless of how rows are
    // chunked over workers, so even the SIMD path is thread-invariant.
    let mut r = seeded(904);
    let a = rng::normal(&mut r, &[96, 80], 0.0, 1.0);
    let b = rng::normal(&mut r, &[80, 72], 0.0, 1.0);
    let c1 = matmul_with_threads(&a, &b, 1);
    for threads in [2, 3, 4, 8] {
        assert_eq!(
            c1,
            matmul_with_threads(&a, &b, threads),
            "threads={threads} must be bitwise identical"
        );
    }
    let x = rng::normal(&mut r, &[1000], 0.0, 1.0);
    let w = rng::normal(&mut r, &[300, 1000], 0.0, 1.0);
    let y1 = ops::gemv_with_threads(&w, &x, 1);
    for threads in [2, 4, 7] {
        assert_eq!(y1, ops::gemv_with_threads(&w, &x, threads));
    }
}
