//! Property-style tests of the tensor substrate's algebraic laws.
//!
//! Formerly proptest-based; now driven by the in-tree seeded
//! [`duet_tensor::rng`] so the workspace tests run with zero external
//! dependencies. Each law is checked across a sweep of seeds (and, for the
//! kernels, across deliberately awkward shapes: 1×1, prime dimensions,
//! tall/skinny) — the parallel blocked kernels must agree with
//! [`ops::matmul_naive`] within `1e-4`.

use duet_tensor::fixed::{Fixed16Tensor, Int4Tensor};
use duet_tensor::im2col::{col2im, conv2d_direct, im2col, ConvGeometry};
use duet_tensor::rng::{self, Rng};
use duet_tensor::{ops, Tensor};

const CASES: u64 = 32;

fn vector(r: &mut Rng, n: usize, amp: f32) -> Tensor {
    rng::uniform(r, &[n], -amp, amp)
}

fn matrix(r: &mut Rng, rows: usize, cols: usize, amp: f32) -> Tensor {
    rng::uniform(r, &[rows, cols], -amp, amp)
}

/// Matmul distributes over addition: A(B + C) = AB + AC.
#[test]
fn matmul_distributes() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let a = matrix(&mut r, 4, 5, 5.0);
        let b = matrix(&mut r, 5, 3, 5.0);
        let c = matrix(&mut r, 5, 3, 5.0);
        let lhs = ops::matmul(&a, &ops::add(&b, &c));
        let rhs = ops::add(&ops::matmul(&a, &b), &ops::matmul(&a, &c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-2, "seed {seed}: {x} vs {y}");
        }
    }
}

/// (AB)ᵀ = BᵀAᵀ.
#[test]
fn matmul_transpose_law() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let a = matrix(&mut r, 3, 4, 5.0);
        let b = matrix(&mut r, 4, 2, 5.0);
        let lhs = ops::matmul(&a, &b).transposed();
        let rhs = ops::matmul(&b.transposed(), &a.transposed());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-3, "seed {seed}");
        }
    }
}

/// gemv agrees with matmul against a column vector.
#[test]
fn gemv_matmul_consistency() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let w = matrix(&mut r, 6, 4, 5.0);
        let x = vector(&mut r, 4, 10.0);
        let y = ops::gemv(&w, &x);
        let ym = ops::matmul(&w, &x.reshaped(&[4, 1]));
        for (a, b) in y.data().iter().zip(ym.data()) {
            assert!((a - b).abs() < 1e-3, "seed {seed}");
        }
    }
}

/// The blocked/parallel matmul agrees with the naive reference within
/// 1e-4 across odd shapes: 1×1, prime dims, tall/skinny, and shapes that
/// straddle the register-tile and panel boundaries.
#[test]
fn blocked_matmul_matches_naive_on_odd_shapes() {
    let shapes = [
        (1usize, 1usize, 1usize),
        (1, 97, 1),
        (2, 3, 5),
        (7, 11, 13),
        (31, 37, 41),  // prime dims above the blocked threshold
        (128, 1, 128), // degenerate inner dimension
        (257, 8, 3),   // tall/skinny
        (3, 8, 257),   // short/wide
        (33, 64, 65),  // off-by-one around tile multiples
        (64, 61, 64),
    ];
    for (si, &(m, k, n)) in shapes.iter().enumerate() {
        let mut r = rng::seeded(1000 + si as u64);
        let a = matrix(&mut r, m, k, 2.0);
        let b = matrix(&mut r, k, n, 2.0);
        let reference = ops::matmul_naive(&a, &b);
        for threads in [1usize, 4] {
            let c = ops::matmul_with_threads(&a, &b, threads);
            assert_eq!(c.shape(), reference.shape());
            for (x, y) in c.data().iter().zip(reference.data()) {
                assert!(
                    (x - y).abs() < 1e-4,
                    "shape ({m},{k},{n}) threads {threads}: {x} vs {y}"
                );
            }
        }
    }
}

/// The parallel gemv agrees with a scalar dot-product loop on odd shapes.
#[test]
fn gemv_matches_naive_on_odd_shapes() {
    for (si, &(n, d)) in [(1usize, 1usize), (5, 3), (127, 1), (311, 211), (64, 4099)]
        .iter()
        .enumerate()
    {
        let mut r = rng::seeded(2000 + si as u64);
        let w = matrix(&mut r, n, d, 1.0);
        let x = vector(&mut r, d, 1.0);
        for threads in [1usize, 4] {
            let y = ops::gemv_with_threads(&w, &x, threads);
            for i in 0..n {
                let mut acc = 0.0f32;
                for j in 0..d {
                    acc += w.data()[i * d + j] * x.data()[j];
                }
                assert!(
                    (y.data()[i] - acc).abs() < 1e-4 * acc.abs().max(1.0),
                    "({n},{d}) row {i} threads {threads}"
                );
            }
        }
    }
}

/// One vs four threads produce bitwise-identical results for every
/// parallel kernel (`DUET_NUM_THREADS=1` vs `=4` determinism).
#[test]
fn thread_count_determinism() {
    let mut r = rng::seeded(77);
    let a = matrix(&mut r, 129, 83, 1.0);
    let b = matrix(&mut r, 83, 101, 1.0);
    assert_eq!(
        ops::matmul_with_threads(&a, &b, 1),
        ops::matmul_with_threads(&a, &b, 4)
    );
    let w = matrix(&mut r, 301, 999, 1.0);
    let x = vector(&mut r, 999, 1.0);
    assert_eq!(
        ops::gemv_with_threads(&w, &x, 1),
        ops::gemv_with_threads(&w, &x, 4)
    );
    let bias = vector(&mut r, 301, 1.0);
    assert_eq!(
        ops::affine_with_threads(&w, &x, &bias, 1),
        ops::affine_with_threads(&w, &x, &bias, 4)
    );
}

/// Dot product is symmetric and Cauchy–Schwarz holds.
#[test]
fn dot_properties() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let a = vector(&mut r, 16, 10.0);
        let b = vector(&mut r, 16, 10.0);
        let ab = ops::dot(&a, &b);
        let ba = ops::dot(&b, &a);
        assert!((ab - ba).abs() < 1e-2, "seed {seed}");
        let bound = (a.norm_sq() * b.norm_sq()).sqrt();
        assert!(ab.abs() <= bound * 1.0001 + 1e-3, "seed {seed}");
    }
}

/// INT16 quantization round-trip error is bounded by one step.
#[test]
fn fixed16_roundtrip_bound() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let t = vector(&mut r, 64, 10.0);
        let q = Fixed16Tensor::quantize(&t);
        let back = q.dequantize();
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= q.scale() * 1.01, "seed {seed}");
        }
    }
}

/// The 16→4 truncation always matches shifting the integer payload.
#[test]
fn truncation_is_arithmetic_shift() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let t = vector(&mut r, 32, 10.0);
        let q16 = Fixed16Tensor::quantize(&t);
        let q4 = q16.truncate_to_int4();
        for (&v16, &v4) in q16.data().iter().zip(q4.data()) {
            assert_eq!((v16 >> 12) as i8, v4, "seed {seed}");
        }
        assert!(
            (q4.scale() / q16.scale() - 4096.0).abs() < 1e-3,
            "seed {seed}"
        );
    }
}

/// INT4 values always stay within [-8, 7].
#[test]
fn int4_range_invariant() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let t = vector(&mut r, 64, 10.0);
        let q = Int4Tensor::quantize(&t);
        assert!(q.data().iter().all(|&v| (-8..=7).contains(&v)));
        let tr = Fixed16Tensor::quantize(&t).truncate_to_int4();
        assert!(tr.data().iter().all(|&v| (-8..=7).contains(&v)));
    }
}

/// im2col → GEMM equals direct convolution on random shapes.
#[test]
fn conv_lowering_equivalence() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let c = r.random_range(1usize..3);
        let hw = r.random_range(4usize..8);
        let k = r.random_range(1usize..4);
        let pad = r.random_range(0usize..2);
        let geom = ConvGeometry {
            in_channels: c,
            in_h: hw,
            in_w: hw,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: pad,
        };
        let input = rng::normal(&mut r, &[c, hw, hw], 0.0, 1.0);
        let filters = rng::normal(&mut r, &[k, c, 3, 3], 0.0, 0.5);
        let direct = conv2d_direct(&input, &filters, &geom);
        let cols = im2col(&input, &geom);
        let gemm = ops::matmul(&filters.reshaped(&[k, geom.patch_len()]), &cols);
        for (a, b) in direct.data().iter().zip(gemm.data()) {
            assert!((a - b).abs() < 1e-3, "seed {seed}");
        }
    }
}

/// col2im is the adjoint of im2col for random geometries.
#[test]
fn adjoint_property() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let hw = r.random_range(4usize..8);
        let pad = r.random_range(0usize..2);
        let geom = ConvGeometry {
            in_channels: 2,
            in_h: hw,
            in_w: hw,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: pad,
        };
        let x = rng::normal(&mut r, &[2, hw, hw], 0.0, 1.0);
        let y = rng::normal(&mut r, &[geom.patch_len(), geom.out_positions()], 0.0, 1.0);
        let n1 = geom.patch_len() * geom.out_positions();
        let lhs = ops::dot(&im2col(&x, &geom).reshaped(&[n1]), &y.reshaped(&[n1]));
        let rhs = ops::dot(
            &x.reshaped(&[x.len()]),
            &col2im(&y, &geom).reshaped(&[x.len()]),
        );
        assert!(
            (lhs - rhs).abs() < 1e-1 * (1.0 + lhs.abs()),
            "seed {seed}: {lhs} vs {rhs}"
        );
    }
}

/// Reshape preserves data; transpose twice is identity.
#[test]
fn shape_laws() {
    for seed in 0..CASES {
        let mut r = rng::seeded(seed);
        let m = matrix(&mut r, 5, 7, 5.0);
        let reshaped = m.reshaped(&[7, 5]);
        assert_eq!(reshaped.data(), m.data());
        assert_eq!(&m.transposed().transposed(), &m);
    }
}
