//! Property-based tests of the tensor substrate's algebraic laws.

use duet_tensor::fixed::{Fixed16Tensor, Int4Tensor};
use duet_tensor::im2col::{col2im, im2col, ConvGeometry};
use duet_tensor::{ops, Tensor};
use proptest::prelude::*;

fn tensor_strategy(n: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, n).prop_map(move |v| Tensor::from_vec(v, &[n]))
}

fn matrix_strategy(r: usize, c: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-5.0f32..5.0, r * c).prop_map(move |v| Tensor::from_vec(v, &[r, c]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(
        a in matrix_strategy(4, 5),
        b in matrix_strategy(5, 3),
        c in matrix_strategy(5, 3),
    ) {
        let lhs = ops::matmul(&a, &ops::add(&b, &c));
        let rhs = ops::add(&ops::matmul(&a, &b), &ops::matmul(&a, &c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    /// (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn matmul_transpose_law(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
    ) {
        let lhs = ops::matmul(&a, &b).transposed();
        let rhs = ops::matmul(&b.transposed(), &a.transposed());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// gemv agrees with matmul against a column vector.
    #[test]
    fn gemv_matmul_consistency(
        w in matrix_strategy(6, 4),
        x in tensor_strategy(4),
    ) {
        let y = ops::gemv(&w, &x);
        let ym = ops::matmul(&w, &x.reshaped(&[4, 1]));
        for (a, b) in y.data().iter().zip(ym.data()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    /// Dot product is symmetric and Cauchy–Schwarz holds.
    #[test]
    fn dot_properties(a in tensor_strategy(16), b in tensor_strategy(16)) {
        let ab = ops::dot(&a, &b);
        let ba = ops::dot(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-2);
        let bound = (a.norm_sq() * b.norm_sq()).sqrt();
        prop_assert!(ab.abs() <= bound * 1.0001 + 1e-3);
    }

    /// INT16 quantization round-trip error is bounded by one step.
    #[test]
    fn fixed16_roundtrip_bound(t in tensor_strategy(64)) {
        let q = Fixed16Tensor::quantize(&t);
        let back = q.dequantize();
        for (a, b) in t.data().iter().zip(back.data()) {
            prop_assert!((a - b).abs() <= q.scale() * 1.01);
        }
    }

    /// The 16→4 truncation always matches shifting the integer payload.
    #[test]
    fn truncation_is_arithmetic_shift(t in tensor_strategy(32)) {
        let q16 = Fixed16Tensor::quantize(&t);
        let q4 = q16.truncate_to_int4();
        for (&v16, &v4) in q16.data().iter().zip(q4.data()) {
            prop_assert_eq!((v16 >> 12) as i8, v4);
        }
        prop_assert!((q4.scale() / q16.scale() - 4096.0).abs() < 1e-3);
    }

    /// INT4 values always stay within [-8, 7].
    #[test]
    fn int4_range_invariant(t in tensor_strategy(64)) {
        let q = Int4Tensor::quantize(&t);
        prop_assert!(q.data().iter().all(|&v| (-8..=7).contains(&v)));
        let tr = Fixed16Tensor::quantize(&t).truncate_to_int4();
        prop_assert!(tr.data().iter().all(|&v| (-8..=7).contains(&v)));
    }

    /// im2col → GEMM equals direct convolution on random shapes.
    #[test]
    fn conv_lowering_equivalence(
        c in 1usize..3,
        hw in 4usize..8,
        k in 1usize..4,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        let geom = ConvGeometry {
            in_channels: c,
            in_h: hw,
            in_w: hw,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: pad,
        };
        if hw + 2 * pad < 3 {
            return Ok(());
        }
        let mut r = duet_tensor::rng::seeded(seed);
        let input = duet_tensor::rng::normal(&mut r, &[c, hw, hw], 0.0, 1.0);
        let filters = duet_tensor::rng::normal(&mut r, &[k, c, 3, 3], 0.0, 0.5);
        let direct = duet_tensor::im2col::conv2d_direct(&input, &filters, &geom);
        let cols = im2col(&input, &geom);
        let gemm = ops::matmul(&filters.reshaped(&[k, geom.patch_len()]), &cols);
        for (a, b) in direct.data().iter().zip(gemm.data()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    /// col2im is the adjoint of im2col for random geometries.
    #[test]
    fn adjoint_property(hw in 4usize..8, pad in 0usize..2, seed in 0u64..500) {
        let geom = ConvGeometry {
            in_channels: 2,
            in_h: hw,
            in_w: hw,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: pad,
        };
        let mut r = duet_tensor::rng::seeded(seed);
        let x = duet_tensor::rng::normal(&mut r, &[2, hw, hw], 0.0, 1.0);
        let y = duet_tensor::rng::normal(
            &mut r,
            &[geom.patch_len(), geom.out_positions()],
            0.0,
            1.0,
        );
        let n1 = geom.patch_len() * geom.out_positions();
        let lhs = ops::dot(&im2col(&x, &geom).reshaped(&[n1]), &y.reshaped(&[n1]));
        let rhs = ops::dot(&x.reshaped(&[x.len()]), &col2im(&y, &geom).reshaped(&[x.len()]));
        prop_assert!((lhs - rhs).abs() < 1e-1 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// Reshape preserves data; transpose twice is identity.
    #[test]
    fn shape_laws(m in matrix_strategy(5, 7)) {
        let reshaped = m.reshaped(&[7, 5]);
        prop_assert_eq!(reshaped.data(), m.data());
        prop_assert_eq!(&m.transposed().transposed(), &m);
    }
}
