//! Kernel telemetry must be deterministic across thread counts: the same
//! GEMM workload run at 1, 4 and 7 threads has to produce identical call
//! and flop counters (work is partitioned, never duplicated or dropped).
//!
//! `DUET_NUM_THREADS` is read once per process ([`duet_tensor::parallel::
//! num_threads`] caches it in a `OnceLock`), so a single test process
//! cannot vary the environment variable; the explicit
//! `*_with_threads(.., {1, 4, 7})` entry points exercise exactly the code
//! paths that variable selects.

use duet_tensor::ops::{affine_with_threads, gemv_with_threads, matmul_with_threads};
use duet_tensor::{rng, Tensor};

/// Runs a mixed GEMM/GEMV/affine workload at the given thread count and
/// returns the per-kind (calls, flops) deltas it generated.
fn run_workload(threads: usize) -> Vec<(&'static str, u64)> {
    let keys = [
        "tensor.gemm.calls",
        "tensor.gemm.flops",
        "tensor.gemm.serial_fallback",
        "tensor.gemv.calls",
        "tensor.gemv.flops",
        "tensor.affine.calls",
        "tensor.affine.flops",
    ];
    let before: Vec<u64> = keys
        .iter()
        .map(|k| duet_obs::registry::counter(k).get())
        .collect();

    let mut r = rng::seeded(42);
    // large GEMM (blocked + parallel), small GEMM (naive fallback)
    let a = rng::normal(&mut r, &[96, 80], 0.0, 1.0);
    let b = rng::normal(&mut r, &[80, 72], 0.0, 1.0);
    let _big = matmul_with_threads(&a, &b, threads);
    let small = Tensor::eye(8);
    let _small = matmul_with_threads(&small, &small, threads);
    // GEMV + affine above and below the parallel threshold
    let w = rng::normal(&mut r, &[300, 1000], 0.0, 1.0);
    let x = rng::normal(&mut r, &[1000], 0.0, 1.0);
    let bias = rng::normal(&mut r, &[300], 0.0, 1.0);
    let _y = gemv_with_threads(&w, &x, threads);
    let _z = affine_with_threads(&w, &x, &bias, threads);

    keys.iter()
        .zip(before)
        .map(|(&k, b0)| (k, duet_obs::registry::counter(k).get() - b0))
        .collect()
}

#[test]
fn counters_sum_identically_across_thread_counts() {
    // The integration-test binary has its own process and registry; other
    // tests in this file would race the deltas, so this is the only test
    // here that enables metrics.
    duet_obs::set_metrics_enabled(true);

    let at1 = run_workload(1);
    let at4 = run_workload(4);
    let at7 = run_workload(7);
    duet_obs::set_metrics_enabled(false);

    assert_eq!(at1, at4, "thread count 4 must not change counter sums");
    assert_eq!(at1, at7, "thread count 7 must not change counter sums");

    let get = |k: &str| {
        at1.iter()
            .find(|(n, _)| *n == k)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert_eq!(get("tensor.gemm.calls"), 2);
    assert_eq!(get("tensor.gemm.serial_fallback"), 1, "8×8 eye is naive");
    // 2·m·k·n per GEMM: 2·96·80·72 + 2·8·8·8
    assert_eq!(get("tensor.gemm.flops"), 2 * 96 * 80 * 72 + 2 * 8 * 8 * 8);
    assert_eq!(get("tensor.gemv.calls"), 1);
    assert_eq!(get("tensor.gemv.flops"), 2 * 300 * 1000);
    assert_eq!(get("tensor.affine.calls"), 1);
    assert_eq!(get("tensor.affine.flops"), 2 * 300 * 1000 + 300);
}
