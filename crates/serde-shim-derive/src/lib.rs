//! Derive half of the offline `serde` shim.
//!
//! Provides `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros that
//! emit marker-trait impls for the annotated type. The workspace must build
//! with no registry access, so the real `serde`/`serde_derive` pair is
//! replaced by this dependency-free stand-in; see `duet-serde-shim` for the
//! façade crate that re-exports these macros.

use proc_macro::{TokenStream, TokenTree};

/// Emits `impl ::serde::Serialize for T {}` for the derived type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

/// Emits `impl ::serde::Deserialize for T {}` for the derived type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

/// Finds the type name after `struct`/`enum` and emits a marker impl.
/// Generic types are not supported (nothing in this workspace needs them).
fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let mut tokens = input.into_iter();
    let mut name = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let name = name.expect("serde shim derive supports plain structs and enums");
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}
