//! Micro-benchmarks of the numeric kernels underlying both modules:
//! dense GEMM/GEMV (the accurate module), ternary projection and INT4
//! arithmetic (the approximate module), and the im2col lowering.
//!
//! Uses the in-tree `duet_bench::timing` harness; run with
//! `cargo bench -p duet-bench --features criterion`.

use duet_bench::timing::bench_and_print;
use duet_core::TernaryProjection;
use duet_tensor::fixed::{Fixed16Tensor, Int4Tensor};
use duet_tensor::im2col::{im2col, ConvGeometry};
use duet_tensor::{ops, rng};
use std::hint::black_box;

fn bench_gemm() {
    for n in [32usize, 64, 128] {
        let mut r = rng::seeded(1);
        let a = rng::normal(&mut r, &[n, n], 0.0, 1.0);
        let b = rng::normal(&mut r, &[n, n], 0.0, 1.0);
        let m = bench_and_print(&format!("gemm/{n}"), || {
            ops::matmul(black_box(&a), black_box(&b))
        });
        println!(
            "{:<40} {:>12.2} GFLOP/s",
            format!("gemm/{n} throughput"),
            m.gflops(2 * (n * n * n) as u64)
        );
    }
}

fn bench_gemv_vs_projection() {
    // The headline kernel contrast: a dense accurate GEMV vs the
    // Speculator's ternary projection + low-rank GEMV.
    let mut r = rng::seeded(2);
    let d = 1024;
    let n = 1024;
    let k = 128;
    let w = rng::normal(&mut r, &[n, d], 0.0, 0.1);
    let wk = rng::normal(&mut r, &[n, k], 0.0, 0.1);
    let x = rng::normal(&mut r, &[d], 0.0, 1.0);
    let proj = TernaryProjection::sample(d, k, &mut r);

    bench_and_print("gemv_vs_approx/dense_gemv_1024x1024", || {
        ops::gemv(black_box(&w), black_box(&x))
    });
    bench_and_print("gemv_vs_approx/ternary_project_1024_to_128", || {
        proj.project(black_box(&x))
    });
    bench_and_print("gemv_vs_approx/approx_project_plus_gemv", || {
        let p = proj.project(black_box(&x));
        ops::gemv(black_box(&wk), &p)
    });
}

fn bench_quantization() {
    let mut r = rng::seeded(3);
    let t = rng::normal(&mut r, &[4096], 0.0, 1.0);
    let q16 = Fixed16Tensor::quantize(&t);

    bench_and_print("quantization/fp32_to_int16", || {
        Fixed16Tensor::quantize(black_box(&t))
    });
    bench_and_print("quantization/int16_truncate_to_int4", || {
        black_box(&q16).truncate_to_int4()
    });
    bench_and_print("quantization/fp32_to_int4_rounded", || {
        Int4Tensor::quantize(black_box(&t))
    });
}

fn bench_im2col() {
    let mut r = rng::seeded(4);
    let geom = ConvGeometry {
        in_channels: 64,
        in_h: 28,
        in_w: 28,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
    };
    let input = rng::normal(&mut r, &[64, 28, 28], 0.0, 1.0);
    bench_and_print("im2col_64x28x28_k3", || {
        im2col(black_box(&input), black_box(&geom))
    });
}

fn main() {
    bench_gemm();
    bench_gemv_vs_projection();
    bench_quantization();
    bench_im2col();
}
