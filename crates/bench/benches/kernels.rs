//! Criterion micro-benchmarks of the numeric kernels underlying both
//! modules: dense GEMM/GEMV (the accurate module), ternary projection and
//! INT4 arithmetic (the approximate module), and the im2col lowering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use duet_core::TernaryProjection;
use duet_tensor::fixed::{Fixed16Tensor, Int4Tensor};
use duet_tensor::im2col::{im2col, ConvGeometry};
use duet_tensor::{ops, rng};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for n in [32usize, 64, 128] {
        let mut r = rng::seeded(1);
        let a = rng::normal(&mut r, &[n, n], 0.0, 1.0);
        let b = rng::normal(&mut r, &[n, n], 0.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| ops::matmul(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_gemv_vs_projection(c: &mut Criterion) {
    // The headline kernel contrast: a dense accurate GEMV vs the
    // Speculator's ternary projection + low-rank GEMV.
    let mut r = rng::seeded(2);
    let d = 1024;
    let n = 1024;
    let k = 128;
    let w = rng::normal(&mut r, &[n, d], 0.0, 0.1);
    let wk = rng::normal(&mut r, &[n, k], 0.0, 0.1);
    let x = rng::normal(&mut r, &[d], 0.0, 1.0);
    let proj = TernaryProjection::sample(d, k, &mut r);

    let mut group = c.benchmark_group("gemv_vs_approx");
    group.bench_function("dense_gemv_1024x1024", |b| {
        b.iter(|| ops::gemv(black_box(&w), black_box(&x)))
    });
    group.bench_function("ternary_project_1024_to_128", |b| {
        b.iter(|| proj.project(black_box(&x)))
    });
    group.bench_function("approx_project_plus_gemv", |b| {
        b.iter(|| {
            let p = proj.project(black_box(&x));
            ops::gemv(black_box(&wk), &p)
        })
    });
    group.finish();
}

fn bench_quantization(c: &mut Criterion) {
    let mut r = rng::seeded(3);
    let t = rng::normal(&mut r, &[4096], 0.0, 1.0);
    let q16 = Fixed16Tensor::quantize(&t);

    let mut group = c.benchmark_group("quantization");
    group.bench_function("fp32_to_int16", |b| {
        b.iter(|| Fixed16Tensor::quantize(black_box(&t)))
    });
    group.bench_function("int16_truncate_to_int4", |b| {
        b.iter(|| black_box(&q16).truncate_to_int4())
    });
    group.bench_function("fp32_to_int4_rounded", |b| {
        b.iter(|| Int4Tensor::quantize(black_box(&t)))
    });
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut r = rng::seeded(4);
    let geom = ConvGeometry {
        in_channels: 64,
        in_h: 28,
        in_w: 28,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
    };
    let input = rng::normal(&mut r, &[64, 28, 28], 0.0, 1.0);
    c.bench_function("im2col_64x28x28_k3", |b| {
        b.iter(|| im2col(black_box(&input), black_box(&geom)))
    });
}

criterion_group!(
    benches,
    bench_gemm,
    bench_gemv_vs_projection,
    bench_quantization,
    bench_im2col
);
criterion_main!(benches);
