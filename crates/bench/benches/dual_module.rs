//! Criterion benchmarks of dual-module execution: the software-level
//! speedup of switching (Fig. 3's pipeline) and the offline distillation
//! cost.

use criterion::{criterion_group, criterion_main, Criterion};
use duet_core::{distill, ApproxConfig, DualModuleLayer, SwitchingPolicy};
use duet_nn::Activation;
use duet_tensor::{ops, rng};
use std::hint::black_box;

fn bench_dual_forward(c: &mut Criterion) {
    let mut r = rng::seeded(1);
    let w = rng::normal(&mut r, &[512, 512], 0.0, 0.1);
    let b = rng::normal(&mut r, &[512], 0.0, 0.05);
    let layer = DualModuleLayer::learn(&w, &b, Activation::Relu, 64, 256, &mut r);
    let x = rng::normal(&mut r, &[512], 0.0, 1.0);

    let mut group = c.benchmark_group("dual_forward_512x512");
    group.bench_function("dense_reference", |bch| {
        bch.iter(|| layer.forward_dense(black_box(&x)))
    });
    group.bench_function("dual_never_switch", |bch| {
        bch.iter(|| layer.forward(black_box(&x), &SwitchingPolicy::never_switch()))
    });
    group.bench_function("dual_relu_theta0", |bch| {
        bch.iter(|| layer.forward(black_box(&x), &SwitchingPolicy::relu(0.0)))
    });
    group.bench_function("dual_relu_theta_inf", |bch| {
        bch.iter(|| layer.forward(black_box(&x), &SwitchingPolicy::relu(f32::INFINITY)))
    });
    group.finish();
}

fn bench_distillation(c: &mut Criterion) {
    let mut r = rng::seeded(2);
    let w = rng::normal(&mut r, &[128, 256], 0.0, 0.1);
    let b = rng::normal(&mut r, &[128], 0.0, 0.05);

    c.bench_function("distill_128x256_k32_s128", |bch| {
        bch.iter(|| {
            let mut rr = rng::seeded(3);
            distill::distill_linear(
                black_box(&w),
                black_box(&b),
                ApproxConfig::paper_default(32),
                128,
                &mut rr,
            )
        })
    });
}

fn bench_switching_map(c: &mut Criterion) {
    let mut r = rng::seeded(4);
    let y = rng::normal(&mut r, &[4096], 0.0, 2.0);
    let policy = SwitchingPolicy::tanh(1.5);
    let acc = rng::normal(&mut r, &[4096], 0.0, 2.0);

    let mut group = c.benchmark_group("switching");
    group.bench_function("map_4096", |bch| bch.iter(|| policy.map(black_box(&y))));
    let map = policy.map(&y);
    group.bench_function("mix_4096", |bch| {
        bch.iter(|| map.mix(black_box(&acc), black_box(&y)))
    });
    group.bench_function("eq2_reference_hadamard", |bch| {
        // the textbook Eq. (2) with float masks, for comparison
        let m = y.map(|v| if policy.is_sensitive(v) { 1.0 } else { 0.0 });
        let ones = duet_tensor::Tensor::full(&[4096], 1.0);
        bch.iter(|| {
            ops::add(
                &ops::hadamard(black_box(&acc), &m),
                &ops::hadamard(black_box(&y), &ops::sub(&ones, &m)),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dual_forward,
    bench_distillation,
    bench_switching_map
);
criterion_main!(benches);
