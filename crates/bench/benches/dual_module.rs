//! Benchmarks of dual-module execution: the software-level speedup of
//! switching (Fig. 3's pipeline) and the offline distillation cost.
//!
//! Uses the in-tree `duet_bench::timing` harness; run with
//! `cargo bench -p duet-bench --features criterion`.

use duet_bench::timing::bench_and_print;
use duet_core::{distill, ApproxConfig, DualModuleLayer, SwitchingPolicy};
use duet_nn::Activation;
use duet_tensor::{ops, rng};
use std::hint::black_box;

fn bench_dual_forward() {
    let mut r = rng::seeded(1);
    let w = rng::normal(&mut r, &[512, 512], 0.0, 0.1);
    let b = rng::normal(&mut r, &[512], 0.0, 0.05);
    let layer = DualModuleLayer::learn(&w, &b, Activation::Relu, 64, 256, &mut r);
    let x = rng::normal(&mut r, &[512], 0.0, 1.0);

    bench_and_print("dual_forward_512x512/dense_reference", || {
        layer.forward_dense(black_box(&x))
    });
    bench_and_print("dual_forward_512x512/dual_never_switch", || {
        layer.forward(black_box(&x), &SwitchingPolicy::never_switch())
    });
    bench_and_print("dual_forward_512x512/dual_relu_theta0", || {
        layer.forward(black_box(&x), &SwitchingPolicy::relu(0.0))
    });
    bench_and_print("dual_forward_512x512/dual_relu_theta_inf", || {
        layer.forward(black_box(&x), &SwitchingPolicy::relu(f32::INFINITY))
    });
}

fn bench_distillation() {
    let mut r = rng::seeded(2);
    let w = rng::normal(&mut r, &[128, 256], 0.0, 0.1);
    let b = rng::normal(&mut r, &[128], 0.0, 0.05);

    bench_and_print("distill_128x256_k32_s128", || {
        let mut rr = rng::seeded(3);
        distill::distill_linear(
            black_box(&w),
            black_box(&b),
            ApproxConfig::paper_default(32),
            128,
            &mut rr,
        )
    });
}

fn bench_switching_map() {
    let mut r = rng::seeded(4);
    let y = rng::normal(&mut r, &[4096], 0.0, 2.0);
    let policy = SwitchingPolicy::tanh(1.5);
    let acc = rng::normal(&mut r, &[4096], 0.0, 2.0);

    bench_and_print("switching/map_4096", || policy.map(black_box(&y)));
    let map = policy.map(&y);
    bench_and_print("switching/mix_4096", || {
        map.mix(black_box(&acc), black_box(&y))
    });
    // the textbook Eq. (2) with float masks, for comparison
    let m = y.map(|v| if policy.is_sensitive(v) { 1.0 } else { 0.0 });
    let ones = duet_tensor::Tensor::full(&[4096], 1.0);
    bench_and_print("switching/eq2_reference_hadamard", || {
        ops::add(
            &ops::hadamard(black_box(&acc), &m),
            &ops::hadamard(black_box(&y), &ops::sub(&ones, &m)),
        )
    });
}

fn main() {
    bench_dual_forward();
    bench_distillation();
    bench_switching_map();
}
