//! Criterion benchmarks of the cycle-level simulator itself: how fast a
//! full model sweep runs (this bounds the design-space-exploration loop
//! of Fig. 13).

use criterion::{criterion_group, criterion_main, Criterion};
use duet_bench::Suite;
use duet_sim::config::ExecutorFeatures;
use duet_sim::rnn::run_rnn_layer;
use duet_workloads::models::ModelZoo;
use std::hint::black_box;

fn bench_cnn_sim(c: &mut Criterion) {
    let s = Suite::paper();
    let traces = s.cnn_traces(ModelZoo::AlexNet);

    let mut group = c.benchmark_group("simulate_alexnet");
    group.sample_size(20);
    for (label, f) in [
        ("base", ExecutorFeatures::base()),
        ("duet", ExecutorFeatures::duet()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                duet_sim::cnn::run_cnn(
                    "AlexNet",
                    black_box(&traces),
                    &s.config.with_features(f),
                    &s.energy,
                )
            })
        });
    }
    group.finish();
}

fn bench_rnn_sim(c: &mut Criterion) {
    let s = Suite::paper();
    let traces = s.rnn_traces(ModelZoo::LstmPtb);

    let mut group = c.benchmark_group("simulate_lstm_layer");
    group.sample_size(20);
    group.bench_function("base", |b| {
        b.iter(|| run_rnn_layer(black_box(&traces[0]), &s.config, &s.energy, false))
    });
    group.bench_function("duet", |b| {
        b.iter(|| run_rnn_layer(black_box(&traces[0]), &s.config, &s.energy, true))
    });
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let s = Suite::paper();
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(20);
    group.bench_function("resnet50_traces", |b| {
        b.iter(|| s.cnn_traces(black_box(ModelZoo::ResNet50)))
    });
    group.finish();
}

fn bench_functional_models(c: &mut Criterion) {
    use duet_sim::pe::{MacInstructionLut, TileShape};
    use duet_sim::systolic::SystolicArray;
    use duet_tensor::fixed::Int4Tensor;
    use duet_tensor::rng;

    let mut group = c.benchmark_group("functional_models");

    // functional INT4 systolic GEMM (Speculator core)
    let mut r = rng::seeded(1);
    let a = Int4Tensor::quantize(&rng::normal(&mut r, &[64, 128], 0.0, 1.0));
    let b = Int4Tensor::quantize(&rng::normal(&mut r, &[128, 64], 0.0, 1.0));
    let arr = SystolicArray::new(16, 32);
    group.bench_function("systolic_int4_64x128x64", |bch| {
        bch.iter(|| arr.gemm(black_box(&a), black_box(&b)))
    });

    // functional PE tile with tag skipping
    let shape = TileShape {
        ih: 3,
        iw: 18,
        kh: 3,
        kw: 3,
    };
    let mut lut = MacInstructionLut::generate(shape);
    let omap: Vec<bool> = (0..shape.ow()).map(|i| i % 2 == 0).collect();
    lut.configure_tags(&omap, None);
    let input = rng::normal(&mut r, &[54], 0.0, 1.0);
    let weights = rng::normal(&mut r, &[9], 0.0, 1.0);
    group.bench_function("pe_tile_half_skipped", |bch| {
        bch.iter(|| lut.execute(black_box(&input), black_box(&weights)))
    });

    // trace codec round trip
    let trace = s_trace();
    group.bench_function("trace_codec_roundtrip", |bch| {
        bch.iter(|| {
            let blob = duet_sim::trace_io::encode_conv_trace(black_box(&trace));
            duet_sim::trace_io::decode_conv_trace(blob).unwrap()
        })
    });
    group.finish();
}

fn s_trace() -> duet_sim::trace::ConvLayerTrace {
    duet_sim::trace::ConvLayerTrace::synthetic(
        "bench",
        64,
        196,
        288,
        12544,
        0.45,
        0.3,
        0.5,
        36,
        &mut duet_tensor::rng::seeded(9),
    )
}

criterion_group!(
    benches,
    bench_cnn_sim,
    bench_rnn_sim,
    bench_trace_generation,
    bench_functional_models
);
criterion_main!(benches);
