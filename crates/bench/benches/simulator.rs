//! Benchmarks of the cycle-level simulator itself: how fast a full model
//! sweep runs (this bounds the design-space-exploration loop of Fig. 13).
//!
//! Uses the in-tree `duet_bench::timing` harness; run with
//! `cargo bench -p duet-bench --features criterion`.

use duet_bench::timing::bench_and_print;
use duet_bench::Suite;
use duet_sim::config::ExecutorFeatures;
use duet_sim::rnn::run_rnn_layer;
use duet_workloads::models::ModelZoo;
use std::hint::black_box;

fn bench_cnn_sim() {
    let s = Suite::paper();
    let traces = s.cnn_traces(ModelZoo::AlexNet);

    for (label, f) in [
        ("base", ExecutorFeatures::base()),
        ("duet", ExecutorFeatures::duet()),
    ] {
        bench_and_print(&format!("simulate_alexnet/{label}"), || {
            duet_sim::cnn::run_cnn(
                "AlexNet",
                black_box(&traces),
                &s.config.with_features(f),
                &s.energy,
            )
        });
    }
}

fn bench_rnn_sim() {
    let s = Suite::paper();
    let traces = s.rnn_traces(ModelZoo::LstmPtb);

    bench_and_print("simulate_lstm_layer/base", || {
        run_rnn_layer(black_box(&traces[0]), &s.config, &s.energy, false)
    });
    bench_and_print("simulate_lstm_layer/duet", || {
        run_rnn_layer(black_box(&traces[0]), &s.config, &s.energy, true)
    });
}

fn bench_trace_generation() {
    let s = Suite::paper();
    bench_and_print("trace_generation/resnet50_traces", || {
        s.cnn_traces(black_box(ModelZoo::ResNet50))
    });
}

fn bench_functional_models() {
    use duet_sim::pe::{MacInstructionLut, TileShape};
    use duet_sim::systolic::SystolicArray;
    use duet_tensor::fixed::Int4Tensor;
    use duet_tensor::rng;

    // functional INT4 systolic GEMM (Speculator core)
    let mut r = rng::seeded(1);
    let a = Int4Tensor::quantize(&rng::normal(&mut r, &[64, 128], 0.0, 1.0));
    let b = Int4Tensor::quantize(&rng::normal(&mut r, &[128, 64], 0.0, 1.0));
    let arr = SystolicArray::new(16, 32);
    bench_and_print("functional_models/systolic_int4_64x128x64", || {
        arr.gemm(black_box(&a), black_box(&b))
    });

    // functional PE tile with tag skipping
    let shape = TileShape {
        ih: 3,
        iw: 18,
        kh: 3,
        kw: 3,
    };
    let mut lut = MacInstructionLut::generate(shape);
    let omap: Vec<bool> = (0..shape.ow()).map(|i| i % 2 == 0).collect();
    lut.configure_tags(&omap, None);
    let input = rng::normal(&mut r, &[54], 0.0, 1.0);
    let weights = rng::normal(&mut r, &[9], 0.0, 1.0);
    bench_and_print("functional_models/pe_tile_half_skipped", || {
        lut.execute(black_box(&input), black_box(&weights))
    });

    // trace codec round trip
    let trace = s_trace();
    bench_and_print("functional_models/trace_codec_roundtrip", || {
        let blob = duet_sim::trace_io::encode_conv_trace(black_box(&trace));
        duet_sim::trace_io::decode_conv_trace(&blob).unwrap()
    });
}

fn s_trace() -> duet_sim::trace::ConvLayerTrace {
    duet_sim::trace::ConvLayerTrace::synthetic(
        "bench",
        64,
        196,
        288,
        12544,
        0.45,
        0.3,
        0.5,
        36,
        &mut duet_tensor::rng::seeded(9),
    )
}

fn main() {
    bench_cnn_sim();
    bench_rnn_sim();
    bench_trace_generation();
    bench_functional_models();
}
