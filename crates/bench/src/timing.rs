//! Minimal wall-clock timing harness (the in-tree replacement for
//! criterion, which the offline build cannot resolve).
//!
//! The harness auto-calibrates the iteration count so each measurement
//! batch runs for roughly [`TARGET_BATCH`], takes several batches, and
//! reports the median/mean/min per-iteration time. Use
//! [`std::hint::black_box`] around inputs and results exactly as with
//! criterion to keep the optimizer honest.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock duration of one measurement batch.
pub const TARGET_BATCH: Duration = Duration::from_millis(25);

/// Number of measured batches per benchmark.
pub const BATCHES: usize = 9;

/// One benchmark's aggregated timing result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Iterations per measured batch.
    pub iters_per_batch: u64,
    /// Median per-iteration time in nanoseconds (the headline number).
    pub median_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Fastest per-iteration time in nanoseconds.
    pub min_ns: f64,
}

impl Measurement {
    /// Throughput in GFLOP/s given the number of floating-point operations
    /// one iteration performs (based on the median time).
    pub fn gflops(&self, flops_per_iter: u64) -> f64 {
        flops_per_iter as f64 / self.median_ns
    }

    /// Median per-iteration time in seconds.
    pub fn seconds(&self) -> f64 {
        self.median_ns * 1e-9
    }

    /// A compact human-readable report line.
    pub fn report(&self) -> String {
        format!(
            "{:<40} {:>12.1} ns/iter (min {:>12.1})",
            self.name, self.median_ns, self.min_ns
        )
    }
}

/// Times `f`, returning per-iteration statistics.
///
/// Calibration runs `f` with doubling iteration counts until one batch
/// takes at least [`TARGET_BATCH`]; that count is then used for
/// [`BATCHES`] measured batches (one extra untimed warm-up batch first).
pub fn bench<R, F: FnMut() -> R>(name: &str, mut f: F) -> Measurement {
    // Calibrate the per-batch iteration count.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= TARGET_BATCH || iters >= 1 << 30 {
            break;
        }
        // Jump close to the target once we have a usable estimate.
        iters = if elapsed < TARGET_BATCH / 20 {
            iters * 8
        } else {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            ((TARGET_BATCH.as_secs_f64() / per_iter).ceil() as u64).max(iters + 1)
        };
    }

    // Warm-up batch, then measured batches.
    for _ in 0..iters {
        black_box(f());
    }
    let mut per_iter_ns = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    Measurement {
        name: name.to_string(),
        iters_per_batch: iters,
        median_ns: per_iter_ns[per_iter_ns.len() / 2],
        mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
        min_ns: per_iter_ns[0],
    }
}

/// Runs [`bench`] and prints the report line immediately (the common
/// pattern in the `benches/` targets).
pub fn bench_and_print<R, F: FnMut() -> R>(name: &str, f: F) -> Measurement {
    let m = bench(name, f);
    println!("{}", m.report());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let m = bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.iters_per_batch >= 1);
    }

    #[test]
    fn gflops_conversion() {
        let m = Measurement {
            name: "x".into(),
            iters_per_batch: 1,
            median_ns: 1000.0, // 1 µs
            mean_ns: 1000.0,
            min_ns: 900.0,
        };
        // 2000 flops in 1 µs = 2 GFLOP/s
        assert!((m.gflops(2000) - 2.0).abs() < 1e-12);
    }
}
