//! # duet-bench
//!
//! The benchmark harness regenerating every table and figure of the DUET
//! paper's evaluation (§V). Each `fig*`/`table*` binary prints the rows or
//! series of one exhibit, side by side with the paper-reported values
//! where the paper gives them; `EXPERIMENTS.md` records both.
//!
//! Run e.g.:
//!
//! ```text
//! cargo run --release -p duet-bench --bin fig11_speedup_energy
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod regress;
pub mod suite;
pub mod table;
pub mod timing;

pub use regress::{Finding, Severity};
pub use suite::Suite;
pub use table::Table;
pub use timing::Measurement;
