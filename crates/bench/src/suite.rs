//! Shared experiment plumbing: calibrated traces, design runs, and the
//! common seeds that make every figure reproducible.

use duet_sim::baselines;
use duet_sim::cnn::run_cnn;
use duet_sim::config::{ArchConfig, ExecutorFeatures};
use duet_sim::energy::EnergyTable;
use duet_sim::report::ModelPerf;
use duet_sim::rnn::run_rnn;
use duet_sim::trace::{ConvLayerTrace, RnnLayerTrace};
use duet_tensor::rng;
use duet_workloads::models::ModelZoo;
use duet_workloads::sparsity;

/// The seed every experiment derives its randomness from.
pub const SUITE_SEED: u64 = 2020;

/// A fully-specified experiment suite: architecture, energy table, and
/// per-model calibrated traces.
#[derive(Debug, Clone)]
pub struct Suite {
    /// The DUET architecture configuration.
    pub config: ArchConfig,
    /// The energy constant table.
    pub energy: EnergyTable,
}

impl Suite {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self {
            config: ArchConfig::duet(),
            energy: EnergyTable::default(),
        }
    }

    /// Calibrated CONV traces for a CNN benchmark.
    pub fn cnn_traces(&self, model: ModelZoo) -> Vec<ConvLayerTrace> {
        let mut r = rng::seeded(SUITE_SEED ^ model.name().len() as u64);
        sparsity::cnn_traces(model, &mut r)
    }

    /// Calibrated RNN traces for an RNN benchmark.
    pub fn rnn_traces(&self, model: ModelZoo) -> Vec<RnnLayerTrace> {
        let mut r = rng::seeded(SUITE_SEED ^ (model.name().len() as u64) << 8);
        sparsity::rnn_traces(model, &mut r)
    }

    /// Runs a CNN benchmark under the given Executor features.
    pub fn run_cnn(&self, model: ModelZoo, features: ExecutorFeatures) -> ModelPerf {
        let traces = self.cnn_traces(model);
        run_cnn(
            model.name(),
            &traces,
            &self.config.with_features(features),
            &self.energy,
        )
    }

    /// Runs an RNN benchmark (dual-module or BASE).
    pub fn run_rnn(&self, model: ModelZoo, dual: bool) -> ModelPerf {
        let traces = self.rnn_traces(model);
        run_rnn(model.name(), &traces, &self.config, &self.energy, dual)
    }

    /// Runs a CNN benchmark on one of the comparison designs.
    pub fn run_baseline(&self, model: ModelZoo, design: &str) -> ModelPerf {
        let traces = self.cnn_traces(model);
        match design {
            "Eyeriss" => baselines::run_eyeriss(model.name(), &traces, &self.config, &self.energy),
            "Cnvlutin" => {
                baselines::run_cnvlutin(model.name(), &traces, &self.config, &self.energy)
            }
            "SnaPEA" => baselines::run_snapea(model.name(), &traces, &self.config, &self.energy),
            "Predict" => baselines::run_predict(model.name(), &traces, &self.config, &self.energy),
            "Predict+Cnvlutin" => {
                baselines::run_predict_cnvlutin(model.name(), &traces, &self.config, &self.energy)
            }
            other => panic!("unknown design {other}"),
        }
    }

    /// Geometric-mean speedup of `features` over BASE across the CNN zoo.
    pub fn cnn_geomean_speedup(&self, features: ExecutorFeatures) -> f64 {
        let speedups: Vec<f64> = ModelZoo::cnns()
            .into_iter()
            .map(|m| {
                let base = self.run_cnn(m, ExecutorFeatures::base());
                self.run_cnn(m, features).speedup_over(&base)
            })
            .collect();
        duet_tensor::stats::geometric_mean(&speedups)
    }
}

impl Default for Suite {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_reproducible() {
        let s = Suite::paper();
        let a = s.cnn_traces(ModelZoo::AlexNet);
        let b = s.cnn_traces(ModelZoo::AlexNet);
        assert_eq!(a, b);
    }

    #[test]
    fn duet_beats_base_on_alexnet() {
        let s = Suite::paper();
        let base = s.run_cnn(ModelZoo::AlexNet, ExecutorFeatures::base());
        let duet = s.run_cnn(ModelZoo::AlexNet, ExecutorFeatures::duet());
        let speedup = duet.speedup_over(&base);
        assert!(speedup > 1.5, "speedup {speedup}");
    }

    #[test]
    fn all_baselines_run() {
        let s = Suite::paper();
        for d in [
            "Eyeriss",
            "Cnvlutin",
            "SnaPEA",
            "Predict",
            "Predict+Cnvlutin",
        ] {
            let p = s.run_baseline(ModelZoo::AlexNet, d);
            assert_eq!(p.design, d);
            assert!(p.total_latency_cycles > 0);
        }
    }

    #[test]
    fn rnn_dual_beats_base() {
        let s = Suite::paper();
        let base = s.run_rnn(ModelZoo::LstmPtb, false);
        let dual = s.run_rnn(ModelZoo::LstmPtb, true);
        assert!(dual.speedup_over(&base) > 1.3);
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    #[should_panic(expected = "unknown design")]
    fn unknown_baseline_panics() {
        Suite::paper().run_baseline(ModelZoo::AlexNet, "NotADesign");
    }

    #[test]
    fn rnn_traces_are_reproducible() {
        let s = Suite::paper();
        assert_eq!(
            s.rnn_traces(ModelZoo::GruPtb),
            s.rnn_traces(ModelZoo::GruPtb)
        );
    }
}
